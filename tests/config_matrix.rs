//! Smoke coverage of the full configuration matrix: every scheduling
//! policy × L1D organization × issue-to-execute delay must simulate two
//! contrasting workloads without panics and with sane results.

use speculative_scheduling::core::{RunLength, RunRequest};
use speculative_scheduling::prelude::*;
use speculative_scheduling::workloads::kernels;

/// Test-local shim over the unified runner: these tests assert on the
/// statistics and treat any simulator error as a test failure.
fn run_kernel(
    cfg: speculative_scheduling::types::SimConfig,
    spec: speculative_scheduling::workloads::KernelSpec,
    len: RunLength,
) -> speculative_scheduling::types::SimStats {
    RunRequest::kernel(spec)
        .custom_config(cfg)
        .length(len)
        .execute()
        .expect("simulation runs")
        .stats
}

const POLICIES: [SchedPolicyKind; 6] = [
    SchedPolicyKind::Conservative,
    SchedPolicyKind::AlwaysHit,
    SchedPolicyKind::GlobalCounter,
    SchedPolicyKind::FilterAndCounter,
    SchedPolicyKind::FilterNoSilence,
    SchedPolicyKind::Criticality,
];

#[test]
fn full_policy_matrix_smoke() {
    let len = RunLength {
        warmup: 0,
        measure: 8_000,
    };
    for policy in POLICIES {
        for banked in [false, true] {
            for delay in [0u64, 4] {
                for shifting in [false, true] {
                    let cfg = SimConfig::builder()
                        .issue_to_execute_delay(delay)
                        .sched_policy(policy)
                        .banked_l1d(banked)
                        .schedule_shifting(shifting)
                        .build();
                    for k in [
                        kernels::crafty_like as fn(u64) -> _,
                        kernels::stream_all_miss,
                    ] {
                        let s = run_kernel(cfg.clone(), k(1), len);
                        assert!(
                            s.ipc() > 0.0 && s.ipc() <= 8.0,
                            "{policy:?}/banked={banked}/d={delay}/shift={shifting}: IPC {}",
                            s.ipc()
                        );
                        if policy == SchedPolicyKind::Conservative {
                            assert_eq!(
                                s.replayed_total(),
                                0,
                                "conservative scheduling can never misspeculate"
                            );
                        }
                        if !banked {
                            assert_eq!(s.replayed_bank, 0, "no banks, no bank replays");
                            assert_eq!(s.bank_delayed_loads, 0);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn wrong_path_toggle_works() {
    let len = RunLength {
        warmup: 0,
        measure: 10_000,
    };
    let with_wp = SimConfig::builder().issue_to_execute_delay(4).build();
    let without_wp = SimConfig::builder()
        .issue_to_execute_delay(4)
        .wrong_path(false)
        .build();
    let a = run_kernel(with_wp, kernels::branchy_int(1), len);
    let b = run_kernel(without_wp, kernels::branchy_int(1), len);
    assert!(
        a.wrong_path_issued > 1_000,
        "branchy code must issue wrong-path µ-ops"
    );
    assert_eq!(b.wrong_path_issued, 0, "disabled wrong path issues nothing");
    assert_eq!(
        a.committed_uops,
        b.committed_uops.max(10_000).min(a.committed_uops)
    );
}

#[test]
fn delay_sweep_is_monotone_for_conservative_chains() {
    let len = RunLength {
        warmup: 2_000,
        measure: 20_000,
    };
    let mut last = f64::MAX;
    for d in [0u64, 2, 4, 6] {
        let cfg = SimConfig::builder()
            .issue_to_execute_delay(d)
            .sched_policy(SchedPolicyKind::Conservative)
            .banked_l1d(false)
            .build();
        let ipc = run_kernel(cfg, kernels::list_walk(1), len).ipc();
        assert!(
            ipc < last,
            "conservative IPC must fall with delay: {ipc} at d={d}"
        );
        last = ipc;
    }
}

#[test]
fn prefetcher_converts_dram_misses_into_l2_hits() {
    // A pure stream is DRAM-*bandwidth*-bound, so prefetching cannot raise
    // its IPC (each line crosses the 8B bus either way); what it does is
    // convert demand DRAM misses into L2 hits — which is exactly why the
    // paper's streaming benchmarks keep replaying (L1 still misses) while
    // performing acceptably.
    let len = RunLength {
        warmup: 5_000,
        measure: 30_000,
    };
    let on = SimConfig::builder().issue_to_execute_delay(4).build();
    let off = SimConfig::builder()
        .issue_to_execute_delay(4)
        .prefetch_degree(0)
        .build();
    let a = run_kernel(on, kernels::stream_all_miss(1), len);
    let b = run_kernel(off, kernels::stream_all_miss(1), len);
    assert!(
        a.l2.prefetches > 1_000,
        "stride stream must train the prefetcher"
    );
    assert_eq!(b.l2.prefetches, 0);
    // On a bandwidth-saturated stream the prefetcher runs only a few
    // lines ahead, so demands often catch their line still in flight:
    // both clean L2 hits and merges into prefetch-owned MSHRs count as
    // "the prefetcher got there first".
    let covered_on = (a.l2.hits + a.l2.mshr_merges) as f64 / a.l2.accesses.max(1) as f64;
    let covered_off = (b.l2.hits + b.l2.mshr_merges) as f64 / b.l2.accesses.max(1) as f64;
    assert!(
        covered_on > covered_off + 0.3,
        "prefetching must cover demand misses: {covered_on:.3} vs {covered_off:.3}"
    );
}

#[test]
fn bimodal_ablation_mispredicts_more() {
    let len = RunLength {
        warmup: 5_000,
        measure: 30_000,
    };
    let tage = SimConfig::builder().issue_to_execute_delay(4).build();
    let bim = SimConfig::builder()
        .issue_to_execute_delay(4)
        .predictor(PredictorConfig {
            bimodal_only: true,
            ..Default::default()
        })
        .build();
    let a = run_kernel(tage, kernels::mix_int(1), len);
    let b = run_kernel(bim, kernels::mix_int(1), len);
    assert!(
        b.branch_mpki() > a.branch_mpki() * 1.5,
        "TAGE must clearly beat bimodal on patterned branches: {:.2} vs {:.2}",
        a.branch_mpki(),
        b.branch_mpki()
    );
}

use speculative_scheduling::types::PredictorConfig;
