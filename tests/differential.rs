//! End-to-end "teeth" tests for the differential oracle: an
//! intentionally seeded pipeline bug must be *caught* (with a usable
//! context dump), a clean pipeline must survive a whole seeded fuzz
//! campaign, and shrunk repro files must replay to the same
//! first-divergence commit.
//!
//! The real-program frontend rides the same machinery: every µ-op the
//! RV32IM interpreter cracks must pass [`MicroOp::validate`], and a
//! frontend-oracle-checked run must stay divergence-free under *every*
//! named scheduling configuration.

use speculative_scheduling::core::{DiffChecker, RunLength, RunRequest, Simulator};
use speculative_scheduling::frontend::{programs, ProgramSpec, RvTraceSource};
use speculative_scheduling::harness::configs::ConfigSpec;
use speculative_scheduling::harness::fuzz::{
    divergence_seq, replay_repro, run_campaign, write_repro, FuzzOptions,
};
use speculative_scheduling::oracle::InOrderModel;
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::SimError;
use speculative_scheduling::workloads::{kernels, KernelTrace};

/// A machine + workload combination guaranteed to replay early: a
/// pointer chase misses constantly, and the always-hit policy wakes
/// dependents speculatively on every one of those misses.
fn missy_sim() -> Simulator<KernelTrace> {
    let cfg = SimConfig::builder()
        .issue_to_execute_delay(4)
        .sched_policy(SchedPolicyKind::AlwaysHit)
        .banked_l1d(true)
        .commit_log_window(32)
        .build();
    let spec = kernels::ptr_chase_big(7);
    let oracle = InOrderModel::from_spec(spec.clone());
    let mut sim = Simulator::new(cfg, KernelTrace::new(spec));
    sim.attach_diff_checker(DiffChecker::new(Box::new(oracle)));
    sim
}

/// With the seeded wakeup-recovery bug armed, the DiffChecker must end
/// the run with a divergence whose report carries real context: the
/// ring of recent commits and an in-flight state dump.
#[test]
fn seeded_wakeup_bug_is_caught_with_context() {
    let mut sim = missy_sim();
    sim.seed_wakeup_bug();
    match sim.try_run_committed(20_000) {
        Err(SimError::Divergence(r)) => {
            assert!(
                !r.recent.is_empty(),
                "divergence report should carry the recent-commit ring"
            );
            assert!(
                !r.detail.is_empty(),
                "divergence report should carry the in-flight window dump"
            );
            assert_ne!(r.expected, r.actual, "a divergence is a mismatch");
            // The dropped µ-op shifts the whole stream: the report text
            // must localize the first bad commit.
            let text = r.to_string();
            assert!(text.contains("divergence at commit"), "got: {text}");
        }
        Err(other) => panic!("expected a divergence, got: {other}"),
        Ok(_) => panic!("seeded bug went undetected by the oracle"),
    }
}

/// The identical machine with the bug left dormant verifies every single
/// commit against the golden model.
#[test]
fn unseeded_pipeline_verifies_every_commit() {
    let mut sim = missy_sim();
    let stats = sim.try_run_committed(20_000).expect("clean run");
    assert_eq!(sim.diff_verified(), Some(stats.committed_uops));
    assert!(stats.committed_uops >= 20_000);
}

/// A full seeded campaign over random (config × kernel × fault plan)
/// cells finds nothing wrong with the real pipeline.
#[test]
fn clean_campaign_has_zero_divergences() {
    let report = run_campaign(&FuzzOptions {
        campaign_seed: 0xD1FF_5EED,
        cells: 64,
        run: 1_000,
        jobs: 2,
        out_dir: None,
        seed_bug: false,
    });
    assert_eq!(report.cells, 64);
    assert!(
        report.outcomes.is_empty(),
        "unexpected failures: {:?}",
        report.failure_notes()
    );
}

/// With the bug armed in every cell, the campaign must catch it, the
/// failure records must carry the fuzz cell key + seed, and the shrunk
/// repro must replay to the *same* first-divergence commit.
#[test]
fn seeded_campaign_catches_shrinks_and_reproduces() {
    let opts = FuzzOptions {
        campaign_seed: 0xD1FF_5EED,
        cells: 64,
        run: 1_000,
        jobs: 2,
        out_dir: None,
        seed_bug: true,
    };
    let report = run_campaign(&opts);
    assert!(
        !report.outcomes.is_empty(),
        "seeded bug escaped a 64-cell campaign"
    );
    let failure = &report.failures[0];
    assert!(
        failure.cell_key.starts_with("fuzz|"),
        "{}",
        failure.cell_key
    );
    assert!(failure.fuzz_seed.is_some());

    let o = &report.outcomes[0];
    // Shrinking preserves the failure class and never grows the cell.
    assert!(o.shrunk.run <= o.cell.run);
    assert!(o.shrunk.faults.len() <= o.cell.faults.len());
    let seq = divergence_seq(&o.shrunk_error).expect("seeded bug diverges");

    // Round-trip: serialize the shrunk cell, replay it, and land on the
    // exact same first-divergence commit index.
    let text = write_repro(&o.shrunk, opts.campaign_seed, &o.shrunk_error);
    let replay = replay_repro(&text).expect("repro parses");
    assert_eq!(replay.recorded_seq, Some(seq));
    assert!(
        replay.reproduced,
        "repro did not reproduce: {:?}",
        replay.outcome
    );
}

/// Property: every µ-op the frontend emits — across the whole program
/// suite and several seeds, through at least one restart of each
/// program — satisfies the same `MicroOp::validate` contract the fetch
/// boundary enforces, and consecutive µ-ops chain by PC (same µ-op PC
/// for multi-µ-op instructions, else the predecessor's successor PC).
#[test]
fn every_frontend_uop_validates_and_chains_across_the_suite() {
    use speculative_scheduling::workloads::TraceSource as _;
    for name in programs::names() {
        for seed in [1u32, 0xB5, 7_777] {
            let prog = ProgramSpec::suite(name, seed)
                .resolve()
                .expect("suite programs resolve");
            let mut src = RvTraceSource::new(prog);
            let mut prev: Option<speculative_scheduling::isa::MicroOp> = None;
            for i in 0..30_000u64 {
                let u = src.next_uop();
                u.validate()
                    .unwrap_or_else(|e| panic!("{name}@{seed} µ-op {i}: {e} ({u:?})"));
                if let Some(p) = prev {
                    assert!(
                        u.pc == p.pc || u.pc == p.successor_pc(),
                        "{name}@{seed} µ-op {i}: PC chain broke ({:?} -> {:?})",
                        p.pc,
                        u.pc
                    );
                }
                prev = Some(u);
            }
            assert!(
                src.restarts() >= 1,
                "{name}@{seed}: 30k µ-ops must wrap the program at least once"
            );
        }
    }
}

/// Every named configuration at the paper's headline delay commits the
/// exact architectural instruction stream of the functional interpreter:
/// the frontend oracle re-executes the program and the DiffChecker
/// compares PC/kind/destination at every single commit. A passing run
/// also pins the commit *count* to the requested measure window.
#[test]
fn frontend_oracle_matches_pipeline_across_the_policy_matrix() {
    let len = RunLength {
        warmup: 200,
        measure: 2_000,
    };
    for (i, spec) in ConfigSpec::variants_at(4).into_iter().enumerate() {
        // Rotate programs through the matrix so every program meets
        // several policies without multiplying the runtime.
        let names = programs::names();
        let prog = ProgramSpec::suite(names[i % names.len()], 0xB5);
        let outcome = RunRequest::program(prog.clone())
            .config(spec)
            .length(len)
            .checked(true)
            .execute()
            .unwrap_or_else(|e| panic!("{spec} on {prog}: {e}"));
        assert!(
            outcome.stats.committed_uops >= len.measure,
            "{spec} on {prog}: committed {} < measure window {}",
            outcome.stats.committed_uops,
            len.measure
        );
        assert!(outcome.stats.ipc() > 0.0, "{spec} on {prog}: zero IPC");
    }
}
