//! Randomized (but fully deterministic) tests on cross-crate invariants:
//! seeded random kernels must simulate without panics and produce
//! internally consistent statistics under every scheduling policy.
//!
//! These used to be proptest properties; they are now plain seeded loops
//! driven by the vendored [`Xoshiro256`] generator so the workspace
//! builds with no crates.io access.

use speculative_scheduling::core::{DiffChecker, FaultPlan, RunLength, RunRequest, Simulator};
use speculative_scheduling::oracle::InOrderModel;
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::rng::Xoshiro256;
use speculative_scheduling::workloads::gen::gen_kernel;
use speculative_scheduling::workloads::spec::{ri, BodyOp, KernelSpec};
use speculative_scheduling::workloads::{AddrPattern, KernelTrace, TraceSource};

/// Test-local shim over the unified runner: these tests assert on the
/// statistics and treat any simulator error as a test failure.
fn run_kernel(
    cfg: speculative_scheduling::types::SimConfig,
    spec: speculative_scheduling::workloads::KernelSpec,
    len: RunLength,
) -> speculative_scheduling::types::SimStats {
    RunRequest::kernel(spec)
        .custom_config(cfg)
        .length(len)
        .execute()
        .expect("simulation runs")
        .stats
}

/// Any valid kernel runs to completion on the full paper machine with
/// plausible, internally consistent statistics.
#[test]
fn random_kernels_simulate_consistently() {
    let mut rng = Xoshiro256::seed_from_u64(0x1AB5_1CE5);
    for case in 0..12 {
        let spec = gen_kernel(&mut rng);
        let delay = rng.next_below(7);
        let cfg = SimConfig::builder()
            .issue_to_execute_delay(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(true)
            .build();
        let s = run_kernel(
            cfg,
            spec,
            RunLength {
                warmup: 0,
                measure: 4_000,
            },
        );
        assert!(s.committed_uops >= 4_000, "case {case}");
        assert!(
            s.ipc() > 0.0 && s.ipc() <= 8.0,
            "case {case}: IPC {}",
            s.ipc()
        );
        assert!(s.unique_issued >= s.committed_uops, "case {case}");
        assert!(s.issued_total >= s.unique_issued, "case {case}");
        assert_eq!(s.l1d.hits + s.l1d.misses, s.l1d.accesses, "case {case}");
        assert!(s.cond_mispredicts <= s.cond_branches, "case {case}");
    }
}

/// The wakeup policy never changes *what* commits — only the timing:
/// committed work and its memory behaviour match across policies.
#[test]
fn policies_change_timing_not_semantics() {
    let spec = |s| {
        let mut k = KernelSpec::new(
            "semantics",
            vec![
                BodyOp::Load {
                    dst: ri(1),
                    addr_reg: ri(2),
                    pattern: 0,
                },
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(3),
                    src1: ri(1),
                    src2: Some(ri(3)),
                },
                BodyOp::Store {
                    addr_reg: ri(2),
                    data_reg: ri(3),
                    pattern: 1,
                },
            ],
        );
        k.patterns = vec![
            AddrPattern::Uniform { footprint: 1 << 20 },
            AddrPattern::Stride {
                stride: 64,
                footprint: 1 << 16,
                phase: 0,
            },
        ];
        k.seed = s;
        k
    };
    let mut rng = Xoshiro256::seed_from_u64(0x5E11A);
    for _ in 0..8 {
        let seed = 1 + rng.next_below(499);
        let run = |policy| {
            let cfg = SimConfig::builder()
                .issue_to_execute_delay(4)
                .sched_policy(policy)
                .banked_l1d(true)
                .build();
            run_kernel(
                cfg,
                spec(seed),
                RunLength {
                    warmup: 0,
                    measure: 3_000,
                },
            )
        };
        let a = run(SchedPolicyKind::AlwaysHit);
        let b = run(SchedPolicyKind::Conservative);
        // Same committed count target reached; load mix identical per µ-op.
        assert_eq!(
            a.committed_loads * b.committed_uops,
            b.committed_loads * a.committed_uops,
            "seed {seed}"
        );
        // Conservative never replays.
        assert_eq!(b.replayed_total(), 0, "seed {seed}");
    }
}

/// Kernel traces themselves are deterministic and control-flow
/// consistent for arbitrary specs (engine-level property).
#[test]
fn random_traces_are_control_flow_consistent() {
    let mut rng = Xoshiro256::seed_from_u64(0xC0FFEE);
    for case in 0..12 {
        let spec = gen_kernel(&mut rng);
        let mut t = spec.into_source();
        let mut prev = t.next_uop();
        for _ in 0..3_000 {
            let cur = t.next_uop();
            assert!(cur.validate().is_ok(), "case {case}");
            assert_eq!(
                cur.pc,
                prev.successor_pc(),
                "case {case}: discontinuity after {prev}"
            );
            prev = cur;
        }
    }
}

/// The in-order golden model and the out-of-order pipeline commit
/// exactly the same number of µ-ops — with every commit content-checked
/// by the differential oracle — across the wakeup-policy matrix and
/// under every injected [`FaultKind`](speculative_scheduling::core::FaultKind).
#[test]
fn oracle_and_pipeline_agree_across_the_config_matrix() {
    let mut rng = Xoshiro256::seed_from_u64(0x04AC_1E00);
    let policies = [
        SchedPolicyKind::Conservative,
        SchedPolicyKind::AlwaysHit,
        SchedPolicyKind::GlobalCounter,
        SchedPolicyKind::FilterAndCounter,
        SchedPolicyKind::FilterNoSilence,
        SchedPolicyKind::Criticality,
    ];
    // One plan per FaultKind, plus the fault-free baseline.
    let plans = |which: usize| match which {
        0 => FaultPlan::new(),
        1 => FaultPlan::new().latency_spike(100, 600, 12),
        2 => FaultPlan::new().bank_conflict_burst(100, 600, 9),
        _ => FaultPlan::new().replay_storm(100, 600),
    };
    for (i, &policy) in policies.iter().enumerate() {
        for which in 0..4 {
            let spec = gen_kernel(&mut rng);
            let cfg = SimConfig::builder()
                .issue_to_execute_delay([0, 2, 4, 6][i % 4])
                .sched_policy(policy)
                .banked_l1d(i % 2 == 0)
                .commit_log_window(16)
                .build();
            let oracle = InOrderModel::from_spec(spec.clone());
            let mut sim = Simulator::new(cfg, KernelTrace::new(spec));
            sim.attach_diff_checker(DiffChecker::new(Box::new(oracle)));
            sim.set_fault_plan(plans(which)).expect("valid plan");
            let stats = sim
                .try_run_committed(2_500)
                .unwrap_or_else(|e| panic!("{policy:?} fault#{which}: {e}"));
            assert_eq!(
                sim.diff_verified(),
                Some(stats.committed_uops),
                "{policy:?} fault#{which}: every committed µ-op must be verified"
            );
            assert!(stats.committed_uops >= 2_500, "{policy:?} fault#{which}");
        }
    }
}

/// Warmup deltas are always well-formed: every counter in the window
/// is the cumulative counter minus the snapshot (no underflow).
#[test]
fn warmup_delta_is_monotonic() {
    let mut rng = Xoshiro256::seed_from_u64(0xD317A);
    for _ in 0..6 {
        let seed = 1 + rng.next_below(199);
        let warm = rng.next_below(5_000);
        let mut k = KernelSpec::new(
            "delta",
            vec![
                BodyOp::Load {
                    dst: ri(1),
                    addr_reg: ri(1),
                    pattern: 0,
                },
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(2),
                    src1: ri(1),
                    src2: None,
                },
            ],
        );
        k.patterns = vec![AddrPattern::Chase { footprint: 1 << 18 }];
        k.seed = seed;
        let cfg = SimConfig::builder().issue_to_execute_delay(4).build();
        let s = run_kernel(
            cfg,
            k,
            RunLength {
                warmup: warm,
                measure: 2_000,
            },
        );
        assert!(s.committed_uops >= 2_000, "seed {seed} warm {warm}");
        assert!(s.cycles > 0, "seed {seed} warm {warm}");
    }
}
