//! Property-based tests (proptest) on cross-crate invariants: randomly
//! generated kernels must simulate without panics and produce internally
//! consistent statistics under every scheduling policy.

use proptest::prelude::*;
use speculative_scheduling::core::{run_kernel, RunLength};
use speculative_scheduling::prelude::*;
use speculative_scheduling::workloads::spec::{rf, ri, BodyOp, BranchBehavior, BranchTarget, KernelSpec};
use speculative_scheduling::workloads::{AddrPattern, TraceSource};

/// Strategy: a random address pattern with valid parameters.
fn arb_pattern() -> impl Strategy<Value = AddrPattern> {
    prop_oneof![
        (prop_oneof![Just(8i64), Just(64), Just(-64), Just(256)], 7u32..24, 0u32..4).prop_map(
            |(stride, log_fp, phase_units)| AddrPattern::Stride {
                stride,
                footprint: 1 << log_fp,
                phase: (phase_units as u64 * 512) % (1 << log_fp),
            }
        ),
        (10u32..26).prop_map(|l| AddrPattern::Chase { footprint: 1 << l }),
        (7u32..24).prop_map(|l| AddrPattern::Uniform { footprint: 1 << l }),
        (0u8..=100, 7u32..14, 14u32..26).prop_map(|(hot, hl, cl)| AddrPattern::HotCold {
            hot_pct: hot,
            hot_footprint: 1 << hl,
            cold_footprint: 1 << cl,
        }),
    ]
}

/// Strategy: a random body op referencing pattern 0 or 1 and low registers.
fn arb_body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(d, s1, s2)| BodyOp::Compute {
            class: OpClass::IntAlu,
            dst: ri(d),
            src1: ri(s1),
            src2: Some(ri(s2)),
        }),
        (0u8..8, 0u8..8).prop_map(|(d, s)| BodyOp::Compute {
            class: OpClass::FpMul,
            dst: rf(d),
            src1: rf(s),
            src2: None,
        }),
        (0u8..8, 0u8..8, 0usize..2).prop_map(|(d, a, p)| BodyOp::Load {
            dst: ri(d),
            addr_reg: ri(a),
            pattern: p,
        }),
        (0u8..8, 0u8..8, 0usize..2).prop_map(|(a, d, p)| BodyOp::Store {
            addr_reg: ri(a),
            data_reg: ri(d),
            pattern: p,
        }),
        (1u8..100, 0u8..8).prop_map(|(pct, c)| BodyOp::Branch {
            behavior: BranchBehavior::Bernoulli { taken_pct: pct },
            target: BranchTarget::SkipNext(0),
            cond: ri(c),
        }),
    ]
}

fn arb_kernel() -> impl Strategy<Value = KernelSpec> {
    (
        proptest::collection::vec(arb_body_op(), 1..12),
        arb_pattern(),
        arb_pattern(),
        2u32..200,
        1u64..1000,
    )
        .prop_map(|(body, p0, p1, period, seed)| {
            let mut s = KernelSpec::new("proptest_kernel", body);
            s.patterns = vec![p0, p1];
            s.loop_behavior = BranchBehavior::TakenEvery { period };
            s.seed = seed;
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any valid kernel runs to completion on the full paper machine with
    /// plausible, internally consistent statistics.
    #[test]
    fn random_kernels_simulate_consistently(spec in arb_kernel(), delay in 0u64..7) {
        let cfg = SimConfig::builder()
            .issue_to_execute_delay(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(true)
            .build();
        let s = run_kernel(cfg, spec, RunLength { warmup: 0, measure: 4_000 });
        prop_assert!(s.committed_uops >= 4_000);
        prop_assert!(s.ipc() > 0.0 && s.ipc() <= 8.0, "IPC {}", s.ipc());
        prop_assert!(s.unique_issued >= s.committed_uops);
        prop_assert!(s.issued_total >= s.unique_issued);
        prop_assert_eq!(s.l1d.hits + s.l1d.misses, s.l1d.accesses);
        prop_assert!(s.cond_mispredicts <= s.cond_branches);
    }

    /// The wakeup policy never changes *what* commits — only the timing:
    /// committed work and its memory behaviour match across policies.
    #[test]
    fn policies_change_timing_not_semantics(seed in 1u64..500) {
        let spec = |s| {
            let mut k = KernelSpec::new(
                "semantics",
                vec![
                    BodyOp::Load { dst: ri(1), addr_reg: ri(2), pattern: 0 },
                    BodyOp::Compute { class: OpClass::IntAlu, dst: ri(3), src1: ri(1), src2: Some(ri(3)) },
                    BodyOp::Store { addr_reg: ri(2), data_reg: ri(3), pattern: 1 },
                ],
            );
            k.patterns = vec![
                AddrPattern::Uniform { footprint: 1 << 20 },
                AddrPattern::Stride { stride: 64, footprint: 1 << 16, phase: 0 },
            ];
            k.seed = s;
            k
        };
        let run = |policy| {
            let cfg = SimConfig::builder()
                .issue_to_execute_delay(4)
                .sched_policy(policy)
                .banked_l1d(true)
                .build();
            run_kernel(cfg, spec(seed), RunLength { warmup: 0, measure: 3_000 })
        };
        let a = run(SchedPolicyKind::AlwaysHit);
        let b = run(SchedPolicyKind::Conservative);
        // Same committed count target reached; load mix identical per µ-op.
        prop_assert_eq!(a.committed_loads * b.committed_uops, b.committed_loads * a.committed_uops);
        // Conservative never replays.
        prop_assert_eq!(b.replayed_total(), 0);
    }

    /// Kernel traces themselves are deterministic and control-flow
    /// consistent for arbitrary specs (engine-level property).
    #[test]
    fn random_traces_are_control_flow_consistent(spec in arb_kernel()) {
        let mut t = spec.clone().into_source();
        let mut prev = t.next_uop();
        for _ in 0..3_000 {
            let cur = t.next_uop();
            prop_assert!(cur.validate().is_ok());
            prop_assert_eq!(cur.pc, prev.successor_pc(), "discontinuity after {}", prev);
            prev = cur;
        }
    }

    /// Warmup deltas are always well-formed: every counter in the window
    /// is the cumulative counter minus the snapshot (no underflow).
    #[test]
    fn warmup_delta_is_monotonic(seed in 1u64..200, warm in 0u64..5_000) {
        let mut k = KernelSpec::new(
            "delta",
            vec![
                BodyOp::Load { dst: ri(1), addr_reg: ri(1), pattern: 0 },
                BodyOp::Compute { class: OpClass::IntAlu, dst: ri(2), src1: ri(1), src2: None },
            ],
        );
        k.patterns = vec![AddrPattern::Chase { footprint: 1 << 18 }];
        k.seed = seed;
        let cfg = SimConfig::builder().issue_to_execute_delay(4).build();
        let s = run_kernel(cfg, k, RunLength { warmup: warm, measure: 2_000 });
        prop_assert!(s.committed_uops >= 2_000);
        prop_assert!(s.cycles > 0);
    }
}
