//! Randomized (but fully deterministic) tests on cross-crate invariants:
//! seeded random kernels must simulate without panics and produce
//! internally consistent statistics under every scheduling policy.
//!
//! These used to be proptest properties; they are now plain seeded loops
//! driven by the vendored [`Xoshiro256`] generator so the workspace
//! builds with no crates.io access.

use speculative_scheduling::core::{run_kernel, RunLength};
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::rng::Xoshiro256;
use speculative_scheduling::workloads::spec::{
    rf, ri, BodyOp, BranchBehavior, BranchTarget, KernelSpec,
};
use speculative_scheduling::workloads::{AddrPattern, TraceSource};

/// A random address pattern with valid parameters.
fn gen_pattern(rng: &mut Xoshiro256) -> AddrPattern {
    match rng.next_below(4) {
        0 => {
            let stride = [8i64, 64, -64, 256][rng.next_below(4) as usize];
            let log_fp = 7 + rng.next_below(17) as u32; // 7..24
            let phase_units = rng.next_below(4);
            AddrPattern::Stride {
                stride,
                footprint: 1 << log_fp,
                phase: (phase_units * 512) % (1 << log_fp),
            }
        }
        1 => AddrPattern::Chase {
            footprint: 1 << (10 + rng.next_below(16) as u32),
        },
        2 => AddrPattern::Uniform {
            footprint: 1 << (7 + rng.next_below(17) as u32),
        },
        _ => AddrPattern::HotCold {
            hot_pct: rng.next_below(101) as u8,
            hot_footprint: 1 << (7 + rng.next_below(7) as u32),
            cold_footprint: 1 << (14 + rng.next_below(12) as u32),
        },
    }
}

/// A random body op referencing pattern 0 or 1 and low registers.
fn gen_body_op(rng: &mut Xoshiro256) -> BodyOp {
    let r8 = |rng: &mut Xoshiro256| rng.next_below(8) as u8;
    match rng.next_below(5) {
        0 => BodyOp::Compute {
            class: OpClass::IntAlu,
            dst: ri(r8(rng)),
            src1: ri(r8(rng)),
            src2: Some(ri(r8(rng))),
        },
        1 => BodyOp::Compute {
            class: OpClass::FpMul,
            dst: rf(r8(rng)),
            src1: rf(r8(rng)),
            src2: None,
        },
        2 => BodyOp::Load {
            dst: ri(r8(rng)),
            addr_reg: ri(r8(rng)),
            pattern: rng.next_below(2) as usize,
        },
        3 => BodyOp::Store {
            addr_reg: ri(r8(rng)),
            data_reg: ri(r8(rng)),
            pattern: rng.next_below(2) as usize,
        },
        _ => BodyOp::Branch {
            behavior: BranchBehavior::Bernoulli {
                taken_pct: 1 + rng.next_below(99) as u8,
            },
            target: BranchTarget::SkipNext(0),
            cond: ri(r8(rng)),
        },
    }
}

fn gen_kernel(rng: &mut Xoshiro256) -> KernelSpec {
    let body_len = 1 + rng.next_below(11) as usize;
    let body: Vec<BodyOp> = (0..body_len).map(|_| gen_body_op(rng)).collect();
    let p0 = gen_pattern(rng);
    let p1 = gen_pattern(rng);
    let mut s = KernelSpec::new("seeded_kernel", body);
    s.patterns = vec![p0, p1];
    s.loop_behavior = BranchBehavior::TakenEvery {
        period: 2 + rng.next_below(198) as u32,
    };
    s.seed = 1 + rng.next_below(999);
    s
}

/// Any valid kernel runs to completion on the full paper machine with
/// plausible, internally consistent statistics.
#[test]
fn random_kernels_simulate_consistently() {
    let mut rng = Xoshiro256::seed_from_u64(0x1AB5_1CE5);
    for case in 0..12 {
        let spec = gen_kernel(&mut rng);
        let delay = rng.next_below(7);
        let cfg = SimConfig::builder()
            .issue_to_execute_delay(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(true)
            .build();
        let s = run_kernel(
            cfg,
            spec,
            RunLength {
                warmup: 0,
                measure: 4_000,
            },
        );
        assert!(s.committed_uops >= 4_000, "case {case}");
        assert!(
            s.ipc() > 0.0 && s.ipc() <= 8.0,
            "case {case}: IPC {}",
            s.ipc()
        );
        assert!(s.unique_issued >= s.committed_uops, "case {case}");
        assert!(s.issued_total >= s.unique_issued, "case {case}");
        assert_eq!(s.l1d.hits + s.l1d.misses, s.l1d.accesses, "case {case}");
        assert!(s.cond_mispredicts <= s.cond_branches, "case {case}");
    }
}

/// The wakeup policy never changes *what* commits — only the timing:
/// committed work and its memory behaviour match across policies.
#[test]
fn policies_change_timing_not_semantics() {
    let spec = |s| {
        let mut k = KernelSpec::new(
            "semantics",
            vec![
                BodyOp::Load {
                    dst: ri(1),
                    addr_reg: ri(2),
                    pattern: 0,
                },
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(3),
                    src1: ri(1),
                    src2: Some(ri(3)),
                },
                BodyOp::Store {
                    addr_reg: ri(2),
                    data_reg: ri(3),
                    pattern: 1,
                },
            ],
        );
        k.patterns = vec![
            AddrPattern::Uniform { footprint: 1 << 20 },
            AddrPattern::Stride {
                stride: 64,
                footprint: 1 << 16,
                phase: 0,
            },
        ];
        k.seed = s;
        k
    };
    let mut rng = Xoshiro256::seed_from_u64(0x5E11A);
    for _ in 0..8 {
        let seed = 1 + rng.next_below(499);
        let run = |policy| {
            let cfg = SimConfig::builder()
                .issue_to_execute_delay(4)
                .sched_policy(policy)
                .banked_l1d(true)
                .build();
            run_kernel(
                cfg,
                spec(seed),
                RunLength {
                    warmup: 0,
                    measure: 3_000,
                },
            )
        };
        let a = run(SchedPolicyKind::AlwaysHit);
        let b = run(SchedPolicyKind::Conservative);
        // Same committed count target reached; load mix identical per µ-op.
        assert_eq!(
            a.committed_loads * b.committed_uops,
            b.committed_loads * a.committed_uops,
            "seed {seed}"
        );
        // Conservative never replays.
        assert_eq!(b.replayed_total(), 0, "seed {seed}");
    }
}

/// Kernel traces themselves are deterministic and control-flow
/// consistent for arbitrary specs (engine-level property).
#[test]
fn random_traces_are_control_flow_consistent() {
    let mut rng = Xoshiro256::seed_from_u64(0xC0FFEE);
    for case in 0..12 {
        let spec = gen_kernel(&mut rng);
        let mut t = spec.into_source();
        let mut prev = t.next_uop();
        for _ in 0..3_000 {
            let cur = t.next_uop();
            assert!(cur.validate().is_ok(), "case {case}");
            assert_eq!(
                cur.pc,
                prev.successor_pc(),
                "case {case}: discontinuity after {prev}"
            );
            prev = cur;
        }
    }
}

/// Warmup deltas are always well-formed: every counter in the window
/// is the cumulative counter minus the snapshot (no underflow).
#[test]
fn warmup_delta_is_monotonic() {
    let mut rng = Xoshiro256::seed_from_u64(0xD317A);
    for _ in 0..6 {
        let seed = 1 + rng.next_below(199);
        let warm = rng.next_below(5_000);
        let mut k = KernelSpec::new(
            "delta",
            vec![
                BodyOp::Load {
                    dst: ri(1),
                    addr_reg: ri(1),
                    pattern: 0,
                },
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(2),
                    src1: ri(1),
                    src2: None,
                },
            ],
        );
        k.patterns = vec![AddrPattern::Chase { footprint: 1 << 18 }];
        k.seed = seed;
        let cfg = SimConfig::builder().issue_to_execute_delay(4).build();
        let s = run_kernel(
            cfg,
            k,
            RunLength {
                warmup: warm,
                measure: 2_000,
            },
        );
        assert!(s.committed_uops >= 2_000, "seed {seed} warm {warm}");
        assert!(s.cycles > 0, "seed {seed} warm {warm}");
    }
}
