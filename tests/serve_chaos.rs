//! Pins for the self-healing service layer:
//!
//! * **Supervision** — a `poison`ed worker thread dies with an
//!   uncontained panic, the supervisor respawns it, and the pool serves
//!   byte-identical results afterwards at full strength.
//! * **Deadlines** — a `deadline=`-tagged request that blows its budget
//!   ends with the typed `deadline exceeded` error carrying committed
//!   evidence, while concurrent requests finish normally.
//! * **Drain** — graceful shutdown with work in flight completes within
//!   the grace bound and every casualty gets a typed error, never a
//!   silent close.

use speculative_scheduling::core::RunRequest;
use speculative_scheduling::harness::serve::{stats_from_wire, ServeOptions, Server};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss-chaos-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A line-oriented client connection.
struct Client {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(socket: &Path) -> Client {
        let stream = UnixStream::connect(socket).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send");
        self.stream.write_all(b"\n").expect("send");
        self.stream.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    /// Reads lines until the connection closes, up to `max`.
    fn drain_lines(&mut self, max: usize) -> Vec<String> {
        let mut out = Vec::new();
        for _ in 0..max {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => out.push(line.trim_end().to_string()),
            }
        }
        out
    }

    /// Reads until the terminal reply for `id`, skipping progress lines.
    fn terminal(&mut self, id: &str) -> String {
        loop {
            let line = self.recv();
            if line.starts_with("progress ") {
                continue;
            }
            assert!(
                line.split(' ').nth(1) == Some(id),
                "reply for a different request: {line}"
            );
            return line;
        }
    }

    /// Issues `health` and parses the `k=v` payload.
    fn health(&mut self) -> HashMap<String, u64> {
        self.send("health");
        let line = self.recv();
        let payload = line.strip_prefix("health ").expect("health reply");
        payload
            .split(' ')
            .filter_map(|kv| kv.split_once('='))
            .map(|(k, v)| (k.to_string(), v.parse().expect("health value")))
            .collect()
    }
}

/// The offline reference a served `done` payload must match bytewise.
fn offline(req: &str) -> speculative_scheduling::types::SimStats {
    req.parse::<RunRequest>()
        .expect("request parses")
        .execute()
        .expect("offline run")
        .stats
}

#[test]
fn poisoned_workers_are_respawned_and_results_stay_byte_identical() {
    let dir = scratch("poison");
    let server = Server::start(ServeOptions {
        socket: dir.join("serve.sock"),
        jobs: 2,
        allow_poison: true,
        ..ServeOptions::default()
    })
    .expect("server starts");
    let mut c = Client::connect(server.socket());

    // Kill both workers, one after the other. The ack is guaranteed to
    // precede the dying worker's reply (admission holds the writer lock
    // across the queue push).
    for id in ["p1", "p2"] {
        c.send(&format!("poison {id}"));
        assert_eq!(c.recv(), format!("ack {id} poison"));
        let died = c.terminal(id);
        assert!(
            died.starts_with(&format!("err {id} worker poisoned")),
            "expected a typed poison reply, got {died}"
        );
    }

    // The supervisor notices the corpses and respawns: the pool returns
    // to full strength.
    let t0 = Instant::now();
    while server.workers_restarted() < 2 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "supervisor never respawned the poisoned workers \
             (restarted={})",
            server.workers_restarted()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let t0 = Instant::now();
    loop {
        let h = c.health();
        if h["live"] == 2 && h["busy"] == 0 {
            assert_eq!(h["workers"], 2);
            assert!(h["restarted"] >= 2);
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "pool never returned to full strength: {h:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // And the healed pool still produces byte-identical results.
    let req = "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w200m2000";
    c.send(&format!("run c1 {req}"));
    let ack = c.recv();
    assert!(ack.starts_with("ack c1 "), "unexpected ack: {ack}");
    let done = c.terminal("c1");
    let payload = done
        .strip_prefix("done c1 ")
        .unwrap_or_else(|| panic!("expected done, got {done}"));
    assert_eq!(
        stats_from_wire(payload).expect("served stats parse"),
        offline(req),
        "post-respawn result diverged from the offline reference"
    );

    // Poison is an uncontained kill, not a caught panic.
    assert_eq!(server.workers_restarted(), 2);
    assert_eq!(server.panics_caught(), 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_exceeded_is_typed_with_evidence_while_neighbors_finish() {
    let dir = scratch("deadline");
    let server = Server::start(ServeOptions {
        socket: dir.join("serve.sock"),
        jobs: 2,
        ..ServeOptions::default()
    })
    .expect("server starts");

    // One request that cannot possibly finish inside its 25ms budget...
    let mut doomed = Client::connect(server.socket());
    doomed.send(
        "run d1 src=bench:stream_hi_ilp@0x7 cfg=SpecSched_4 \
         len=w1000m400000000 deadline=25",
    );
    assert!(doomed.recv().starts_with("ack d1 "));

    // ...while a neighbor on the second worker finishes normally.
    let mut fine = Client::connect(server.socket());
    let req = "src=bench:mix_int@0xb5 cfg=Baseline_4 len=w200m2000";
    fine.send(&format!("run n1 {req}"));
    assert!(fine.recv().starts_with("ack n1 "));
    let done = fine.terminal("n1");
    let payload = done
        .strip_prefix("done n1 ")
        .unwrap_or_else(|| panic!("expected done, got {done}"));
    assert_eq!(
        stats_from_wire(payload).expect("served stats parse"),
        offline(req),
        "neighbor result diverged while a deadline was firing"
    );

    // The doomed request ends with the typed error and real evidence.
    let err = doomed.terminal("d1");
    assert!(
        err.starts_with("err d1 deadline exceeded after "),
        "expected the typed deadline error, got {err}"
    );
    assert!(err.ends_with("(budget 25 ms)"), "budget missing: {err}");
    let committed: u64 = err
        .split(' ')
        .nth(5)
        .and_then(|w| w.parse().ok())
        .expect("committed count in the message");
    assert!(
        committed > 0 && committed < 400_000_000,
        "deadline fired mid-run, not at an edge: {committed}"
    );
    assert_eq!(server.deadline_exceeded(), 1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_grace_bounds_shutdown_and_types_every_casualty() {
    let dir = scratch("drain");
    let server = Server::start(ServeOptions {
        socket: dir.join("serve.sock"),
        jobs: 1,
        drain_grace_ms: 400,
        ..ServeOptions::default()
    })
    .expect("server starts");
    let mut c = Client::connect(server.socket());

    // One run occupying the lone worker indefinitely...
    c.send("run r1 src=bench:stream_hi_ilp@0x3 cfg=SpecSched_4 len=w1000m400000000");
    assert!(c.recv().starts_with("ack r1 "));
    assert!(c.recv().starts_with("progress r1 "));
    // ...and one queued behind it that will never get the worker.
    c.send("run q1 src=bench:fp_compute@0x4 cfg=SpecSched_4 len=w200m2000");
    assert!(c.recv().starts_with("ack q1 "));

    // Shutdown must drain within the grace bound, not hang on the
    // endless run.
    let t0 = Instant::now();
    server.shutdown();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "drain blew far past its 400ms grace: {elapsed:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(300),
        "drain returned before the grace window could elapse: {elapsed:?}"
    );

    // Both casualties got typed errors before the close.
    let replies = c.drain_lines(256);
    assert!(
        replies
            .iter()
            .any(|l| l.starts_with("err q1 server shutting down (drain grace expired)")),
        "queued casualty got no typed drain error: {replies:?}"
    );
    assert!(
        replies
            .iter()
            .any(|l| l.starts_with("err r1 run cancelled after ")),
        "running casualty got no typed cancellation: {replies:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
