//! Lane-engine equivalence contract: batching K cells through one tick
//! loop is an *execution strategy*, never an observable behaviour. For
//! every cell, `run_lane_batch` must produce the byte-identical
//! [`SimStats`] the sequential `RunRequest` path produces — across the
//! scheduling-policy matrix, every kernel shape, fault plans, ragged
//! warmup/measure budgets, and any lane width. A cell that *fails*
//! mid-batch (deadlock, invalid config) retires its lane without
//! perturbing its lane-mates. DESIGN.md "Lane engine" carries the
//! argument for why sharing is safe; these tests are the enforcement.

use speculative_scheduling::core::{
    default_lanes, run_lane_batch, validate_lanes, FaultPlan, LaneCell, RunLength, RunRequest,
    MAX_LANES,
};
use speculative_scheduling::types::{
    CancelFlag, SchedPolicyKind, SimConfig, SimError, SimStats,
};
use speculative_scheduling::workloads::kernels;

const LEN: RunLength = RunLength {
    warmup: 500,
    measure: 4_000,
};

fn cfg(rob: u32, iq: u32, policy: SchedPolicyKind) -> SimConfig {
    SimConfig::builder()
        .issue_to_execute_delay(4)
        .rob_entries(rob)
        .iq_entries(iq)
        .sched_policy(policy)
        .build()
}

/// The sequential reference for one cell: the same workload seed and
/// machine through the one-cell-at-a-time `RunRequest` path.
fn reference(kernel: &str, cell: &LaneCell) -> Result<SimStats, SimError> {
    let spec = kernels::benchmark(kernel).expect("kernel exists");
    RunRequest::kernel((spec.build)(1))
        .custom_config(cell.cfg.clone())
        .length(cell.len)
        .faults(cell.faults.clone())
        .execute()
        .map(|o| o.stats)
}

/// Runs the cells as one lane batch over `kernel` and checks each
/// result byte-for-byte against the sequential reference.
fn assert_batch_matches(kernel: &str, cells: Vec<LaneCell>, lanes: usize) {
    let spec = kernels::benchmark(kernel).expect("kernel exists");
    let got = run_lane_batch(
        cells.clone(),
        lanes,
        || (spec.build)(1).into_source(),
        &CancelFlag::new(),
        |_, _, _| {},
    );
    assert_eq!(got.len(), cells.len());
    for (i, (cell, got)) in cells.iter().zip(&got).enumerate() {
        let want = reference(kernel, cell).unwrap_or_else(|e| {
            panic!("{kernel} cell {i}: reference run failed: {e}");
        });
        let got = got
            .as_ref()
            .unwrap_or_else(|e| panic!("{kernel} cell {i}: lane run failed: {e}"));
        assert_eq!(got, &want, "{kernel} cell {i}: lane stats diverged");
    }
}

/// Every scheduling policy, batched together over each kernel shape:
/// the policies exercise disjoint predictor state (global counter,
/// per-PC filter, criticality table), so any cross-lane leakage through
/// the shared trace ring would show up as a counter diff somewhere.
#[test]
fn policy_matrix_matches_sequential() {
    let policies = [
        SchedPolicyKind::Conservative,
        SchedPolicyKind::AlwaysHit,
        SchedPolicyKind::GlobalCounter,
        SchedPolicyKind::FilterAndCounter,
        SchedPolicyKind::FilterNoSilence,
        SchedPolicyKind::Criticality,
    ];
    for kernel in ["dep_chain_l2", "mix_int", "stream_all_miss"] {
        let cells: Vec<LaneCell> = policies
            .iter()
            .map(|&p| LaneCell::new(cfg(192, 60, p), LEN))
            .collect();
        let lanes = cells.len();
        assert_batch_matches(kernel, cells, lanes);
    }
}

/// Per-cell fault plans stay per-cell: a latency spike, a bank-conflict
/// burst, a replay storm, and a clean cell share one decode ring and
/// none of them bleed into a lane-mate.
#[test]
fn fault_plans_match_sequential() {
    let mut cells: Vec<LaneCell> = [
        FaultPlan::new(),
        FaultPlan::new().latency_spike(200, 400, 60),
        FaultPlan::new().bank_conflict_burst(100, 600, 3),
        FaultPlan::new().replay_storm(300, 500),
    ]
    .into_iter()
    .map(|plan| {
        let mut cell = LaneCell::new(cfg(192, 60, SchedPolicyKind::AlwaysHit), LEN);
        cell.faults = plan;
        cell
    })
    .collect();
    // Same machine everywhere: only the fault plan distinguishes cells,
    // so a plan applied to the wrong lane is guaranteed to be visible.
    cells[0].cfg = cfg(192, 60, SchedPolicyKind::AlwaysHit);
    let lanes = cells.len();
    assert_batch_matches("mix_int", cells, lanes);
}

/// Ragged budgets with fewer lanes than cells: the batch chunks into
/// sub-batches, early-finishing lanes retire and the ring trims, and
/// every cell still matches its reference exactly.
#[test]
fn ragged_lengths_chunked_lanes_match_sequential() {
    let lens = [
        RunLength {
            warmup: 200,
            measure: 1_500,
        },
        RunLength {
            warmup: 1_000,
            measure: 8_000,
        },
        RunLength {
            warmup: 500,
            measure: 3_000,
        },
        RunLength {
            warmup: 50,
            measure: 700,
        },
        RunLength {
            warmup: 800,
            measure: 5_000,
        },
    ];
    let robs = [64u32, 192, 384, 128, 256];
    let iqs = [24u32, 60, 120, 40, 80];
    let cells: Vec<LaneCell> = (0..5)
        .map(|i| {
            LaneCell::new(cfg(robs[i], iqs[i], SchedPolicyKind::AlwaysHit), lens[i])
        })
        .collect();
    assert_batch_matches("dep_chain_l2", cells, 2);
}

/// Lane width is invisible: the same cells at width 1 (the sequential
/// degenerate case) and at full width produce identical result vectors.
#[test]
fn lane_width_does_not_change_results() {
    let spec = kernels::benchmark("mix_int").expect("kernel exists");
    let cells: Vec<LaneCell> = [64u32, 192, 384]
        .iter()
        .map(|&rob| LaneCell::new(cfg(rob, rob / 4, SchedPolicyKind::GlobalCounter), LEN))
        .collect();
    let run = |lanes: usize| {
        run_lane_batch(
            cells.clone(),
            lanes,
            || (spec.build)(1).into_source(),
            &CancelFlag::new(),
            |_, _, _| {},
        )
    };
    let narrow = run(1);
    let wide = run(3);
    for (i, (a, b)) in narrow.iter().zip(&wide).enumerate() {
        assert_eq!(
            a.as_ref().unwrap(),
            b.as_ref().unwrap(),
            "cell {i}: width-1 vs width-3 diverged"
        );
    }
}

/// A cell that dies mid-batch (a 2-cycle watchdog deadlocks on the
/// first long-latency miss) retires its lane with a typed error; its
/// lane-mates keep stepping through the shared ring and still match
/// their sequential references byte-for-byte.
#[test]
fn mid_batch_failure_does_not_poison_lane_mates() {
    let healthy = cfg(192, 60, SchedPolicyKind::AlwaysHit);
    let doomed = SimConfig::builder()
        .issue_to_execute_delay(4)
        .rob_entries(192)
        .iq_entries(60)
        .watchdog_cycles(2)
        .build();
    let cells = vec![
        LaneCell::new(healthy.clone(), LEN),
        LaneCell::new(doomed, LEN),
        LaneCell::new(cfg(384, 120, SchedPolicyKind::Criticality), LEN),
    ];
    let spec = kernels::benchmark("dep_chain_l2").expect("kernel exists");
    let got = run_lane_batch(
        cells.clone(),
        3,
        || (spec.build)(1).into_source(),
        &CancelFlag::new(),
        |_, _, _| {},
    );
    assert!(
        matches!(got[1], Err(SimError::Deadlock(_))),
        "watchdog cell should deadlock, got {:?}",
        got[1].as_ref().map(|_| "ok")
    );
    for i in [0usize, 2] {
        let want = reference("dep_chain_l2", &cells[i]).expect("healthy reference");
        assert_eq!(
            got[i].as_ref().expect("healthy lane survives"),
            &want,
            "cell {i}: stats perturbed by a failing lane-mate"
        );
    }
}

/// An *invalid* configuration fails at lane setup — before any ticking
/// — and likewise leaves the rest of the batch untouched.
#[test]
fn invalid_config_fails_setup_without_poisoning_batch() {
    // The builder panics on inconsistent configs, so reach the lane
    // engine's own `try_validate` gate by mutating a built config: an
    // issue-to-execute delay no frontend depth can cover.
    let mut bad = cfg(192, 60, SchedPolicyKind::AlwaysHit);
    bad.issue_to_execute_delay = 400;
    let cells = vec![
        LaneCell::new(cfg(192, 60, SchedPolicyKind::AlwaysHit), LEN),
        LaneCell::new(bad, LEN),
    ];
    let spec = kernels::benchmark("mix_int").expect("kernel exists");
    let got = run_lane_batch(
        cells.clone(),
        2,
        || (spec.build)(1).into_source(),
        &CancelFlag::new(),
        |_, _, _| {},
    );
    assert!(matches!(got[1], Err(SimError::ConfigInvalid(_))));
    let want = reference("mix_int", &cells[0]).expect("healthy reference");
    assert_eq!(got[0].as_ref().expect("healthy lane survives"), &want);
}

/// The typed `--lanes` validation surface: zero and absurd widths are
/// `ConfigInvalid`, the defaulting rule follows the batch shape and
/// saturates at `MAX_LANES`.
#[test]
fn lane_count_validation_and_defaults() {
    assert!(matches!(validate_lanes(0), Err(SimError::ConfigInvalid(_))));
    assert!(matches!(
        validate_lanes(MAX_LANES + 1),
        Err(SimError::ConfigInvalid(_))
    ));
    assert!(validate_lanes(1).is_ok());
    assert!(validate_lanes(MAX_LANES).is_ok());
    assert_eq!(default_lanes(0), 1);
    assert_eq!(default_lanes(3), 3);
    assert_eq!(default_lanes(10 * MAX_LANES), MAX_LANES);
}
