//! End-to-end contract of the real-program (RV32IM) frontend:
//!
//! * a request built in the library and the same request parsed back off
//!   the wire execute to **identical** statistics;
//! * capturing a snapshot mid-program and resuming from it is
//!   statistics-identical to a run that never stopped (the interpreter's
//!   full architectural state — registers, PC, memory, pending µ-ops —
//!   rides inside the pipeline snapshot);
//! * the deadline-armed (chunked) execution path changes nothing.

use speculative_scheduling::core::{RunLength, RunRequest};
use speculative_scheduling::frontend::ProgramSpec;
use speculative_scheduling::harness::configs::ConfigSpec;

fn cfg(name: &str) -> ConfigSpec {
    name.parse().expect("canonical config name")
}

#[test]
fn wire_round_trip_executes_identically() {
    let req = RunRequest::program(ProgramSpec::suite("hashjoin", 0xB5))
        .config(cfg("SpecSched_4_Filter"))
        .length(RunLength {
            warmup: 500,
            measure: 5_000,
        })
        .checked(true);
    let text = req.to_string();
    assert_eq!(
        text, "src=rv:hashjoin@0xb5 cfg=SpecSched_4_Filter len=w500m5000 check=1",
        "the canonical wire form is part of the protocol"
    );
    let parsed: RunRequest = text.parse().expect("own rendering parses");
    let direct = req.execute().expect("builder-built run");
    let viawire = parsed.execute().expect("wire-built run");
    assert_eq!(
        direct.stats, viawire.stats,
        "the wire must not change the simulation"
    );
}

#[test]
fn snapshot_capture_restore_is_stats_identical_mid_program() {
    let prog = ProgramSpec::suite("alloc", 3);
    let len = RunLength {
        warmup: 1_000,
        measure: 8_000,
    };
    let spec = cfg("SpecSched_4_Crit");

    let straight = RunRequest::program(prog.clone())
        .config(spec)
        .length(len)
        .execute()
        .expect("uninterrupted run");

    let captured = RunRequest::program(prog.clone())
        .config(spec)
        .length(len)
        .capture_warm()
        .execute()
        .expect("capturing run");
    assert_eq!(
        straight.stats, captured.stats,
        "capturing a snapshot must not perturb the run"
    );
    let snap = captured
        .snapshot
        .expect("capture_warm returns the snapshot");

    let resumed = RunRequest::program(prog)
        .config(spec)
        .length(RunLength {
            warmup: 0,
            measure: len.measure,
        })
        .from_snapshot(snap)
        .execute()
        .expect("resumed run");
    assert_eq!(
        straight.stats, resumed.stats,
        "resume from mid-program snapshot must be bit-identical"
    );
}

#[test]
fn chunked_deadline_path_is_equivalent() {
    let prog = ProgramSpec::suite("lz", 9);
    let len = RunLength {
        warmup: 500,
        measure: 6_000,
    };
    let plain = RunRequest::program(prog.clone())
        .config(cfg("SpecSched_4_Combined"))
        .length(len)
        .checked(true)
        .execute()
        .expect("one-shot run");
    // A generous deadline arms the between-chunk cancellation checks
    // without ever firing; the chunked path must be invisible in the
    // statistics.
    let chunked = RunRequest::program(prog)
        .config(cfg("SpecSched_4_Combined"))
        .length(len)
        .checked(true)
        .deadline_ms(600_000)
        .execute()
        .expect("deadline-armed run");
    assert_eq!(plain.stats, chunked.stats, "chunking changed the run");
}
