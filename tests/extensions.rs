//! Integration tests for the extension features built beyond the paper's
//! evaluated configuration: alternative replay schemes (§2.1),
//! bank-predicted shifting (§2.2), the QOLD criticality criterion, and
//! set-interleaved banking.

use speculative_scheduling::core::{RunLength, RunRequest};
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::{
    BankInterleaving, BankedL1dConfig, CritCriterion, ReplayScheme, ShiftPolicy,
};
use speculative_scheduling::workloads::kernels;

/// Test-local shim over the unified runner: these tests assert on the
/// statistics and treat any simulator error as a test failure.
fn run_kernel(
    cfg: speculative_scheduling::types::SimConfig,
    spec: speculative_scheduling::workloads::KernelSpec,
    len: RunLength,
) -> speculative_scheduling::types::SimStats {
    RunRequest::kernel(spec)
        .custom_config(cfg)
        .length(len)
        .execute()
        .expect("simulation runs")
        .stats
}

const LEN: RunLength = RunLength {
    warmup: 10_000,
    measure: 60_000,
};

fn base(delay: u64) -> speculative_scheduling::types::SimConfigBuilder {
    SimConfig::builder()
        .issue_to_execute_delay(delay)
        .sched_policy(SchedPolicyKind::AlwaysHit)
        .banked_l1d(true)
}

/// Selective replay squashes only the dependence chain, so the same
/// misspeculations cost far fewer replayed µ-ops than the Alpha squash.
#[test]
fn selective_replay_squashes_fewer_uops() {
    let squash = run_kernel(
        base(4).replay_scheme(ReplayScheme::Squash).build(),
        kernels::xalanc_like(1),
        LEN,
    );
    let selective = run_kernel(
        base(4).replay_scheme(ReplayScheme::Selective).build(),
        kernels::xalanc_like(1),
        LEN,
    );
    assert!(
        squash.replayed_miss > 10_000,
        "Always-Hit on xalanc must replay"
    );
    assert!(
        selective.replayed_miss * 3 < squash.replayed_miss,
        "selective replay must squash far fewer µ-ops: {} vs {}",
        selective.replayed_miss,
        squash.replayed_miss
    );
    assert!(
        selective.ipc() >= squash.ipc() * 0.98,
        "selective replay must not be slower: {:.3} vs {:.3}",
        selective.ipc(),
        squash.ipc()
    );
}

/// Refetch-style recovery is the costly strawman (§2.1: "clearly costly
/// from a performance standpoint"). On a memory-bound workload its extra
/// cost hides under DRAM latency, so the test uses a high-IPC
/// bank-conflict workload where re-executing the whole younger window
/// plus a frontend refill is devastating.
#[test]
fn refetch_recovery_is_costly() {
    let squash = run_kernel(
        base(4).replay_scheme(ReplayScheme::Squash).build(),
        kernels::crafty_like(1),
        LEN,
    );
    let refetch = run_kernel(
        base(4).replay_scheme(ReplayScheme::Refetch).build(),
        kernels::crafty_like(1),
        LEN,
    );
    assert!(
        refetch.ipc() < squash.ipc() * 0.9,
        "refetch must cost clearly more than a window squash: {:.3} vs {:.3}",
        refetch.ipc(),
        squash.ipc()
    );
}

/// The paper's mechanisms are replay-scheme agnostic: criticality gating
/// must cut replays under selective replay too.
#[test]
fn crit_mechanism_is_replay_scheme_agnostic() {
    for scheme in [ReplayScheme::Squash, ReplayScheme::Selective] {
        let plain = run_kernel(
            base(4).replay_scheme(scheme).build(),
            kernels::stream_all_miss(1),
            LEN,
        );
        let crit = run_kernel(
            base(4)
                .replay_scheme(scheme)
                .sched_policy(SchedPolicyKind::Criticality)
                .schedule_shifting(true)
                .build(),
            kernels::stream_all_miss(1),
            LEN,
        );
        assert!(
            crit.replayed_total() * 2 < plain.replayed_total().max(1),
            "{scheme:?}: criticality must halve replays ({} vs {})",
            crit.replayed_total(),
            plain.replayed_total()
        );
    }
}

/// Bank-predicted shifting eliminates conflicts on a stable conflict pair
/// (confident predictions) just like unconditional shifting.
#[test]
fn predicted_shifting_matches_always_on_stable_pairs() {
    let none = run_kernel(base(4).build(), kernels::crafty_like(1), LEN);
    let always = run_kernel(
        base(4).shift_policy(ShiftPolicy::Always).build(),
        kernels::crafty_like(1),
        LEN,
    );
    let predicted = run_kernel(
        base(4).shift_policy(ShiftPolicy::Predicted).build(),
        kernels::crafty_like(1),
        LEN,
    );
    assert!(none.replayed_bank > 10_000);
    let red_always = 1.0 - always.replayed_bank as f64 / none.replayed_bank as f64;
    let red_pred = 1.0 - predicted.replayed_bank as f64 / none.replayed_bank as f64;
    assert!(red_always > 0.7);
    assert!(
        red_pred > 0.6,
        "the pair's banks are stable, the predictor must catch them: {red_pred:.3}"
    );
}

/// On a pair of lock-step loads whose banks always differ (offset 8B:
/// bank delta 1), unconditional shifting taxes the second load's wakeup
/// every iteration while predicted shifting correctly never shifts.
#[test]
fn predicted_shifting_avoids_the_tax_on_conflict_free_pairs() {
    use speculative_scheduling::workloads::spec::{ri, BodyOp, BranchBehavior, KernelSpec};
    use speculative_scheduling::workloads::AddrPattern;
    let kernel = |seed| {
        let mut k = KernelSpec::new(
            "disjoint_bank_pair",
            vec![
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(2),
                    src1: ri(2),
                    src2: Some(ri(9)),
                },
                BodyOp::Load {
                    dst: ri(1),
                    addr_reg: ri(2),
                    pattern: 0,
                },
                BodyOp::Load {
                    dst: ri(3),
                    addr_reg: ri(2),
                    pattern: 1,
                },
                // consume both loads so the wakeup shift is on the
                // critical path
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(4),
                    src1: ri(1),
                    src2: Some(ri(3)),
                },
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(5),
                    src1: ri(4),
                    src2: Some(ri(5)),
                },
            ],
        );
        k.patterns = vec![
            AddrPattern::Stride {
                stride: 8,
                footprint: 8 << 10,
                phase: 0,
            },
            AddrPattern::Stride {
                stride: 8,
                footprint: 8 << 10,
                phase: 8,
            },
        ];
        k.loop_behavior = BranchBehavior::TakenEvery { period: 64 };
        k.seed = seed;
        k
    };
    let always = run_kernel(
        base(4).shift_policy(ShiftPolicy::Always).build(),
        kernel(1),
        LEN,
    );
    let predicted = run_kernel(
        base(4).shift_policy(ShiftPolicy::Predicted).build(),
        kernel(1),
        LEN,
    );
    assert_eq!(
        predicted.replayed_bank, 0,
        "banks always differ: no conflicts"
    );
    assert!(
        predicted.ipc() >= always.ipc(),
        "predicted shifting must not tax non-conflicting pairs: {:.4} vs {:.4}",
        predicted.ipc(),
        always.ipc()
    );
}

/// QOLD criticality works as an alternative criterion: replays still drop
/// substantially vs Always-Hit.
#[test]
fn qold_criterion_also_cuts_replays() {
    let plain = run_kernel(base(4).build(), kernels::stream_all_miss(1), LEN);
    let qold = run_kernel(
        base(4)
            .sched_policy(SchedPolicyKind::Criticality)
            .schedule_shifting(true)
            .crit_criterion(CritCriterion::IqOldest)
            .build(),
        kernels::stream_all_miss(1),
        LEN,
    );
    assert!(
        qold.replayed_total() * 2 < plain.replayed_total(),
        "QOLD must cut replays too: {} vs {}",
        qold.replayed_total(),
        plain.replayed_total()
    );
}

/// Set interleaving changes *which* pairs conflict. Two lock-step streams
/// 64 bytes apart share their quadword bits (same bank under word
/// interleaving → conflicts) but sit in adjacent sets (different banks
/// under set interleaving → none).
#[test]
fn set_interleaving_changes_conflict_pattern() {
    use speculative_scheduling::workloads::spec::{ri, BodyOp, BranchBehavior, KernelSpec};
    use speculative_scheduling::workloads::AddrPattern;
    let pair_kernel = |seed| {
        let mut k = KernelSpec::new(
            "adjacent_line_pair",
            vec![
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(2),
                    src1: ri(2),
                    src2: Some(ri(9)),
                },
                BodyOp::Load {
                    dst: ri(1),
                    addr_reg: ri(2),
                    pattern: 0,
                },
                BodyOp::Load {
                    dst: ri(3),
                    addr_reg: ri(2),
                    pattern: 1,
                },
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(4),
                    src1: ri(1),
                    src2: Some(ri(3)),
                },
            ],
        );
        k.patterns = vec![
            AddrPattern::Stride {
                stride: 8,
                footprint: 8 << 10,
                phase: 0,
            },
            AddrPattern::Stride {
                stride: 8,
                footprint: 8 << 10,
                phase: 64,
            },
        ];
        k.loop_behavior = BranchBehavior::TakenEvery { period: 64 };
        k.seed = seed;
        k
    };
    let word = run_kernel(base(4).build(), pair_kernel(1), LEN);
    let set = run_kernel(
        base(4)
            .l1d_banking(Some(BankedL1dConfig {
                interleaving: BankInterleaving::Set,
                ..Default::default()
            }))
            .build(),
        pair_kernel(1),
        LEN,
    );
    assert!(
        word.replayed_bank > 5_000,
        "64B-apart pair must conflict under word interleaving"
    );
    assert!(
        set.replayed_bank < word.replayed_bank / 4,
        "adjacent lines sit in different set-interleaved banks: {} vs {}",
        set.replayed_bank,
        word.replayed_bank
    );
}

/// The optional banked-PRF model (paper §4.2) introduces the third replay
/// cause; with the paper's monolithic-PRF assumption it never fires.
#[test]
fn prf_banking_creates_the_third_replay_cause() {
    use speculative_scheduling::types::PrfBankConfig;
    // A wide-ILP workload reading many registers per cycle.
    let monolithic = run_kernel(base(4).build(), kernels::crafty_like(1), LEN);
    assert_eq!(monolithic.replayed_prf, 0, "monolithic PRF cannot conflict");
    // 2 banks x 1 read port: heavily oversubscribed at 6-issue.
    let banked = run_kernel(
        base(4)
            .prf_banking(Some(PrfBankConfig {
                banks: 2,
                read_ports_per_bank: 1,
            }))
            .build(),
        kernels::crafty_like(1),
        LEN,
    );
    assert!(
        banked.replayed_prf > 1_000,
        "an oversubscribed banked PRF must replay: {}",
        banked.replayed_prf
    );
    assert!(
        banked.ipc() < monolithic.ipc(),
        "PRF conflicts must cost performance: {:.3} vs {:.3}",
        banked.ipc(),
        monolithic.ipc()
    );
}
