//! The `RunRequest` redesign contract:
//!
//! * **Round trip** — every request built from the wire-encodable
//!   builder surface survives `Display` → `FromStr` → `Display`
//!   unchanged, across a seeded sweep of the full option space.
//! * **Rejection** — library-only forms (`<custom>` configs, in-memory
//!   sources and snapshots), duplicate keys, and unknown keys are typed
//!   parse errors, never silent defaults.
//! * **Equivalence** — `RunRequest::execute` reproduces the deprecated
//!   free-function entry points byte-for-byte, so migrating callers can
//!   never change a result.

use speculative_scheduling::core::{FaultPlan, RunLength, RunRequest};
use speculative_scheduling::harness::configs::{self, ConfigSpec};
use speculative_scheduling::types::{SimStats, SplitMix64};
use speculative_scheduling::workloads::{kernels, KernelTrace};

/// Draws a uniform value in `0..n` (n ≤ 2^32 keeps the bias negligible).
fn pick(rng: &mut SplitMix64, n: u64) -> u64 {
    rng.next_u64() % n
}

/// A random request over the *encodable* builder surface: benchmark or
/// generated sources, named config specs, and every wire-visible option.
/// In-memory sources/snapshots and `<custom>` configs are library-only
/// by design and excluded.
fn random_request(rng: &mut SplitMix64, case: u64) -> RunRequest {
    let names = kernels::benchmark_names();
    let mut req = if pick(rng, 2) == 0 {
        let name = names[pick(rng, names.len() as u64) as usize];
        RunRequest::bench(name, rng.next_u64())
    } else {
        RunRequest::generated(rng.next_u64())
    };
    let variants = ConfigSpec::variants_at(1 + pick(rng, 6));
    req = req.config(variants[pick(rng, variants.len() as u64) as usize]);
    req = req.length(RunLength {
        warmup: pick(rng, 50_000),
        measure: 1 + pick(rng, 200_000),
    });
    match pick(rng, 4) {
        0 => req = req.capture_warm(),
        1 => req = req.from_snapshot_path(format!("warm/cell-{case}.snap")),
        _ => {}
    }
    if pick(rng, 4) == 0 {
        req = req.checked(true);
    }
    if pick(rng, 4) == 0 {
        // Round-trip only: these requests are never executed, so the
        // deadline just has to survive the wire, not fire.
        req = req.deadline_ms(1 + pick(rng, 600_000));
    }
    match pick(rng, 4) {
        0 => req = req.ring_trace(1 + pick(rng, 8_192) as usize),
        1 => {
            let lo = pick(rng, 100_000);
            let hi = lo + 1 + pick(rng, 100_000);
            req = req.window_trace(lo..hi);
        }
        _ => {}
    }
    if pick(rng, 3) == 0 {
        // Sequential, non-overlapping windows keep the plan valid.
        let mut plan = FaultPlan::new();
        let mut start = 1 + pick(rng, 1_000);
        for _ in 0..=pick(rng, 2) {
            let dur = 1 + pick(rng, 500);
            plan = match pick(rng, 3) {
                0 => plan.latency_spike(start, dur, 1 + pick(rng, 30)),
                1 => plan.bank_conflict_burst(start, dur, 1 + pick(rng, 10)),
                _ => plan.replay_storm(start, dur),
            };
            start += dur + 1 + pick(rng, 1_000);
        }
        req = req.faults(plan);
    }
    if pick(rng, 8) == 0 {
        req = req.seed_wakeup_bug();
    }
    if pick(rng, 5) == 0 {
        req = req.checkpoint_note(format!("cell-{case}"));
    }
    req
}

#[test]
fn display_from_str_round_trips_across_the_encodable_surface() {
    let mut rng = SplitMix64::new(0xB5B5_0007);
    for case in 0..600 {
        let req = random_request(&mut rng, case);
        let text = req.to_string();
        let parsed: RunRequest = text
            .parse()
            .unwrap_or_else(|e| panic!("case {case}: `{text}` failed to parse: {e}"));
        assert_eq!(
            parsed, req,
            "case {case}: `{text}` parsed to a different request"
        );
        assert_eq!(parsed.to_string(), text, "case {case}: re-encoding drifted");
    }
}

#[test]
fn library_only_and_malformed_forms_are_typed_parse_errors() {
    let bad = [
        // Library-only markers must never parse back.
        "src=<spec:fp_compute> cfg=SpecSched_4 len=w1m2",
        "src=<trace:loop> cfg=SpecSched_4 len=w1m2",
        "src=bench:fp_compute@0xb5 cfg=<custom> len=w1m2",
        "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=<unset>",
        "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 fork=<snapshot>",
        // Structural errors.
        "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 len=w3m4",
        "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 shiny=1",
        "src=gen:0x1 cfg=SpecSched_4",
        "cfg=SpecSched_4 len=w1m2",
        "src=gen:zzz cfg=SpecSched_4 len=w1m2",
        "src=bench:fp_compute cfg=SpecSched_4 len=w1m2",
        "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 trace=ring:0",
        "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 faults=spike@5x0+1",
        "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 deadline=0",
        "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 deadline=abc",
        "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 deadline=5 deadline=5",
        "src=bench:fp_compute@0xb5 cfg=Nonsense_9 len=w1m2",
        "not a request at all",
    ];
    for text in bad {
        let err = text
            .parse::<RunRequest>()
            .expect_err(&format!("`{text}` must be rejected"));
        // The typed error carries the offending input for diagnostics.
        assert_eq!(err.input, text);
        assert!(!err.reason.is_empty());
    }
}

const LEN: RunLength = RunLength {
    warmup: 1_000,
    measure: 8_000,
};

#[test]
#[allow(deprecated)]
fn execute_reproduces_try_run_kernel_checked_byte_identically() {
    for named in [configs::baseline(2), configs::spec_sched_combined(4)] {
        let spec = kernels::fp_compute(0xB5);
        let old = speculative_scheduling::core::try_run_kernel_checked(
            named.config.clone(),
            spec.clone(),
            LEN,
        )
        .expect("legacy entry point runs");
        let new: SimStats = RunRequest::kernel(spec)
            .custom_config(named.config.clone())
            .length(LEN)
            .checked(true)
            .execute()
            .expect("redesigned entry point runs")
            .stats;
        assert_eq!(old, new, "checked-run divergence on {}", named.name);
    }
}

#[test]
#[allow(deprecated)]
fn execute_reproduces_try_run_trace_from_snapshot_byte_identically() {
    let named = configs::spec_sched(4, true);
    let spec = kernels::mix_int(0xB5);
    let snap = speculative_scheduling::core::try_warm_up_trace(
        named.config.clone(),
        KernelTrace::new(spec.clone()),
        LEN.warmup,
    )
    .expect("warmup captures");
    let old = speculative_scheduling::core::try_run_trace_from_snapshot(
        named.config.clone(),
        KernelTrace::new(spec.clone()),
        &snap,
        LEN.measure,
        Some("pinning"),
    )
    .expect("legacy restore runs");
    let new: SimStats = RunRequest::persistent_source(KernelTrace::new(spec))
        .custom_config(named.config.clone())
        .length(RunLength {
            warmup: 0,
            measure: LEN.measure,
        })
        .from_snapshot(snap)
        .checkpoint_note("pinning")
        .execute()
        .expect("redesigned restore runs")
        .stats;
    assert_eq!(old, new, "snapshot-restore divergence");
}
