//! The `RunRequest` redesign contract:
//!
//! * **Round trip** — every request built from the wire-encodable
//!   builder surface survives `Display` → `FromStr` → `Display`
//!   unchanged, across a seeded sweep of the full option space.
//! * **Rejection** — library-only forms (`<custom>` configs, in-memory
//!   sources and snapshots), duplicate keys, and unknown keys are typed
//!   parse errors, never silent defaults. Library-only `<…>` markers in
//!   particular carry the marker itself in
//!   [`ParseRequestError::library_only`], and converting such an error
//!   into [`SimError`] names the marker.

use speculative_scheduling::core::{FaultPlan, RunLength, RunRequest};
use speculative_scheduling::frontend::ProgramSpec;
use speculative_scheduling::harness::configs::ConfigSpec;
use speculative_scheduling::types::{SimError, SplitMix64};
use speculative_scheduling::workloads::kernels;

/// Draws a uniform value in `0..n` (n ≤ 2^32 keeps the bias negligible).
fn pick(rng: &mut SplitMix64, n: u64) -> u64 {
    rng.next_u64() % n
}

/// A random request over the *encodable* builder surface: benchmark,
/// generated, or real-program sources, named config specs, and every
/// wire-visible option. In-memory sources/snapshots and `<custom>`
/// configs are library-only by design and excluded.
fn random_request(rng: &mut SplitMix64, case: u64) -> RunRequest {
    let names = kernels::benchmark_names();
    let progs = speculative_scheduling::frontend::programs::names();
    let mut req = match pick(rng, 3) {
        0 => {
            let name = names[pick(rng, names.len() as u64) as usize];
            RunRequest::bench(name, rng.next_u64())
        }
        1 => RunRequest::generated(rng.next_u64()),
        _ => {
            let name = progs[pick(rng, progs.len() as u64) as usize];
            RunRequest::program(ProgramSpec::suite(name, rng.next_u64() as u32))
        }
    };
    let variants = ConfigSpec::variants_at(1 + pick(rng, 6));
    req = req.config(variants[pick(rng, variants.len() as u64) as usize]);
    req = req.length(RunLength {
        warmup: pick(rng, 50_000),
        measure: 1 + pick(rng, 200_000),
    });
    match pick(rng, 4) {
        0 => req = req.capture_warm(),
        1 => req = req.from_snapshot_path(format!("warm/cell-{case}.snap")),
        _ => {}
    }
    if pick(rng, 4) == 0 {
        req = req.checked(true);
    }
    if pick(rng, 4) == 0 {
        // Round-trip only: these requests are never executed, so the
        // deadline just has to survive the wire, not fire.
        req = req.deadline_ms(1 + pick(rng, 600_000));
    }
    match pick(rng, 4) {
        0 => req = req.ring_trace(1 + pick(rng, 8_192) as usize),
        1 => {
            let lo = pick(rng, 100_000);
            let hi = lo + 1 + pick(rng, 100_000);
            req = req.window_trace(lo..hi);
        }
        _ => {}
    }
    if pick(rng, 3) == 0 {
        // Sequential, non-overlapping windows keep the plan valid.
        let mut plan = FaultPlan::new();
        let mut start = 1 + pick(rng, 1_000);
        for _ in 0..=pick(rng, 2) {
            let dur = 1 + pick(rng, 500);
            plan = match pick(rng, 3) {
                0 => plan.latency_spike(start, dur, 1 + pick(rng, 30)),
                1 => plan.bank_conflict_burst(start, dur, 1 + pick(rng, 10)),
                _ => plan.replay_storm(start, dur),
            };
            start += dur + 1 + pick(rng, 1_000);
        }
        req = req.faults(plan);
    }
    if pick(rng, 8) == 0 {
        req = req.seed_wakeup_bug();
    }
    if pick(rng, 5) == 0 {
        req = req.checkpoint_note(format!("cell-{case}"));
    }
    req
}

#[test]
fn display_from_str_round_trips_across_the_encodable_surface() {
    let mut rng = SplitMix64::new(0xB5B5_0007);
    for case in 0..600 {
        let req = random_request(&mut rng, case);
        let text = req.to_string();
        let parsed: RunRequest = text
            .parse()
            .unwrap_or_else(|e| panic!("case {case}: `{text}` failed to parse: {e}"));
        assert_eq!(
            parsed, req,
            "case {case}: `{text}` parsed to a different request"
        );
        assert_eq!(parsed.to_string(), text, "case {case}: re-encoding drifted");
    }
}

#[test]
fn library_only_and_malformed_forms_are_typed_parse_errors() {
    // (input, the `<…>` marker the typed error must carry; None for
    // ordinary syntax errors.)
    let bad: [(&str, Option<&str>); 18] = [
        // Library-only markers must never parse back — and the parse
        // error must say *which* marker, typed, not just a string.
        (
            "src=<spec:fp_compute> cfg=SpecSched_4 len=w1m2",
            Some("<spec:fp_compute>"),
        ),
        (
            "src=<trace:loop> cfg=SpecSched_4 len=w1m2",
            Some("<trace:loop>"),
        ),
        (
            "src=bench:fp_compute@0xb5 cfg=<custom> len=w1m2",
            Some("<custom>"),
        ),
        (
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=<unset>",
            Some("<unset>"),
        ),
        (
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 fork=<snapshot>",
            Some("<snapshot>"),
        ),
        // Structural errors carry no marker.
        (
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 len=w3m4",
            None,
        ),
        (
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 shiny=1",
            None,
        ),
        ("src=gen:0x1 cfg=SpecSched_4", None),
        ("cfg=SpecSched_4 len=w1m2", None),
        ("src=gen:zzz cfg=SpecSched_4 len=w1m2", None),
        ("src=bench:fp_compute cfg=SpecSched_4 len=w1m2", None),
        ("src=rv: cfg=SpecSched_4 len=w1m2", None),
        (
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 trace=ring:0",
            None,
        ),
        (
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 faults=spike@5x0+1",
            None,
        ),
        (
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 deadline=0",
            None,
        ),
        (
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1m2 deadline=5 deadline=5",
            None,
        ),
        ("src=bench:fp_compute@0xb5 cfg=Nonsense_9 len=w1m2", None),
        ("not a request at all", None),
    ];
    for (text, marker) in bad {
        let err = text
            .parse::<RunRequest>()
            .expect_err(&format!("`{text}` must be rejected"));
        // The typed error carries the offending input for diagnostics.
        assert_eq!(err.input, text);
        assert!(!err.reason.is_empty());
        assert_eq!(
            err.library_only.as_deref(),
            marker,
            "`{text}`: wrong library_only classification"
        );
        // Crossing into `SimError` keeps the distinction: marker errors
        // become a `ConfigInvalid` that names the marker.
        let sim: SimError = err.into();
        let msg = sim.to_string();
        match marker {
            Some(m) => {
                assert!(msg.contains(m), "`{msg}` must name `{m}`");
                assert!(msg.contains("library-only"), "`{msg}`");
            }
            None => assert!(!msg.contains("library-only"), "`{msg}`"),
        }
    }
}
