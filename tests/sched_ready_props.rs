//! Seeded-loop property tests for the event-driven ready queue
//! ([`SchedQueue`]): a randomized sliding window of µ-ops is driven
//! through every parking surface (ready bitmap, wake heap, store-waiter
//! lists) and cross-checked each step against a naive reference model —
//! the moral equivalent of the legacy full scan. Plain deterministic
//! loops over the vendored [`Xoshiro256`], per the workspace convention
//! (no proptest).
//!
//! Invariants enforced every step:
//! * **exact selection** — `collect_ready` returns precisely the model's
//!   ready set, oldest first (so the issue stage selects exactly what a
//!   scan would);
//! * **no stranding** — once time passes a parked entry's wake cycle, or
//!   its blocking store fires, draining the queue surfaces it (a woken
//!   µ-op can never be lost);
//! * **epoch discipline** — records parked before a re-registration or
//!   flush (epoch bump) never resurface.

use std::collections::BTreeMap;

use speculative_scheduling::core::SchedQueue;
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::rng::Xoshiro256;
use speculative_scheduling::types::Cycle;

/// What the reference model believes a µ-op is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Registered but blocked on something with no parked record (the
    /// pipeline's "a source wakes at NEVER" case: woken later by an
    /// explicit re-registration).
    Idle,
    /// Selectable now.
    Ready,
    /// Parked in the wake heap until the given cycle.
    Timer(Cycle),
    /// Parked on the store with the given sequence number.
    Store(u64),
}

/// The reference model: a plain map the test scans like the legacy
/// scheduler scanned the ROB.
struct Model {
    /// Active window entries: seq → (current epoch, state).
    entries: BTreeMap<u64, (u32, State)>,
    /// Oldest active seq (window base).
    low: u64,
    /// Next seq to admit.
    next: u64,
}

const SPAN: usize = 64;

impl Model {
    fn new() -> Self {
        Model {
            entries: BTreeMap::new(),
            low: 0,
            next: 0,
        }
    }

    fn ready_seqs(&self) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|(_, (_, st))| *st == State::Ready)
            .map(|(&s, _)| s)
            .collect()
    }
}

/// Picks a random parked state for a (re-)registered µ-op and applies it
/// to both the queue and the model.
fn register(q: &mut SchedQueue, m: &mut Model, rng: &mut Xoshiro256, seq: u64, now: Cycle) {
    let epoch = q.invalidate(SeqNum::new(seq));
    let state = match rng.next_below(4) {
        0 => {
            q.mark_ready(SeqNum::new(seq));
            State::Ready
        }
        1 => {
            let at = now + 1 + rng.next_below(40);
            q.park_until(at, SeqNum::new(seq), epoch);
            State::Timer(at)
        }
        2 if seq > m.low => {
            // park on a random *older* active µ-op standing in for the
            // predicted store producer
            let store = m.low + rng.next_below(seq - m.low);
            q.park_on_store(SeqNum::new(store), SeqNum::new(seq), epoch);
            State::Store(store)
        }
        _ => State::Idle,
    };
    m.entries.insert(seq, (epoch, state));
}

/// Releases every current waiter of `store` in both queue and model,
/// checking each released record against the model.
fn fire_store(q: &mut SchedQueue, m: &mut Model, store: u64) {
    q.fire_store(SeqNum::new(store));
    while let Some(w) = q.pop_store_woken() {
        let (_, st) = m
            .entries
            .get_mut(&w.get())
            .unwrap_or_else(|| panic!("store {store} woke dead waiter {w}"));
        assert_eq!(
            *st,
            State::Store(store),
            "store {store} woke {w}, which the model has in state {st:?}"
        );
        *st = State::Ready;
        q.mark_ready(w);
    }
    // No stranding: every current-epoch waiter of this store must have
    // been released above.
    for (&s, &(_, st)) in &m.entries {
        assert_ne!(
            st,
            State::Store(store),
            "µ-op {s} stranded on store {store} after it fired"
        );
    }
}

/// Drains the wake heap at `now`, checking each pop against the model,
/// then asserts nothing due is left behind.
fn drain_due(q: &mut SchedQueue, m: &mut Model, now: Cycle) {
    while let Some(s) = q.pop_due(now) {
        let (_, st) = m
            .entries
            .get_mut(&s.get())
            .unwrap_or_else(|| panic!("heap woke dead µ-op {s}"));
        match *st {
            State::Timer(at) => assert!(at <= now, "µ-op {s} woke early ({at:?} > {now:?})"),
            other => panic!("heap woke {s}, which the model has in state {other:?}"),
        }
        *st = State::Ready;
        q.mark_ready(s);
    }
    for (&s, &(_, st)) in &m.entries {
        if let State::Timer(at) = st {
            assert!(
                at > now,
                "µ-op {s} stranded in the heap: due at {at:?}, now {now:?}"
            );
        }
    }
}

/// The full scan the legacy scheduler would do: the queue's ready set
/// must match it exactly, oldest first.
fn cross_check(q: &SchedQueue, m: &Model, scratch: &mut Vec<SeqNum>) {
    let expect = m.ready_seqs();
    assert_eq!(q.ready_len(), expect.len(), "ready count diverged");
    scratch.clear();
    q.collect_ready(SeqNum::new(m.low), SPAN, scratch);
    let got: Vec<u64> = scratch.iter().map(|s| s.get()).collect();
    assert_eq!(got, expect, "ready set or age order diverged from scan");
    for (&s, &(_, st)) in &m.entries {
        assert_eq!(
            q.is_ready(SeqNum::new(s)),
            st == State::Ready,
            "is_ready({s}) disagrees with model state {st:?}"
        );
    }
}

#[test]
fn ready_queue_matches_full_scan_model() {
    for seed in 0..6u64 {
        let mut rng = Xoshiro256::seed_from_u64(0x5EED_0B17 ^ (seed * 0x9E37_79B9));
        let mut q = SchedQueue::new(SPAN);
        let mut m = Model::new();
        let mut now = Cycle::new(0);
        let mut scratch = Vec::new();

        for step in 0..8_000u64 {
            match rng.next_below(100) {
                // Admit a new µ-op at the young end of the window.
                0..=29 => {
                    if m.next - m.low < SPAN as u64 {
                        let seq = m.next;
                        m.next += 1;
                        register(&mut q, &mut m, &mut rng, seq, now);
                    }
                }
                // Retire the oldest µ-op. Like commit, fire its store
                // waiters first so nothing can strand on a dead seq.
                30..=49 => {
                    if !m.entries.is_empty() {
                        let seq = m.low;
                        fire_store(&mut q, &mut m, seq);
                        q.invalidate(SeqNum::new(seq));
                        m.entries.remove(&seq);
                        m.low += 1;
                    }
                }
                // Re-register a random live µ-op (the pipeline does this
                // on squash, replay, wake-time change, flush-reacquire).
                50..=69 => {
                    if !m.entries.is_empty() {
                        let keys: Vec<u64> = m.entries.keys().copied().collect();
                        let seq = keys[rng.next_below(keys.len() as u64) as usize];
                        register(&mut q, &mut m, &mut rng, seq, now);
                    }
                }
                // A store executes: release its waiters.
                70..=79 => {
                    if !m.entries.is_empty() {
                        let keys: Vec<u64> = m.entries.keys().copied().collect();
                        let store = keys[rng.next_below(keys.len() as u64) as usize];
                        fire_store(&mut q, &mut m, store);
                    }
                }
                // Time advances: due timers must all surface.
                _ => {
                    now += rng.next_below(12);
                    drain_due(&mut q, &mut m, now);
                }
            }
            if step % 16 == 0 {
                cross_check(&q, &m, &mut scratch);
            }
        }
        // Final full drain + check: fast-forward past every timer and
        // fire every possible store; the whole window must end Ready or
        // Idle with the queue still in exact agreement.
        now += 10_000;
        drain_due(&mut q, &mut m, now);
        let keys: Vec<u64> = m.entries.keys().copied().collect();
        for s in keys {
            fire_store(&mut q, &mut m, s);
        }
        for (&s, &(_, st)) in &m.entries {
            assert!(
                matches!(st, State::Ready | State::Idle),
                "µ-op {s} still parked ({st:?}) after global wake"
            );
        }
        cross_check(&q, &m, &mut scratch);
    }
}

/// Epoch discipline in isolation: a parked record from before an epoch
/// bump must never resurface, even when the same sequence slot is reused
/// by a later µ-op (ring-geometry collision).
#[test]
fn stale_records_never_resurface_across_slot_reuse() {
    let mut rng = Xoshiro256::seed_from_u64(0xDEAD_E70C);
    let mut q = SchedQueue::new(SPAN);
    for round in 0..2_000u64 {
        // Two generations occupying the same slot, SPAN apart.
        let old = rng.next_below(1 << 20);
        let new = old + SPAN as u64;
        let e_old = q.invalidate(SeqNum::new(old));
        let at = Cycle::new(round * 100 + 10);
        q.park_until(at, SeqNum::new(old), e_old);
        q.park_on_store(SeqNum::new(old.wrapping_sub(1)), SeqNum::new(old), e_old);
        // The slot is flushed and reused: the pipeline invalidates on
        // flush, then the new occupant registers.
        let e_new = q.invalidate(SeqNum::new(new));
        assert!(!q.epoch_matches(SeqNum::new(old), e_old), "round {round}");
        q.park_until(at + 5, SeqNum::new(new), e_new);
        // Only the new occupant may surface from either surface.
        q.fire_store(SeqNum::new(old.wrapping_sub(1)));
        assert_eq!(
            q.pop_store_woken(),
            None,
            "round {round}: stale store waiter"
        );
        assert_eq!(q.pop_due(at), None, "round {round}: stale timer");
        assert_eq!(
            q.pop_due(at + 5),
            Some(SeqNum::new(new)),
            "round {round}: fresh timer lost"
        );
        q.invalidate(SeqNum::new(new));
    }
}
