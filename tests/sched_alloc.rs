//! Proof that the simulator's per-cycle hot loop is allocation-free in
//! steady state: after a warmup long enough for every pool, queue, and
//! scratch buffer to reach its high-water mark, ticking the pipeline must
//! perform **zero** heap allocations. This is the enforcement half of the
//! "de-allocate the hot loop" work — the pools (`VecPool`), scratch
//! buffers, and clone elimination in `ss-core`/`ss-mem` only stay honest
//! if a counting allocator watches them.
//!
//! This file intentionally holds a single `#[test]`: the counting
//! `#[global_allocator]` is process-global, and a sibling test allocating
//! on another thread would corrupt the measurement. Integration tests are
//! separate crates, so the facade's `#![forbid(unsafe_code)]` does not
//! extend here; the `unsafe` below is the bare minimum a `GlobalAlloc`
//! shim requires.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use speculative_scheduling::core::Simulator;
use speculative_scheduling::prelude::*;
use speculative_scheduling::workloads::{kernels, KernelTrace};

/// Allocations (alloc + realloc calls) since process start.
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic and
// touches no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Ticks the pipeline under a replay-heavy configuration and asserts the
/// steady-state window allocates nothing. The kernel mixes loads that
/// miss, dependent ALU chains, and branches, so the window exercises
/// issue, replay, recovery, squash, bank arbitration, and prefetching —
/// every path the de-allocation work touched.
#[test]
fn steady_state_tick_does_not_allocate() {
    const WARMUP: u64 = 50_000;
    const MEASURE: u64 = 20_000;

    let cfg = SimConfig::builder()
        .issue_to_execute_delay(4)
        .sched_policy(SchedPolicyKind::AlwaysHit)
        .banked_l1d(true)
        .build();
    let mut sim = Simulator::new(cfg, KernelTrace::new(kernels::mix_int(7)));

    // Warm every structure to its high-water mark: ROB/IQ queues, the
    // wake heap, pools, cache/MSHR state, the bank-arbiter queue.
    for _ in 0..WARMUP {
        sim.tick();
    }

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..MEASURE {
        sim.tick();
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    let stats = sim.stats();
    let replays = stats.replayed_miss + stats.replayed_bank + stats.replayed_prf;
    assert!(
        stats.committed_uops > 0 && replays > 0,
        "window did no interesting work (committed {}, replays {replays}) — \
         the zero-alloc claim would be vacuous",
        stats.committed_uops,
    );
    assert_eq!(
        after - before,
        0,
        "steady-state hot loop allocated {} times over {MEASURE} cycles",
        after - before
    );
}
