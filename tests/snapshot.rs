//! Checkpoint/restore guarantees, end to end:
//!
//! * **Stats identity** — a run restored from a warm snapshot produces
//!   bit-identical warmup-corrected statistics to one that never
//!   stopped, across the policy matrix × kernels × fault plans.
//! * **Byte stability** — capture → restore → capture reproduces the
//!   identical snapshot bytes for every configuration family the
//!   harness names.
//! * **Typed failure** — a bumped format version is
//!   `SnapshotVersionMismatch`; seeded corruption is always a typed
//!   error, never a panic, never a silent wrong result.

use speculative_scheduling::core::{load_snapshot, FaultPlan, RunLength, RunRequest, Simulator};
use speculative_scheduling::harness::configs::{self, NamedConfig};
use speculative_scheduling::harness::snapfuzz;
use speculative_scheduling::snapshot::{
    write_atomic, Snapshot, SnapshotError, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC,
};
use speculative_scheduling::types::{SimError, SimStats};
use speculative_scheduling::workloads::{kernels, KernelSpec, KernelTrace};

const WARMUP: u64 = 1_500;
const MEASURE: u64 = 6_000;

/// Warm up `spec` on `cfg` and hand back the captured warm state.
fn warm_up(cfg: &NamedConfig, spec: KernelSpec, warmup: u64) -> Snapshot {
    RunRequest::kernel(spec)
        .custom_config(cfg.config.clone())
        .length(RunLength { warmup, measure: 0 })
        .capture_warm()
        .execute()
        .expect("warms")
        .snapshot
        .expect("capture produces a snapshot")
}

/// A fault plan whose windows overlap the measurement phase, so the
/// restored run must reproduce fault injection exactly.
fn spike_plan() -> FaultPlan {
    FaultPlan::new()
        .latency_spike(800, 600, 9)
        .bank_conflict_burst(2_500, 400, 3)
}

/// The uninterrupted reference: warm up and measure in one simulator.
fn fresh_run(cfg: &NamedConfig, spec: KernelSpec, plan: Option<FaultPlan>) -> SimStats {
    let mut sim = Simulator::new(cfg.config.clone(), KernelTrace::new(spec));
    if let Some(p) = plan {
        sim.set_fault_plan(p).expect("valid plan");
    }
    let warm = sim.try_run_committed(WARMUP).expect("warmup runs");
    let end = sim.try_run_committed(MEASURE).expect("measure runs");
    end.delta(&warm)
}

/// The checkpointed path: warm up, capture, restore into a *new*
/// simulator, measure. The fault plan travels inside the snapshot.
fn warm_restored_run(cfg: &NamedConfig, spec: KernelSpec, plan: Option<FaultPlan>) -> SimStats {
    let mut sim = Simulator::new(cfg.config.clone(), KernelTrace::new(spec.clone()));
    if let Some(p) = plan {
        sim.set_fault_plan(p).expect("valid plan");
    }
    sim.try_run_committed(WARMUP).expect("warmup runs");
    let snap = sim.capture();
    drop(sim);
    let mut restored = Simulator::new(cfg.config.clone(), KernelTrace::new(spec));
    restored.restore(&snap).expect("restore succeeds");
    let warm = restored.stats();
    let end = restored.try_run_committed(MEASURE).expect("measure runs");
    end.delta(&warm)
}

#[test]
fn warm_restore_is_stat_identical_across_policies_kernels_and_faults() {
    let matrix: Vec<NamedConfig> = vec![
        configs::baseline(2),
        configs::spec_sched(4, true),
        configs::spec_sched_combined(4),
        configs::spec_sched_crit(4),
        configs::with_replay_scheme(
            4,
            speculative_scheduling::types::ReplayScheme::Selective,
            false,
        ),
    ];
    type KernelCtor = fn(u64) -> KernelSpec;
    let kernels: [(&str, KernelCtor); 3] = [
        ("mix_int", kernels::mix_int),
        ("fp_compute", kernels::fp_compute),
        ("branchy_int", kernels::branchy_int),
    ];
    for cfg in &matrix {
        for (kname, build) in &kernels {
            for plan in [None, Some(spike_plan())] {
                let fresh = fresh_run(cfg, build(0xB5), plan.clone());
                let warm = warm_restored_run(cfg, build(0xB5), plan);
                assert_eq!(fresh, warm, "restored run diverged: {} × {kname}", cfg.name);
            }
        }
    }
}

#[test]
fn capture_restore_capture_is_byte_identical_for_every_config_family() {
    for spec in configs::ConfigSpec::variants_at(2) {
        let named = spec.named();
        let mut sim = Simulator::new(named.config.clone(), KernelTrace::new(kernels::mix_int(1)));
        sim.try_run_committed(1_200).expect("runs");
        let first = sim.capture();
        let mut restored =
            Simulator::new(named.config.clone(), KernelTrace::new(kernels::mix_int(1)));
        restored.restore(&first).expect("restore succeeds");
        let second = restored.capture();
        assert_eq!(
            first.to_bytes(),
            second.to_bytes(),
            "capture→restore→capture drifted for {}",
            named.name
        );
    }
}

#[test]
fn bumped_format_version_is_a_typed_version_mismatch() {
    let cfg = configs::baseline(2);
    let snap = warm_up(&cfg, kernels::mix_int(1), 500);
    let mut bytes = snap.to_bytes();
    // Header: `ss-snapshot v1 ...` — bump the version digit in place.
    let vpos = SNAPSHOT_MAGIC.len() + 2;
    assert_eq!(bytes[vpos], b'0' + SNAPSHOT_FORMAT_VERSION as u8);
    bytes[vpos] = b'0' + SNAPSHOT_FORMAT_VERSION as u8 + 1;
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::VersionMismatch { found, expected }) => {
            assert_eq!(found, SNAPSHOT_FORMAT_VERSION + 1);
            assert_eq!(expected, SNAPSHOT_FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    // Through the file layer the same failure is the typed SimError.
    let dir = std::env::temp_dir().join(format!("ss-snapver-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("future.snap");
    write_atomic(&path, &snap).expect("writes");
    let mut on_disk = std::fs::read(&path).unwrap();
    on_disk[vpos] = b'0' + SNAPSHOT_FORMAT_VERSION as u8 + 1;
    std::fs::write(&path, on_disk).unwrap();
    match load_snapshot(&path) {
        Err(SimError::SnapshotVersionMismatch {
            found, expected, ..
        }) => {
            assert_eq!(found, SNAPSHOT_FORMAT_VERSION + 1);
            assert_eq!(expected, SNAPSHOT_FORMAT_VERSION);
        }
        other => panic!("expected SimError::SnapshotVersionMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_under_the_wrong_config_is_a_typed_corrupt_error() {
    let a = configs::baseline(2);
    let b = configs::spec_sched(4, true);
    let snap = warm_up(&a, kernels::mix_int(1), 500);
    let err = RunRequest::kernel(kernels::mix_int(1))
        .custom_config(b.config.clone())
        .length(RunLength {
            warmup: 0,
            measure: 100,
        })
        .from_snapshot(snap)
        .execute()
        .expect_err("config fingerprint must gate the restore");
    assert!(
        matches!(err, SimError::SnapshotCorrupt { .. }),
        "expected SnapshotCorrupt, got {err}"
    );
}

#[test]
fn seeded_corruption_campaign_yields_only_typed_errors() {
    let stats = snapfuzz::run_campaign(0xB5B5_0001, 80);
    assert!(
        stats.clean(),
        "corruption escaped typed handling: {stats:?}"
    );
    assert!(stats.container_rejected > 40, "{stats:?}");
}
