//! Integration tests asserting the paper's core phenomena end-to-end,
//! across all crates: workloads → predictors → memory → pipeline →
//! statistics.

use speculative_scheduling::core::{RunLength, RunRequest};
use speculative_scheduling::prelude::*;
use speculative_scheduling::workloads::kernels;

/// Test-local shim over the unified runner: these tests assert on the
/// statistics and treat any simulator error as a test failure.
fn run_kernel(
    cfg: speculative_scheduling::types::SimConfig,
    spec: speculative_scheduling::workloads::KernelSpec,
    len: RunLength,
) -> speculative_scheduling::types::SimStats {
    RunRequest::kernel(spec)
        .custom_config(cfg)
        .length(len)
        .execute()
        .expect("simulation runs")
        .stats
}

fn cfg(delay: u64, policy: SchedPolicyKind, banked: bool, shifting: bool) -> SimConfig {
    SimConfig::builder()
        .issue_to_execute_delay(delay)
        .sched_policy(policy)
        .banked_l1d(banked)
        .schedule_shifting(shifting)
        .build()
}

const LEN: RunLength = RunLength {
    warmup: 10_000,
    measure: 60_000,
};

/// Figure 3: conservative scheduling on a load-to-use-critical chain
/// loses exactly the issue-to-execute delay per link.
#[test]
fn conservative_scheduling_pays_delay_per_load_use() {
    let ipc = |d| {
        run_kernel(
            cfg(d, SchedPolicyKind::Conservative, false, false),
            kernels::list_walk(1),
            LEN,
        )
        .ipc()
    };
    let base = ipc(0);
    for (d, expected_frac) in [(2u64, 4.0 / 6.0), (4, 4.0 / 8.0), (6, 4.0 / 10.0)] {
        let frac = ipc(d) / base;
        assert!(
            (frac - expected_frac).abs() < 0.05,
            "delay {d}: measured {frac:.3}, expected ~{expected_frac:.3}"
        );
    }
}

/// Figures 1–2: speculative scheduling hides the issue-to-execute delay
/// on hitting loads, with essentially no replays.
#[test]
fn speculative_scheduling_hides_the_delay() {
    let base = run_kernel(
        cfg(0, SchedPolicyKind::Conservative, false, false),
        kernels::list_walk(1),
        LEN,
    );
    let spec = run_kernel(
        cfg(6, SchedPolicyKind::AlwaysHit, false, false),
        kernels::list_walk(1),
        LEN,
    );
    assert!(
        spec.ipc() / base.ipc() > 0.97,
        "speculative at delay 6 should match delay 0: {:.3} vs {:.3}",
        spec.ipc(),
        base.ipc()
    );
    assert!(
        spec.replayed_total() * 100 < spec.committed_uops,
        "L1-resident walk must replay < 1% of µ-ops, got {}",
        spec.replayed_total()
    );
}

/// §4.2 + §5.1: a banked L1D creates bank-conflict replays on same-bank
/// load pairs; Schedule Shifting removes most of them and recovers
/// performance.
#[test]
fn schedule_shifting_removes_bank_conflict_replays() {
    let banked = run_kernel(
        cfg(4, SchedPolicyKind::AlwaysHit, true, false),
        kernels::crafty_like(1),
        LEN,
    );
    let ported = run_kernel(
        cfg(4, SchedPolicyKind::AlwaysHit, false, false),
        kernels::crafty_like(1),
        LEN,
    );
    let shifted = run_kernel(
        cfg(4, SchedPolicyKind::AlwaysHit, true, true),
        kernels::crafty_like(1),
        LEN,
    );

    assert!(
        banked.replayed_bank > 10_000,
        "conflict pair must replay, got {}",
        banked.replayed_bank
    );
    assert_eq!(
        ported.replayed_bank, 0,
        "dual-ported L1D has no bank conflicts"
    );
    assert!(
        banked.ipc() < ported.ipc() * 0.8,
        "bank conflicts must cost performance"
    );

    let reduction = 1.0 - shifted.replayed_bank as f64 / banked.replayed_bank as f64;
    assert!(
        reduction > 0.7,
        "paper: −74.8% RpldBank; measured {reduction:.3}"
    );
    assert!(
        shifted.ipc() > banked.ipc() * 1.1,
        "shifting must recover performance: {:.3} vs {:.3}",
        shifted.ipc(),
        banked.ipc()
    );
}

/// §5.2: hit/miss filtering slashes L1-miss replays on an all-missing
/// stream without losing performance.
#[test]
fn filter_cuts_miss_replays_on_streams() {
    let always = run_kernel(
        cfg(4, SchedPolicyKind::AlwaysHit, true, false),
        kernels::stream_all_miss(1),
        LEN,
    );
    let filter = run_kernel(
        cfg(4, SchedPolicyKind::FilterAndCounter, true, false),
        kernels::stream_all_miss(1),
        LEN,
    );
    assert!(
        always.replayed_miss > 5_000,
        "all-miss stream must replay under Always-Hit"
    );
    let reduction = 1.0 - filter.replayed_miss as f64 / always.replayed_miss as f64;
    assert!(
        reduction > 0.6,
        "paper: ≥65% RpldMiss reduction; measured {reduction:.3}"
    );
    assert!(
        filter.ipc() > always.ipc() * 0.95,
        "filtering must not cost performance: {:.3} vs {:.3}",
        filter.ipc(),
        always.ipc()
    );
}

/// §5.3: the combined criticality policy removes the vast majority of all
/// replays while keeping Always-Hit-level performance.
#[test]
fn criticality_policy_removes_most_replays() {
    let mut total_always = 0u64;
    let mut total_crit = 0u64;
    let mut ipc_ratio = Vec::new();
    for k in [
        kernels::stream_all_miss as fn(u64) -> _,
        kernels::xalanc_like,
        kernels::crafty_like,
    ] {
        let a = run_kernel(cfg(4, SchedPolicyKind::AlwaysHit, true, false), k(1), LEN);
        let c = run_kernel(cfg(4, SchedPolicyKind::Criticality, true, true), k(1), LEN);
        total_always += a.replayed_total();
        total_crit += c.replayed_total();
        ipc_ratio.push(c.ipc() / a.ipc());
    }
    let reduction = 1.0 - total_crit as f64 / total_always as f64;
    assert!(
        reduction > 0.8,
        "paper: −90.6% replays; measured {reduction:.3}"
    );
    assert!(
        ipc_ratio.iter().all(|r| *r > 0.95),
        "criticality must not lose performance: {ipc_ratio:?}"
    );
}

/// The hit/miss behaviour counters drive the policies: sure-hit loads
/// speculate, sure-miss loads do not.
#[test]
fn policy_decisions_follow_load_behaviour() {
    let hits = run_kernel(
        cfg(4, SchedPolicyKind::FilterAndCounter, true, false),
        kernels::fp_compute(1),
        LEN,
    );
    assert!(hits.loads_spec_woken > 90 * hits.loads_conservative.max(1) / 100);

    let misses = run_kernel(
        cfg(4, SchedPolicyKind::FilterAndCounter, true, false),
        kernels::stream_all_miss(1),
        LEN,
    );
    assert!(
        misses.loads_conservative > misses.loads_spec_woken,
        "an all-missing stream must be scheduled conservatively: {} vs {}",
        misses.loads_conservative,
        misses.loads_spec_woken
    );
}

/// Store Sets: the RMW kernel violates memory ordering at first, then the
/// predictor learns and violations stop growing. Measured from cycle zero
/// (warmup would hide the initial violations).
#[test]
fn store_sets_learn_rmw_hazards() {
    let s = run_kernel(
        cfg(4, SchedPolicyKind::AlwaysHit, true, false),
        kernels::rmw_hazard(1),
        RunLength {
            warmup: 0,
            measure: 60_000,
        },
    );
    assert!(
        s.memdep_violations > 0,
        "the RMW kernel must trip at least one violation"
    );
    // After learning, violations must be rare relative to the number of
    // aliasing pairs (~1 per 8 µ-ops).
    let pairs = s.committed_uops / 8;
    assert!(
        s.memdep_violations < pairs / 5,
        "Store Sets must keep violations rare: {} of ~{} pairs",
        s.memdep_violations,
        pairs
    );
}

/// Determinism: identical configuration and seed ⇒ identical statistics.
#[test]
fn simulation_is_deterministic() {
    let a = run_kernel(
        cfg(4, SchedPolicyKind::Criticality, true, true),
        kernels::mix_int(9),
        LEN,
    );
    let b = run_kernel(
        cfg(4, SchedPolicyKind::Criticality, true, true),
        kernels::mix_int(9),
        LEN,
    );
    assert_eq!(a, b);
}

/// Bookkeeping invariants that must hold for any cumulative run (a
/// warmup delta can commit µ-ops whose first issue predates the window,
/// so these are checked from cycle zero).
#[test]
fn statistics_are_internally_consistent() {
    for k in [
        kernels::xalanc_like as fn(u64) -> _,
        kernels::branchy_int,
        kernels::ptr_chase_big,
    ] {
        let s = run_kernel(
            cfg(4, SchedPolicyKind::AlwaysHit, true, false),
            k(1),
            RunLength {
                warmup: 0,
                measure: 60_000,
            },
        );
        assert!(s.issued_total >= s.unique_issued, "re-issues only add");
        assert!(
            s.unique_issued >= s.committed_uops,
            "everything committed must have issued"
        );
        assert!(s.l1d.hits + s.l1d.misses == s.l1d.accesses);
        assert!(s.cond_mispredicts <= s.cond_branches);
        assert!(
            s.issued_total - s.unique_issued >= s.recovery_buffer_replays,
            "recovery replays are a subset of re-issues"
        );
    }
}
