//! Soak test for the `experiments serve` simulation service: concurrent
//! clients over a live Unix-domain socket, mixed priority classes,
//! saturation.
//!
//! * **Byte identity** — every `done` line the server emits carries the
//!   exact statistics an offline [`RunRequest::execute`] produces for
//!   the same request text.
//! * **Priority** — under a saturated worker pool, interactive requests
//!   overtake queued bulk work: FIFO order within each class, and
//!   interactive p99 queue latency strictly below bulk p99.
//! * **Control** — cancellation interrupts a running cell with the
//!   typed [`SimError::Cancelled`] rendering, and admission control
//!   answers `overloaded` instead of queueing without bound.

use speculative_scheduling::core::RunRequest;
use speculative_scheduling::harness::serve::{stats_from_wire, ServeOptions, Server};
use speculative_scheduling::types::Priority;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A line-oriented client connection.
struct Client {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(socket: &Path) -> Client {
        let stream = UnixStream::connect(socket).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("send");
        self.stream.write_all(b"\n").expect("send");
        self.stream.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    /// Reads until the terminal reply for `id`, returning it. Progress
    /// lines (for any request on this connection) are skipped.
    fn terminal(&mut self, id: &str) -> String {
        loop {
            let line = self.recv();
            if line.starts_with("progress ") {
                continue;
            }
            assert!(
                line.split(' ').nth(1) == Some(id),
                "reply for a different request: {line}"
            );
            return line;
        }
    }
}

/// Runs one request to completion and returns the `done` payload.
fn run_to_done(c: &mut Client, id: &str, prio: &str, req: &str) -> String {
    c.send(&format!("run {id} prio={prio} {req}"));
    let ack = c.terminal(id);
    assert!(
        ack == format!("ack {id} queued prio={prio}") || ack == format!("ack {id} cached"),
        "unexpected ack: {ack}"
    );
    if ack.ends_with("cached") {
        let done = c.terminal(id);
        return done
            .strip_prefix(&format!("done {id} "))
            .unwrap_or_else(|| panic!("expected done, got {done}"))
            .to_string();
    }
    let done = c.terminal(id);
    done.strip_prefix(&format!("done {id} "))
        .unwrap_or_else(|| panic!("expected done, got {done}"))
        .to_string()
}

fn p99(samples: &[u64]) -> u64 {
    assert!(!samples.is_empty());
    let mut s = samples.to_vec();
    s.sort_unstable();
    s[(s.len() - 1) * 99 / 100]
}

#[test]
fn saturated_mixed_workload_is_byte_identical_and_prioritized() {
    let dir = scratch("mixed");
    let server = Server::start(ServeOptions {
        socket: dir.join("serve.sock"),
        jobs: 1, // serialized execution makes the FIFO evidence exact
        queue_depth: 64,
        ..ServeOptions::default()
    })
    .expect("server starts");
    let socket = server.socket().to_path_buf();

    // Plug the lone worker with a long bulk run so every request below
    // is admitted while the worker is busy and measures *queue* latency
    // under saturation. The plug is long relative to admission (~100ms
    // of simulation vs ~ms of socket writes).
    let mut plug = Client::connect(&socket);
    plug.send("run plug prio=bulk src=bench:stream_hi_ilp@0x1 cfg=Baseline_2 len=w0m600000");
    assert_eq!(plug.recv(), "ack plug queued prio=bulk");
    // The first progress line proves the worker is busy.
    assert!(plug.recv().starts_with("progress plug "));

    // Mixed fleet: 9 bulk + 6 interactive client threads, one distinct
    // cell each, all admitted while the worker is plugged.
    let benches = ["fp_compute", "mix_int", "branchy_int"];
    let results: Arc<Mutex<HashMap<String, String>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut threads = Vec::new();
    for t in 0..9 {
        let socket = socket.clone();
        let results = Arc::clone(&results);
        let bench = benches[t % benches.len()].to_string();
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(&socket);
            let req = format!("src=bench:{bench}@0x{t} cfg=SpecSched_4 len=w200m12000");
            let done = run_to_done(&mut c, &format!("b{t}"), "bulk", &req);
            results.lock().unwrap().insert(req, done);
        }));
    }
    for t in 0..6 {
        let socket = socket.clone();
        let results = Arc::clone(&results);
        let bench = benches[t % benches.len()].to_string();
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(&socket);
            let req = format!("src=bench:{bench}@0xa{t} cfg=Baseline_2 len=w100m1500");
            let done = run_to_done(&mut c, &format!("i{t}"), "interactive", &req);
            results.lock().unwrap().insert(req, done);
        }));
    }
    for t in threads {
        t.join().expect("client thread");
    }
    let plug_done = plug.terminal("plug");
    assert!(plug_done.starts_with("done plug "), "{plug_done}");

    // Byte identity: each served result equals the offline reference.
    let results = results.lock().unwrap();
    assert_eq!(results.len(), 15);
    for (req, served) in results.iter() {
        let offline = req
            .parse::<RunRequest>()
            .expect("wire text parses")
            .execute()
            .expect("offline run")
            .stats;
        let served_stats = stats_from_wire(served).expect("served stats parse");
        assert_eq!(
            served_stats, offline,
            "served result diverged from offline for `{req}`"
        );
    }

    // FIFO within each priority class: admission order = execution order.
    let log = server.exec_log();
    assert_eq!(log.len(), 16, "plug + 15 soak cells executed");
    for class in [Priority::Interactive, Priority::Normal, Priority::Bulk] {
        let seqs: Vec<u64> = log
            .iter()
            .filter(|(p, _)| *p == class)
            .map(|&(_, s)| s)
            .collect();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "{} executed out of admission order: {seqs:?}",
            class.tag()
        );
    }

    // Priority inversion check: every interactive cell ran before every
    // queued bulk cell (the plug, seq 0, was already running).
    let first_bulk = log
        .iter()
        .position(|&(p, s)| p == Priority::Bulk && s > 0)
        .expect("bulk cells ran");
    let last_interactive = log
        .iter()
        .rposition(|&(p, _)| p == Priority::Interactive)
        .expect("interactive cells ran");
    assert!(
        last_interactive < first_bulk,
        "interactive work did not overtake queued bulk work: {log:?}"
    );

    // And the latency distributions agree: interactive p99 < bulk p99.
    let lat = server.latency_us();
    let interactive = &lat[Priority::Interactive.index()];
    let bulk = &lat[Priority::Bulk.index()];
    assert_eq!(interactive.len(), 6);
    assert_eq!(bulk.len(), 10);
    assert!(
        p99(interactive) < p99(bulk),
        "interactive p99 {}µs !< bulk p99 {}µs",
        p99(interactive),
        p99(bulk)
    );

    assert_eq!(server.completed(), 16);
    assert_eq!(server.rejected(), 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancellation_interrupts_and_admission_control_rejects() {
    let dir = scratch("control");
    let server = Server::start(ServeOptions {
        socket: dir.join("serve.sock"),
        jobs: 1,
        queue_depth: 2,
        ..ServeOptions::default()
    })
    .expect("server starts");
    let socket = server.socket().to_path_buf();
    let mut c = Client::connect(&socket);

    // A long bulk cell occupies the worker...
    c.send("run victim prio=bulk src=bench:stream_hi_ilp@0x9 cfg=SpecSched_4 len=w0m800000");
    assert_eq!(c.recv(), "ack victim queued prio=bulk");
    assert!(c.recv().starts_with("progress victim "));

    // ...two more fill the bounded queue to its limit...
    c.send("run q1 prio=bulk src=bench:fp_compute@0x91 cfg=SpecSched_4 len=w0m5000");
    c.send("run q2 prio=bulk src=bench:fp_compute@0x92 cfg=SpecSched_4 len=w0m5000");
    assert_eq!(c.terminal("q1"), "ack q1 queued prio=bulk");
    assert_eq!(c.terminal("q2"), "ack q2 queued prio=bulk");

    // ...so the next request is refused, typed and immediate — no hang.
    c.send("run extra prio=interactive src=bench:mix_int@0x93 cfg=SpecSched_4 len=w0m1000");
    assert_eq!(c.terminal("extra"), "overloaded extra depth=2 limit=2");

    // Cancelling the running cell stops it mid-measurement with the
    // typed error; the committed count proves it was genuinely running.
    c.send("cancel victim");
    let mut cancelled = None;
    for _ in 0..64 {
        let line = c.recv();
        if line.starts_with("progress ") || line == "ack victim cancel" {
            continue;
        }
        cancelled = Some(line);
        break;
    }
    let cancelled = cancelled.expect("terminal reply for victim");
    assert!(
        cancelled.starts_with("err victim run cancelled after "),
        "expected typed cancellation, got {cancelled}"
    );
    let committed: u64 = cancelled
        .split(' ')
        .nth(5)
        .and_then(|w| w.parse().ok())
        .expect("committed count in message");
    assert!(
        committed > 0 && committed < 800_000,
        "cancel landed mid-run, not at an edge: {committed}"
    );

    // The queued cells still complete normally afterwards.
    assert!(c.terminal("q1").starts_with("done q1 "));
    assert!(c.terminal("q2").starts_with("done q2 "));
    assert_eq!(server.rejected(), 1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
