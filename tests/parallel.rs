//! The parallel execution engine's contract: sharding the experiment
//! matrix across workers changes nothing observable — not the per-cell
//! statistics, not the report text, and not PR 1's fault isolation.

use speculative_scheduling::core::RunLength;
use speculative_scheduling::harness::{configs, exec, experiments, prewarm, Session};
use speculative_scheduling::types::exec::{scoped_workers, WorkQueue};
use speculative_scheduling::types::{CancelFlag, SimError};
use speculative_scheduling::workloads::{Benchmark, KernelSpec, BENCHMARKS};

/// Tiny run: exercises the engine code paths, not the statistics.
const TINY: RunLength = RunLength {
    warmup: 150,
    measure: 1_000,
};

/// A `--jobs 4` prewarm followed by report generation produces exactly
/// the per-cell statistics and report text of a sequential run.
#[test]
fn parallel_prewarm_matches_sequential() {
    let e = experiments::find("fig5").expect("fig5 is registered");

    let mut seq = Session::new(TINY, None);
    let seq_report = (e.run)(&mut seq).expect("sequential fig5");

    let mut par = Session::new(TINY, None);
    // Lanes enabled (the binary's default): batched execution must be
    // as invisible as the worker count.
    let stats = prewarm(&mut par, &(e.plan)(), 4, 4, &CancelFlag::new(), false);
    assert!(stats.cells > 0, "prewarm should have fresh cells to run");
    assert_eq!(stats.failures, 0);
    let simulated_after_prewarm = par.simulated;
    let par_report = (e.run)(&mut par).expect("parallel fig5");
    assert_eq!(
        par.simulated, simulated_after_prewarm,
        "the regenerator should be served entirely from the warm cache"
    );

    assert_eq!(
        seq_report.to_text(),
        par_report.to_text(),
        "report text must be byte-identical regardless of --jobs"
    );
    for (cfg, bench) in exec::matrix(&(e.plan)()) {
        let a = seq.try_run(&cfg, bench).expect("sequential cell");
        let b = par.try_run(&cfg, bench).expect("parallel cell");
        assert_eq!(
            a, b,
            "per-cell stats differ for {} on {}",
            cfg.name, bench.name
        );
    }
}

/// Every registered experiment's prewarm plan covers every cell the
/// regenerator asks for: after a prewarm, the regenerator must not
/// simulate anything in-line. (An under-reporting plan would only lose
/// parallelism — this test keeps it from drifting at all.)
#[test]
fn every_plan_covers_its_experiment() {
    // One session for the whole registry: experiments share many cells,
    // and a warm in-memory cache doesn't weaken the assertion — anything
    // a plan missed would still be simulated in-line by the regenerator.
    let mut sess = Session::new(TINY, None);
    for e in experiments::EXPERIMENTS {
        prewarm(&mut sess, &(e.plan)(), 2, 2, &CancelFlag::new(), false);
        let before = sess.simulated;
        (e.run)(&mut sess).expect(e.id);
        assert_eq!(
            sess.simulated, before,
            "experiment {} simulated cells outside its plan",
            e.id
        );
    }
}

fn panicking_kernel(_seed: u64) -> KernelSpec {
    panic!("injected kernel panic")
}

/// A benchmark whose kernel construction panics — the worst-case cell.
static PANICKY: Benchmark = Benchmark {
    name: "panicky",
    paper_analogue: "-",
    build: panicking_kernel,
};

/// A panicking cell under parallel execution becomes a [`CellFailure`]
/// in the merged session; sibling cells on other workers complete
/// normally (PR 1's fault isolation survives the worker pool).
#[test]
fn panicking_cell_does_not_poison_parallel_siblings() {
    let sess = Session::new(TINY, None);
    let cfg = configs::spec_sched(4, true);
    let cells: [&Benchmark; 4] = [&PANICKY, &BENCHMARKS[0], &BENCHMARKS[1], &BENCHMARKS[2]];
    let queue = WorkQueue::new(cells.len());
    let workers = scoped_workers(4, |_| {
        let mut local = sess.fork_worker();
        while let Some(i) = queue.take() {
            let _ = local.try_run(&cfg, cells[i]);
        }
        local
    });
    let mut sess = sess;
    for w in workers {
        sess.merge(w);
    }
    sess.sort_failures();

    assert_eq!(sess.failures.len(), 1, "exactly the injected cell fails");
    assert_eq!(sess.failures[0].bench, "panicky");
    assert!(
        matches!(sess.failures[0].error, SimError::Panicked(_)),
        "panic should surface as SimError::Panicked, got {:?}",
        sess.failures[0].error
    );
    for b in &cells[1..] {
        assert!(
            sess.try_run(&cfg, b).is_ok(),
            "sibling {} should have completed normally",
            b.name
        );
    }
}
