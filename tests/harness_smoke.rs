//! End-to-end smoke test of the experiment harness: every regenerator
//! must produce a well-formed report at miniature run length (covering
//! the full configuration matrix and the report plumbing).

use speculative_scheduling::core::RunLength;
use speculative_scheduling::harness::{experiments, Session};

/// Tiny run: exercises the harness code paths, not the statistics.
fn session() -> Session {
    Session::new(
        RunLength {
            warmup: 200,
            measure: 1_500,
        },
        None,
    )
}

#[test]
fn every_experiment_produces_a_report() {
    let mut sess = session();
    let reports = [
        experiments::table2(&mut sess).expect("table2"),
        experiments::fig3(&mut sess).expect("fig3"),
        experiments::fig5(&mut sess).expect("fig5"),
        experiments::headline(&mut sess).expect("headline"),
    ];
    for r in &reports {
        assert!(!r.tables.is_empty(), "{}: tables expected", r.id);
        let text = r.to_text();
        assert!(text.contains(&format!("==== {} ====", r.id)));
        // every benchmark row appears in the first table of figure reports
        if r.id == "fig3" || r.id == "fig5" {
            assert!(text.contains("crafty_like"));
            assert!(text.contains("gmean"));
        }
    }
    assert!(sess.simulated > 0);
}

#[test]
fn csvs_are_written_per_table() {
    let mut sess = session();
    let r = experiments::table2(&mut sess).expect("table2");
    let dir = std::env::temp_dir().join(format!("ss-csv-test-{}", std::process::id()));
    r.write_csvs(&dir).expect("csv write");
    let entries: Vec<_> = std::fs::read_dir(&dir).expect("dir").collect();
    assert_eq!(entries.len(), r.tables.len());
    let csv = std::fs::read_to_string(dir.join("table2_0.csv")).expect("csv");
    assert!(csv.lines().count() > 20, "one row per benchmark");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn session_reuses_results_across_experiments() {
    let mut sess = session();
    let _ = experiments::fig5(&mut sess).expect("fig5");
    let after_fig5 = sess.simulated;
    // fig8 shares Baseline_0 and SpecSched_4 with fig5
    let _ = experiments::fig8(&mut sess).expect("fig8");
    let fig8_new = sess.simulated - after_fig5;
    // fig8 adds only the Combined and Crit configurations (2 × suite)
    assert!(
        fig8_new <= 2 * 20,
        "fig8 must reuse fig5's shared configurations, ran {fig8_new}"
    );
}
