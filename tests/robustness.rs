//! Fault-tolerance coverage: structured deadlock errors, the periodic
//! invariant checker, and fault-injected replay storms with graceful
//! degradation. These exercise the `try_*` Result APIs end to end — no
//! test here relies on catching a panic.

use speculative_scheduling::core::{FaultPlan, RunLength, RunRequest, Simulator};
use speculative_scheduling::prelude::*;
use speculative_scheduling::types::{DegradeConfig, SimError};
use speculative_scheduling::workloads::{kernels, KernelTrace};

/// Test-local shim over the unified runner, preserving the fallible
/// signature these tests assert error taxonomy through.
fn try_run_kernel(
    cfg: speculative_scheduling::types::SimConfig,
    spec: speculative_scheduling::workloads::KernelSpec,
    len: RunLength,
) -> Result<speculative_scheduling::types::SimStats, speculative_scheduling::types::SimError> {
    RunRequest::kernel(spec)
        .custom_config(cfg)
        .length(len)
        .execute()
        .map(|o| o.stats)
}

/// A watchdog shorter than the pipeline fill latency fires before the
/// first commit can land, and the starvation surfaces as a structured
/// `Err` — not a panic — with a populated diagnostic report.
#[test]
fn starved_pipeline_returns_deadlock_err() {
    let cfg = SimConfig::builder()
        .issue_to_execute_delay(4)
        .watchdog_cycles(3)
        .build();
    let err = try_run_kernel(cfg, kernels::ptr_chase_big(1), RunLength::SMOKE)
        .expect_err("a 3-cycle watchdog must trip during pipeline fill");
    match err {
        SimError::Deadlock(report) => {
            assert_eq!(report.watchdog_cycles, 3);
            assert!(
                !report.detail.is_empty(),
                "report carries head-of-ROB diagnostics"
            );
        }
        other => panic!("expected SimError::Deadlock, got {other}"),
    }
}

/// With a sane watchdog the same workloads complete, so the tiny-watchdog
/// failure above is the watchdog's doing, not the workload's.
#[test]
fn default_watchdog_does_not_fire_on_healthy_runs() {
    let cfg = SimConfig::builder().issue_to_execute_delay(4).build();
    let len = RunLength {
        warmup: 1_000,
        measure: 10_000,
    };
    let s = try_run_kernel(cfg, kernels::ptr_chase_big(1), len).expect("healthy run");
    assert!(s.ipc() > 0.0);
}

/// The periodic invariant checker (ROB/queue occupancy, register
/// conservation, recovery-buffer consistency) stays silent across the
/// configuration matrix — every policy, banking mode, and delay.
#[test]
fn invariant_checker_is_silent_across_config_matrix() {
    let len = RunLength {
        warmup: 0,
        measure: 6_000,
    };
    let policies = [
        SchedPolicyKind::Conservative,
        SchedPolicyKind::AlwaysHit,
        SchedPolicyKind::GlobalCounter,
        SchedPolicyKind::FilterAndCounter,
        SchedPolicyKind::FilterNoSilence,
        SchedPolicyKind::Criticality,
    ];
    for policy in policies {
        for banked in [false, true] {
            for delay in [0u64, 4] {
                let cfg = SimConfig::builder()
                    .issue_to_execute_delay(delay)
                    .sched_policy(policy)
                    .banked_l1d(banked)
                    .invariant_check_interval(256)
                    .build();
                for k in [
                    kernels::crafty_like as fn(u64) -> _,
                    kernels::stream_all_miss,
                ] {
                    try_run_kernel(cfg.clone(), k(1), len)
                        .unwrap_or_else(|e| panic!("{policy:?}/banked={banked}/d={delay}: {e}"));
                }
            }
        }
    }
}

/// The checker can also be invoked directly at an arbitrary mid-run point.
#[test]
fn invariant_checker_passes_mid_flight() {
    let cfg = SimConfig::builder().issue_to_execute_delay(4).build();
    let mut sim = Simulator::new(cfg, KernelTrace::new(kernels::crafty_like(7)));
    for committed in [100u64, 500, 2_000] {
        sim.try_run_committed(committed).expect("run segment");
        sim.check_invariants().expect("invariants hold mid-flight");
    }
}

/// A fault-injected replay storm trips the degradation detector: the
/// simulator falls back to conservative wakeup for a bounded window,
/// records the episode in `SimStats`, and the run still completes.
#[test]
fn replay_storm_triggers_graceful_degradation() {
    let cfg = SimConfig::builder()
        .issue_to_execute_delay(4)
        .sched_policy(SchedPolicyKind::AlwaysHit)
        .degrade(Some(DegradeConfig {
            window_cycles: 500,
            replay_threshold: 20,
            duration_cycles: 2_000,
        }))
        .build();
    let mut sim = Simulator::new(cfg, KernelTrace::new(kernels::stream_hi_ilp(1)));
    sim.set_fault_plan(FaultPlan::new().replay_storm(1_000, 4_000))
        .expect("valid plan");
    let stats = sim
        .try_run_committed(60_000)
        .expect("degraded run completes");
    assert!(
        stats.faults_injected > 0,
        "the fault window perturbed loads"
    );
    assert!(stats.degrade_entries > 0, "the storm tripped the detector");
    assert!(stats.degrade_cycles > 0, "conservative fallback was active");
    assert!(
        stats.committed_uops >= 60_000,
        "forward progress despite the storm"
    );
}

/// Without a degradation policy configured, the same fault plan is
/// weathered the slow way: replays spike but nothing degrades.
#[test]
fn fault_plan_without_degrade_policy_just_replays() {
    let cfg = SimConfig::builder()
        .issue_to_execute_delay(4)
        .sched_policy(SchedPolicyKind::AlwaysHit)
        .build();
    let mut sim = Simulator::new(cfg, KernelTrace::new(kernels::stream_hi_ilp(1)));
    sim.set_fault_plan(FaultPlan::new().replay_storm(1_000, 4_000))
        .expect("valid plan");
    let stats = sim.try_run_committed(30_000).expect("run completes");
    assert!(stats.faults_injected > 0);
    assert_eq!(stats.degrade_entries, 0);
    assert_eq!(stats.degrade_cycles, 0);
}

/// Invalid configurations surface as `ConfigInvalid`, not panics, through
/// the same `try_*` entry point the harness uses.
#[test]
fn invalid_config_is_a_structured_error() {
    let cfg = SimConfig::builder().watchdog_cycles(0).try_build();
    assert!(matches!(cfg, Err(SimError::ConfigInvalid { .. })));
}
