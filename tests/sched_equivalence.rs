//! Differential proof that the event-driven ready-queue scheduler is
//! observably identical to the legacy per-cycle O(ROB) scan it replaced:
//! for the same configuration and workload, the two paths must produce
//! **byte-identical** [`SimStats`] — same cycle count, same issue/replay
//! counters, same predictor training, everything. The equivalence
//! argument (why the incrementally-maintained ready set selects exactly
//! the µ-ops the scan would) lives in DESIGN.md "Scheduler data
//! structures"; these tests are the enforcement.

use speculative_scheduling::core::{FaultPlan, RunLength, RunRequest, Simulator};
use speculative_scheduling::harness::configs::ConfigSpec;
use speculative_scheduling::harness::fuzz::FuzzCell;
use speculative_scheduling::prelude::*;
use speculative_scheduling::workloads::{kernels, KernelTrace};

/// Test-local shim over the unified runner, preserving the fallible
/// signature these tests assert error taxonomy through.
fn try_run_kernel(
    cfg: speculative_scheduling::types::SimConfig,
    spec: speculative_scheduling::workloads::KernelSpec,
    len: RunLength,
) -> Result<speculative_scheduling::types::SimStats, speculative_scheduling::types::SimError> {
    RunRequest::kernel(spec)
        .custom_config(cfg)
        .length(len)
        .execute()
        .map(|o| o.stats)
}

/// Runs the same kernel under both scheduler implementations and
/// asserts identical statistics.
fn assert_equivalent(
    cfg: &SimConfig,
    spec: speculative_scheduling::workloads::KernelSpec,
    len: RunLength,
    what: &str,
) {
    let mut event = cfg.clone();
    event.legacy_scan = false;
    let mut legacy = cfg.clone();
    legacy.legacy_scan = true;
    let a = try_run_kernel(event, spec.clone(), len)
        .unwrap_or_else(|e| panic!("{what}: event-driven run failed: {e}"));
    let b = try_run_kernel(legacy, spec, len)
        .unwrap_or_else(|e| panic!("{what}: legacy-scan run failed: {e}"));
    assert_eq!(a, b, "{what}: schedulers diverged");
}

/// Every configuration the harness's experiments name, at the paper's
/// endpoint delays, on a replay-heavy kernel: the full policy matrix
/// (wakeup policies, replay schemes, banking, shifting, PRF banking,
/// criticality) must be bit-equivalent between the two schedulers.
#[test]
fn policy_matrix_is_byte_identical() {
    let len = RunLength {
        warmup: 500,
        measure: 6_000,
    };
    for delay in [0u64, 4] {
        for spec in ConfigSpec::variants_at(delay) {
            let named = spec.named();
            assert_equivalent(
                &named.config,
                kernels::mix_int(3),
                len,
                &format!("{} (d{delay})", named.name),
            );
        }
    }
}

/// Contrasting workloads at the sweet-spot delay: memory-bound,
/// dependency-chained, branchy, and store-forwarding-heavy kernels all
/// stress different scheduler event paths (tag broadcast, timer
/// parking, store-dependence waiters, squash/flush invalidation).
#[test]
fn kernel_sweep_is_byte_identical() {
    let len = RunLength {
        warmup: 1_000,
        measure: 12_000,
    };
    let cfg = SimConfig::builder()
        .issue_to_execute_delay(4)
        .sched_policy(SchedPolicyKind::AlwaysHit)
        .banked_l1d(true)
        .build();
    for (name, spec) in [
        ("dep_chain_l2", kernels::dep_chain_l2(1)),
        ("ptr_chase_big", kernels::ptr_chase_big(1)),
        ("mix_int", kernels::mix_int(1)),
        ("crafty_like", kernels::crafty_like(1)),
        ("stream_all_miss", kernels::stream_all_miss(1)),
    ] {
        assert_equivalent(&cfg, spec, len, name);
    }
}

/// Every injected-fault kind: fault windows perturb load latencies and
/// force replay storms mid-run, which exercises squash re-registration
/// and the recovery-buffer paths under the nastiest timing.
#[test]
fn fault_kinds_are_byte_identical() {
    let plans: [(&str, FaultPlan); 3] = [
        (
            "latency-spike",
            FaultPlan::new().latency_spike(2_000, 1_500, 40),
        ),
        (
            "bank-conflict-burst",
            FaultPlan::new().bank_conflict_burst(2_000, 1_500, 6),
        ),
        ("replay-storm", FaultPlan::new().replay_storm(2_000, 1_500)),
    ];
    for (name, plan) in plans {
        let base = SimConfig::builder()
            .issue_to_execute_delay(4)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(true)
            .build();
        let mut stats = [SimStats::default(), SimStats::default()];
        for (i, legacy) in [false, true].into_iter().enumerate() {
            let mut cfg = base.clone();
            cfg.legacy_scan = legacy;
            let mut sim = Simulator::new(cfg, KernelTrace::new(kernels::mix_int(5)));
            sim.set_fault_plan(plan.clone())
                .unwrap_or_else(|e| panic!("{name}: bad plan: {e}"));
            sim.try_run_committed(15_000)
                .unwrap_or_else(|e| panic!("{name}: run failed (legacy={legacy}): {e}"));
            stats[i] = sim.stats();
        }
        assert_eq!(stats[0], stats[1], "{name}: schedulers diverged");
        assert!(
            stats[0].faults_injected > 0,
            "{name}: fault window never fired — test proves nothing"
        );
    }
}

/// 32 seeded fuzz cells (random machine shape × generated kernel ×
/// fault windows, PR-1 seeded-loop convention): the schedulers must
/// stay byte-identical across the whole randomized space. A cell whose
/// run ends in a structured error (e.g. the pre-existing IQ-reacquire
/// overshoot tripping the periodic invariant checker under an extreme
/// fault plan) still counts as equivalent only if *both* schedulers
/// produce the identical error at the identical point.
#[test]
fn fuzz_cells_are_byte_identical() {
    let mut clean = 0u32;
    for seed in 0..32u64 {
        let cell = FuzzCell::from_seed(0xEC0_5EED ^ (seed * 0x9E37_79B9), 4_000, false);
        let base = cell.config().unwrap_or_else(|e| panic!("cell {seed}: {e}"));
        let mut outcomes: [Option<(Result<(), String>, SimStats)>; 2] = [None, None];
        for (i, legacy) in [false, true].into_iter().enumerate() {
            let mut cfg = base.clone();
            cfg.legacy_scan = legacy;
            let mut sim = Simulator::new(cfg, KernelTrace::new(cell.kernel()));
            sim.set_fault_plan(cell.fault_plan())
                .unwrap_or_else(|e| panic!("cell {seed}: bad plan: {e}"));
            let outcome = sim
                .try_run_committed(cell.run)
                .map(|_| ())
                .map_err(|e| e.to_string());
            outcomes[i] = Some((outcome, sim.stats()));
        }
        let [Some(event), Some(legacy)] = outcomes else {
            unreachable!()
        };
        assert_eq!(
            event,
            legacy,
            "cell {seed} ({}): schedulers diverged",
            cell.cell_key()
        );
        clean += u32::from(event.0.is_ok());
    }
    assert!(
        clean >= 24,
        "only {clean}/32 cells ran clean — the campaign is degenerate"
    );
}
