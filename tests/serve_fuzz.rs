//! Seeded protocol fuzz against a live `experiments serve` socket.
//!
//! Mutants of valid protocol lines — bit flips, truncations, byte
//! inserts, duplicated/swapped tokens, oversized lines, raw binary,
//! and spliced hybrids — are thrown at the server. The contract:
//!
//! * every reply the server writes is a line of the typed protocol
//!   grammar (malformed input earns an `err …`, never silence),
//! * a connection is only ever closed *after* a typed refusal
//!   (oversized or non-UTF-8 lines) or a clean `pong`,
//! * the server neither panics nor hangs: a fresh `ping` round-trips
//!   after the whole campaign, and a clean run still produces results
//!   byte-identical to the offline reference.

use speculative_scheduling::core::RunRequest;
use speculative_scheduling::harness::serve::{stats_from_wire, ServeOptions, Server};
use speculative_scheduling::types::SplitMix64;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss-fuzz-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Seed lines every mutation starts from. Run lengths are tiny
/// (`w10m100`) so mutants that stay parseable execute in microseconds.
const CORPUS: &[&str] = &[
    "ping",
    "stats",
    "health",
    "cancel ghost",
    "run m1 src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w10m100",
    "run m2 prio=interactive src=bench:mix_int@0x7 cfg=Baseline_2 len=w10m100",
    "run m3 prio=bulk src=gen:0x12 cfg=SpecSched_4_Crit len=w10m100 check=1",
];

/// One seeded mutant: raw bytes, possibly non-UTF-8, no trailing newline.
fn mutate(rng: &mut SplitMix64) -> Vec<u8> {
    let base = CORPUS[(rng.next_u64() % CORPUS.len() as u64) as usize]
        .as_bytes()
        .to_vec();
    match rng.next_u64() % 8 {
        // Bit flip at a random position.
        0 => {
            let mut b = base;
            let i = (rng.next_u64() % b.len() as u64) as usize;
            b[i] ^= 1 << (rng.next_u64() % 8);
            b
        }
        // Truncate mid-token.
        1 => {
            let mut b = base;
            b.truncate((rng.next_u64() % b.len() as u64) as usize);
            b
        }
        // Insert one random byte.
        2 => {
            let mut b = base;
            let i = (rng.next_u64() % (b.len() as u64 + 1)) as usize;
            b.insert(i, (rng.next_u64() % 256) as u8);
            b
        }
        // Duplicate a random whitespace token (duplicate-key attack).
        3 => {
            let s = String::from_utf8(base).expect("corpus is UTF-8");
            let toks: Vec<&str> = s.split(' ').collect();
            let dup = toks[(rng.next_u64() % toks.len() as u64) as usize];
            format!("{s} {dup}").into_bytes()
        }
        // Swap two tokens.
        4 => {
            let s = String::from_utf8(base).expect("corpus is UTF-8");
            let mut toks: Vec<&str> = s.split(' ').collect();
            let i = (rng.next_u64() % toks.len() as u64) as usize;
            let j = (rng.next_u64() % toks.len() as u64) as usize;
            toks.swap(i, j);
            toks.join(" ").into_bytes()
        }
        // Blow straight through MAX_LINE_BYTES.
        5 => {
            let mut b = base;
            b.extend(std::iter::repeat_n(b'x', 100 * 1024));
            b
        }
        // Raw binary garbage, deliberately including non-UTF-8.
        6 => {
            let n = 1 + (rng.next_u64() % 64) as usize;
            (0..n).map(|_| (rng.next_u64() % 256) as u8).collect()
        }
        // Splice two corpus lines at random offsets.
        _ => {
            let other = CORPUS[(rng.next_u64() % CORPUS.len() as u64) as usize].as_bytes();
            let cut_a = (rng.next_u64() % (base.len() as u64 + 1)) as usize;
            let cut_b = (rng.next_u64() % (other.len() as u64 + 1)) as usize;
            let mut b = base[..cut_a].to_vec();
            b.extend_from_slice(&other[cut_b..]);
            b
        }
    }
}

/// Mutants that would legitimately stop or kill the server are out of
/// scope — the campaign measures robustness, not the off switch.
fn is_forbidden(mutant: &[u8]) -> bool {
    String::from_utf8_lossy(mutant)
        .lines()
        .any(|l| l.trim_start().starts_with("shutdown") || l.trim_start().starts_with("poison"))
}

/// Every reply line must belong to the typed protocol grammar.
fn is_typed_reply(line: &str) -> bool {
    ["err ", "overloaded ", "ack ", "done ", "progress "]
        .iter()
        .any(|p| line.starts_with(p))
        || line == "pong"
        || line.starts_with("stats ")
        || line.starts_with("health ")
}

/// What one mutant connection observed.
struct Outcome {
    /// Typed `err` replies seen.
    errs: u32,
    /// The trailing `ping` round-tripped on this same connection.
    ponged: bool,
}

/// Drives one connection: mutant bytes (possibly split mid-write), then
/// a `ping`, then reads until `pong` or a close. A read timeout is a
/// hang, and a hang is a failure.
fn drive(socket: &Path, mutant: &[u8], split_at: Option<usize>) -> Outcome {
    let mut stream = UnixStream::connect(socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    match split_at {
        // Interleaved partial write: half the line, a pause shorter
        // than the server's read timeout, then the rest.
        Some(cut) if cut < mutant.len() => {
            let _ = stream.write_all(&mutant[..cut]);
            let _ = stream.flush();
            std::thread::sleep(Duration::from_millis(5));
            let _ = stream.write_all(&mutant[cut..]);
        }
        _ => {
            let _ = stream.write_all(mutant);
        }
    }
    let _ = stream.write_all(b"\nping\n");
    let _ = stream.flush();
    let mut reader = BufReader::new(stream);
    let mut out = Outcome {
        errs: 0,
        ponged: false,
    };
    loop {
        let mut buf = Vec::new();
        match reader.read_until(b'\n', &mut buf) {
            // Clean close: only legal after a typed refusal (the loop
            // body already checked every prior line was typed).
            Ok(0) => break,
            Ok(_) => {
                let line = String::from_utf8_lossy(&buf);
                let line = line.trim_end();
                assert!(
                    is_typed_reply(line),
                    "untyped server reply to mutant {:?}: {line:?}",
                    String::from_utf8_lossy(mutant)
                );
                if line.starts_with("err ") {
                    out.errs += 1;
                }
                if line == "pong" {
                    out.ponged = true;
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                panic!(
                    "server hung for 20s on mutant {:?}",
                    String::from_utf8_lossy(mutant)
                );
            }
            // Hard reset while our bytes were still in flight — the
            // close itself is the (permitted) refusal.
            Err(_) => break,
        }
    }
    out
}

#[test]
fn seeded_protocol_mutants_always_earn_typed_replies_and_never_wedge() {
    let dir = scratch("campaign");
    let server = Server::start(ServeOptions {
        socket: dir.join("serve.sock"),
        jobs: 2,
        queue_depth: 16,
        ..ServeOptions::default()
    })
    .expect("server starts");
    let socket = server.socket().to_path_buf();

    let mut rng = SplitMix64::new(0xF0_22ED);
    let mut errs = 0u32;
    let mut ponged = 0u32;
    let mut driven = 0u32;
    for _ in 0..220 {
        let mutant = mutate(&mut rng);
        if is_forbidden(&mutant) {
            continue;
        }
        // Every fourth mutant arrives as two interleaved partial writes.
        let split_at = if rng.next_u64().is_multiple_of(4) && !mutant.is_empty() {
            Some((rng.next_u64() % mutant.len() as u64) as usize)
        } else {
            None
        };
        let outcome = drive(&socket, &mutant, split_at);
        errs += outcome.errs;
        ponged += u32::from(outcome.ponged);
        driven += 1;
    }
    // The campaign must actually exercise the error paths, and most
    // connections must survive to their trailing ping (only oversized
    // and non-UTF-8 mutants may close first).
    assert!(driven >= 200, "forbidden-filter ate the campaign: {driven}");
    assert!(
        errs >= 50,
        "campaign produced almost no typed errors: {errs}"
    );
    assert!(
        ponged >= driven / 2,
        "most connections should survive to the trailing ping: {ponged}/{driven}"
    );

    // Zero panics: the pool never lost a worker to malformed input.
    assert_eq!(server.workers_restarted(), 0, "a mutant killed a worker");
    assert_eq!(server.panics_caught(), 0, "a mutant panicked a worker");

    // And the server still does real work, byte-identically.
    let mut c = UnixStream::connect(&socket).expect("connect after campaign");
    c.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let req = "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w200m2000";
    c.write_all(format!("run final {req}\nping\n").as_bytes())
        .expect("send");
    let mut reader = BufReader::new(c);
    let text = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("recv") > 0);
        if line.starts_with("done final ") {
            break line.trim_end().to_string();
        }
    };
    let payload = text.strip_prefix("done final ").expect("done payload");
    let offline = req
        .parse::<RunRequest>()
        .expect("request parses")
        .execute()
        .expect("offline run")
        .stats;
    assert_eq!(
        stats_from_wire(payload).expect("served stats parse"),
        offline,
        "post-campaign result diverged from the offline reference"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
