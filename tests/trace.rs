//! Integration tests for the observability subsystem (`ss-trace`):
//! tracing must be invisible to the simulation (identical `SimStats`
//! with any sink attached), captured traces must be deterministic —
//! across repeated runs and across `--jobs 1` vs `--jobs 2` fuzz
//! campaigns — the Perfetto export must survive a schema-validating
//! parse, and a seeded-bug divergence must carry the trailing trace
//! window with the squash events that explain it.

use speculative_scheduling::core::{DiffChecker, RunLength, Simulator};
use speculative_scheduling::harness::fuzz::{error_trace, run_campaign, FuzzOptions};
use speculative_scheduling::oracle::InOrderModel;
use speculative_scheduling::prelude::*;
use speculative_scheduling::trace::{
    json, perfetto, pipeview, CaptureSink, NullSink, RingSink, TraceEvent,
};
use speculative_scheduling::types::SimError;
use speculative_scheduling::workloads::{kernels, KernelSpec, KernelTrace};

fn missy_cfg() -> SimConfig {
    SimConfig::builder()
        .issue_to_execute_delay(4)
        .sched_policy(SchedPolicyKind::AlwaysHit)
        .banked_l1d(true)
        .commit_log_window(32)
        .build()
}

fn missy_kernel() -> KernelSpec {
    kernels::ptr_chase_big(7)
}

const LEN: RunLength = RunLength {
    warmup: 1_000,
    measure: 10_000,
};

fn stats_with<S: speculative_scheduling::trace::TraceSink>(sink: S) -> SimStats {
    let mut sim = Simulator::with_sink(missy_cfg(), KernelTrace::new(missy_kernel()), sink);
    let warm = sim.try_run_committed(LEN.warmup).expect("warmup");
    let end = sim.try_run_committed(LEN.measure).expect("measure");
    end.delta(&warm)
}

/// Tracing must never perturb the simulation: the no-op sink (the
/// "compiled out" configuration every production path uses) and the
/// recording sinks must produce identical statistics on a replay-heavy
/// machine.
#[test]
fn stats_are_identical_with_and_without_tracing() {
    let null = stats_with(NullSink);
    let ring = stats_with(RingSink::default());
    let capture = stats_with(CaptureSink::new());
    assert_eq!(null, ring, "RingSink perturbed the simulation");
    assert_eq!(null, capture, "CaptureSink perturbed the simulation");
    assert!(
        null.replayed_miss + null.replayed_bank + null.replayed_prf > 0,
        "fixture must actually replay"
    );
}

fn capture_window(window: std::ops::Range<u64>) -> Vec<TraceEvent> {
    let mut sim = Simulator::with_sink(
        missy_cfg(),
        KernelTrace::new(missy_kernel()),
        CaptureSink::with_window(window.clone()),
    );
    sim.try_run_committed(window.end).expect("runs");
    sim.into_sink().into_events()
}

/// The same (config × kernel × window) capture is bit-identical across
/// repeated runs, and both renderers are pure functions of it.
#[test]
fn captures_are_deterministic_across_repeated_runs() {
    let a = capture_window(100..300);
    let b = capture_window(100..300);
    assert!(!a.is_empty());
    assert_eq!(a, b, "capture differs between identical runs");
    assert_eq!(pipeview::render(&a), pipeview::render(&b));
    assert_eq!(
        perfetto::export_chrome_trace(&a),
        perfetto::export_chrome_trace(&b)
    );
}

/// Failure traces are independent of worker parallelism: a seeded-bug
/// fuzz campaign sharded over 1 vs 2 jobs records the same trailing
/// trace window for every failing cell.
#[test]
fn fuzz_failure_traces_match_across_jobs_1_and_2() {
    let opts = |jobs| FuzzOptions {
        campaign_seed: 0xD1FF_5EED,
        cells: 16,
        run: 1_000,
        jobs,
        out_dir: None,
        seed_bug: true,
    };
    let one = run_campaign(&opts(1));
    let two = run_campaign(&opts(2));
    assert!(!one.outcomes.is_empty(), "seeded bug escaped the campaign");
    assert_eq!(one.outcomes.len(), two.outcomes.len());
    for (a, b) in one.outcomes.iter().zip(&two.outcomes) {
        assert_eq!(a.cell.seed, b.cell.seed, "outcome order must be stable");
        assert_eq!(
            error_trace(&a.error),
            error_trace(&b.error),
            "trace for cell {:#x} differs between --jobs 1 and --jobs 2",
            a.cell.seed
        );
    }
}

/// The Perfetto export of a real captured window round-trips through
/// the schema-validating JSON parser: every event phase is well-formed
/// and the expected track metadata is present.
#[test]
fn perfetto_export_roundtrips_through_schema_validation() {
    let events = capture_window(0..256);
    let doc = perfetto::export_chrome_trace(&events);
    let summary = json::validate_chrome_trace(&doc).expect("schema-valid trace");
    assert!(summary.spans > 0, "{summary:?}");
    assert!(summary.counters > 0, "occupancy counter track missing");
    // 1 process_name + (thread_name + thread_sort_index) per stage track.
    assert_eq!(summary.metadata, 1 + 2 * 8, "{summary:?}");
    // A replay-heavy window must link squashes back to their triggers.
    assert!(summary.flows > 0, "no replay flow events captured");
}

/// Acceptance criterion: a `DivergenceReport` produced by the seeded
/// wakeup-recovery bug carries the trailing trace window, and that
/// window shows the squash activity around the dropped µ-op.
#[test]
fn seeded_bug_divergence_carries_squash_trace() {
    let spec = missy_kernel();
    let oracle = InOrderModel::from_spec(spec.clone());
    let mut sim = Simulator::with_sink(missy_cfg(), KernelTrace::new(spec), RingSink::default());
    sim.attach_diff_checker(DiffChecker::new(Box::new(oracle)));
    sim.seed_wakeup_bug();
    let err = sim
        .try_run_committed(20_000)
        .expect_err("seeded bug must diverge");
    let SimError::Divergence(report) = err else {
        panic!("expected a divergence, got: {err}");
    };
    assert!(
        !report.trace.is_empty(),
        "divergence report should carry the trailing trace window"
    );
    assert!(
        report
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::ReplaySquash { .. })),
        "trace window should show the squash that lost the µ-op"
    );
    // The report text renders the window for humans…
    let text = report.to_string();
    assert!(text.contains("trailing trace window"), "got: {text}");
    // …and the window renders through the pipeview for diffing.
    let pv = pipeview::render(&report.trace);
    assert!(
        pv.contains('R'),
        "pipeview should show replay glyphs:\n{pv}"
    );
}
