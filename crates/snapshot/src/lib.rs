//! Versioned, checksummed simulator state snapshots.
//!
//! A snapshot is a single file (or byte buffer) holding the *entire*
//! dynamic state of a simulator at one cycle, so a run can be forked or
//! resumed without replaying its prefix. The container follows the
//! `ss-stats-cache` header idiom from the harness:
//!
//! ```text
//! ss-snapshot v<version> <payload-fnv1a64:016x> <payload-len>\n
//! <binary payload: [config-fp u64 LE] then [u32 tag][u64 len][len bytes] per section ...>
//! ```
//!
//! * The **version** gates format compatibility: a snapshot written by a
//!   different format version fails with
//!   [`SnapshotError::VersionMismatch`] before any payload is touched.
//! * The **checksum** (FNV-1a 64 over the whole payload) makes every torn
//!   write, truncation, bit flip, or section swap a detectable,
//!   *typed* failure — never a wrong simulation.
//! * The **config fingerprint** binds the snapshot to the machine
//!   configuration (and workload) it was captured under; restoring into a
//!   differently-configured simulator is rejected.
//!
//! File writes are atomic: the bytes go to a temp file in the target
//! directory, are fsync'd, and are renamed into place, so a crash
//! mid-write can never leave a half-written snapshot under the final
//! name. Reads that fail the gate quarantine the file by renaming it to
//! `<name>.corrupt` so the evidence is preserved and the bad bytes are
//! never re-read as a snapshot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ss_types::persist::fnv1a64;
use ss_types::rng::Xoshiro256;
use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic tag leading every snapshot header line.
pub const SNAPSHOT_MAGIC: &str = "ss-snapshot";

/// Snapshot format version written and read by this build. Bump whenever
/// the serialized field set of any component changes.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Why a snapshot could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Structural damage: bad magic, bad checksum, truncated payload,
    /// malformed section framing, or an undecodable section body.
    Corrupt(String),
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        expected: u32,
    },
    /// The snapshot belongs to a different (config, workload) identity.
    ConfigMismatch {
        /// Fingerprint in the header.
        found: u64,
        /// Fingerprint of the restore target.
        expected: u64,
    },
    /// An I/O failure reading or writing the snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot format v{found}, this build reads v{expected}")
            }
            SnapshotError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot config fingerprint {found:016x} != expected {expected:016x}"
            ),
            SnapshotError::Io(why) => write!(f, "snapshot io: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Strict parse of the canonical checksum encoding: exactly 16 lowercase
/// hex digits. `u64::from_str_radix` would also accept uppercase, `+`,
/// and short strings — non-canonical spellings a bit flip can produce
/// without changing the decoded value, which would let damage go
/// unnoticed.
fn parse_hex_lower16(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    let mut v: u64 = 0;
    for c in s.bytes() {
        let d = match c {
            b'0'..=b'9' => c - b'0',
            b'a'..=b'f' => c - b'a' + 10,
            _ => return None,
        };
        v = (v << 4) | u64::from(d);
    }
    Some(v)
}

/// One tagged section of a snapshot payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Component tag (see the `SEC_*` constants in `ss-core`).
    pub tag: u32,
    /// The component's serialized state.
    pub bytes: Vec<u8>,
}

/// A complete, verified snapshot: format version, config fingerprint, and
/// the decoded section list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Fingerprint of the (config, workload) identity this state belongs
    /// to.
    pub config_fingerprint: u64,
    /// The component sections, in capture order.
    pub sections: Vec<Section>,
}

impl Snapshot {
    /// Builds a snapshot from sections.
    pub fn new(config_fingerprint: u64, sections: Vec<Section>) -> Self {
        Snapshot {
            config_fingerprint,
            sections,
        }
    }

    /// The section with the given tag, if present.
    pub fn section(&self, tag: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.tag == tag)
            .map(|s| s.bytes.as_slice())
    }

    /// Serializes the snapshot to its on-disk byte form (header +
    /// section-tagged payload). The config fingerprint travels inside the
    /// checksummed payload, so damage to it is detected like any other
    /// payload damage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.config_fingerprint.to_le_bytes());
        for s in &self.sections {
            payload.extend_from_slice(&s.tag.to_le_bytes());
            payload.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes());
            payload.extend_from_slice(&s.bytes);
        }
        let header = format!(
            "{SNAPSHOT_MAGIC} v{SNAPSHOT_FORMAT_VERSION} {:016x} {}\n",
            fnv1a64(&payload),
            payload.len()
        );
        let mut out = header.into_bytes();
        out.extend_from_slice(&payload);
        out
    }

    /// Parses and verifies a snapshot from its byte form. Every possible
    /// malformation yields a typed [`SnapshotError`]; this function never
    /// panics on arbitrary input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let corrupt = |why: &str| Err(SnapshotError::Corrupt(why.to_string()));
        let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
            return corrupt("missing header line");
        };
        let Ok(header) = std::str::from_utf8(&bytes[..nl]) else {
            return corrupt("header is not UTF-8");
        };
        let payload = &bytes[nl + 1..];
        let mut parts = header.split(' ');
        if parts.next() != Some(SNAPSHOT_MAGIC) {
            return corrupt("not a snapshot file (bad magic)");
        }
        let version = parts.next().unwrap_or("");
        let Some(version) = version
            .strip_prefix('v')
            .and_then(|v| v.parse::<u32>().ok())
        else {
            return corrupt("unparsable version stamp");
        };
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let Some(want_sum) = parts.next().and_then(parse_hex_lower16) else {
            return corrupt("unparsable checksum");
        };
        let Some(want_len) = parts.next().and_then(|l| l.parse::<usize>().ok()) else {
            return corrupt("unparsable payload length");
        };
        if parts.next().is_some() {
            return corrupt("trailing header fields");
        }
        if payload.len() != want_len {
            return Err(SnapshotError::Corrupt(format!(
                "payload length {} != header length {want_len} (torn write?)",
                payload.len()
            )));
        }
        let got_sum = fnv1a64(payload);
        if got_sum != want_sum {
            return Err(SnapshotError::Corrupt(format!(
                "payload checksum {got_sum:016x} != header {want_sum:016x}"
            )));
        }
        if payload.len() < 8 {
            return corrupt("payload too short for config fingerprint");
        }
        let config_fp = u64::from_le_bytes(payload[..8].try_into().expect("sized"));
        let mut sections = Vec::new();
        let mut pos = 8usize;
        while pos < payload.len() {
            if payload.len() - pos < 12 {
                return corrupt("truncated section framing");
            }
            let tag = u32::from_le_bytes(payload[pos..pos + 4].try_into().expect("sized"));
            let len = u64::from_le_bytes(payload[pos + 4..pos + 12].try_into().expect("sized"));
            pos += 12;
            let Ok(len) = usize::try_from(len) else {
                return corrupt("section length out of range");
            };
            if len > payload.len() - pos {
                return corrupt("section length exceeds payload");
            }
            sections.push(Section {
                tag,
                bytes: payload[pos..pos + len].to_vec(),
            });
            pos += len;
        }
        Ok(Snapshot {
            config_fingerprint: config_fp,
            sections,
        })
    }

    /// Verifies the snapshot's fingerprint against the restore target's.
    pub fn check_config(&self, expected: u64) -> Result<(), SnapshotError> {
        if self.config_fingerprint != expected {
            return Err(SnapshotError::ConfigMismatch {
                found: self.config_fingerprint,
                expected,
            });
        }
        Ok(())
    }
}

/// Writes a snapshot atomically: temp file in the same directory, fsync,
/// rename into place, directory fsync. A crash at any point leaves either
/// the old file or the new file under `path`, never a torn mix.
pub fn write_atomic(path: &Path, snap: &Snapshot) -> Result<(), SnapshotError> {
    let io = |what: &str, e: std::io::Error| SnapshotError::Io(format!("{what}: {e}"));
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut f = File::create(&tmp).map_err(|e| io("create temp", e))?;
    f.write_all(&snap.to_bytes())
        .map_err(|e| io("write temp", e))?;
    f.sync_all().map_err(|e| io("fsync temp", e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io("rename into place", e))?;
    // Persist the rename itself; without this a crash could lose the
    // directory entry even though the data blocks reached disk.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// The quarantine name for a snapshot that failed verification.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".corrupt");
    PathBuf::from(name)
}

/// Reads and verifies a snapshot file. A file that fails the structural
/// gate (corrupt or version-mismatched) is *quarantined*: renamed to
/// `<name>.corrupt` so it is preserved as evidence but can never be read
/// as a snapshot again. Missing files surface as [`SnapshotError::Io`].
pub fn read_verified(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes =
        fs::read(path).map_err(|e| SnapshotError::Io(format!("read {}: {e}", path.display())))?;
    match Snapshot::from_bytes(&bytes) {
        Ok(s) => Ok(s),
        Err(e) => {
            let _ = fs::rename(path, quarantine_path(path));
            Err(e)
        }
    }
}

/// A seeded mutation over valid snapshot bytes, for corruption fuzzing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flip one bit at a byte offset.
    BitFlip {
        /// Byte offset of the flipped bit.
        offset: usize,
        /// Bit index 0–7 within that byte.
        bit: u8,
    },
    /// Truncate the buffer to a prefix.
    Truncate {
        /// Bytes kept.
        keep: usize,
    },
    /// Swap two equal-length byte ranges (models reordered/cross-written
    /// sections without fixing up the checksum).
    Swap {
        /// First range start.
        a: usize,
        /// Second range start (disjoint from the first).
        b: usize,
        /// Range length.
        len: usize,
    },
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::BitFlip { offset, bit } => write!(f, "bit-flip byte {offset} bit {bit}"),
            Mutation::Truncate { keep } => write!(f, "truncate to {keep} bytes"),
            Mutation::Swap { a, b, len } => write!(f, "swap [{a}..+{len}] with [{b}..+{len}]"),
        }
    }
}

impl Mutation {
    /// Draws a random mutation valid for a buffer of `len` bytes.
    pub fn arbitrary(rng: &mut Xoshiro256, len: usize) -> Self {
        assert!(len >= 4, "snapshot too small to mutate");
        match rng.next_below(3) {
            0 => Mutation::BitFlip {
                offset: rng.next_below(len as u64) as usize,
                bit: rng.next_below(8) as u8,
            },
            1 => Mutation::Truncate {
                keep: rng.next_below(len as u64) as usize,
            },
            _ => {
                let max_len = (len / 4).max(1);
                let span = 1 + rng.next_below(max_len as u64) as usize;
                let a = rng.next_below((len - 2 * span + 1) as u64) as usize;
                let b = a + span + rng.next_below((len - a - 2 * span + 1) as u64) as usize;
                Mutation::Swap { a, b, len: span }
            }
        }
    }

    /// Applies the mutation, returning the damaged bytes. Returns `None`
    /// if the mutation is a no-op on this buffer (e.g. swapping identical
    /// ranges), so callers never mistake unchanged bytes for damage.
    pub fn apply(&self, bytes: &[u8]) -> Option<Vec<u8>> {
        let mut out = bytes.to_vec();
        match *self {
            Mutation::BitFlip { offset, bit } => {
                out[offset] ^= 1 << bit;
            }
            Mutation::Truncate { keep } => out.truncate(keep),
            Mutation::Swap { a, b, len } => {
                for i in 0..len {
                    out.swap(a + i, b + i);
                }
            }
        }
        if out == bytes {
            None
        } else {
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot::new(
            0xDEAD_BEEF_1234_5678,
            vec![
                Section {
                    tag: 1,
                    bytes: vec![1, 2, 3, 4],
                },
                Section {
                    tag: 2,
                    bytes: vec![9; 100],
                },
                Section {
                    tag: 7,
                    bytes: vec![],
                },
            ],
        )
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let s = sample();
        let bytes = s.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("verifies");
        assert_eq!(back, s);
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.section(2).unwrap().len(), 100);
        assert!(back.section(99).is_none());
    }

    #[test]
    fn version_bump_is_a_typed_mismatch() {
        let mut bytes = sample().to_bytes();
        let v_pos = SNAPSHOT_MAGIC.len() + 2; // the digit after " v"
        assert_eq!(bytes[v_pos], b'1');
        bytes[v_pos] = b'2';
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::VersionMismatch { found: 2, expected }) => {
                assert_eq!(expected, SNAPSHOT_FORMAT_VERSION)
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn config_fingerprint_gate() {
        let s = sample();
        assert!(s.check_config(0xDEAD_BEEF_1234_5678).is_ok());
        assert!(matches!(
            s.check_config(1),
            Err(SnapshotError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let e = Snapshot::from_bytes(&bytes[..cut]).expect_err("must fail");
            assert!(
                matches!(
                    e,
                    SnapshotError::Corrupt(_) | SnapshotError::VersionMismatch { .. }
                ),
                "cut {cut}: {e:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().to_bytes();
        for offset in 0..bytes.len() {
            for bit in 0..8 {
                let mut dmg = bytes.clone();
                dmg[offset] ^= 1 << bit;
                assert!(
                    Snapshot::from_bytes(&dmg).is_err(),
                    "flip at {offset}:{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn atomic_write_and_quarantine() {
        let dir = std::env::temp_dir().join(format!("ss-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cell.snap");
        let s = sample();
        write_atomic(&path, &s).expect("writes");
        assert_eq!(read_verified(&path).expect("reads"), s);
        // Tear the file; the read must fail typed and quarantine it.
        let mut bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len() - 5;
        bytes.truncate(cut);
        std::fs::write(&path, &bytes).unwrap();
        let e = read_verified(&path).expect_err("torn file rejected");
        assert!(matches!(e, SnapshotError::Corrupt(_)), "{e:?}");
        assert!(!path.exists(), "torn file removed from its snapshot name");
        assert!(quarantine_path(&path).exists(), "torn file quarantined");
        // A missing file is Io, not Corrupt.
        assert!(matches!(read_verified(&path), Err(SnapshotError::Io(_))));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn seeded_mutations_always_yield_typed_errors() {
        let bytes = sample().to_bytes();
        let mut rng = Xoshiro256::seed_from_u64(0x5EED);
        let mut applied = 0;
        for _ in 0..500 {
            let m = Mutation::arbitrary(&mut rng, bytes.len());
            let Some(dmg) = m.apply(&bytes) else {
                continue;
            };
            applied += 1;
            assert!(Snapshot::from_bytes(&dmg).is_err(), "{m} undetected");
        }
        assert!(applied > 400, "mutations mostly applicable, got {applied}");
    }
}
