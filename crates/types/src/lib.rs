//! Shared vocabulary for the speculative-scheduling simulator workspace.
//!
//! This crate defines the types every other crate speaks in:
//!
//! * [`ids`] — newtyped identifiers ([`Cycle`], [`Addr`], [`Pc`], [`SeqNum`],
//!   register indices) so cycles, addresses, and indices cannot be confused.
//! * [`op`] — the µ-op classification ([`OpClass`]) and execution-port model
//!   used by the issue stage.
//! * [`config`] — the full machine description ([`SimConfig`]) with a
//!   builder, defaulting to the paper's Table 1 configuration.
//! * [`config_spec`] — the typed configuration-name grammar
//!   ([`ConfigSpec`]: `Baseline_4`, `SpecSched_4_Crit`, …) shared by the
//!   harness, the cache keys, and the serve wire protocol.
//! * [`stats`] — the statistics block ([`SimStats`]) every experiment reads,
//!   including the paper's `Unique` / `RpldMiss` / `RpldBank` issue
//!   breakdown.
//! * [`ready`] — event-driven scheduler primitives ([`SeqBitmap`],
//!   [`WakeHeap`], [`EpochRing`], [`VecPool`]) backing the pipeline's
//!   incrementally-maintained ready queue.
//! * [`replay`] — the replay-cause taxonomy ([`ReplayCause`]).
//! * [`error`] — the structured failure taxonomy ([`SimError`]) and the
//!   [`PipelineSnapshot`] attached to deadlock/invariant reports.
//! * [`commit`] — the canonical commit-log record ([`CommitRecord`]) and
//!   the [`CommitOracle`] contract the differential checker compares the
//!   pipeline against.
//! * [`rng`] — vendored SplitMix64 / xoshiro256** PRNGs so the workspace
//!   builds with no external dependencies.
//! * [`exec`] — a std-only scoped-thread worker pool ([`WorkQueue`],
//!   [`CancelFlag`]) the harness shards the experiment matrix with.
//!
//! # Example
//!
//! ```
//! use ss_types::{SimConfig, SchedPolicyKind};
//!
//! let cfg = SimConfig::builder()
//!     .issue_to_execute_delay(4)
//!     .banked_l1d(true)
//!     .sched_policy(SchedPolicyKind::AlwaysHit)
//!     .build();
//! assert_eq!(cfg.issue_to_execute_delay, 4);
//! assert_eq!(cfg.frontend_depth(), 11); // 15 - 4, constant branch penalty
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backoff;
pub mod commit;
pub mod config;
pub mod config_spec;
pub mod error;
pub mod exec;
pub mod ids;
pub mod op;
pub mod persist;
pub mod ready;
pub mod replay;
pub mod rng;
pub mod stats;
pub mod trace;

pub use backoff::Backoff;
pub use commit::{CommitOracle, CommitRecord};
pub use config::{
    BankInterleaving, BankedL1dConfig, CacheGeometry, CritCriterion, DegradeConfig, DramConfig,
    PredictorConfig, PrfBankConfig, ReplayScheme, SchedPolicyKind, ShiftPolicy, SimConfig,
    SimConfigBuilder,
};
pub use config_spec::{ConfigFamily, ConfigSpec, ConfigVariant, NamedConfig, ParseConfigError};
pub use error::{DeadlockReport, DivergenceReport, InvariantReport, PipelineSnapshot, SimError};
pub use exec::{CancelFlag, CostEma, PrioQueue, Priority, PushError, WorkQueue};
pub use ids::{Addr, ArchReg, Cycle, Pc, PhysReg, SeqNum};
pub use op::{BranchKind, ExecPort, OpClass, RegClass};
pub use persist::{DecodeError, Persist, PersistState, Reader, Writer};
pub use ready::{EpochRing, SeqBitmap, VecPool, WakeHeap};
pub use replay::ReplayCause;
pub use rng::{SplitMix64, Xoshiro256};
pub use stats::{CacheStats, SimStats};
pub use trace::{NullSink, TraceEvent, TraceSink};
