//! Binary state persistence for checkpoint/restore.
//!
//! Every component that participates in simulator snapshots implements one
//! of two traits over the little-endian byte codec defined here:
//!
//! * [`Persist`] — *value* types that are reconstructed from bytes
//!   ([`Persist::load`] returns a fresh value). Used for plain data:
//!   counters, table entries, ROB entries, RNG state.
//! * [`PersistState`] — *components* that carry configuration-derived
//!   fields which must **not** travel in a snapshot (table geometries,
//!   latencies, policy kinds). [`PersistState::restore_state`] loads the
//!   dynamic fields *into* an already-constructed component, leaving the
//!   configuration fields untouched. Snapshots are only ever restored
//!   into a simulator built from the same configuration; the snapshot
//!   container enforces that with a configuration fingerprint.
//!
//! Decoding never panics: every malformed input surfaces as a
//! [`DecodeError`], which the snapshot layer maps to a typed
//! `SimError::SnapshotCorrupt`. The [`Reader`] is bounds-checked and
//! length-capped, so truncated or bit-flipped payloads fail cleanly.
//!
//! The [`impl_persist!`] and [`impl_persist_state!`] macros generate the
//! field-by-field implementations; they are invoked inside the module
//! that owns each type so private fields remain private.

use std::collections::VecDeque;
use std::fmt;

/// A decoding failure: the byte stream does not describe a valid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong, with enough context to identify the bad field.
    pub reason: String,
}

impl DecodeError {
    /// Creates an error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        DecodeError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.reason)
    }
}

impl std::error::Error for DecodeError {}

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A bounds-checked little-endian byte source. All reads are fallible;
/// running off the end of the buffer is a [`DecodeError`], never a panic.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed (a well-formed section must
    /// end exactly at its boundary).
    pub fn is_finished(&self) -> bool {
        self.remaining() == 0
    }

    /// A [`DecodeError`] annotated with the current offset.
    pub fn err(&self, what: impl fmt::Display) -> DecodeError {
        DecodeError::new(format!("{what} (at byte {})", self.pos))
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return Err(self.err(format_args!(
                "truncated: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// Value persistence: serialize to bytes, reconstruct from bytes.
pub trait Persist: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut Writer);
    /// Reconstructs a value from `r`.
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Component persistence: serialize the dynamic fields, restore them
/// *into* an existing component whose configuration-derived fields are
/// already correct (because it was built from the same configuration the
/// snapshot was captured under).
pub trait PersistState {
    /// Appends this component's dynamic state to `w`.
    fn save_state(&self, w: &mut Writer);
    /// Overwrites this component's dynamic state from `r`.
    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), DecodeError>;
}

// Boxed (including trait-object) components persist through the box, so
// a `Box<dyn TraceSource + PersistState>`-style source can sit where a
// concrete one does (the `RunRequest` runner relies on this).
impl<T: PersistState + ?Sized> PersistState for Box<T> {
    fn save_state(&self, w: &mut Writer) {
        (**self).save_state(w);
    }
    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), DecodeError> {
        (**self).restore_state(r)
    }
}

macro_rules! persist_le_int {
    ($($ty:ty),*) => {$(
        impl Persist for $ty {
            fn save(&self, w: &mut Writer) {
                w.put_bytes(&self.to_le_bytes());
            }
            fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let n = std::mem::size_of::<$ty>();
                let bytes = r.take(n)?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

persist_le_int!(u8, u16, u32, u64, i8, i64);

impl Persist for bool {
    fn save(&self, w: &mut Writer) {
        w.put_bytes(&[u8::from(*self)]);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(r.err(format_args!("invalid bool byte {b:#x}"))),
        }
    }
}

impl Persist for usize {
    fn save(&self, w: &mut Writer) {
        (*self as u64).save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = u64::load(r)?;
        usize::try_from(v).map_err(|_| r.err(format_args!("usize {v} out of range")))
    }
}

impl Persist for String {
    fn save(&self, w: &mut Writer) {
        self.len().save(w);
        w.put_bytes(self.as_bytes());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = usize::load(r)?;
        if len > r.remaining() {
            return Err(r.err(format_args!(
                "string length {len} exceeds {} remaining bytes",
                r.remaining()
            )));
        }
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::new("string is not UTF-8"))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut Writer) {
        match self {
            None => false.save(w),
            Some(v) => {
                true.save(w);
                v.save(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(if bool::load(r)? {
            Some(T::load(r)?)
        } else {
            None
        })
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut Writer) {
        self.len().save(w);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = usize::load(r)?;
        // Every element costs at least one byte, so a length exceeding
        // the remaining bytes is corrupt — reject before allocating.
        if len > r.remaining() {
            return Err(r.err(format_args!(
                "length {len} exceeds {} remaining bytes",
                r.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn save(&self, w: &mut Writer) {
        self.len().save(w);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Vec::<T>::load(r)?.into())
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn save(&self, w: &mut Writer) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into()
            .map_err(|_| DecodeError::new("array length mismatch"))
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

/// Implements [`Persist`] for a struct by listing **all** of its fields.
/// Must be invoked in a module with visibility of every field (normally
/// the defining module). Loading reconstructs the struct literal, so a
/// missing field is a compile error — the list cannot silently drift.
#[macro_export]
macro_rules! impl_persist {
    ($ty:ty { $($f:ident),* $(,)? }) => {
        impl $crate::persist::Persist for $ty {
            fn save(&self, w: &mut $crate::persist::Writer) {
                $( $crate::persist::Persist::save(&self.$f, w); )*
            }
            fn load(
                r: &mut $crate::persist::Reader<'_>,
            ) -> Result<Self, $crate::persist::DecodeError> {
                Ok(Self { $( $f: $crate::persist::Persist::load(r)?, )* })
            }
        }
    };
}

/// Implements [`PersistState`] for a component by listing its *dynamic*
/// fields; configuration-derived fields are simply omitted and keep the
/// values of the restore target. An optional second section (after `;`)
/// names fields that are themselves [`PersistState`] components and are
/// recursed into instead of reconstructed.
#[macro_export]
macro_rules! impl_persist_state {
    ($ty:ty { $($f:ident),* $(,)? }) => {
        $crate::impl_persist_state!($ty { $($f),* ; });
    };
    ($ty:ty { $($f:ident),* ; $($n:ident),* $(,)? }) => {
        impl $crate::persist::PersistState for $ty {
            fn save_state(&self, w: &mut $crate::persist::Writer) {
                $( $crate::persist::Persist::save(&self.$f, w); )*
                $( $crate::persist::PersistState::save_state(&self.$n, w); )*
            }
            fn restore_state(
                &mut self,
                r: &mut $crate::persist::Reader<'_>,
            ) -> Result<(), $crate::persist::DecodeError> {
                $( self.$f = $crate::persist::Persist::load(r)?; )*
                $( $crate::persist::PersistState::restore_state(&mut self.$n, r)?; )*
                Ok(())
            }
        }
    };
}

// ---- Identifier newtypes ------------------------------------------------

impl Persist for crate::Cycle {
    fn save(&self, w: &mut Writer) {
        self.get().save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::Cycle::new(u64::load(r)?))
    }
}

impl Persist for crate::Addr {
    fn save(&self, w: &mut Writer) {
        self.get().save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::Addr::new(u64::load(r)?))
    }
}

impl Persist for crate::Pc {
    fn save(&self, w: &mut Writer) {
        self.get().save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::Pc::new(u64::load(r)?))
    }
}

impl Persist for crate::SeqNum {
    fn save(&self, w: &mut Writer) {
        self.get().save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::SeqNum::new(u64::load(r)?))
    }
}

impl Persist for crate::PhysReg {
    fn save(&self, w: &mut Writer) {
        self.get().save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(crate::PhysReg::new(u16::load(r)?))
    }
}

impl Persist for crate::ArchReg {
    fn save(&self, w: &mut Writer) {
        self.get().save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let raw = u8::load(r)?;
        // ArchReg::new panics out of range; decode must not.
        if (raw as usize) >= crate::ArchReg::COUNT {
            return Err(r.err(format_args!("arch reg {raw} out of range")));
        }
        Ok(crate::ArchReg::new(raw))
    }
}

// ---- Small enums --------------------------------------------------------

impl Persist for crate::BranchKind {
    fn save(&self, w: &mut Writer) {
        use crate::BranchKind::*;
        let tag: u8 = match self {
            Conditional => 0,
            Direct => 1,
            Indirect => 2,
            Call => 3,
            Return => 4,
        };
        tag.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        use crate::BranchKind::*;
        Ok(match u8::load(r)? {
            0 => Conditional,
            1 => Direct,
            2 => Indirect,
            3 => Call,
            4 => Return,
            t => return Err(r.err(format_args!("invalid BranchKind tag {t}"))),
        })
    }
}

impl Persist for crate::OpClass {
    fn save(&self, w: &mut Writer) {
        use crate::OpClass::*;
        match self {
            IntAlu => 0u8.save(w),
            IntMul => 1u8.save(w),
            IntDiv => 2u8.save(w),
            FpAlu => 3u8.save(w),
            FpMul => 4u8.save(w),
            FpDiv => 5u8.save(w),
            Load => 6u8.save(w),
            Store => 7u8.save(w),
            Branch(k) => {
                8u8.save(w);
                k.save(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        use crate::OpClass::*;
        Ok(match u8::load(r)? {
            0 => IntAlu,
            1 => IntMul,
            2 => IntDiv,
            3 => FpAlu,
            4 => FpMul,
            5 => FpDiv,
            6 => Load,
            7 => Store,
            8 => Branch(crate::BranchKind::load(r)?),
            t => return Err(r.err(format_args!("invalid OpClass tag {t}"))),
        })
    }
}

impl Persist for crate::RegClass {
    fn save(&self, w: &mut Writer) {
        let tag: u8 = match self {
            crate::RegClass::Int => 0,
            crate::RegClass::Float => 1,
        };
        tag.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::load(r)? {
            0 => crate::RegClass::Int,
            1 => crate::RegClass::Float,
            t => return Err(r.err(format_args!("invalid RegClass tag {t}"))),
        })
    }
}

impl Persist for crate::ReplayCause {
    fn save(&self, w: &mut Writer) {
        use crate::ReplayCause::*;
        let tag: u8 = match self {
            L1Miss => 0,
            BankConflict => 1,
            PrfConflict => 2,
        };
        tag.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        use crate::ReplayCause::*;
        Ok(match u8::load(r)? {
            0 => L1Miss,
            1 => BankConflict,
            2 => PrfConflict,
            t => return Err(r.err(format_args!("invalid ReplayCause tag {t}"))),
        })
    }
}

crate::impl_persist!(crate::CommitRecord { seq, pc, kind, dst });

crate::impl_persist!(crate::CacheStats {
    accesses,
    hits,
    misses,
    mshr_merges,
    prefetches,
    prefetch_hits,
});

crate::impl_persist!(crate::SimStats {
    cycles,
    committed_uops,
    committed_loads,
    unique_issued,
    issued_total,
    replayed_miss,
    replayed_bank,
    replayed_prf,
    replay_events_miss,
    replay_events_bank,
    replay_events_prf,
    wrong_path_issued,
    cond_branches,
    cond_mispredicts,
    target_mispredicts,
    l1d,
    l2,
    bank_delayed_loads,
    bank_delay_cycles,
    loads_merged_into_mshr,
    dram_row_hits,
    dram_row_misses,
    loads_spec_woken,
    loads_conservative,
    filter_sure_hit,
    filter_sure_miss,
    filter_unstable,
    crit_predicted_critical,
    crit_predicted_noncritical,
    memdep_violations,
    dispatch_stall_cycles,
    recovery_buffer_replays,
    degrade_entries,
    degrade_cycles,
    faults_injected,
});

/// FNV-1a 64-bit hash — the workspace's integrity checksum (same algorithm
/// as the harness stats cache).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Writer::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::load(&mut r).expect("decodes");
        assert!(r.is_finished(), "trailing bytes after {back:?}");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0xABu8);
        roundtrip(0xAB_CDu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-5i8);
        roundtrip(-123_456i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Some(7u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(VecDeque::from(vec![9u8, 8]));
        roundtrip([1u16, 2, 3, 4]);
        roundtrip((crate::Cycle::new(3), crate::SeqNum::new(4), 5u32));
    }

    #[test]
    fn ids_roundtrip() {
        roundtrip(crate::Cycle::new(42));
        roundtrip(crate::Addr::new(0x1234));
        roundtrip(crate::Pc::new(0x4000));
        roundtrip(crate::SeqNum::new(9));
        roundtrip(crate::PhysReg::new(130));
        roundtrip(crate::ArchReg::new(31));
    }

    #[test]
    fn enums_roundtrip() {
        for k in [
            crate::BranchKind::Conditional,
            crate::BranchKind::Return,
            crate::BranchKind::Call,
        ] {
            roundtrip(k);
            roundtrip(crate::OpClass::Branch(k));
        }
        roundtrip(crate::OpClass::Load);
        roundtrip(crate::RegClass::Float);
        for c in crate::ReplayCause::ALL {
            roundtrip(c);
        }
    }

    #[test]
    fn stats_roundtrip() {
        let mut s = crate::SimStats {
            cycles: 11,
            committed_uops: 22,
            faults_injected: 3,
            ..Default::default()
        };
        s.l1d.misses = 5;
        s.l2.prefetch_hits = 7;
        roundtrip(s);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        vec![1u64, 2, 3].save(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(Vec::<u64>::load(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn absurd_length_rejected_before_allocation() {
        let mut w = Writer::new();
        (u64::MAX - 3).save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(Vec::<u8>::load(&mut r).is_err());
    }

    #[test]
    fn invalid_tags_rejected() {
        let mut r = Reader::new(&[200]);
        assert!(crate::OpClass::load(&mut r).is_err());
        let mut r = Reader::new(&[2]);
        assert!(bool::load(&mut r).is_err());
        let mut r = Reader::new(&[63]);
        assert!(crate::ArchReg::load(&mut r).is_err());
        let mut r = Reader::new(&[32]);
        assert!(crate::ArchReg::load(&mut r).is_err());
    }

    #[test]
    fn fnv_matches_reference() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
