//! Replay-cause taxonomy.
//!
//! The paper restricts itself to the two dominant replay triggers (§4.3):
//! L1 data-cache misses and L1 bank conflicts, assuming a monolithic PRF
//! that provisions full read/write ports. The simulator defaults to the
//! same assumption but can optionally model a banked PRF (Tseng &
//! Asanović style), whose read-port conflicts add the third replay cause
//! the paper describes in §4.2.

use std::fmt;

/// Why a schedule misspeculation (and therefore a replay) happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayCause {
    /// The load was assumed to hit in the L1D but missed; dependents were
    /// issued too early (`RpldMiss` in Figure 4b).
    L1Miss,
    /// The load hit, but a bank conflict delayed its access by one or more
    /// cycles (`RpldBank` in Figure 4b).
    BankConflict,
    /// A physical-register-file read-port conflict delayed the producer by
    /// one cycle (§4.2; only with the optional banked-PRF model).
    PrfConflict,
}

impl ReplayCause {
    /// All causes, for iteration over breakdown tables.
    pub const ALL: [ReplayCause; 3] = [
        ReplayCause::L1Miss,
        ReplayCause::BankConflict,
        ReplayCause::PrfConflict,
    ];
}

impl fmt::Display for ReplayCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayCause::L1Miss => f.write_str("l1-miss"),
            ReplayCause::BankConflict => f.write_str("bank-conflict"),
            ReplayCause::PrfConflict => f.write_str("prf-conflict"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_variant() {
        assert_eq!(ReplayCause::ALL.len(), 3);
        assert!(ReplayCause::ALL.contains(&ReplayCause::L1Miss));
        assert!(ReplayCause::ALL.contains(&ReplayCause::BankConflict));
        assert!(ReplayCause::ALL.contains(&ReplayCause::PrfConflict));
    }

    #[test]
    fn display_nonempty() {
        for c in ReplayCause::ALL {
            assert!(!format!("{c}").is_empty());
        }
    }
}
