//! Simulation statistics.
//!
//! [`SimStats`] is the single statistics block filled in by the pipeline
//! and read by every experiment. It carries the paper's issue breakdown
//! (`Unique`, `RpldMiss`, `RpldBank` — Figure 4b) plus cache, branch,
//! scheduling-policy and replay-event counters.

use crate::replay::ReplayCause;
use std::fmt;

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (excludes prefetches).
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Misses merged into an already-outstanding MSHR.
    pub mshr_merges: u64,
    /// Prefetch requests issued from this level.
    pub prefetches: u64,
    /// Demand hits on lines brought in by the prefetcher.
    pub prefetch_hits: u64,
}

impl CacheStats {
    /// Demand miss ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Full statistics for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    // ---- progress ----
    /// Cycles simulated (excluding warmup if the runner resets stats).
    pub cycles: u64,
    /// Correct-path µ-ops committed.
    pub committed_uops: u64,
    /// Correct-path loads committed.
    pub committed_loads: u64,

    // ---- issue breakdown (Figure 4b taxonomy) ----
    /// Distinct µ-ops that issued at least once (correct + wrong path);
    /// the paper's `Unique`.
    pub unique_issued: u64,
    /// Total issue events (unique + every re-issue).
    pub issued_total: u64,
    /// µ-ops squashed-and-replayed attributed to an L1 miss (`RpldMiss`).
    pub replayed_miss: u64,
    /// µ-ops squashed-and-replayed attributed to an L1 bank conflict
    /// (`RpldBank`).
    pub replayed_bank: u64,
    /// µ-ops squashed-and-replayed attributed to a PRF read-port conflict
    /// (only with the optional banked-PRF model).
    pub replayed_prf: u64,
    /// Replay events (squash-the-window occurrences) per cause.
    pub replay_events_miss: u64,
    /// Replay events attributed to bank conflicts.
    pub replay_events_bank: u64,
    /// Replay events attributed to PRF conflicts.
    pub replay_events_prf: u64,
    /// Wrong-path µ-ops that issued (subset of `unique_issued`).
    pub wrong_path_issued: u64,

    // ---- branches ----
    /// Conditional branches committed.
    pub cond_branches: u64,
    /// Conditional branches whose direction was mispredicted.
    pub cond_mispredicts: u64,
    /// Branches (any kind) whose target was mispredicted.
    pub target_mispredicts: u64,

    // ---- memory ----
    /// L1D statistics (demand loads on the correct path).
    pub l1d: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Loads whose L1D access was delayed by at least one cycle due to a
    /// bank conflict.
    pub bank_delayed_loads: u64,
    /// Total cycles of bank-conflict queueing across all loads.
    pub bank_delay_cycles: u64,
    /// Accesses that found the target line's MSHR already allocated.
    pub loads_merged_into_mshr: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses/conflicts.
    pub dram_row_misses: u64,

    // ---- scheduling policy decisions ----
    /// Loads whose dependents were woken speculatively (predicted hit).
    pub loads_spec_woken: u64,
    /// Loads whose dependents were held until the hit/miss signal.
    pub loads_conservative: u64,
    /// Loads the per-PC filter called a sure hit.
    pub filter_sure_hit: u64,
    /// Loads the per-PC filter called a sure miss.
    pub filter_sure_miss: u64,
    /// Loads with silenced (unstable) filter entries, deferred to the
    /// global counter / criticality.
    pub filter_unstable: u64,
    /// Loads predicted critical by the criticality table.
    pub crit_predicted_critical: u64,
    /// Loads predicted non-critical.
    pub crit_predicted_noncritical: u64,

    // ---- memory dependence ----
    /// Memory-order violations (a load executed before an older aliasing
    /// store; Store Sets training events).
    pub memdep_violations: u64,

    // ---- window pressure ----
    /// Cycles in which dispatch stalled for lack of ROB/IQ/LSQ/PRF space.
    pub dispatch_stall_cycles: u64,
    /// µ-ops replayed out of the recovery buffer.
    pub recovery_buffer_replays: u64,

    // ---- robustness ----
    /// Times a replay storm triggered graceful degradation (temporary
    /// fallback to conservative wakeup).
    pub degrade_entries: u64,
    /// Cycles spent in degraded (forced-conservative) mode.
    pub degrade_cycles: u64,
    /// Faults injected by an active fault plan (latency spikes,
    /// bank-conflict bursts, replay storms).
    pub faults_injected: u64,
}

impl SimStats {
    /// Committed µ-ops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_uops as f64 / self.cycles as f64
        }
    }

    /// Total replayed µ-ops across causes.
    pub fn replayed_total(&self) -> u64 {
        self.replayed_miss + self.replayed_bank + self.replayed_prf
    }

    /// Replayed µ-ops for one cause.
    pub fn replayed(&self, cause: ReplayCause) -> u64 {
        match cause {
            ReplayCause::L1Miss => self.replayed_miss,
            ReplayCause::BankConflict => self.replayed_bank,
            ReplayCause::PrfConflict => self.replayed_prf,
        }
    }

    /// Records replayed µ-ops against a cause.
    pub fn add_replayed(&mut self, cause: ReplayCause, n: u64) {
        match cause {
            ReplayCause::L1Miss => self.replayed_miss += n,
            ReplayCause::BankConflict => self.replayed_bank += n,
            ReplayCause::PrfConflict => self.replayed_prf += n,
        }
    }

    /// Records one replay event against a cause.
    pub fn add_replay_event(&mut self, cause: ReplayCause) {
        match cause {
            ReplayCause::L1Miss => self.replay_events_miss += 1,
            ReplayCause::BankConflict => self.replay_events_bank += 1,
            ReplayCause::PrfConflict => self.replay_events_prf += 1,
        }
    }

    /// Field-wise difference `self − earlier`: the statistics accumulated
    /// *after* the `earlier` snapshot was taken. Used to discard warmup.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any counter in `earlier` exceeds the
    /// corresponding counter in `self`.
    pub fn delta(&self, earlier: &SimStats) -> SimStats {
        fn sub(a: u64, b: u64) -> u64 {
            debug_assert!(a >= b, "stats must be monotonic ({a} < {b})");
            a - b
        }
        fn subc(a: CacheStats, b: CacheStats) -> CacheStats {
            CacheStats {
                accesses: sub(a.accesses, b.accesses),
                hits: sub(a.hits, b.hits),
                misses: sub(a.misses, b.misses),
                mshr_merges: sub(a.mshr_merges, b.mshr_merges),
                prefetches: sub(a.prefetches, b.prefetches),
                prefetch_hits: sub(a.prefetch_hits, b.prefetch_hits),
            }
        }
        SimStats {
            cycles: sub(self.cycles, earlier.cycles),
            committed_uops: sub(self.committed_uops, earlier.committed_uops),
            committed_loads: sub(self.committed_loads, earlier.committed_loads),
            unique_issued: sub(self.unique_issued, earlier.unique_issued),
            issued_total: sub(self.issued_total, earlier.issued_total),
            replayed_miss: sub(self.replayed_miss, earlier.replayed_miss),
            replayed_bank: sub(self.replayed_bank, earlier.replayed_bank),
            replayed_prf: sub(self.replayed_prf, earlier.replayed_prf),
            replay_events_miss: sub(self.replay_events_miss, earlier.replay_events_miss),
            replay_events_bank: sub(self.replay_events_bank, earlier.replay_events_bank),
            replay_events_prf: sub(self.replay_events_prf, earlier.replay_events_prf),
            wrong_path_issued: sub(self.wrong_path_issued, earlier.wrong_path_issued),
            cond_branches: sub(self.cond_branches, earlier.cond_branches),
            cond_mispredicts: sub(self.cond_mispredicts, earlier.cond_mispredicts),
            target_mispredicts: sub(self.target_mispredicts, earlier.target_mispredicts),
            l1d: subc(self.l1d, earlier.l1d),
            l2: subc(self.l2, earlier.l2),
            bank_delayed_loads: sub(self.bank_delayed_loads, earlier.bank_delayed_loads),
            bank_delay_cycles: sub(self.bank_delay_cycles, earlier.bank_delay_cycles),
            loads_merged_into_mshr: sub(
                self.loads_merged_into_mshr,
                earlier.loads_merged_into_mshr,
            ),
            dram_row_hits: sub(self.dram_row_hits, earlier.dram_row_hits),
            dram_row_misses: sub(self.dram_row_misses, earlier.dram_row_misses),
            loads_spec_woken: sub(self.loads_spec_woken, earlier.loads_spec_woken),
            loads_conservative: sub(self.loads_conservative, earlier.loads_conservative),
            filter_sure_hit: sub(self.filter_sure_hit, earlier.filter_sure_hit),
            filter_sure_miss: sub(self.filter_sure_miss, earlier.filter_sure_miss),
            filter_unstable: sub(self.filter_unstable, earlier.filter_unstable),
            crit_predicted_critical: sub(
                self.crit_predicted_critical,
                earlier.crit_predicted_critical,
            ),
            crit_predicted_noncritical: sub(
                self.crit_predicted_noncritical,
                earlier.crit_predicted_noncritical,
            ),
            memdep_violations: sub(self.memdep_violations, earlier.memdep_violations),
            dispatch_stall_cycles: sub(self.dispatch_stall_cycles, earlier.dispatch_stall_cycles),
            recovery_buffer_replays: sub(
                self.recovery_buffer_replays,
                earlier.recovery_buffer_replays,
            ),
            degrade_entries: sub(self.degrade_entries, earlier.degrade_entries),
            degrade_cycles: sub(self.degrade_cycles, earlier.degrade_cycles),
            faults_injected: sub(self.faults_injected, earlier.faults_injected),
        }
    }

    /// Issue events per committed µ-op — the pipeline-efficiency metric the
    /// paper's conclusion quotes ("13.4% decrease in the number of issued
    /// instructions").
    pub fn issued_per_committed(&self) -> f64 {
        if self.committed_uops == 0 {
            0.0
        } else {
            self.issued_total as f64 / self.committed_uops as f64
        }
    }

    /// Conditional-branch misprediction rate in `[0, 1]`.
    pub fn branch_mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Mispredictions per kilo-instruction (committed µ-ops).
    pub fn branch_mpki(&self) -> f64 {
        if self.committed_uops == 0 {
            0.0
        } else {
            1000.0 * self.cond_mispredicts as f64 / self.committed_uops as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles                {:>14}", self.cycles)?;
        writeln!(f, "committed µ-ops       {:>14}", self.committed_uops)?;
        writeln!(f, "IPC                   {:>14.3}", self.ipc())?;
        writeln!(f, "unique issued         {:>14}", self.unique_issued)?;
        writeln!(f, "issued total          {:>14}", self.issued_total)?;
        writeln!(f, "replayed (L1 miss)    {:>14}", self.replayed_miss)?;
        writeln!(f, "replayed (bank)       {:>14}", self.replayed_bank)?;
        writeln!(f, "wrong-path issued     {:>14}", self.wrong_path_issued)?;
        writeln!(
            f,
            "L1D miss ratio        {:>14.4}  ({} / {})",
            self.l1d.miss_ratio(),
            self.l1d.misses,
            self.l1d.accesses
        )?;
        writeln!(f, "L2 miss ratio         {:>14.4}", self.l2.miss_ratio())?;
        writeln!(f, "bank-delayed loads    {:>14}", self.bank_delayed_loads)?;
        writeln!(f, "branch MPKI           {:>14.2}", self.branch_mpki())?;
        write!(
            f,
            "issued / committed    {:>14.3}",
            self.issued_per_committed()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.issued_per_committed(), 0.0);
        assert_eq!(s.branch_mispredict_rate(), 0.0);
    }

    #[test]
    fn ipc_computation() {
        let s = SimStats {
            cycles: 100,
            committed_uops: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn replay_accounting_by_cause() {
        let mut s = SimStats::default();
        s.add_replayed(ReplayCause::L1Miss, 10);
        s.add_replayed(ReplayCause::BankConflict, 4);
        s.add_replay_event(ReplayCause::L1Miss);
        assert_eq!(s.replayed(ReplayCause::L1Miss), 10);
        assert_eq!(s.replayed(ReplayCause::BankConflict), 4);
        assert_eq!(s.replayed_total(), 14);
        assert_eq!(s.replay_events_miss, 1);
        assert_eq!(s.replay_events_bank, 0);
    }

    #[test]
    fn cache_miss_ratio() {
        let c = CacheStats {
            accesses: 10,
            hits: 7,
            misses: 3,
            ..Default::default()
        };
        assert!((c.miss_ratio() - 0.3).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn mpki() {
        let s = SimStats {
            committed_uops: 2000,
            cond_branches: 100,
            cond_mispredicts: 10,
            ..Default::default()
        };
        assert!((s.branch_mpki() - 5.0).abs() < 1e-12);
        assert!((s.branch_mispredict_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let early = SimStats {
            cycles: 100,
            committed_uops: 50,
            replayed_bank: 3,
            ..Default::default()
        };
        let late = SimStats {
            cycles: 300,
            committed_uops: 200,
            replayed_bank: 10,
            ..Default::default()
        };
        let d = late.delta(&early);
        assert_eq!(d.cycles, 200);
        assert_eq!(d.committed_uops, 150);
        assert_eq!(d.replayed_bank, 7);
        assert!((d.ipc() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = SimStats {
            cycles: 1,
            committed_uops: 2,
            ..Default::default()
        };
        let out = format!("{s}");
        assert!(out.contains("IPC"));
        assert!(out.contains("replayed (bank)"));
        assert!(out.contains("issued / committed"));
    }
}
