//! A minimal scoped-thread worker pool for embarrassingly-parallel work.
//!
//! The experiment matrix is a set of independent (configuration ×
//! benchmark) cells; this module provides the std-only building blocks
//! the harness shards them with:
//!
//! * [`CancelFlag`] — a cooperative cancellation token shared between
//!   workers (and, e.g., a Ctrl-C handler).
//! * [`WorkQueue`] — a lock-free shared index queue: workers *steal* the
//!   next unclaimed job index, so a slow cell never stalls the others
//!   (dynamic load balancing over a static job list).
//! * [`scoped_workers`] — spawns `n` scoped worker threads and collects
//!   their results in worker order; panics propagate to the caller once
//!   all workers have stopped.
//! * [`Priority`] / [`PrioQueue`] — a bounded, blocking three-level
//!   priority queue (interactive / normal / bulk, FIFO within a level)
//!   with typed overload rejection, backing the `experiments serve`
//!   admission control.
//! * [`CostEma`] — per-key exponentially-weighted moving averages of
//!   simulation cost (the Exo-OS predictive-scheduler recipe: α = 1/4),
//!   used to classify incoming requests into priority levels.
//!
//! The pool deliberately has no knowledge of what a "job" is: callers
//! index into their own job list with the indices handed out by
//! [`WorkQueue::take`], which makes result ordering the caller's choice
//! (the harness writes results into pre-allocated slots, so output order
//! is deterministic regardless of completion order).
//!
//! # Example
//!
//! ```
//! use ss_types::exec::{scoped_workers, WorkQueue};
//! use std::sync::Mutex;
//!
//! let jobs: Vec<u64> = (0..100).collect();
//! let queue = WorkQueue::new(jobs.len());
//! let results = Mutex::new(vec![0u64; jobs.len()]);
//! scoped_workers(4, |_worker| {
//!     while let Some(i) = queue.take() {
//!         let r = jobs[i] * 2; // the expensive part, outside any lock
//!         results.lock().unwrap()[i] = r;
//!     }
//! });
//! assert_eq!(results.into_inner().unwrap()[21], 42);
//! ```

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A cooperative cancellation token.
///
/// Cloning is cheap (an [`Arc`] bump); every clone observes the same
/// flag. Workers poll [`CancelFlag::is_cancelled`] between jobs, so
/// cancellation takes effect at the next job boundary, never mid-cell.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A shared queue over the job indices `0..total`.
///
/// The queue is a single atomic cursor: [`WorkQueue::take`] hands each
/// caller the next unclaimed index exactly once. This is work *stealing*
/// in its simplest form — idle workers pull the next job the moment they
/// finish, so load imbalance between cells (simulation time varies by an
/// order of magnitude across configurations) never leaves a worker idle
/// while work remains.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    total: usize,
    cancel: CancelFlag,
}

impl WorkQueue {
    /// A queue over `0..total` with a fresh cancellation flag.
    pub fn new(total: usize) -> Self {
        Self::with_cancel(total, CancelFlag::new())
    }

    /// A queue over `0..total` observing an external cancellation flag.
    pub fn with_cancel(total: usize, cancel: CancelFlag) -> Self {
        WorkQueue {
            next: AtomicUsize::new(0),
            total,
            cancel,
        }
    }

    /// Claims the next job index, or `None` when the queue is drained or
    /// cancelled. Each index in `0..total` is handed out exactly once.
    pub fn take(&self) -> Option<usize> {
        if self.cancel.is_cancelled() {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    /// Total number of jobs the queue was created with.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The cancellation flag this queue observes.
    pub fn cancel_flag(&self) -> &CancelFlag {
        &self.cancel
    }
}

/// Spawns `n` scoped worker threads running `worker(worker_index)` and
/// returns their results in worker order (index 0 first), regardless of
/// completion order.
///
/// `n == 0` is clamped to 1. With `n == 1` the worker runs on the
/// calling thread — no thread is spawned, so a single-job run is
/// byte-for-byte the sequential code path.
///
/// # Panics
///
/// If a worker panics, the panic is re-raised on the calling thread
/// after all other workers have finished (callers that need isolation
/// catch panics *inside* the worker, as the harness session does per
/// cell).
pub fn scoped_workers<R, F>(n: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = n.max(1);
    if n == 1 {
        return vec![worker(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..n)
            .map(|w| {
                scope.spawn({
                    let worker = &worker;
                    move || worker(w)
                })
            })
            .collect();
        let first = worker(0);
        let mut out = Vec::with_capacity(n);
        out.push(first);
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Default worker count: the host's available parallelism, 1 if unknown.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Scheduling class of a serve-layer request.
///
/// Orders from most to least urgent; [`PrioQueue::pop`] always drains
/// `Interactive` before `Normal` before `Bulk`, FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Short, latency-sensitive requests (a human is waiting).
    Interactive,
    /// The default class for requests of unknown or moderate cost.
    #[default]
    Normal,
    /// Long sweep traffic that tolerates queueing behind everything else.
    Bulk,
}

impl Priority {
    /// All classes, most urgent first (drain order).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Normal, Priority::Bulk];

    /// Dense index for per-class arrays: 0 = interactive, 2 = bulk.
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Normal => 1,
            Priority::Bulk => 2,
        }
    }

    /// The wire tag (`interactive` / `normal` / `bulk`).
    pub fn tag(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Normal => "normal",
            Priority::Bulk => "bulk",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

impl FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interactive" => Ok(Priority::Interactive),
            "normal" => Ok(Priority::Normal),
            "bulk" => Ok(Priority::Bulk),
            other => Err(format!(
                "unknown priority `{other}` (expected interactive|normal|bulk)"
            )),
        }
    }
}

/// Why a [`PrioQueue::try_push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `depth` pending items, at its admission limit —
    /// the caller should surface a typed `Overloaded`, never block.
    Overloaded {
        /// Pending items across all classes at the time of rejection.
        depth: usize,
        /// The admission limit the queue was built with.
        limit: usize,
    },
    /// The queue was closed (server shutting down).
    Closed,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Overloaded { depth, limit } => {
                write!(f, "queue overloaded: {depth} pending at limit {limit}")
            }
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

/// A bounded, blocking three-level priority queue.
///
/// `try_push` never blocks: when the total pending depth has reached the
/// admission limit it returns [`PushError::Overloaded`] — the serve
/// layer's bounded-queue admission control. `pop` blocks until an item
/// is available (highest class first, FIFO within a class) or the queue
/// is closed and drained.
///
/// The queue is not lock-free like [`WorkQueue`] — serve requests arrive
/// at human/network rate, so a mutex + condvar is the right tool; the
/// lock is held only for a push or pop, never across a simulation.
#[derive(Debug)]
pub struct PrioQueue<T> {
    inner: Mutex<PrioInner<T>>,
    ready: Condvar,
    limit: usize,
}

#[derive(Debug)]
struct PrioInner<T> {
    classes: [VecDeque<T>; 3],
    closed: bool,
}

impl<T> PrioQueue<T> {
    /// A queue admitting at most `limit` pending items in total (min 1).
    pub fn new(limit: usize) -> Self {
        PrioQueue {
            inner: Mutex::new(PrioInner {
                classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
            }),
            ready: Condvar::new(),
            limit: limit.max(1),
        }
    }

    /// The admission limit this queue was built with.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Total pending items across all classes.
    pub fn depth(&self) -> usize {
        let inner = self.inner.lock().expect("prio queue poisoned");
        inner.classes.iter().map(VecDeque::len).sum()
    }

    /// Pending items per class, indexed by [`Priority::index`] (the
    /// serve layer's `health` report).
    pub fn depths(&self) -> [usize; 3] {
        let inner = self.inner.lock().expect("prio queue poisoned");
        [
            inner.classes[0].len(),
            inner.classes[1].len(),
            inner.classes[2].len(),
        ]
    }

    /// Enqueues `item` at `prio`, or refuses with a typed error —
    /// never blocks.
    pub fn try_push(&self, prio: Priority, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().expect("prio queue poisoned");
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        let depth: usize = inner.classes.iter().map(VecDeque::len).sum();
        if depth >= self.limit {
            return Err((
                item,
                PushError::Overloaded {
                    depth,
                    limit: self.limit,
                },
            ));
        }
        inner.classes[prio.index()].push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns the most urgent
    /// pending one (FIFO within its class), or `None` once the queue is
    /// closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("prio queue poisoned");
        loop {
            for class in inner.classes.iter_mut() {
                if let Some(item) = class.pop_front() {
                    return Some(item);
                }
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("prio queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain through [`pop`], new
    /// pushes are refused, and blocked poppers wake as the queue empties.
    ///
    /// [`pop`]: PrioQueue::pop
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("prio queue poisoned");
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Drains and discards everything still pending, returning the items
    /// (used at shutdown to fail queued requests with a typed error).
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("prio queue poisoned");
        let mut out = Vec::new();
        for class in inner.classes.iter_mut() {
            out.extend(class.drain(..));
        }
        out
    }
}

/// Per-key exponentially-weighted moving average of observed cost.
///
/// The Exo-OS predictive-scheduler recipe: `ema = new/4 + 3·old/4`
/// (α = 1/4), integer arithmetic so the estimate is deterministic across
/// hosts. Keys are caller-defined (the serve layer uses
/// `"{config}|{kernel}"`), costs are caller-defined units (the serve
/// layer feeds wall-clock microseconds).
#[derive(Debug, Default)]
pub struct CostEma {
    ema: HashMap<String, u64>,
}

impl CostEma {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observed cost into `key`'s average. The first
    /// observation seeds the average directly.
    pub fn observe(&mut self, key: &str, cost: u64) {
        match self.ema.get_mut(key) {
            Some(ema) => *ema = (cost + 3 * *ema) / 4,
            None => {
                self.ema.insert(key.to_string(), cost);
            }
        }
    }

    /// The current estimate for `key`, if any cost has been observed.
    pub fn predict(&self, key: &str) -> Option<u64> {
        self.ema.get(key).copied()
    }

    /// Number of keys with an estimate.
    pub fn len(&self) -> usize {
        self.ema.len()
    }

    /// Whether no cost has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.ema.is_empty()
    }

    /// Classifies `key` by its estimate against two thresholds:
    /// at most `interactive_max` → [`Priority::Interactive`], at least
    /// `bulk_min` → [`Priority::Bulk`], otherwise (including an unknown
    /// key) → [`Priority::Normal`].
    pub fn classify(&self, key: &str, interactive_max: u64, bulk_min: u64) -> Priority {
        match self.predict(key) {
            Some(cost) if cost <= interactive_max => Priority::Interactive,
            Some(cost) if cost >= bulk_min => Priority::Bulk,
            _ => Priority::Normal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn queue_hands_out_each_index_exactly_once() {
        let q = WorkQueue::new(1000);
        let seen = Mutex::new(vec![0u32; 1000]);
        scoped_workers(8, |_| {
            while let Some(i) = q.take() {
                seen.lock().unwrap()[i] += 1;
            }
        });
        assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn results_are_in_worker_order() {
        let r = scoped_workers(4, |w| w * 10);
        assert_eq!(r, vec![0, 10, 20, 30]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let q = WorkQueue::new(3);
        let r = scoped_workers(0, |w| {
            let mut n = 0;
            while q.take().is_some() {
                n += 1;
            }
            (w, n)
        });
        assert_eq!(r, vec![(0, 3)]);
    }

    #[test]
    fn cancellation_stops_handout_at_job_boundary() {
        let cancel = CancelFlag::new();
        let q = WorkQueue::with_cancel(1_000_000, cancel.clone());
        let done = scoped_workers(4, |_| {
            let mut n = 0u32;
            while let Some(_i) = q.take() {
                n += 1;
                if n == 10 {
                    cancel.cancel();
                }
            }
            n
        });
        let total: u32 = done.iter().sum();
        assert!(cancel.is_cancelled());
        assert!(
            total < 1_000_000,
            "cancellation must stop the sweep early, ran {total}"
        );
    }

    #[test]
    fn worker_panic_propagates_after_drain() {
        let caught = std::panic::catch_unwind(|| {
            scoped_workers(2, |w| {
                if w == 1 {
                    panic!("boom");
                }
                w
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn priority_tags_round_trip() {
        for p in Priority::ALL {
            assert_eq!(p.to_string().parse::<Priority>(), Ok(p));
        }
        assert!("urgent".parse::<Priority>().is_err());
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn prio_queue_drains_urgent_first_fifo_within_class() {
        let q = PrioQueue::new(16);
        q.try_push(Priority::Bulk, "b1").unwrap();
        q.try_push(Priority::Normal, "n1").unwrap();
        q.try_push(Priority::Interactive, "i1").unwrap();
        q.try_push(Priority::Interactive, "i2").unwrap();
        q.try_push(Priority::Bulk, "b2").unwrap();
        q.close();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec!["i1", "i2", "n1", "b1", "b2"]);
    }

    #[test]
    fn prio_queue_rejects_typed_overload_never_blocks() {
        let q = PrioQueue::new(2);
        q.try_push(Priority::Normal, 1).unwrap();
        q.try_push(Priority::Bulk, 2).unwrap();
        let (item, err) = q.try_push(Priority::Interactive, 3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(err, PushError::Overloaded { depth: 2, limit: 2 });
        // Popping frees a slot; admission recovers.
        assert_eq!(q.pop(), Some(1));
        q.try_push(Priority::Interactive, 3).unwrap();
        assert_eq!(q.pop(), Some(3), "interactive overtakes the queued bulk");
    }

    #[test]
    fn prio_queue_close_wakes_blocked_poppers() {
        let q = std::sync::Arc::new(PrioQueue::<u32>::new(4));
        let popper = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        // Give the popper a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert_eq!(
            q.try_push(Priority::Normal, 9).unwrap_err().1,
            PushError::Closed
        );
    }

    #[test]
    fn cost_ema_converges_and_classifies() {
        let mut ema = CostEma::new();
        assert_eq!(ema.predict("cell"), None);
        assert_eq!(ema.classify("cell", 100, 10_000), Priority::Normal);
        ema.observe("cell", 1_000);
        assert_eq!(ema.predict("cell"), Some(1_000), "first observation seeds");
        // Repeated cheap observations pull the average down by 1/4 steps.
        ema.observe("cell", 0);
        assert_eq!(ema.predict("cell"), Some(750));
        for _ in 0..64 {
            ema.observe("cell", 40);
        }
        let settled = ema.predict("cell").unwrap();
        assert!(
            (38..=42).contains(&settled),
            "EMA settles near the new cost, got {settled}"
        );
        assert_eq!(ema.classify("cell", 100, 10_000), Priority::Interactive);
        ema.observe("big", 1_000_000);
        assert_eq!(ema.classify("big", 100, 10_000), Priority::Bulk);
        assert_eq!(ema.len(), 2);
        assert!(!ema.is_empty());
    }
}
