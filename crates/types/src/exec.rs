//! A minimal scoped-thread worker pool for embarrassingly-parallel work.
//!
//! The experiment matrix is a set of independent (configuration ×
//! benchmark) cells; this module provides the std-only building blocks
//! the harness shards them with:
//!
//! * [`CancelFlag`] — a cooperative cancellation token shared between
//!   workers (and, e.g., a Ctrl-C handler).
//! * [`WorkQueue`] — a lock-free shared index queue: workers *steal* the
//!   next unclaimed job index, so a slow cell never stalls the others
//!   (dynamic load balancing over a static job list).
//! * [`scoped_workers`] — spawns `n` scoped worker threads and collects
//!   their results in worker order; panics propagate to the caller once
//!   all workers have stopped.
//!
//! The pool deliberately has no knowledge of what a "job" is: callers
//! index into their own job list with the indices handed out by
//! [`WorkQueue::take`], which makes result ordering the caller's choice
//! (the harness writes results into pre-allocated slots, so output order
//! is deterministic regardless of completion order).
//!
//! # Example
//!
//! ```
//! use ss_types::exec::{scoped_workers, WorkQueue};
//! use std::sync::Mutex;
//!
//! let jobs: Vec<u64> = (0..100).collect();
//! let queue = WorkQueue::new(jobs.len());
//! let results = Mutex::new(vec![0u64; jobs.len()]);
//! scoped_workers(4, |_worker| {
//!     while let Some(i) = queue.take() {
//!         let r = jobs[i] * 2; // the expensive part, outside any lock
//!         results.lock().unwrap()[i] = r;
//!     }
//! });
//! assert_eq!(results.into_inner().unwrap()[21], 42);
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cooperative cancellation token.
///
/// Cloning is cheap (an [`Arc`] bump); every clone observes the same
/// flag. Workers poll [`CancelFlag::is_cancelled`] between jobs, so
/// cancellation takes effect at the next job boundary, never mid-cell.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A shared queue over the job indices `0..total`.
///
/// The queue is a single atomic cursor: [`WorkQueue::take`] hands each
/// caller the next unclaimed index exactly once. This is work *stealing*
/// in its simplest form — idle workers pull the next job the moment they
/// finish, so load imbalance between cells (simulation time varies by an
/// order of magnitude across configurations) never leaves a worker idle
/// while work remains.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    total: usize,
    cancel: CancelFlag,
}

impl WorkQueue {
    /// A queue over `0..total` with a fresh cancellation flag.
    pub fn new(total: usize) -> Self {
        Self::with_cancel(total, CancelFlag::new())
    }

    /// A queue over `0..total` observing an external cancellation flag.
    pub fn with_cancel(total: usize, cancel: CancelFlag) -> Self {
        WorkQueue {
            next: AtomicUsize::new(0),
            total,
            cancel,
        }
    }

    /// Claims the next job index, or `None` when the queue is drained or
    /// cancelled. Each index in `0..total` is handed out exactly once.
    pub fn take(&self) -> Option<usize> {
        if self.cancel.is_cancelled() {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    /// Total number of jobs the queue was created with.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The cancellation flag this queue observes.
    pub fn cancel_flag(&self) -> &CancelFlag {
        &self.cancel
    }
}

/// Spawns `n` scoped worker threads running `worker(worker_index)` and
/// returns their results in worker order (index 0 first), regardless of
/// completion order.
///
/// `n == 0` is clamped to 1. With `n == 1` the worker runs on the
/// calling thread — no thread is spawned, so a single-job run is
/// byte-for-byte the sequential code path.
///
/// # Panics
///
/// If a worker panics, the panic is re-raised on the calling thread
/// after all other workers have finished (callers that need isolation
/// catch panics *inside* the worker, as the harness session does per
/// cell).
pub fn scoped_workers<R, F>(n: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = n.max(1);
    if n == 1 {
        return vec![worker(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..n)
            .map(|w| {
                scope.spawn({
                    let worker = &worker;
                    move || worker(w)
                })
            })
            .collect();
        let first = worker(0);
        let mut out = Vec::with_capacity(n);
        out.push(first);
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Default worker count: the host's available parallelism, 1 if unknown.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn queue_hands_out_each_index_exactly_once() {
        let q = WorkQueue::new(1000);
        let seen = Mutex::new(vec![0u32; 1000]);
        scoped_workers(8, |_| {
            while let Some(i) = q.take() {
                seen.lock().unwrap()[i] += 1;
            }
        });
        assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn results_are_in_worker_order() {
        let r = scoped_workers(4, |w| w * 10);
        assert_eq!(r, vec![0, 10, 20, 30]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let q = WorkQueue::new(3);
        let r = scoped_workers(0, |w| {
            let mut n = 0;
            while q.take().is_some() {
                n += 1;
            }
            (w, n)
        });
        assert_eq!(r, vec![(0, 3)]);
    }

    #[test]
    fn cancellation_stops_handout_at_job_boundary() {
        let cancel = CancelFlag::new();
        let q = WorkQueue::with_cancel(1_000_000, cancel.clone());
        let done = scoped_workers(4, |_| {
            let mut n = 0u32;
            while let Some(_i) = q.take() {
                n += 1;
                if n == 10 {
                    cancel.cancel();
                }
            }
            n
        });
        let total: u32 = done.iter().sum();
        assert!(cancel.is_cancelled());
        assert!(
            total < 1_000_000,
            "cancellation must stop the sweep early, ran {total}"
        );
    }

    #[test]
    fn worker_panic_propagates_after_drain() {
        let caught = std::panic::catch_unwind(|| {
            scoped_workers(2, |w| {
                if w == 1 {
                    panic!("boom");
                }
                w
            })
        });
        assert!(caught.is_err());
    }
}
