//! µ-op classification and the execution-port model.
//!
//! The paper's machine (Table 1) issues up to 6 µ-ops per cycle across:
//! 4 ALU (1 cycle), 1 MulDiv (3/25 cycles, divide not pipelined),
//! 2 FP (3 cycles), 2 FPMulDiv (5/10 cycles, divide not pipelined),
//! 2 load/store AGU ports and 1 extra store port.

use std::fmt;

/// The class of a µ-op, which determines its execution port, latency, and
/// how the scheduler treats it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (also used for logical ops,
    /// shifts, compares and address arithmetic).
    IntAlu,
    /// Pipelined integer multiply (3 cycles).
    IntMul,
    /// Non-pipelined integer divide (25 cycles).
    IntDiv,
    /// Pipelined floating-point add/sub/convert (3 cycles).
    FpAlu,
    /// Pipelined floating-point multiply (5 cycles).
    FpMul,
    /// Non-pipelined floating-point divide/sqrt (10 cycles).
    FpDiv,
    /// Load from memory. Variable latency: the whole point of the paper.
    Load,
    /// Store to memory (address + data; retires from the SQ).
    Store,
    /// Control-flow µ-op; executes on an ALU port, resolves predictions.
    Branch(BranchKind),
}

/// The flavour of a branch µ-op, which drives predictor usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch: direction predicted by TAGE, target by BTB.
    Conditional,
    /// Unconditional direct jump: always taken, target from BTB.
    Direct,
    /// Indirect jump: always taken, target from BTB (may mispredict target).
    Indirect,
    /// Call: pushes the return address onto the RAS.
    Call,
    /// Return: target predicted by the RAS.
    Return,
}

impl OpClass {
    /// Base execution latency in cycles, excluding any memory time.
    ///
    /// For [`OpClass::Load`] this is the L1 *load-to-use* latency (4 cycles
    /// in the paper's Table 1): the number of cycles between the load's
    /// issue and the earliest issue of a dependent, assuming an L1 hit and
    /// no bank conflict.
    #[inline]
    pub const fn base_latency(self) -> u64 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 25,
            OpClass::FpAlu => 3,
            OpClass::FpMul => 5,
            OpClass::FpDiv => 10,
            OpClass::Load => 4,
            OpClass::Store => 1,
            OpClass::Branch(_) => 1,
        }
    }

    /// Whether the functional unit is pipelined (can accept a new µ-op
    /// every cycle). Divides are not (Table 1, `*not pipelined`).
    #[inline]
    pub const fn pipelined(self) -> bool {
        !matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }

    /// The execution-port class this µ-op issues to.
    #[inline]
    pub const fn port(self) -> ExecPort {
        match self {
            OpClass::IntAlu | OpClass::Branch(_) => ExecPort::Alu,
            OpClass::IntMul | OpClass::IntDiv => ExecPort::MulDiv,
            OpClass::FpAlu => ExecPort::Fp,
            OpClass::FpMul | OpClass::FpDiv => ExecPort::FpMulDiv,
            OpClass::Load => ExecPort::LoadStore,
            OpClass::Store => ExecPort::LoadStore,
        }
    }

    /// Whether this µ-op reads or writes memory.
    #[inline]
    pub const fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether this µ-op is a load.
    #[inline]
    pub const fn is_load(self) -> bool {
        matches!(self, OpClass::Load)
    }

    /// Whether this µ-op is a store.
    #[inline]
    pub const fn is_store(self) -> bool {
        matches!(self, OpClass::Store)
    }

    /// Whether this µ-op is a branch of any kind.
    #[inline]
    pub const fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch(_))
    }

    /// The register class of this µ-op's destination (and, by the synthetic
    /// ISA's convention, its sources).
    #[inline]
    pub const fn reg_class(self) -> RegClass {
        match self {
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => RegClass::Float,
            _ => RegClass::Int,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMul => "mul",
            OpClass::IntDiv => "div",
            OpClass::FpAlu => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch(BranchKind::Conditional) => "br.cond",
            OpClass::Branch(BranchKind::Direct) => "jmp",
            OpClass::Branch(BranchKind::Indirect) => "jmp.ind",
            OpClass::Branch(BranchKind::Call) => "call",
            OpClass::Branch(BranchKind::Return) => "ret",
        };
        f.write_str(s)
    }
}

/// One of the machine's execution-port classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecPort {
    /// Integer ALU / branch port (4 available, 1-cycle ops).
    Alu,
    /// Integer multiply/divide port (1 available).
    MulDiv,
    /// Floating-point add port (2 available).
    Fp,
    /// Floating-point multiply/divide port (2 available).
    FpMulDiv,
    /// Load/store AGU port (2 load-or-store, plus 1 store-only).
    LoadStore,
}

impl ExecPort {
    /// All port classes, for iteration.
    pub const ALL: [ExecPort; 5] = [
        ExecPort::Alu,
        ExecPort::MulDiv,
        ExecPort::Fp,
        ExecPort::FpMulDiv,
        ExecPort::LoadStore,
    ];
}

/// Register file class: the machine has separate INT and FP physical
/// register files (256 entries each in Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegClass {
    /// Integer register file.
    #[default]
    Int,
    /// Floating-point register file.
    Float,
}

impl RegClass {
    /// Index for class-keyed arrays (`[thing; 2]`).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Float => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table1() {
        assert_eq!(OpClass::IntAlu.base_latency(), 1);
        assert_eq!(OpClass::IntMul.base_latency(), 3);
        assert_eq!(OpClass::IntDiv.base_latency(), 25);
        assert_eq!(OpClass::FpAlu.base_latency(), 3);
        assert_eq!(OpClass::FpMul.base_latency(), 5);
        assert_eq!(OpClass::FpDiv.base_latency(), 10);
        assert_eq!(OpClass::Load.base_latency(), 4); // load-to-use
    }

    #[test]
    fn divides_not_pipelined() {
        assert!(!OpClass::IntDiv.pipelined());
        assert!(!OpClass::FpDiv.pipelined());
        assert!(OpClass::IntMul.pipelined());
        assert!(OpClass::Load.pipelined());
    }

    #[test]
    fn port_assignment() {
        assert_eq!(OpClass::IntAlu.port(), ExecPort::Alu);
        assert_eq!(
            OpClass::Branch(BranchKind::Conditional).port(),
            ExecPort::Alu
        );
        assert_eq!(OpClass::Load.port(), ExecPort::LoadStore);
        assert_eq!(OpClass::Store.port(), ExecPort::LoadStore);
        assert_eq!(OpClass::FpDiv.port(), ExecPort::FpMulDiv);
    }

    #[test]
    fn classification_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::Load.is_load());
        assert!(!OpClass::Load.is_store());
        assert!(OpClass::Branch(BranchKind::Return).is_branch());
    }

    #[test]
    fn reg_classes() {
        assert_eq!(OpClass::FpMul.reg_class(), RegClass::Float);
        assert_eq!(OpClass::Load.reg_class(), RegClass::Int);
        assert_eq!(RegClass::Int.index(), 0);
        assert_eq!(RegClass::Float.index(), 1);
    }

    #[test]
    fn display_nonempty() {
        for c in [
            OpClass::IntAlu,
            OpClass::Load,
            OpClass::Branch(BranchKind::Call),
        ] {
            assert!(!format!("{c}").is_empty());
        }
    }
}
