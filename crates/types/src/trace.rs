//! Cycle-accurate pipeline-observability events and the sink contract.
//!
//! The pipeline in `ss-core` is instrumented at every stage boundary with
//! calls into a [`TraceSink`]. The sink is a *compile-time* strategy: the
//! simulator is generic over it, and the no-op [`NullSink`] advertises
//! `ENABLED = false`, so every instrumentation site (`if S::ENABLED {
//! sink.record(..) }`) monomorphizes away entirely — an untraced build
//! pays zero cycles and zero bytes for the subsystem.
//!
//! The event taxonomy follows one µ-op through its lifecycle:
//!
//! | event | meaning |
//! |---|---|
//! | [`TraceEvent::Fetch`] | entered the frontend (back-dated to the fetch cycle; recorded once the µ-op reaches dispatch and has a sequence number) |
//! | [`TraceEvent::Rename`] | renamed and inserted into ROB/IQ/LSQ |
//! | [`TraceEvent::SpecWakeup`] | a load issued with a *speculative* wakeup of its dependents at the recorded cycle |
//! | [`TraceEvent::Issue`] | selected by the scheduler (or replayed from the recovery buffer) |
//! | [`TraceEvent::Execute`] | reached the execution stage with verified operands |
//! | [`TraceEvent::ReplaySquash`] | squashed between issue and execute by a schedule misspeculation, with the [`ReplayCause`] and the triggering µ-op |
//! | [`TraceEvent::RecoveryEnter`] | reinserted into the Morancho-style recovery buffer |
//! | [`TraceEvent::Commit`] | retired from the ROB head |
//! | [`TraceEvent::Flush`] | discarded by a branch-misprediction flush |
//! | [`TraceEvent::Occupancy`] | per-cycle structure occupancy (ROB/IQ/LQ/SQ/recovery/in-flight) |
//!
//! Memory-order-violation squashes are not a separate event: the load's
//! re-issue appears as a fresh [`TraceEvent::Issue`], and the violating
//! window's recycling shows up through the ordinary issue/execute events.
//!
//! Events are emitted in *discovery* order, which is not globally sorted
//! by cycle (a `Fetch` is back-dated once its µ-op reaches dispatch). The
//! `cycle` field is authoritative; consumers sort or bucket by it.
//!
//! Every event has a stable single-line text encoding ([`fmt::Display`] /
//! [`std::str::FromStr`]) used by the spill-to-disk sink and the trace
//! artifacts attached to fuzz repros.

use crate::ids::{Cycle, Pc, SeqNum};
use crate::op::{BranchKind, OpClass};
use crate::replay::ReplayCause;
use std::fmt;
use std::str::FromStr;

/// One structured pipeline-observability event.
///
/// `Copy` and small by design: hot-path sinks store these in a ring by
/// value, with no allocation per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// µ-op entered the frontend at `cycle` (recorded at dispatch, when
    /// the sequence number exists; the cycle is the original fetch
    /// cycle). Wrong-path µ-ops that die in the frontend before dispatch
    /// are never traced.
    Fetch {
        /// Fetch cycle (back-dated).
        cycle: Cycle,
        /// Dynamic sequence number. Reused by the refetched correct path
        /// after a branch flush; renderers treat a repeated `Fetch` for
        /// the same seq as a new generation.
        seq: SeqNum,
        /// Program counter.
        pc: Pc,
        /// µ-op class.
        class: OpClass,
        /// Fetched past an unresolved mispredicted branch.
        wrong_path: bool,
    },
    /// µ-op renamed and dispatched into the ROB/IQ (and LQ/SQ for memory
    /// µ-ops).
    Rename {
        /// Dispatch cycle.
        cycle: Cycle,
        /// Dynamic sequence number.
        seq: SeqNum,
    },
    /// A load issued with a speculative wakeup: its dependents will be
    /// selectable at `wake`, before the load's hit/miss outcome is known.
    SpecWakeup {
        /// Issue cycle of the load.
        cycle: Cycle,
        /// The load's sequence number.
        seq: SeqNum,
        /// Cycle its dependents become selectable.
        wake: Cycle,
    },
    /// µ-op selected for issue.
    Issue {
        /// Issue cycle.
        cycle: Cycle,
        /// Dynamic sequence number.
        seq: SeqNum,
        /// Issued out of the recovery buffer (a replay) rather than the
        /// scheduler's IQ scan.
        from_recovery: bool,
    },
    /// µ-op reached the execution stage with all operands available.
    Execute {
        /// Execution cycle.
        cycle: Cycle,
        /// Dynamic sequence number.
        seq: SeqNum,
        /// Completion cycle (result available / commit-eligible).
        done_at: Cycle,
    },
    /// µ-op squashed between issue and execute by a schedule
    /// misspeculation.
    ReplaySquash {
        /// Squash cycle.
        cycle: Cycle,
        /// The squashed µ-op.
        seq: SeqNum,
        /// The µ-op that triggered the replay: the late-producing load
        /// when it can be identified, otherwise the µ-op that failed
        /// operand verification at execute.
        trigger: SeqNum,
        /// Why the replay happened.
        cause: ReplayCause,
    },
    /// µ-op reinserted into the recovery buffer to await replay
    /// (non-memory µ-ops; memory µ-ops retain their IQ entry instead).
    RecoveryEnter {
        /// Reinsertion cycle.
        cycle: Cycle,
        /// Dynamic sequence number.
        seq: SeqNum,
    },
    /// µ-op retired from the ROB head.
    Commit {
        /// Commit cycle.
        cycle: Cycle,
        /// Dynamic sequence number.
        seq: SeqNum,
    },
    /// µ-op discarded by a branch-misprediction flush (its sequence
    /// number will be reused by the refetched path).
    Flush {
        /// Flush cycle.
        cycle: Cycle,
        /// Dynamic sequence number.
        seq: SeqNum,
    },
    /// Per-cycle occupancy of the pipeline structures.
    Occupancy {
        /// Sampled cycle.
        cycle: Cycle,
        /// Occupied ROB entries.
        rob: u32,
        /// Occupied IQ entries.
        iq: u32,
        /// Occupied LQ entries.
        lq: u32,
        /// Occupied SQ entries.
        sq: u32,
        /// µ-ops waiting in the recovery buffer.
        recovery: u32,
        /// µ-ops in the issue-to-execute pipe.
        inflight: u32,
    },
}

impl TraceEvent {
    /// The cycle this event is stamped with.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Rename { cycle, .. }
            | TraceEvent::SpecWakeup { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Execute { cycle, .. }
            | TraceEvent::ReplaySquash { cycle, .. }
            | TraceEvent::RecoveryEnter { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::Flush { cycle, .. }
            | TraceEvent::Occupancy { cycle, .. } => cycle,
        }
    }

    /// The µ-op this event belongs to (`None` for per-cycle occupancy
    /// samples).
    pub fn seq(&self) -> Option<SeqNum> {
        match *self {
            TraceEvent::Fetch { seq, .. }
            | TraceEvent::Rename { seq, .. }
            | TraceEvent::SpecWakeup { seq, .. }
            | TraceEvent::Issue { seq, .. }
            | TraceEvent::Execute { seq, .. }
            | TraceEvent::ReplaySquash { seq, .. }
            | TraceEvent::RecoveryEnter { seq, .. }
            | TraceEvent::Commit { seq, .. }
            | TraceEvent::Flush { seq, .. } => Some(seq),
            TraceEvent::Occupancy { .. } => None,
        }
    }

    /// Short stable stage tag (also the first token of the text
    /// encoding).
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Fetch { .. } => "F",
            TraceEvent::Rename { .. } => "D",
            TraceEvent::SpecWakeup { .. } => "W",
            TraceEvent::Issue { .. } => "I",
            TraceEvent::Execute { .. } => "E",
            TraceEvent::ReplaySquash { .. } => "R",
            TraceEvent::RecoveryEnter { .. } => "V",
            TraceEvent::Commit { .. } => "C",
            TraceEvent::Flush { .. } => "X",
            TraceEvent::Occupancy { .. } => "O",
        }
    }

    /// Human-readable stage name (Perfetto track names, report text).
    pub fn stage_name(&self) -> &'static str {
        match self {
            TraceEvent::Fetch { .. } => "fetch",
            TraceEvent::Rename { .. } => "rename",
            TraceEvent::SpecWakeup { .. } => "spec-wakeup",
            TraceEvent::Issue { .. } => "issue",
            TraceEvent::Execute { .. } => "execute",
            TraceEvent::ReplaySquash { .. } => "replay-squash",
            TraceEvent::RecoveryEnter { .. } => "recovery",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::Flush { .. } => "flush",
            TraceEvent::Occupancy { .. } => "occupancy",
        }
    }
}

/// Compact stable code for a µ-op class (trace text encoding).
pub fn class_code(class: OpClass) -> &'static str {
    match class {
        OpClass::IntAlu => "alu",
        OpClass::IntMul => "mul",
        OpClass::IntDiv => "div",
        OpClass::FpAlu => "fpalu",
        OpClass::FpMul => "fpmul",
        OpClass::FpDiv => "fpdiv",
        OpClass::Load => "ld",
        OpClass::Store => "st",
        OpClass::Branch(BranchKind::Conditional) => "br.c",
        OpClass::Branch(BranchKind::Direct) => "br.d",
        OpClass::Branch(BranchKind::Indirect) => "br.i",
        OpClass::Branch(BranchKind::Call) => "br.call",
        OpClass::Branch(BranchKind::Return) => "br.ret",
    }
}

/// Parses a [`class_code`] back into an [`OpClass`].
pub fn class_from_code(code: &str) -> Option<OpClass> {
    Some(match code {
        "alu" => OpClass::IntAlu,
        "mul" => OpClass::IntMul,
        "div" => OpClass::IntDiv,
        "fpalu" => OpClass::FpAlu,
        "fpmul" => OpClass::FpMul,
        "fpdiv" => OpClass::FpDiv,
        "ld" => OpClass::Load,
        "st" => OpClass::Store,
        "br.c" => OpClass::Branch(BranchKind::Conditional),
        "br.d" => OpClass::Branch(BranchKind::Direct),
        "br.i" => OpClass::Branch(BranchKind::Indirect),
        "br.call" => OpClass::Branch(BranchKind::Call),
        "br.ret" => OpClass::Branch(BranchKind::Return),
        _ => return None,
    })
}

/// Stable code for a replay cause (trace text encoding).
fn cause_code(cause: ReplayCause) -> &'static str {
    match cause {
        ReplayCause::L1Miss => "miss",
        ReplayCause::BankConflict => "bank",
        ReplayCause::PrfConflict => "prf",
    }
}

fn cause_from_code(code: &str) -> Option<ReplayCause> {
    Some(match code {
        "miss" => ReplayCause::L1Miss,
        "bank" => ReplayCause::BankConflict,
        "prf" => ReplayCause::PrfConflict,
        _ => return None,
    })
}

impl fmt::Display for TraceEvent {
    /// The stable one-line text encoding (round-trips through
    /// [`FromStr`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Fetch {
                cycle,
                seq,
                pc,
                class,
                wrong_path,
            } => write!(
                f,
                "F c={} s={} pc={:#x} cl={} wp={}",
                cycle.get(),
                seq.get(),
                pc.get(),
                class_code(class),
                u8::from(wrong_path)
            ),
            TraceEvent::Rename { cycle, seq } => write!(f, "D c={} s={}", cycle.get(), seq.get()),
            TraceEvent::SpecWakeup { cycle, seq, wake } => {
                write!(f, "W c={} s={} wake={}", cycle.get(), seq.get(), wake.get())
            }
            TraceEvent::Issue {
                cycle,
                seq,
                from_recovery,
            } => write!(
                f,
                "I c={} s={} rec={}",
                cycle.get(),
                seq.get(),
                u8::from(from_recovery)
            ),
            TraceEvent::Execute {
                cycle,
                seq,
                done_at,
            } => write!(
                f,
                "E c={} s={} done={}",
                cycle.get(),
                seq.get(),
                done_at.get()
            ),
            TraceEvent::ReplaySquash {
                cycle,
                seq,
                trigger,
                cause,
            } => write!(
                f,
                "R c={} s={} trig={} cause={}",
                cycle.get(),
                seq.get(),
                trigger.get(),
                cause_code(cause)
            ),
            TraceEvent::RecoveryEnter { cycle, seq } => {
                write!(f, "V c={} s={}", cycle.get(), seq.get())
            }
            TraceEvent::Commit { cycle, seq } => write!(f, "C c={} s={}", cycle.get(), seq.get()),
            TraceEvent::Flush { cycle, seq } => write!(f, "X c={} s={}", cycle.get(), seq.get()),
            TraceEvent::Occupancy {
                cycle,
                rob,
                iq,
                lq,
                sq,
                recovery,
                inflight,
            } => write!(
                f,
                "O c={} rob={rob} iq={iq} lq={lq} sq={sq} rec={recovery} inf={inflight}",
                cycle.get()
            ),
        }
    }
}

impl FromStr for TraceEvent {
    type Err = String;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let mut tokens = line.split_whitespace();
        let tag = tokens.next().ok_or("empty trace line")?;
        let mut fields = std::collections::HashMap::new();
        for t in tokens {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| format!("malformed trace field `{t}`"))?;
            fields.insert(k, v);
        }
        let num = |key: &str| -> Result<u64, String> {
            let v = fields
                .get(key)
                .ok_or_else(|| format!("trace line `{line}` missing `{key}`"))?;
            if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse()
            }
            .map_err(|e| format!("bad `{key}` in `{line}`: {e}"))
        };
        let cycle = Cycle::new(num("c")?);
        let seq = |fields_needed: bool| -> Result<SeqNum, String> {
            debug_assert!(fields_needed);
            Ok(SeqNum::new(num("s")?))
        };
        Ok(match tag {
            "F" => TraceEvent::Fetch {
                cycle,
                seq: seq(true)?,
                pc: Pc::new(num("pc")?),
                class: fields
                    .get("cl")
                    .and_then(|c| class_from_code(c))
                    .ok_or_else(|| format!("bad class in `{line}`"))?,
                wrong_path: num("wp")? != 0,
            },
            "D" => TraceEvent::Rename {
                cycle,
                seq: seq(true)?,
            },
            "W" => TraceEvent::SpecWakeup {
                cycle,
                seq: seq(true)?,
                wake: Cycle::new(num("wake")?),
            },
            "I" => TraceEvent::Issue {
                cycle,
                seq: seq(true)?,
                from_recovery: num("rec")? != 0,
            },
            "E" => TraceEvent::Execute {
                cycle,
                seq: seq(true)?,
                done_at: Cycle::new(num("done")?),
            },
            "R" => TraceEvent::ReplaySquash {
                cycle,
                seq: seq(true)?,
                trigger: SeqNum::new(num("trig")?),
                cause: fields
                    .get("cause")
                    .and_then(|c| cause_from_code(c))
                    .ok_or_else(|| format!("bad cause in `{line}`"))?,
            },
            "V" => TraceEvent::RecoveryEnter {
                cycle,
                seq: seq(true)?,
            },
            "C" => TraceEvent::Commit {
                cycle,
                seq: seq(true)?,
            },
            "X" => TraceEvent::Flush {
                cycle,
                seq: seq(true)?,
            },
            "O" => TraceEvent::Occupancy {
                cycle,
                rob: num("rob")? as u32,
                iq: num("iq")? as u32,
                lq: num("lq")? as u32,
                sq: num("sq")? as u32,
                recovery: num("rec")? as u32,
                inflight: num("inf")? as u32,
            },
            other => return Err(format!("unknown trace event tag `{other}`")),
        })
    }
}

/// The sink contract the pipeline's instrumentation feeds.
///
/// Implementations decide what to keep: a bounded ring ([`recent`] feeds
/// failure reports), an unbounded capture for a rendering window, or a
/// spill-to-disk stream. The simulator is generic over the sink, so the
/// [`NullSink`]'s `ENABLED = false` removes every instrumentation site at
/// monomorphization time.
///
/// [`recent`]: TraceSink::recent
pub trait TraceSink {
    /// Compile-time enable flag. Every instrumentation site is guarded
    /// by `if S::ENABLED`, so a `false` here makes tracing free.
    const ENABLED: bool = true;

    /// Records one event. Called on the simulation hot path; keep it
    /// allocation-free where possible.
    fn record(&mut self, ev: TraceEvent);

    /// A snapshot of the most recent events, oldest first. Attached to
    /// [`DeadlockReport`](crate::DeadlockReport) and
    /// [`DivergenceReport`](crate::DivergenceReport) so failures come
    /// with a replayable pipeline picture. Unbounded sinks may return a
    /// bounded tail.
    fn recent(&self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// The zero-cost disabled sink: `ENABLED = false` compiles every
/// instrumentation site out of the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Fetch {
                cycle: Cycle::new(10),
                seq: SeqNum::new(3),
                pc: Pc::new(0x4a0),
                class: OpClass::Load,
                wrong_path: false,
            },
            TraceEvent::Rename {
                cycle: Cycle::new(14),
                seq: SeqNum::new(3),
            },
            TraceEvent::SpecWakeup {
                cycle: Cycle::new(20),
                seq: SeqNum::new(3),
                wake: Cycle::new(24),
            },
            TraceEvent::Issue {
                cycle: Cycle::new(20),
                seq: SeqNum::new(3),
                from_recovery: true,
            },
            TraceEvent::Execute {
                cycle: Cycle::new(25),
                seq: SeqNum::new(3),
                done_at: Cycle::new(29),
            },
            TraceEvent::ReplaySquash {
                cycle: Cycle::new(25),
                seq: SeqNum::new(5),
                trigger: SeqNum::new(3),
                cause: ReplayCause::BankConflict,
            },
            TraceEvent::RecoveryEnter {
                cycle: Cycle::new(25),
                seq: SeqNum::new(5),
            },
            TraceEvent::Commit {
                cycle: Cycle::new(31),
                seq: SeqNum::new(3),
            },
            TraceEvent::Flush {
                cycle: Cycle::new(40),
                seq: SeqNum::new(9),
            },
            TraceEvent::Occupancy {
                cycle: Cycle::new(41),
                rob: 100,
                iq: 30,
                lq: 12,
                sq: 8,
                recovery: 2,
                inflight: 6,
            },
        ]
    }

    #[test]
    fn text_encoding_round_trips_every_variant() {
        for ev in sample_events() {
            let line = ev.to_string();
            let back: TraceEvent = line.parse().unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "round-trip failed for `{line}`");
        }
    }

    #[test]
    fn every_class_code_round_trips() {
        use OpClass::*;
        let classes = [
            IntAlu,
            IntMul,
            IntDiv,
            FpAlu,
            FpMul,
            FpDiv,
            Load,
            Store,
            Branch(BranchKind::Conditional),
            Branch(BranchKind::Direct),
            Branch(BranchKind::Indirect),
            Branch(BranchKind::Call),
            Branch(BranchKind::Return),
        ];
        for c in classes {
            assert_eq!(class_from_code(class_code(c)), Some(c));
        }
        assert_eq!(class_from_code("bogus"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<TraceEvent>().is_err());
        assert!("Z c=1 s=2".parse::<TraceEvent>().is_err());
        assert!("F c=1".parse::<TraceEvent>().is_err(), "missing fields");
        assert!("F c=x s=1 pc=0 cl=ld wp=0".parse::<TraceEvent>().is_err());
        assert!("R c=1 s=2 trig=3 cause=??".parse::<TraceEvent>().is_err());
    }

    #[test]
    fn accessors_cover_every_variant() {
        for ev in sample_events() {
            assert!(!ev.tag().is_empty());
            assert!(!ev.stage_name().is_empty());
            let _ = ev.cycle();
            match ev {
                TraceEvent::Occupancy { .. } => assert!(ev.seq().is_none()),
                _ => assert!(ev.seq().is_some()),
            }
        }
    }

    #[test]
    fn null_sink_is_disabled_and_inert() {
        const { assert!(!NullSink::ENABLED) };
        let mut s = NullSink;
        s.record(TraceEvent::Commit {
            cycle: Cycle::new(1),
            seq: SeqNum::new(1),
        });
        assert!(s.recent().is_empty());
    }
}
