//! Seeded-jitter exponential backoff for retrying clients.
//!
//! The serve-layer client retries connect failures and `overloaded`
//! rejections; retrying a loaded server on a fixed cadence synchronizes
//! the retry storm with the overload it is reacting to. [`Backoff`]
//! spreads retries with the classic "equal jitter" recipe — the delay
//! for attempt *n* is drawn uniformly from `[cap/2, cap]` where
//! `cap = min(base · 2ⁿ, max)` — but from a **seeded** generator
//! ([`SplitMix64`]), so a given client's retry schedule is fully
//! deterministic and replayable: the chaos harness can assert on exact
//! retry timing, and two clients with different seeds never beat in
//! lockstep.
//!
//! Delays are plain millisecond counts; the caller decides how to sleep
//! (the client CLI uses `std::thread::sleep`).

use crate::rng::SplitMix64;

/// Deterministic exponential backoff with equal jitter.
///
/// ```
/// use ss_types::backoff::Backoff;
///
/// let mut b = Backoff::new(100, 2_000, 0x5EED);
/// let first = b.next_delay_ms(); // uniform in [50, 100]
/// assert!((50..=100).contains(&first));
/// let second = b.next_delay_ms(); // uniform in [100, 200]
/// assert!((100..=200).contains(&second));
/// // The schedule is a pure function of the seed.
/// let mut again = Backoff::new(100, 2_000, 0x5EED);
/// assert_eq!(again.next_delay_ms(), first);
/// ```
#[derive(Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// A backoff starting at `base_ms` (clamped to ≥ 1), doubling per
    /// attempt, never exceeding `cap_ms`, jittered by a generator seeded
    /// with `seed`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        let base_ms = base_ms.max(1);
        Backoff {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            attempt: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Attempts drawn so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay in milliseconds: uniform in `[cap/2, cap]` with
    /// `cap = min(base · 2^attempt, cap_ms)`. Advances the attempt
    /// counter.
    pub fn next_delay_ms(&mut self) -> u64 {
        // 2^63 already saturates any sane cap; avoid the shift overflow.
        let exp = self.attempt.min(62);
        let cap = self
            .base_ms
            .saturating_mul(1u64 << exp)
            .min(self.cap_ms)
            .max(1);
        self.attempt += 1;
        let lo = cap / 2;
        (lo + self.rng.next_u64() % (cap - lo + 1)).max(1)
    }

    /// Forgets progress: the next delay starts back at the base. The
    /// jitter stream is *not* rewound, so a reset schedule still never
    /// repeats the original byte-for-byte.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_within_jitter_envelopes() {
        let mut b = Backoff::new(100, 10_000, 42);
        for attempt in 0..12u32 {
            let cap = 100u64.saturating_mul(1 << attempt).min(10_000);
            let d = b.next_delay_ms();
            assert!(
                (cap / 2..=cap).contains(&d),
                "attempt {attempt}: delay {d} outside [{}, {cap}]",
                cap / 2
            );
        }
    }

    #[test]
    fn schedule_is_deterministic_in_the_seed() {
        let mut a = Backoff::new(50, 5_000, 0xB5);
        let mut b = Backoff::new(50, 5_000, 0xB5);
        let mut c = Backoff::new(50, 5_000, 0xB6);
        let sa: Vec<u64> = (0..8).map(|_| a.next_delay_ms()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_delay_ms()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_delay_ms()).collect();
        assert_eq!(sa, sb, "same seed, same schedule");
        assert_ne!(sa, sc, "different seed, different jitter");
    }

    #[test]
    fn cap_bounds_every_delay_and_reset_restarts() {
        let mut b = Backoff::new(100, 700, 7);
        for _ in 0..20 {
            assert!(b.next_delay_ms() <= 700);
        }
        assert_eq!(b.attempts(), 20);
        b.reset();
        assert_eq!(b.attempts(), 0);
        let d = b.next_delay_ms();
        assert!((50..=100).contains(&d), "reset returns to the base: {d}");
    }

    #[test]
    fn degenerate_parameters_are_clamped_sane() {
        let mut b = Backoff::new(0, 0, 1);
        for _ in 0..4 {
            let d = b.next_delay_ms();
            assert!(d >= 1, "zero base clamps to a real delay, got {d}");
        }
    }
}
