//! Vendored pseudo-random number generation.
//!
//! The simulator only needs *deterministic, seedable, statistically
//! decent* randomness — for synthetic workload generation and for
//! randomized tests — so we vendor the public-domain SplitMix64 and
//! xoshiro256** algorithms (Blackman & Vigna) instead of depending on
//! the external `rand` crate. This keeps the whole workspace buildable
//! with no network access to crates.io.
//!
//! [`SplitMix64`] is used for seeding/stream-splitting; [`Xoshiro256`]
//! is the general-purpose generator.

/// SplitMix64: a tiny 64-bit generator with a single word of state.
///
/// Primarily used to expand one `u64` seed into the larger state of
/// [`Xoshiro256`], but good enough on its own for address scrambling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's general-purpose PRNG.
///
/// 256 bits of state, seeded from a single `u64` via [`SplitMix64`]
/// (the seeding procedure the algorithm's authors recommend).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose full state is expanded from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform value in `[0, bound)` via the multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// A uniform percentage in `[0, 100)`.
    pub fn percent(&mut self) -> u8 {
        self.next_below(100) as u8
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0 (public-domain reference sequence).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn next_below_stays_in_range_and_covers_it() {
        let mut r = Xoshiro256::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn percent_distribution_is_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let below_30 = (0..10_000).filter(|_| r.percent() < 30).count();
        assert!((2_700..=3_300).contains(&below_30), "got {below_30}");
    }

    #[test]
    fn bools_are_roughly_fair() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| r.next_bool()).count();
        assert!((4_600..=5_400).contains(&heads), "got {heads}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}

crate::impl_persist!(SplitMix64 { state });
crate::impl_persist!(Xoshiro256 { s });
