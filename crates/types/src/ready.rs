//! Scheduler bookkeeping primitives for the event-driven ready queue.
//!
//! The pipeline's issue stage maintains — rather than recomputes — the set
//! of µ-ops eligible for selection. These types are the building blocks:
//!
//! * [`SeqBitmap`] — a ring bitset over [`SeqNum`]s holding the *ready
//!   set*; iteration is oldest-first (program order), so selection keeps
//!   the age priority of the scan it replaces.
//! * [`WakeHeap`] — a lazy-deletion min-heap of future wake-up times:
//!   a consumer whose sources all carry finite `wake_at` times in the
//!   future is parked here keyed by the latest of them.
//! * [`EpochRing`] — per-sequence-slot generation counters. Every
//!   (re-)registration of a µ-op bumps its epoch, instantly invalidating
//!   every stale heap entry, watch-list reference, or store-waiter record
//!   left behind by the previous registration. Consumers of indirect
//!   references compare epochs instead of performing O(n) removals.
//! * [`VecPool`] — recycles the per-issue-group `Vec`s that flow through
//!   the issue→execute pipe and the recovery buffer, so the steady-state
//!   hot loop performs no heap allocation.
//!
//! All structures are sized to a power of two at construction and index
//! by `seq & mask`; they rely on the pipeline invariant that live
//! sequence numbers span less than one reorder-buffer's worth at any
//! time, so no two live µ-ops ever share a slot.

use crate::ids::{Cycle, SeqNum};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Rounds `n` up to a power of two (minimum 64).
fn ring_capacity(n: usize) -> usize {
    n.max(64).next_power_of_two()
}

/// A ring bitset over sequence numbers with oldest-first iteration.
///
/// Capacity is rounded up to a power of two; a sequence number occupies
/// slot `seq & (capacity − 1)`. The caller must guarantee that the live
/// sequence window never exceeds the capacity (the pipeline's ROB bound
/// provides exactly this).
#[derive(Debug, Clone)]
pub struct SeqBitmap {
    words: Vec<u64>,
    mask: u64,
    len: usize,
}

impl SeqBitmap {
    /// Creates a bitmap able to track a live window of `capacity`
    /// sequence numbers (rounded up to a power of two, minimum 64).
    pub fn new(capacity: usize) -> Self {
        let cap = ring_capacity(capacity);
        SeqBitmap {
            words: vec![0; cap / 64],
            mask: (cap - 1) as u64,
            len: 0,
        }
    }

    /// Slot capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot(&self, seq: SeqNum) -> (usize, u64) {
        let s = seq.get() & self.mask;
        ((s / 64) as usize, 1u64 << (s % 64))
    }

    /// Sets the bit for `seq`; returns `true` if it was newly set.
    pub fn insert(&mut self, seq: SeqNum) -> bool {
        let (w, b) = self.slot(seq);
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        self.len += usize::from(fresh);
        fresh
    }

    /// Clears the bit for `seq`; returns `true` if it was set.
    pub fn remove(&mut self, seq: SeqNum) -> bool {
        let (w, b) = self.slot(seq);
        let was = self.words[w] & b != 0;
        self.words[w] &= !b;
        self.len -= usize::from(was);
        was
    }

    /// Whether the bit for `seq` is set.
    pub fn contains(&self, seq: SeqNum) -> bool {
        let (w, b) = self.slot(seq);
        self.words[w] & b != 0
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Collects every set sequence number in `[base, base + span)` into
    /// `out`, in increasing (oldest-first) order. `span` must not exceed
    /// the capacity. Word-skipping makes this O(capacity/64 + matches)
    /// rather than O(span).
    pub fn collect_range(&self, base: SeqNum, span: usize, out: &mut Vec<SeqNum>) {
        self.collect_range_capped(base, span, usize::MAX, out);
    }

    /// Like [`Self::collect_range`], but stops after the `cap` *oldest*
    /// matches. The ring is walked in slot order starting at `base`'s
    /// slot, which IS age order (live seqs span less than one capacity),
    /// so no sort is needed and the walk exits as soon as `cap` entries
    /// are gathered — the issue stage collects an issue-width-sized batch
    /// out of a possibly IQ-sized ready set this way.
    pub fn collect_range_capped(
        &self,
        base: SeqNum,
        span: usize,
        cap: usize,
        out: &mut Vec<SeqNum>,
    ) {
        debug_assert!(span <= self.capacity(), "span exceeds ring capacity");
        if self.len == 0 || span == 0 || cap == 0 {
            return;
        }
        let start = base.get();
        let start_slot = start & self.mask;
        let first_word = (start_slot / 64) as usize;
        let low_bits = (1u64 << (start_slot % 64)) - 1;
        let nwords = self.words.len();
        let mut taken = 0usize;
        // Walk words in ring order from `base`'s slot; the first word is
        // visited twice (its high bits lead the walk, its low bits close
        // it), so every slot is seen exactly once in age order.
        for k in 0..=nwords {
            let w_idx = (first_word + k) % nwords;
            let mut word = self.words[w_idx];
            if k == 0 {
                word &= !low_bits;
            } else if k == nwords {
                word &= low_bits;
            }
            while word != 0 {
                let bit = word.trailing_zeros() as u64;
                word &= word - 1;
                let slot = w_idx as u64 * 64 + bit;
                // Age of this slot along the ring walk; the absolute seq
                // is the unique value in [start, start + cap) congruent
                // to `slot` mod cap.
                let age = slot.wrapping_sub(start) & self.mask;
                if age >= span as u64 {
                    // Ages only grow along the walk: nothing further in
                    // this word or any later word can be in range.
                    return;
                }
                out.push(SeqNum::new(start + age));
                taken += 1;
                if taken == cap {
                    return;
                }
            }
        }
    }
}

/// A lazy-deletion min-heap of `(wake_at, seq, epoch)` entries.
///
/// Entries are never removed eagerly; the owner validates the epoch
/// against its [`EpochRing`] when an entry pops and discards stale ones.
#[derive(Debug, Clone, Default)]
pub struct WakeHeap {
    heap: BinaryHeap<Reverse<(Cycle, SeqNum, u32)>>,
}

impl WakeHeap {
    /// Creates an empty heap with room for `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        WakeHeap {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }

    /// Parks `seq` (at registration `epoch`) until cycle `at`.
    pub fn push(&mut self, at: Cycle, seq: SeqNum, epoch: u32) {
        self.heap.push(Reverse((at, seq, epoch)));
    }

    /// Pops the next entry whose wake time is `<= now`, if any.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(SeqNum, u32)> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= now => {
                let Reverse((_, seq, epoch)) = self.heap.pop().expect("peeked");
                Some((seq, epoch))
            }
            _ => None,
        }
    }

    /// The head entry — the earliest `(wake_at, seq, epoch)` parked,
    /// stale or not — without removing it.
    pub fn peek(&self) -> Option<(Cycle, SeqNum, u32)> {
        self.heap.peek().map(|Reverse(e)| *e)
    }

    /// Removes and returns the head entry regardless of its due time
    /// (used by owners to discard a head they identified as stale).
    pub fn pop_head(&mut self) -> Option<(Cycle, SeqNum, u32)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Entries currently parked (including stale ones awaiting lazy
    /// deletion).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards every entry.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Per-sequence-slot registration epochs.
///
/// Indirect references to a parked µ-op (heap entries, watch-list
/// records, store waiters) carry the epoch current at registration;
/// bumping the slot's epoch invalidates all of them at once. Slots are
/// ring-indexed like [`SeqBitmap`]; the dispatch-time re-registration of
/// a reused slot bumps the epoch before any new reference is created, so
/// references can never alias across reuse.
#[derive(Debug, Clone)]
pub struct EpochRing {
    epochs: Vec<u32>,
    mask: u64,
}

impl EpochRing {
    /// Creates a ring for a live window of `capacity` sequence numbers.
    pub fn new(capacity: usize) -> Self {
        let cap = ring_capacity(capacity);
        EpochRing {
            epochs: vec![0; cap],
            mask: (cap - 1) as u64,
        }
    }

    #[inline]
    fn idx(&self, seq: SeqNum) -> usize {
        (seq.get() & self.mask) as usize
    }

    /// The current epoch of `seq`'s slot.
    pub fn current(&self, seq: SeqNum) -> u32 {
        self.epochs[self.idx(seq)]
    }

    /// Invalidates every outstanding reference to `seq` and returns the
    /// new epoch.
    pub fn bump(&mut self, seq: SeqNum) -> u32 {
        let i = self.idx(seq);
        self.epochs[i] = self.epochs[i].wrapping_add(1);
        self.epochs[i]
    }

    /// Whether a reference stamped with `epoch` is still current.
    pub fn matches(&self, seq: SeqNum, epoch: u32) -> bool {
        self.current(seq) == epoch
    }
}

/// A free list of recycled `Vec<T>` buffers.
///
/// The issue stage creates one group `Vec` per issuing cycle and the
/// replay machinery one per squash burst; pooling them caps hot-loop
/// allocation at the high-water mark of the first few thousand cycles.
#[derive(Debug)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        VecPool { free: Vec::new() }
    }
}

impl<T> VecPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer from the pool (or a fresh one).
    pub fn get(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool; its contents are dropped.
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        // An unbounded pool would be a slow leak under pathological
        // replay storms; past a generous cap, let buffers drop.
        if self.free.len() < 64 {
            self.free.push(v);
        }
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

impl crate::persist::PersistState for SeqBitmap {
    fn save_state(&self, w: &mut crate::persist::Writer) {
        crate::persist::Persist::save(&self.words, w);
    }
    fn restore_state(
        &mut self,
        r: &mut crate::persist::Reader<'_>,
    ) -> Result<(), crate::persist::DecodeError> {
        let words: Vec<u64> = crate::persist::Persist::load(r)?;
        if words.len() != self.words.len() {
            return Err(r.err(format_args!(
                "SeqBitmap geometry mismatch: {} words != {}",
                words.len(),
                self.words.len()
            )));
        }
        self.len = words.iter().map(|w| w.count_ones() as usize).sum();
        self.words = words;
        Ok(())
    }
}

impl crate::persist::PersistState for EpochRing {
    fn save_state(&self, w: &mut crate::persist::Writer) {
        crate::persist::Persist::save(&self.epochs, w);
    }
    fn restore_state(
        &mut self,
        r: &mut crate::persist::Reader<'_>,
    ) -> Result<(), crate::persist::DecodeError> {
        let epochs: Vec<u32> = crate::persist::Persist::load(r)?;
        if epochs.len() != self.epochs.len() {
            return Err(r.err(format_args!(
                "EpochRing geometry mismatch: {} entries != {}",
                epochs.len(),
                self.epochs.len()
            )));
        }
        self.epochs = epochs;
        Ok(())
    }
}

impl crate::persist::PersistState for WakeHeap {
    fn save_state(&self, w: &mut crate::persist::Writer) {
        // A heap has no canonical iteration order; serialize its entries
        // sorted so identical logical state always produces identical
        // bytes (capture -> restore -> capture stability).
        let mut entries: Vec<(Cycle, SeqNum, u32)> =
            self.heap.iter().map(|Reverse(e)| *e).collect();
        entries.sort_unstable();
        crate::persist::Persist::save(&entries, w);
    }
    fn restore_state(
        &mut self,
        r: &mut crate::persist::Reader<'_>,
    ) -> Result<(), crate::persist::DecodeError> {
        let entries: Vec<(Cycle, SeqNum, u32)> = crate::persist::Persist::load(r)?;
        self.heap.clear();
        self.heap.extend(entries.into_iter().map(Reverse));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use std::collections::BTreeSet;

    #[test]
    fn bitmap_insert_remove_contains() {
        let mut b = SeqBitmap::new(192);
        assert_eq!(b.capacity(), 256);
        assert!(b.is_empty());
        assert!(b.insert(SeqNum::new(7)));
        assert!(!b.insert(SeqNum::new(7)), "double insert reports false");
        assert!(b.contains(SeqNum::new(7)));
        assert_eq!(b.len(), 1);
        assert!(b.remove(SeqNum::new(7)));
        assert!(!b.remove(SeqNum::new(7)));
        assert!(b.is_empty());
    }

    #[test]
    fn bitmap_collect_is_oldest_first() {
        let mut b = SeqBitmap::new(64);
        for s in [300u64, 260, 290, 271] {
            b.insert(SeqNum::new(s));
        }
        let mut out = Vec::new();
        b.collect_range(SeqNum::new(258), 60, &mut out);
        let got: Vec<u64> = out.iter().map(|s| s.get()).collect();
        assert_eq!(got, vec![260, 271, 290, 300]);
    }

    #[test]
    fn bitmap_capped_collect_takes_the_oldest_across_a_wrap() {
        let mut b = SeqBitmap::new(64);
        // Window [250, 314) wraps the 64-slot ring (slot 250&63 = 58).
        for s in [312u64, 255, 280, 262, 301] {
            b.insert(SeqNum::new(s));
        }
        let mut out = Vec::new();
        b.collect_range_capped(SeqNum::new(250), 64, 3, &mut out);
        let got: Vec<u64> = out.iter().map(|s| s.get()).collect();
        assert_eq!(got, vec![255, 262, 280], "three oldest, in age order");
        out.clear();
        b.collect_range_capped(SeqNum::new(281), 33, usize::MAX, &mut out);
        let got: Vec<u64> = out.iter().map(|s| s.get()).collect();
        assert_eq!(got, vec![301, 312], "resume past a processed prefix");
    }

    #[test]
    fn bitmap_collect_respects_window() {
        let mut b = SeqBitmap::new(64);
        b.insert(SeqNum::new(10));
        b.insert(SeqNum::new(50));
        let mut out = Vec::new();
        // Window [40, 64): slot 10 is outside the queried span even
        // though its bit is set.
        b.collect_range(SeqNum::new(40), 24, &mut out);
        assert_eq!(out, vec![SeqNum::new(50)]);
    }

    #[test]
    fn bitmap_matches_btreeset_model_across_wraparound() {
        // Seeded-loop property test (PR-1 convention): drive a window of
        // live seqs forward across many ring wraparounds and compare
        // membership + collection order against a BTreeSet model.
        let mut rng = SplitMix64::new(0x5EED_B175);
        let mut b = SeqBitmap::new(128);
        let mut model: BTreeSet<u64> = BTreeSet::new();
        let mut base = 0u64;
        let mut out = Vec::new();
        for step in 0..20_000u64 {
            let r = rng.next_u64();
            match r % 4 {
                0 => {
                    // insert a seq within the live window
                    let s = base + (r >> 8) % 120;
                    b.insert(SeqNum::new(s));
                    model.insert(s);
                }
                1 => {
                    let s = base + (r >> 8) % 120;
                    assert_eq!(b.remove(SeqNum::new(s)), model.remove(&s), "step {step}");
                }
                2 => {
                    // advance the window: everything below the new base
                    // must be removed first (mirrors commit/flush).
                    let adv = (r >> 8) % 16;
                    for s in base..base + adv {
                        if model.remove(&s) {
                            b.remove(SeqNum::new(s));
                        }
                    }
                    base += adv;
                }
                _ => {
                    let s = base + (r >> 8) % 120;
                    assert_eq!(
                        b.contains(SeqNum::new(s)),
                        model.contains(&s),
                        "step {step}"
                    );
                }
            }
            assert_eq!(b.len(), model.len(), "step {step}");
            if step % 64 == 0 {
                out.clear();
                b.collect_range(SeqNum::new(base), 120, &mut out);
                let got: Vec<u64> = out.iter().map(|s| s.get()).collect();
                let want: Vec<u64> = model.iter().copied().collect();
                assert_eq!(got, want, "step {step} base {base}");
            }
        }
    }

    #[test]
    fn heap_pops_in_time_order_with_ties_by_seq() {
        let mut h = WakeHeap::new(8);
        h.push(Cycle::new(30), SeqNum::new(5), 1);
        h.push(Cycle::new(10), SeqNum::new(9), 2);
        h.push(Cycle::new(10), SeqNum::new(3), 7);
        assert!(h.pop_due(Cycle::new(9)).is_none());
        assert_eq!(h.pop_due(Cycle::new(10)), Some((SeqNum::new(3), 7)));
        assert_eq!(h.pop_due(Cycle::new(10)), Some((SeqNum::new(9), 2)));
        assert!(h.pop_due(Cycle::new(29)).is_none());
        assert_eq!(h.pop_due(Cycle::new(31)), Some((SeqNum::new(5), 1)));
        assert!(h.is_empty());
    }

    #[test]
    fn epochs_invalidate_stale_references() {
        let mut e = EpochRing::new(64);
        let s = SeqNum::new(42);
        let ref1 = e.bump(s);
        assert!(e.matches(s, ref1));
        let ref2 = e.bump(s);
        assert!(!e.matches(s, ref1), "old reference must be stale");
        assert!(e.matches(s, ref2));
        // Ring aliasing: a seq one capacity later shares the slot, and a
        // bump through it invalidates the older seq's refs too — exactly
        // the reuse-after-flush behaviour the pipeline depends on.
        let aliased = SeqNum::new(42 + e.epochs.len() as u64);
        e.bump(aliased);
        assert!(!e.matches(s, ref2));
    }

    #[test]
    fn pool_recycles_capacity() {
        let mut p: VecPool<SeqNum> = VecPool::new();
        let mut v = p.get();
        v.reserve(100);
        let cap = v.capacity();
        v.push(SeqNum::new(1));
        p.put(v);
        assert_eq!(p.pooled(), 1);
        let v2 = p.get();
        assert!(v2.is_empty(), "pooled buffers come back cleared");
        assert!(v2.capacity() >= cap, "capacity is retained");
        assert_eq!(p.pooled(), 0);
    }
}
