//! Machine configuration.
//!
//! [`SimConfig`] describes the whole simulated machine and defaults to the
//! paper's Table 1 configuration: a 4 GHz, 8-wide-frontend, 6-issue
//! superscalar with a 19-cycle fetch-to-commit pipeline and a 20-cycle
//! minimum branch misprediction penalty. Use [`SimConfig::builder`] to
//! derive variants (the paper's `Baseline_*` and `SpecSched_*` models).

use crate::error::SimError;
use crate::op::ExecPort;

/// Which wakeup policy drives speculative scheduling of load dependents.
///
/// These correspond to the paper's configurations (§3.1, §5):
/// `Baseline_*` uses [`Conservative`](SchedPolicyKind::Conservative);
/// `SpecSched_*` uses [`AlwaysHit`](SchedPolicyKind::AlwaysHit) unless a
/// filtering variant is named.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicyKind {
    /// Never speculate on load latency: dependents are woken only once the
    /// hit/miss signal is known (one cycle before the data returns). This
    /// is the paper's `Baseline_*` scheduling.
    Conservative,
    /// Always assume loads hit in the L1 and wake dependents after
    /// load-to-use cycles (the paper's default `SpecSched_*` policy).
    #[default]
    AlwaysHit,
    /// Alpha-21264-style 4-bit global counter: speculate only while the
    /// counter's MSB says the recent window was miss-free
    /// (`SpecSched_*_Ctr`).
    GlobalCounter,
    /// Per-PC 2K-entry hit/miss filter with silencing bits, falling back to
    /// the global counter for loads with unstable behaviour
    /// (`SpecSched_*_Filter`).
    FilterAndCounter,
    /// Ablation: the per-PC filter with plain 2-bit counters and **no**
    /// silencing bit (predict from the counter MSB). Used by the AB1
    /// ablation bench to show why the silencing bit matters.
    FilterNoSilence,
    /// Criticality-gated policy (`SpecSched_*_Crit`): sure-hits (filter)
    /// always speculate; otherwise only loads predicted *critical* (by the
    /// 8K-entry ROB-head criticality table) speculate, arbitrated by the
    /// global counter; non-critical unstable loads are scheduled
    /// conservatively.
    Criticality,
}

impl SchedPolicyKind {
    /// Whether this policy can ever wake dependents speculatively.
    #[inline]
    pub const fn may_speculate(self) -> bool {
        !matches!(self, SchedPolicyKind::Conservative)
    }
}

/// How schedule misspeculations are repaired (paper §2.1). The paper's
/// own mechanisms (Shifting/filter/criticality) aim to be *agnostic* of
/// this choice; implementing all three lets the harness demonstrate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplayScheme {
    /// Alpha-21264-style: on a misspeculation, squash *everything*
    /// between Issue and Execute (independents included) and lose one
    /// issue cycle; squashed µ-ops replay from the recovery buffer.
    #[default]
    Squash,
    /// Pentium-4-style selective replay: only the µ-op that arrived at
    /// Execute without its operand recycles (a replay-loop turn);
    /// independent in-flight µ-ops continue unharmed and no issue cycle
    /// is lost.
    Selective,
    /// Treat the misspeculation like a branch misprediction: everything
    /// from the offending µ-op onward is squashed back to re-issue and
    /// the frontend stalls for a refetch-like penalty. The costly
    /// strawman the paper dismisses (§2.1).
    Refetch,
}

/// How the wakeup of the second load of an issue group is shifted to
/// tolerate L1D bank conflicts (§5.1 + the Yoaz-style alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShiftPolicy {
    /// No shifting: both loads wake dependents at load-to-use.
    #[default]
    Off,
    /// The paper's Schedule Shifting: the second load of every group
    /// wakes its dependents one cycle late, unconditionally.
    Always,
    /// Bank-predicted shifting (Yoaz et al., §2.2): a PC-indexed bank
    /// predictor delays the second load's wakeup only when the pair is
    /// predicted to hit the same bank — avoiding the one-cycle tax on
    /// non-conflicting pairs.
    Predicted,
}

/// The criterion used to train the criticality table (§5.3 uses ROB-head;
/// Tune et al. also propose issue-queue-oldest, QOLD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CritCriterion {
    /// Critical iff the µ-op was at the ROB head when it completed
    /// (Fields et al. / Tune et al.; the paper's §5.3 choice).
    #[default]
    RobHead,
    /// Critical iff the µ-op was the oldest ready µ-op in the issue
    /// queue when it issued (Tune's QOLD heuristic).
    IqOldest,
}

/// Bank-interleaving scheme of the banked L1D (§4.2 discusses both; the
/// paper measures them as performing similarly and uses word
/// interleaving).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BankInterleaving {
    /// Quadword (8B) interleaving: `bank = addr[5:3]` — Sandy-Bridge
    /// style, the paper's default.
    #[default]
    Word,
    /// Set interleaving: `bank = addr[8:6]` (line-granular), tags
    /// interleave too.
    Set,
}

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not an exact power-of-two split.
    pub fn sets(&self) -> u64 {
        self.try_sets().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of sets implied by the geometry, or a structured error.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ConfigInvalid`] if the geometry is not an
    /// exact power-of-two split.
    pub fn try_sets(&self) -> Result<u64, SimError> {
        let sets = self.capacity_bytes / (self.ways as u64 * self.line_bytes);
        if sets.is_power_of_two()
            && sets * self.ways as u64 * self.line_bytes == self.capacity_bytes
        {
            Ok(sets)
        } else {
            Err(SimError::ConfigInvalid(format!(
                "cache geometry {}B/{}-way/{}B-line must divide into a power-of-two number of sets",
                self.capacity_bytes, self.ways, self.line_bytes
            )))
        }
    }
}

/// Graceful-degradation knobs: when a replay storm is detected (more than
/// `replay_threshold` replay events inside a `window_cycles` window), the
/// scheduler temporarily falls back to conservative (non-speculative)
/// load wakeup for `duration_cycles`, then re-enables speculation. Entries
/// and degraded cycles are recorded in
/// [`SimStats`](crate::SimStats)::`degrade_entries` / `degrade_cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeConfig {
    /// Sliding-window length in cycles over which replay events are
    /// counted.
    pub window_cycles: u64,
    /// Replay events within the window that trigger degradation.
    pub replay_threshold: u64,
    /// Cycles to stay in conservative mode once triggered.
    pub duration_cycles: u64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            window_cycles: 1_000,
            replay_threshold: 100,
            duration_cycles: 5_000,
        }
    }
}

/// Banked-L1D organization (paper §4.2): Sandy-Bridge-style 8 banks of one
/// quadword each, with a Rivers-style single line buffer allowing two
/// same-set accesses per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankedL1dConfig {
    /// Number of data banks (8 in the paper).
    pub banks: u32,
    /// Interleaving granularity in bytes (8 = quadword).
    pub interleave_bytes: u64,
    /// Whether two same-cycle accesses to the *same set* of the same bank
    /// are allowed via the single line buffer with two read ports (paper
    /// default: true). Disabling this models a plain banked cache (AB2
    /// ablation).
    pub line_buffer: bool,
    /// Word vs set interleaving (EXT ablation; the paper found them
    /// equivalent at equal bank counts).
    pub interleaving: BankInterleaving,
}

impl Default for BankedL1dConfig {
    fn default() -> Self {
        BankedL1dConfig {
            banks: 8,
            interleave_bytes: 8,
            line_buffer: true,
            interleaving: BankInterleaving::Word,
        }
    }
}

/// Optional banked physical-register-file model (Tseng & Asanović,
/// ISCA 2003 — paper §4.2). The paper's evaluation assumes a monolithic
/// PRF with full ports (no PRF replays); enabling this adds read-port
/// conflicts as a third replay cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrfBankConfig {
    /// Number of PRF banks per register file (phys reg → bank by low
    /// index bits).
    pub banks: u32,
    /// Read ports per bank per cycle.
    pub read_ports_per_bank: u32,
}

impl Default for PrfBankConfig {
    fn default() -> Self {
        PrfBankConfig {
            banks: 4,
            read_ports_per_bank: 2,
        }
    }
}

/// DDR3-1600-style main-memory timing (single channel, 2 ranks, 8
/// banks/rank, 8K row buffer; min read 75 cycles, max 185 — Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Ranks on the channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// CPU cycles for a read that hits an open row and an idle bank
    /// (minimum latency end to end).
    pub row_hit_cycles: u64,
    /// Extra CPU cycles to close + open a row (precharge + activate).
    pub row_miss_extra_cycles: u64,
    /// Extra CPU cycles when the access conflicts with a row open for a
    /// different address (precharge + activate). An isolated row conflict
    /// therefore costs `row_hit_cycles + row_conflict_extra_cycles` = 185
    /// cycles, the paper's stated maximum read latency.
    pub row_conflict_extra_cycles: u64,
    /// CPU cycles of data-bus occupancy per 64B line (8B bus at DDR3-1600
    /// under a 4 GHz core ≈ 20 cycles).
    pub bus_cycles_per_line: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            ranks: 2,
            banks_per_rank: 8,
            row_bytes: 8192,
            row_hit_cycles: 75,
            row_miss_extra_cycles: 55,
            row_conflict_extra_cycles: 110,
            bus_cycles_per_line: 20,
        }
    }
}

/// Branch predictor sizing (Table 1: TAGE 1+12 components, ~15K entries;
/// 2-way 8K-entry BTB; 32-entry RAS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Number of tagged TAGE components (the paper uses 12).
    pub tage_tagged_components: u32,
    /// log2(entries) of each tagged component.
    pub tage_log_tagged_entries: u32,
    /// log2(entries) of the bimodal base predictor.
    pub tage_log_base_entries: u32,
    /// Shortest geometric history length.
    pub tage_min_history: u32,
    /// Longest geometric history length.
    pub tage_max_history: u32,
    /// Tag width in bits for tagged components.
    pub tage_tag_bits: u32,
    /// BTB entries (total, across ways).
    pub btb_entries: u32,
    /// BTB associativity.
    pub btb_ways: u32,
    /// Return-address-stack entries.
    pub ras_entries: u32,
    /// Use a plain bimodal predictor instead of TAGE (AB3 ablation).
    pub bimodal_only: bool,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            tage_tagged_components: 12,
            tage_log_tagged_entries: 10,
            tage_log_base_entries: 12,
            tage_min_history: 4,
            tage_max_history: 640,
            tage_tag_bits: 12,
            btb_entries: 8192,
            btb_ways: 2,
            ras_entries: 32,
            bimodal_only: false,
        }
    }
}

/// The complete machine description. Construct with [`SimConfig::builder`];
/// the default is the paper's Table 1 machine with a 4-cycle
/// issue-to-execute delay, a banked L1D, and the `AlwaysHit` policy
/// (i.e. `SpecSched_4`).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    // ---- pipeline shape ----
    /// Cycles between the Issue stage and the Execute stage (the paper's
    /// N−1; swept over 0, 2, 4, 6).
    pub issue_to_execute_delay: u64,
    /// Fetch/decode/rename width in µ-ops per cycle (8).
    pub frontend_width: u32,
    /// Fetch-block size in bytes (16); two blocks may be fetched per cycle,
    /// potentially over one taken branch.
    pub fetch_block_bytes: u64,
    /// Maximum fetch blocks per cycle (2).
    pub fetch_blocks_per_cycle: u32,
    /// Maximum µ-ops issued per cycle (6).
    pub issue_width: u32,
    /// Maximum µ-ops retired per cycle (8).
    pub retire_width: u32,
    /// Fetch-to-commit depth in cycles at delay 0 (19 = 15 frontend + 4
    /// backend). The frontend shrinks as the issue-to-execute delay grows
    /// so the 20-cycle branch penalty is preserved (§3.1).
    pub base_frontend_depth: u64,

    // ---- window ----
    /// Reorder-buffer entries (192).
    pub rob_entries: u32,
    /// Unified issue-queue entries (60).
    pub iq_entries: u32,
    /// Load-queue entries (72).
    pub lq_entries: u32,
    /// Store-queue entries (48).
    pub sq_entries: u32,
    /// Integer physical registers (256).
    pub int_prf: u32,
    /// Floating-point physical registers (256).
    pub fp_prf: u32,

    // ---- execution ports ----
    /// Integer ALU/branch ports (4).
    pub alu_ports: u32,
    /// Integer multiply/divide ports (1).
    pub muldiv_ports: u32,
    /// FP add ports (2).
    pub fp_ports: u32,
    /// FP multiply/divide ports (2).
    pub fpmuldiv_ports: u32,
    /// Load-or-store AGU ports (2). Governs max loads issued per cycle.
    pub ldst_ports: u32,
    /// Extra store-only port (1).
    pub store_only_ports: u32,
    /// If false, at most one load may issue per cycle regardless of AGU
    /// ports (the `Baseline_0, 1 load/cycle` point of Figure 3).
    pub dual_load_issue: bool,
    /// `Some(_)` models a banked PRF whose read-port conflicts delay
    /// producers and replay their dependents (§4.2); `None` (the paper's
    /// evaluation assumption) models a monolithic fully-ported PRF.
    pub prf_banking: Option<PrfBankConfig>,

    // ---- memory hierarchy ----
    /// L1 instruction cache geometry (32 KB, 8-way, 64 B lines; 1 cycle).
    pub l1i: CacheGeometry,
    /// L1 data cache geometry (32 KB, 8-way, 64 B lines).
    pub l1d: CacheGeometry,
    /// L1D load-to-use latency in cycles (4).
    pub l1d_load_to_use: u64,
    /// L1D MSHR entries (64).
    pub l1d_mshrs: u32,
    /// `Some(_)` models the banked L1D with bank conflicts; `None` models
    /// the ideal fully dual-ported L1D.
    pub l1d_banking: Option<BankedL1dConfig>,
    /// Unified L2 geometry (1 MB, 16-way, 64 B lines).
    pub l2: CacheGeometry,
    /// L2 hit latency added on an L1 miss (13).
    pub l2_latency: u64,
    /// L2 MSHR entries (64).
    pub l2_mshrs: u32,
    /// Stride-prefetcher degree at the L2 (8); 0 disables prefetching.
    pub prefetch_degree: u32,
    /// Main-memory timing model.
    pub dram: DramConfig,

    // ---- predictors ----
    /// Branch predictor sizing.
    pub predictor: PredictorConfig,
    /// Minimum branch misprediction penalty in cycles (20), held constant
    /// across issue-to-execute sweeps.
    pub branch_penalty: u64,

    // ---- scheduling (the paper's contribution) ----
    /// Wakeup policy for load dependents.
    pub sched_policy: SchedPolicyKind,
    /// Schedule Shifting (§5.1) / bank-predicted shifting (§2.2).
    pub shift_policy: ShiftPolicy,
    /// How schedule misspeculations are repaired (§2.1).
    pub replay_scheme: ReplayScheme,
    /// Criticality training criterion (§5.3).
    pub crit_criterion: CritCriterion,
    /// Bank-predictor entries for [`ShiftPolicy::Predicted`] (power of
    /// two).
    pub bank_predictor_entries: u32,
    /// Hit/miss filter entries (2048, direct-mapped 2-bit + silence).
    pub filter_entries: u32,
    /// Committed-load interval at which all silence bits reset (10_000).
    pub filter_reset_interval: u64,
    /// Width of the global hit/miss counter in bits (4).
    pub global_counter_bits: u32,
    /// Criticality-table entries (8192, direct-mapped 4-bit signed).
    pub crit_entries: u32,
    /// Criticality counter width in bits (4).
    pub crit_counter_bits: u32,

    // ---- modeling switches ----
    /// Model wrong-path µ-ops after branch mispredictions (they issue,
    /// consume resources and are squashed at resolve). Needed to reproduce
    /// the paper's `Unique` issued-µ-op effects.
    pub wrong_path: bool,

    // ---- robustness ----
    /// Cycles without a commit before the watchdog declares a deadlock
    /// (200 000 by default; tests shrink it to trigger the path cheaply).
    pub watchdog_cycles: u64,
    /// Run the internal invariant checker every this many cycles; 0
    /// disables it (the default — it costs a full window scan).
    pub invariant_check_interval: u64,
    /// `Some(_)` enables replay-storm detection with graceful fallback to
    /// conservative wakeup; `None` (the default) never degrades.
    pub degrade: Option<DegradeConfig>,
    /// Keep a streaming ring of the last `n` committed µ-ops (the
    /// canonical commit log) for divergence context dumps; 0 disables the
    /// ring (the default). Memory is O(`n`), independent of run length.
    pub commit_log_window: u32,

    // ---- scheduler implementation ----
    /// Use the legacy per-cycle O(ROB) scan in the issue stage instead of
    /// the event-driven ready queue. Off by default; kept for one release
    /// as the differential reference the equivalence tests compare the
    /// event-driven scheduler against (the two are byte-identical in
    /// [`crate::SimStats`]). Model behaviour does not depend on this
    /// knob — only simulator speed does.
    pub legacy_scan: bool,
}

impl SimConfig {
    /// Starts a builder initialized with the Table 1 defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::default(),
        }
    }

    /// Frontend depth in cycles for the configured issue-to-execute delay:
    /// `15 − delay`, so branches always resolve at cycle 16 and the
    /// minimum misprediction penalty stays at 20 cycles (§3.1).
    ///
    /// # Panics
    ///
    /// Panics if the delay exceeds `base_frontend_depth − 2` (the frontend
    /// cannot shrink below two stages).
    pub fn frontend_depth(&self) -> u64 {
        assert!(
            self.issue_to_execute_delay + 2 <= self.base_frontend_depth,
            "issue-to-execute delay {} too large for a {}-cycle frontend",
            self.issue_to_execute_delay,
            self.base_frontend_depth
        );
        self.base_frontend_depth - self.issue_to_execute_delay
    }

    /// Number of ports available for a given execution-port class.
    pub fn ports_for(&self, port: ExecPort) -> u32 {
        match port {
            ExecPort::Alu => self.alu_ports,
            ExecPort::MulDiv => self.muldiv_ports,
            ExecPort::Fp => self.fp_ports,
            ExecPort::FpMulDiv => self.fpmuldiv_ports,
            ExecPort::LoadStore => self.ldst_ports + self.store_only_ports,
        }
    }

    /// Maximum loads issuable per cycle under this configuration.
    pub fn max_loads_per_cycle(&self) -> u32 {
        if self.dual_load_issue {
            self.ldst_ports.min(2)
        } else {
            1
        }
    }

    /// Validates internal consistency; called by the builder.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configurations (zero widths, bad cache
    /// geometry, delay too deep for the frontend).
    pub fn validate(&self) {
        self.try_validate().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Validates internal consistency without panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ConfigInvalid`] describing the first
    /// inconsistency found (zero widths, bad cache geometry, delay too
    /// deep for the frontend, non-power-of-two table sizes).
    pub fn try_validate(&self) -> Result<(), SimError> {
        fn check(cond: bool, msg: impl FnOnce() -> String) -> Result<(), SimError> {
            if cond {
                Ok(())
            } else {
                Err(SimError::ConfigInvalid(msg()))
            }
        }
        check(
            self.frontend_width > 0 && self.issue_width > 0 && self.retire_width > 0,
            || "pipeline widths must be non-zero".into(),
        )?;
        check(self.rob_entries > 0 && self.iq_entries > 0, || {
            "ROB and IQ must be non-empty".into()
        })?;
        check(self.lq_entries > 0 && self.sq_entries > 0, || {
            "LQ and SQ must be non-empty".into()
        })?;
        check(
            self.int_prf as usize > 2 * crate::ids::ArchReg::COUNT,
            || format!("int PRF of {} leaves no rename headroom", self.int_prf),
        )?;
        check(
            self.fp_prf as usize > 2 * crate::ids::ArchReg::COUNT,
            || format!("fp PRF of {} leaves no rename headroom", self.fp_prf),
        )?;
        let _ = self.l1i.try_sets()?;
        let _ = self.l1d.try_sets()?;
        let _ = self.l2.try_sets()?;
        check(
            self.issue_to_execute_delay + 2 <= self.base_frontend_depth,
            || {
                format!(
                    "issue-to-execute delay {} too large for a {}-cycle frontend",
                    self.issue_to_execute_delay, self.base_frontend_depth
                )
            },
        )?;
        if let Some(b) = &self.l1d_banking {
            check(b.banks.is_power_of_two(), || {
                "bank count must be a power of two".into()
            })?;
            check(b.interleave_bytes.is_power_of_two(), || {
                "bank interleave granularity must be a power of two".into()
            })?;
            check(
                b.banks as u64 * b.interleave_bytes <= self.l1d.line_bytes,
                || {
                    format!(
                        "{} banks x {}B must interleave within one {}B line",
                        b.banks, b.interleave_bytes, self.l1d.line_bytes
                    )
                },
            )?;
        }
        check(
            self.global_counter_bits >= 2 && self.global_counter_bits <= 8,
            || {
                format!(
                    "global counter bits {} outside 2..=8",
                    self.global_counter_bits
                )
            },
        )?;
        check(self.filter_entries.is_power_of_two(), || {
            "filter entries must be a power of two".into()
        })?;
        check(self.crit_entries.is_power_of_two(), || {
            "criticality entries must be a power of two".into()
        })?;
        check(self.bank_predictor_entries.is_power_of_two(), || {
            "bank predictor entries must be a power of two".into()
        })?;
        if let Some(pb) = &self.prf_banking {
            check(pb.banks.is_power_of_two() && pb.banks <= 16, || {
                "PRF banks must be a power of two <= 16".into()
            })?;
            check(pb.read_ports_per_bank >= 1, || {
                "PRF banks need at least one read port".into()
            })?;
        }
        check(self.watchdog_cycles > 0, || {
            "watchdog threshold must be non-zero".into()
        })?;
        if let Some(d) = &self.degrade {
            check(d.window_cycles > 0 && d.duration_cycles > 0, || {
                "degradation window and duration must be non-zero".into()
            })?;
            check(d.replay_threshold > 0, || {
                "degradation replay threshold must be non-zero".into()
            })?;
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            issue_to_execute_delay: 4,
            frontend_width: 8,
            fetch_block_bytes: 16,
            fetch_blocks_per_cycle: 2,
            issue_width: 6,
            retire_width: 8,
            base_frontend_depth: 15,
            rob_entries: 192,
            iq_entries: 60,
            lq_entries: 72,
            sq_entries: 48,
            int_prf: 256,
            fp_prf: 256,
            alu_ports: 4,
            muldiv_ports: 1,
            fp_ports: 2,
            fpmuldiv_ports: 2,
            ldst_ports: 2,
            store_only_ports: 1,
            dual_load_issue: true,
            prf_banking: None,
            l1i: CacheGeometry {
                capacity_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l1d: CacheGeometry {
                capacity_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
            },
            l1d_load_to_use: 4,
            l1d_mshrs: 64,
            l1d_banking: Some(BankedL1dConfig::default()),
            l2: CacheGeometry {
                capacity_bytes: 1024 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            l2_latency: 13,
            l2_mshrs: 64,
            prefetch_degree: 8,
            dram: DramConfig::default(),
            predictor: PredictorConfig::default(),
            branch_penalty: 20,
            sched_policy: SchedPolicyKind::AlwaysHit,
            shift_policy: ShiftPolicy::Off,
            replay_scheme: ReplayScheme::Squash,
            crit_criterion: CritCriterion::RobHead,
            bank_predictor_entries: 2048,
            filter_entries: 2048,
            filter_reset_interval: 10_000,
            global_counter_bits: 4,
            crit_entries: 8192,
            crit_counter_bits: 4,
            wrong_path: true,
            watchdog_cycles: 200_000,
            invariant_check_interval: 0,
            degrade: None,
            commit_log_window: 0,
            legacy_scan: false,
        }
    }
}

/// Builder for [`SimConfig`] ([C-BUILDER]). Starts from Table 1 defaults;
/// each method overrides one knob; [`build`](SimConfigBuilder::build)
/// validates the result.
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the issue-to-execute delay (0, 2, 4 or 6 in the paper).
    pub fn issue_to_execute_delay(mut self, d: u64) -> Self {
        self.cfg.issue_to_execute_delay = d;
        self
    }

    /// Selects the wakeup policy.
    pub fn sched_policy(mut self, p: SchedPolicyKind) -> Self {
        self.cfg.sched_policy = p;
        self
    }

    /// Enables or disables Schedule Shifting (§5.1).
    pub fn schedule_shifting(mut self, on: bool) -> Self {
        self.cfg.shift_policy = if on {
            ShiftPolicy::Always
        } else {
            ShiftPolicy::Off
        };
        self
    }

    /// Selects the shift policy explicitly (including bank-predicted
    /// shifting).
    pub fn shift_policy(mut self, p: ShiftPolicy) -> Self {
        self.cfg.shift_policy = p;
        self
    }

    /// Selects the replay scheme (§2.1).
    pub fn replay_scheme(mut self, r: ReplayScheme) -> Self {
        self.cfg.replay_scheme = r;
        self
    }

    /// Selects the criticality training criterion (§5.3).
    pub fn crit_criterion(mut self, c: CritCriterion) -> Self {
        self.cfg.crit_criterion = c;
        self
    }

    /// Enables the banked-PRF model (§4.2 replay source).
    pub fn prf_banking(mut self, b: Option<PrfBankConfig>) -> Self {
        self.cfg.prf_banking = b;
        self
    }

    /// `true` → banked L1D with default banking; `false` → ideal
    /// dual-ported L1D (no bank conflicts).
    pub fn banked_l1d(mut self, banked: bool) -> Self {
        self.cfg.l1d_banking = banked.then(BankedL1dConfig::default);
        self
    }

    /// Overrides the banked-L1D organization.
    pub fn l1d_banking(mut self, banking: Option<BankedL1dConfig>) -> Self {
        self.cfg.l1d_banking = banking;
        self
    }

    /// Allows (`true`, default) or forbids (`false`) issuing two loads per
    /// cycle.
    pub fn dual_load_issue(mut self, dual: bool) -> Self {
        self.cfg.dual_load_issue = dual;
        self
    }

    /// Enables or disables wrong-path modeling.
    pub fn wrong_path(mut self, on: bool) -> Self {
        self.cfg.wrong_path = on;
        self
    }

    /// Overrides the branch predictor sizing.
    pub fn predictor(mut self, p: PredictorConfig) -> Self {
        self.cfg.predictor = p;
        self
    }

    /// Overrides the L2 stride-prefetcher degree (0 disables).
    pub fn prefetch_degree(mut self, degree: u32) -> Self {
        self.cfg.prefetch_degree = degree;
        self
    }

    /// Overrides the reorder-buffer size.
    pub fn rob_entries(mut self, n: u32) -> Self {
        self.cfg.rob_entries = n;
        self
    }

    /// Overrides the issue-queue size.
    pub fn iq_entries(mut self, n: u32) -> Self {
        self.cfg.iq_entries = n;
        self
    }

    /// Overrides the hit/miss filter size (power of two).
    pub fn filter_entries(mut self, n: u32) -> Self {
        self.cfg.filter_entries = n;
        self
    }

    /// Overrides the DRAM timing model.
    pub fn dram(mut self, dram: DramConfig) -> Self {
        self.cfg.dram = dram;
        self
    }

    /// Overrides the deadlock watchdog threshold (cycles without a
    /// commit).
    pub fn watchdog_cycles(mut self, n: u64) -> Self {
        self.cfg.watchdog_cycles = n;
        self
    }

    /// Runs the invariant checker every `n` cycles (0 disables).
    pub fn invariant_check_interval(mut self, n: u64) -> Self {
        self.cfg.invariant_check_interval = n;
        self
    }

    /// Enables replay-storm detection with graceful degradation.
    pub fn degrade(mut self, d: Option<DegradeConfig>) -> Self {
        self.cfg.degrade = d;
        self
    }

    /// Keeps a bounded ring of the last `n` committed µ-ops for
    /// divergence context dumps (0 disables).
    pub fn commit_log_window(mut self, n: u32) -> Self {
        self.cfg.commit_log_window = n;
        self
    }

    /// Selects the legacy scan-based issue stage instead of the
    /// event-driven ready queue (differential testing only).
    pub fn legacy_scan(mut self, on: bool) -> Self {
        self.cfg.legacy_scan = on;
        self
    }

    /// Applies an arbitrary closure to the underlying config, for knobs
    /// without a dedicated builder method.
    pub fn tweak(mut self, f: impl FnOnce(&mut SimConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    pub fn build(self) -> SimConfig {
        self.cfg.validate();
        self.cfg
    }

    /// Finishes the build without panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ConfigInvalid`] if the configuration is
    /// inconsistent (see [`SimConfig::try_validate`]).
    pub fn try_build(self) -> Result<SimConfig, SimError> {
        self.cfg.try_validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_table1() {
        let c = SimConfig::default();
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.iq_entries, 60);
        assert_eq!(c.lq_entries, 72);
        assert_eq!(c.sq_entries, 48);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.l1d.capacity_bytes, 32 * 1024);
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.l1d_load_to_use, 4);
        assert_eq!(c.l2_latency, 13);
        assert!(c.l1d_banking.is_some());
        c.validate();
    }

    #[test]
    fn frontend_shrinks_with_delay() {
        for d in [0u64, 2, 4, 6] {
            let c = SimConfig::builder().issue_to_execute_delay(d).build();
            assert_eq!(c.frontend_depth(), 15 - d);
            // branch resolution = frontend + d + 1 (exec) stays constant
            assert_eq!(c.frontend_depth() + d, 15);
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn delay_too_deep_panics() {
        let _ = SimConfig::builder().issue_to_execute_delay(14).build();
    }

    #[test]
    fn builder_overrides() {
        let c = SimConfig::builder()
            .sched_policy(SchedPolicyKind::Criticality)
            .schedule_shifting(true)
            .banked_l1d(false)
            .dual_load_issue(false)
            .build();
        assert_eq!(c.sched_policy, SchedPolicyKind::Criticality);
        assert_eq!(c.shift_policy, ShiftPolicy::Always);
        assert!(c.l1d_banking.is_none());
        assert_eq!(c.max_loads_per_cycle(), 1);
    }

    #[test]
    fn ports_for_matches_fields() {
        let c = SimConfig::default();
        assert_eq!(c.ports_for(ExecPort::Alu), 4);
        assert_eq!(c.ports_for(ExecPort::MulDiv), 1);
        assert_eq!(c.ports_for(ExecPort::LoadStore), 3);
        assert_eq!(c.max_loads_per_cycle(), 2);
    }

    #[test]
    fn policy_speculation_predicate() {
        assert!(!SchedPolicyKind::Conservative.may_speculate());
        assert!(SchedPolicyKind::AlwaysHit.may_speculate());
        assert!(SchedPolicyKind::Criticality.may_speculate());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bad_geometry_panics() {
        let g = CacheGeometry {
            capacity_bytes: 48 * 1024,
            ways: 7,
            line_bytes: 64,
        };
        let _ = g.sets();
    }

    #[test]
    fn banking_must_fit_line() {
        let c = SimConfig {
            l1d_banking: Some(BankedL1dConfig {
                banks: 32,
                interleave_bytes: 8,
                ..Default::default()
            }),
            ..Default::default()
        };
        let r = std::panic::catch_unwind(move || c.validate());
        assert!(
            r.is_err(),
            "32 banks x 8B exceeds a 64B line and must be rejected"
        );
    }

    #[test]
    fn tweak_applies() {
        let c = SimConfig::builder().tweak(|c| c.retire_width = 4).build();
        assert_eq!(c.retire_width, 4);
    }

    #[test]
    fn try_validate_returns_structured_errors() {
        use crate::error::SimError;
        let ok = SimConfig::default();
        assert!(ok.try_validate().is_ok());

        let zero_width = SimConfig {
            issue_width: 0,
            ..Default::default()
        };
        let err = zero_width.try_validate().unwrap_err();
        assert!(matches!(err, SimError::ConfigInvalid(_)));
        assert!(err.to_string().contains("width"));

        let deep = SimConfig {
            issue_to_execute_delay: 14,
            ..Default::default()
        };
        let err = deep.try_validate().unwrap_err();
        assert!(err.to_string().contains("too large"));

        let geom = SimConfig {
            l1d: CacheGeometry {
                capacity_bytes: 48 * 1024,
                ways: 7,
                line_bytes: 64,
            },
            ..Default::default()
        };
        assert!(geom.try_validate().is_err());
    }

    #[test]
    fn try_build_matches_build() {
        let b = SimConfig::builder().issue_to_execute_delay(2);
        let via_try = b.clone().try_build().expect("valid");
        assert_eq!(via_try, b.build());
        assert!(SimConfig::builder()
            .issue_to_execute_delay(14)
            .try_build()
            .is_err());
    }

    #[test]
    fn robustness_knobs_default_off() {
        let c = SimConfig::default();
        assert_eq!(c.watchdog_cycles, 200_000);
        assert_eq!(c.invariant_check_interval, 0);
        assert!(c.degrade.is_none());
        assert_eq!(c.commit_log_window, 0);
        let c = SimConfig::builder()
            .watchdog_cycles(500)
            .invariant_check_interval(100)
            .degrade(Some(DegradeConfig::default()))
            .commit_log_window(32)
            .build();
        assert_eq!(c.watchdog_cycles, 500);
        assert_eq!(c.invariant_check_interval, 100);
        assert!(c.degrade.is_some());
        assert_eq!(c.commit_log_window, 32);
        assert!(SimConfig::builder().watchdog_cycles(0).try_build().is_err());
    }

    #[test]
    fn legacy_scan_defaults_off() {
        assert!(!SimConfig::default().legacy_scan);
        assert!(SimConfig::builder().legacy_scan(true).build().legacy_scan);
    }
}
