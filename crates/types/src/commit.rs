//! Canonical commit-log records and the golden-model oracle contract.
//!
//! The differential-checking subsystem grounds correctness in an
//! architectural reference: whatever the out-of-order pipeline does with
//! speculative wakeup, replay, and recovery, the *committed* µ-op stream
//! must be exactly the in-order trace. Both sides of that comparison
//! speak [`CommitRecord`] — a value-free, timing-free description of one
//! committed µ-op — and the reference side is anything implementing
//! [`CommitOracle`] (the in-order golden model lives in `ss-oracle`).
//!
//! A record deliberately carries *no* cycle numbers: the pipeline is a
//! timing simulator, so timing differences between schedulers are the
//! object of study, not a bug. Only the content and order of the commit
//! stream are checked.

use crate::ids::{ArchReg, Pc};
use crate::op::{OpClass, RegClass};
use std::fmt;

/// One entry of the canonical commit log.
///
/// `seq` is the *commit-order index* (0 for the first committed µ-op),
/// not the pipeline's internal [`SeqNum`](crate::SeqNum): internal
/// sequence numbers are reused after a squash, while the commit-order
/// index is stable and identical between the out-of-order pipeline and
/// the in-order golden model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// Commit-order index of this µ-op (0-based).
    pub seq: u64,
    /// Program counter of the committed µ-op.
    pub pc: Pc,
    /// µ-op kind (ALU, load, branch flavour, ...).
    pub kind: OpClass,
    /// Destination register, if the µ-op writes one.
    pub dst: Option<(RegClass, ArchReg)>,
}

impl fmt::Display for CommitRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} {}", self.seq, self.pc, self.kind)?;
        match self.dst {
            Some((RegClass::Int, r)) => write!(f, " -> {r}"),
            Some((RegClass::Float, r)) => write!(f, " -> f{}", r.get()),
            None => Ok(()),
        }
    }
}

/// A reference model that yields the expected commit stream.
///
/// Implementations must be deterministic and inexhaustible over the run
/// lengths they are checked against (the synthetic kernel traces are
/// infinite). The `DiffChecker` in `ss-core` pulls one record per
/// pipeline commit and compares everything except timing.
pub trait CommitOracle {
    /// The next µ-op the reference machine commits.
    fn next_commit(&mut self) -> CommitRecord;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_seq_pc_kind_and_dst() {
        let r = CommitRecord {
            seq: 7,
            pc: Pc::new(0x4000_0010),
            kind: OpClass::Load,
            dst: Some((RegClass::Int, ArchReg::new(5))),
        };
        let s = r.to_string();
        assert!(s.contains("#7") && s.contains("0x40000010") && s.contains("load"));
        assert!(s.contains("r5"));
    }

    #[test]
    fn float_dst_and_no_dst_render_distinctly() {
        let f = CommitRecord {
            seq: 0,
            pc: Pc::new(0x40),
            kind: OpClass::FpMul,
            dst: Some((RegClass::Float, ArchReg::new(3))),
        };
        assert!(f.to_string().contains("f3"));
        let none = CommitRecord {
            dst: None,
            kind: OpClass::Store,
            ..f
        };
        assert!(!none.to_string().contains("->"));
    }
}
