//! Newtyped identifiers used across the simulator.
//!
//! Cycles, byte addresses, program counters, dynamic sequence numbers and
//! register indices are all plain integers at runtime, but confusing them is
//! a classic simulator bug; the newtypes here make such confusion a type
//! error ([C-NEWTYPE]).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A simulation cycle number.
///
/// Cycles are totally ordered and support adding a `u64` delta:
///
/// ```
/// use ss_types::Cycle;
/// let c = Cycle::ZERO + 4;
/// assert_eq!(c.get(), 4);
/// assert!(c > Cycle::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Cycle zero, the start of simulation.
    pub const ZERO: Cycle = Cycle(0);
    /// A cycle far in the future; used as "not yet known".
    pub const NEVER: Cycle = Cycle(u64::MAX / 2);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Cycles elapsed since `earlier`, saturating at zero.
    ///
    /// ```
    /// use ss_types::Cycle;
    /// assert_eq!(Cycle::new(10).since(Cycle::new(4)), 6);
    /// assert_eq!(Cycle::new(4).since(Cycle::new(10)), 0);
    /// ```
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

/// A byte address in the simulated (virtual = physical) address space.
///
/// Provides the bit-slicing helpers the cache hierarchy needs:
///
/// ```
/// use ss_types::Addr;
/// let a = Addr::new(0x1_2345);
/// assert_eq!(a.line(64).get(), 0x1_2340);
/// assert_eq!(a.bits(3, 3), 0b000); // quadword-bank index of 0x12345
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Address of the cache line containing this address.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    #[inline]
    pub fn line(self, line_bytes: u64) -> Addr {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Addr(self.0 & !(line_bytes - 1))
    }

    /// Extracts `count` bits starting at bit `lo`.
    #[inline]
    pub const fn bits(self, lo: u32, count: u32) -> u64 {
        (self.0 >> lo) & ((1u64 << count) - 1)
    }

    /// Offsets the address by a signed byte delta, wrapping on overflow.
    #[inline]
    pub const fn offset(self, delta: i64) -> Addr {
        Addr(self.0.wrapping_add(delta as u64))
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_add(rhs))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A program counter (instruction address).
///
/// Kept distinct from [`Addr`] so data addresses and instruction addresses
/// cannot be swapped accidentally; predictors index on `Pc`, caches on
/// `Addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter from a raw instruction address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Pc(raw)
    }

    /// Returns the raw instruction address.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Extracts `count` bits starting at bit `lo` — predictors index with
    /// low PC bits.
    #[inline]
    pub const fn bits(self, lo: u32, count: u32) -> u64 {
        (self.0 >> lo) & ((1u64 << count) - 1)
    }

    /// The PC `bytes` further on (straight-line fall-through).
    #[inline]
    pub const fn step(self, bytes: u64) -> Pc {
        Pc(self.0.wrapping_add(bytes))
    }

    /// Instruction-address view as a data address (for the L1I).
    #[inline]
    pub const fn as_addr(self) -> Addr {
        Addr(self.0)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc {:#x}", self.0)
    }
}

/// A dynamic µ-op sequence number: unique, monotonically increasing in
/// program order. Younger µ-ops have larger sequence numbers; wrong-path
/// µ-ops receive sequence numbers too and are discarded on squash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNum(u64);

impl SeqNum {
    /// The first sequence number.
    pub const FIRST: SeqNum = SeqNum(0);

    /// Creates a sequence number from a raw index.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        SeqNum(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The next sequence number in program order.
    #[inline]
    pub const fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// Whether `self` is older (earlier in program order) than `other`.
    #[inline]
    pub fn is_older_than(self, other: SeqNum) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An architectural register index.
///
/// The synthetic µ-op ISA exposes 32 integer and 32 floating-point
/// architectural registers; the class is carried alongside the index in
/// [`crate::op::RegClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Number of architectural registers per class.
    pub const COUNT: usize = 32;

    /// Creates an architectural register index.
    ///
    /// # Panics
    ///
    /// Panics if `raw >= ArchReg::COUNT`.
    #[inline]
    pub fn new(raw: u8) -> Self {
        assert!((raw as usize) < Self::COUNT, "arch reg {raw} out of range");
        ArchReg(raw)
    }

    /// Returns the raw register index.
    #[inline]
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Returns the index as a usize, for table indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A physical register index in one of the register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysReg(u16);

impl PhysReg {
    /// Creates a physical register index.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        PhysReg(raw)
    }

    /// Returns the raw register index.
    #[inline]
    pub const fn get(self) -> u16 {
        self.0
    }

    /// Returns the index as a usize, for table indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle::new(10);
        assert_eq!((c + 5).get(), 15);
        assert_eq!(c + 5 - c, 5);
        assert_eq!(c.since(Cycle::new(3)), 7);
        assert_eq!(Cycle::new(3).since(c), 0);
        let mut m = c;
        m += 2;
        assert_eq!(m.get(), 12);
    }

    #[test]
    fn cycle_never_is_far_future() {
        assert!(Cycle::NEVER > Cycle::new(u64::MAX / 4));
        // NEVER + small deltas must not overflow
        let _ = Cycle::NEVER + 1000;
    }

    #[test]
    fn addr_line_and_bits() {
        let a = Addr::new(0xDEAD_BEEF);
        assert_eq!(a.line(64).get(), 0xDEAD_BEC0);
        assert_eq!(a.line(64).bits(0, 6), 0);
        // bank index for 8 banks of 8 bytes = bits [3..6)
        assert_eq!(Addr::new(0x38).bits(3, 3), 7);
        assert_eq!(Addr::new(0x40).bits(3, 3), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn addr_line_rejects_non_pow2() {
        let _ = Addr::new(0).line(48);
    }

    #[test]
    fn addr_offset_wraps() {
        assert_eq!(Addr::new(8).offset(-16).get(), u64::MAX - 7);
        assert_eq!(Addr::new(8).offset(8).get(), 16);
    }

    #[test]
    fn pc_step_and_bits() {
        let pc = Pc::new(0x1000);
        assert_eq!(pc.step(4).get(), 0x1004);
        assert_eq!(pc.bits(2, 4), 0);
        assert_eq!(Pc::new(0x1004).bits(2, 4), 1);
        assert_eq!(pc.as_addr().get(), 0x1000);
    }

    #[test]
    fn seqnum_ordering() {
        let a = SeqNum::FIRST;
        let b = a.next();
        assert!(a.is_older_than(b));
        assert!(!b.is_older_than(a));
        assert!(!a.is_older_than(a));
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn arch_reg_bounds() {
        let r = ArchReg::new(31);
        assert_eq!(r.index(), 31);
        assert_eq!(format!("{r}"), "r31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_rejects_out_of_range() {
        let _ = ArchReg::new(32);
    }

    #[test]
    fn display_impls_nonempty() {
        assert!(!format!("{}", Cycle::ZERO).is_empty());
        assert!(!format!("{}", Addr::new(0)).is_empty());
        assert!(!format!("{}", Pc::new(0)).is_empty());
        assert!(!format!("{}", SeqNum::FIRST).is_empty());
        assert!(!format!("{}", PhysReg::new(0)).is_empty());
    }
}
