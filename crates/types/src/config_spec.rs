//! Typed machine-configuration names: the paper's `Baseline_4` /
//! `SpecSched_4_Crit` grammar as one parsed type, [`ConfigSpec`].
//!
//! A `ConfigSpec` is `{ family, delay, variant }`; its [`Display`] form
//! is the paper's configuration name and its [`FromStr`] parses that
//! name back — the two round-trip for every configuration the workspace
//! can name. Display names, session cache keys, report row labels, and
//! the `RunRequest` wire encoding are all derived from this one type;
//! there is no stringly-typed naming anywhere else.
//!
//! The type lives here (not in the harness) because it is part of the
//! canonical text protocol: a `RunRequest` names its machine by
//! `ConfigSpec`, and the serve wire format parses the same grammar. The
//! harness keeps its experiment-flavoured constructor functions
//! (`baseline(4)`, `spec_sched_crit(4)`, …) as a thin layer on top.
//!
//! * `Baseline_d` — conservative scheduling (no speculation on load
//!   latency), ideal dual-ported L1D, issue-to-execute delay `d`.
//! * `SpecSched_d` — speculative scheduling with the Always-Hit policy and
//!   the Alpha-style replay mechanism; `_ported` variants model the ideal
//!   dual-ported L1D instead of the 8-bank quadword-interleaved one.
//! * `SpecSched_d_Shift` — plus Schedule Shifting (§5.1).
//! * `SpecSched_d_Ctr` / `_Filter` — global-counter / filter+counter
//!   hit/miss gating (§5.2).
//! * `SpecSched_d_Combined` — Shifting + Filter (§5.3).
//! * `SpecSched_d_Crit` — Shifting + Filter + criticality gating (§5.3).
//! * ablation and extension variants (`_FilterNoSilence`, `_NoLineBuffer`,
//!   `_Bimodal`, `_Squash`/`_Selective`/`_Refetch`, `_ShiftPred`,
//!   `_CritQold`, `_SetInterleaved`, `_Prf4x2`, …).
//!
//! [`Display`]: fmt::Display

use crate::config::{
    BankInterleaving, BankedL1dConfig, CritCriterion, PredictorConfig, PrfBankConfig, ReplayScheme,
    SchedPolicyKind, ShiftPolicy, SimConfig,
};
use std::fmt;
use std::str::FromStr;

/// The two top-level machine families of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigFamily {
    /// Conservative scheduling: loads never speculatively wake dependents.
    Baseline,
    /// Speculative scheduling with replay on mis-speculation.
    SpecSched,
}

/// The mechanism/ablation variant riding on a family.
///
/// Most variants only make sense on [`ConfigFamily::SpecSched`];
/// [`ConfigSpec::from_str`] enforces the nameable grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigVariant {
    /// The family's plain configuration (banked L1D for SpecSched).
    Plain,
    /// Baseline restricted to one load issue per cycle (`_1ld`).
    SingleLoad,
    /// Ideal dual-ported L1D instead of the banked one (`_ported`).
    Ported,
    /// Schedule Shifting (§5.1).
    Shift,
    /// Global-counter hit/miss gating (§5.2).
    Ctr,
    /// Per-PC filter + global counter (§5.2).
    Filter,
    /// Shifting + filter + counter (§5.3).
    Combined,
    /// Shifting + filter + criticality gating (§5.3).
    Crit,
    /// AB1: the filter without its silencing bit.
    FilterNoSilence,
    /// AB2: banked L1D without the Rivers line buffer.
    NoLineBuffer,
    /// AB3: bimodal direction prediction instead of TAGE.
    Bimodal,
    /// EXT1: a different replay scheme, Always-Hit policy.
    Replay(ReplayScheme),
    /// EXT1: a different replay scheme with the Crit mechanisms on top.
    CritReplay(ReplayScheme),
    /// EXT2: bank-predicted shifting (Yoaz et al.).
    ShiftPred,
    /// EXT3: criticality trained with the QOLD criterion.
    CritQold,
    /// EXT4: set-interleaved L1D banks.
    SetInterleaved,
    /// EXT6: banked PRF with limited read ports.
    Prf {
        /// Number of PRF banks.
        banks: u32,
        /// Read ports per bank.
        ports: u32,
    },
}

/// A typed configuration name: family + issue-to-execute delay + variant.
///
/// `Display` renders the canonical name and `FromStr` parses it back;
/// `ConfigSpec::from_str(spec.to_string())` round-trips for every
/// nameable configuration. [`ConfigSpec::config`] builds the machine
/// description, and [`ConfigSpec::named`] bundles both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigSpec {
    /// Machine family.
    pub family: ConfigFamily,
    /// Issue-to-execute delay in cycles (the paper's `d`).
    pub delay: u64,
    /// Mechanism/ablation variant.
    pub variant: ConfigVariant,
}

fn replay_tag(s: ReplayScheme) -> &'static str {
    match s {
        ReplayScheme::Squash => "Squash",
        ReplayScheme::Selective => "Selective",
        ReplayScheme::Refetch => "Refetch",
    }
}

fn replay_from_tag(tag: &str) -> Option<ReplayScheme> {
    Some(match tag {
        "Squash" => ReplayScheme::Squash,
        "Selective" => ReplayScheme::Selective,
        "Refetch" => ReplayScheme::Refetch,
        _ => return None,
    })
}

impl fmt::Display for ConfigSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fam = match self.family {
            ConfigFamily::Baseline => "Baseline",
            ConfigFamily::SpecSched => "SpecSched",
        };
        write!(f, "{fam}_{}", self.delay)?;
        match self.variant {
            ConfigVariant::Plain => Ok(()),
            ConfigVariant::SingleLoad => write!(f, "_1ld"),
            ConfigVariant::Ported => write!(f, "_ported"),
            ConfigVariant::Shift => write!(f, "_Shift"),
            ConfigVariant::Ctr => write!(f, "_Ctr"),
            ConfigVariant::Filter => write!(f, "_Filter"),
            ConfigVariant::Combined => write!(f, "_Combined"),
            ConfigVariant::Crit => write!(f, "_Crit"),
            ConfigVariant::FilterNoSilence => write!(f, "_FilterNoSilence"),
            ConfigVariant::NoLineBuffer => write!(f, "_NoLineBuffer"),
            ConfigVariant::Bimodal => write!(f, "_Bimodal"),
            ConfigVariant::Replay(s) => write!(f, "_{}", replay_tag(s)),
            ConfigVariant::CritReplay(s) => write!(f, "_Crit_{}", replay_tag(s)),
            ConfigVariant::ShiftPred => write!(f, "_ShiftPred"),
            ConfigVariant::CritQold => write!(f, "_CritQold"),
            ConfigVariant::SetInterleaved => write!(f, "_SetInterleaved"),
            ConfigVariant::Prf { banks, ports } => write!(f, "_Prf{banks}x{ports}"),
        }
    }
}

/// Error from parsing a configuration name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    /// The offending name.
    pub name: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config name `{}`: {}", self.name, self.reason)
    }
}

impl std::error::Error for ParseConfigError {}

impl FromStr for ConfigSpec {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason: &str| ParseConfigError {
            name: s.to_string(),
            reason: reason.to_string(),
        };
        let mut parts = s.split('_');
        let family = match parts.next() {
            Some("Baseline") => ConfigFamily::Baseline,
            Some("SpecSched") => ConfigFamily::SpecSched,
            _ => return Err(err("expected `Baseline_*` or `SpecSched_*`")),
        };
        let delay: u64 = parts
            .next()
            .and_then(|d| d.parse().ok())
            .ok_or_else(|| err("expected a numeric delay after the family"))?;
        let rest: Vec<&str> = parts.collect();
        let variant = match (family, rest.as_slice()) {
            (_, []) => ConfigVariant::Plain,
            (ConfigFamily::Baseline, ["1ld"]) => ConfigVariant::SingleLoad,
            (ConfigFamily::Baseline, _) => {
                return Err(err("Baseline supports only the `_1ld` variant"))
            }
            (ConfigFamily::SpecSched, ["ported"]) => ConfigVariant::Ported,
            (ConfigFamily::SpecSched, ["Shift"]) => ConfigVariant::Shift,
            (ConfigFamily::SpecSched, ["Ctr"]) => ConfigVariant::Ctr,
            (ConfigFamily::SpecSched, ["Filter"]) => ConfigVariant::Filter,
            (ConfigFamily::SpecSched, ["Combined"]) => ConfigVariant::Combined,
            (ConfigFamily::SpecSched, ["Crit"]) => ConfigVariant::Crit,
            (ConfigFamily::SpecSched, ["FilterNoSilence"]) => ConfigVariant::FilterNoSilence,
            (ConfigFamily::SpecSched, ["NoLineBuffer"]) => ConfigVariant::NoLineBuffer,
            (ConfigFamily::SpecSched, ["Bimodal"]) => ConfigVariant::Bimodal,
            (ConfigFamily::SpecSched, ["ShiftPred"]) => ConfigVariant::ShiftPred,
            (ConfigFamily::SpecSched, ["CritQold"]) => ConfigVariant::CritQold,
            (ConfigFamily::SpecSched, ["SetInterleaved"]) => ConfigVariant::SetInterleaved,
            (ConfigFamily::SpecSched, [tag]) if replay_from_tag(tag).is_some() => {
                ConfigVariant::Replay(replay_from_tag(tag).expect("checked"))
            }
            (ConfigFamily::SpecSched, ["Crit", tag]) => match replay_from_tag(tag) {
                Some(scheme) => ConfigVariant::CritReplay(scheme),
                None => return Err(err("expected a replay scheme after `_Crit_`")),
            },
            (ConfigFamily::SpecSched, [prf]) if prf.starts_with("Prf") => {
                let (banks, ports) = prf["Prf".len()..]
                    .split_once('x')
                    .and_then(|(b, p)| Some((b.parse().ok()?, p.parse().ok()?)))
                    .ok_or_else(|| err("expected `_Prf<banks>x<ports>`"))?;
                ConfigVariant::Prf { banks, ports }
            }
            _ => return Err(err("unknown variant suffix")),
        };
        Ok(ConfigSpec {
            family,
            delay,
            variant,
        })
    }
}

impl ConfigSpec {
    /// Builds the machine description this spec names.
    pub fn config(&self) -> SimConfig {
        let b = SimConfig::builder().issue_to_execute_delay(self.delay);
        match self.family {
            ConfigFamily::Baseline => {
                let b = b
                    .sched_policy(SchedPolicyKind::Conservative)
                    .banked_l1d(false);
                match self.variant {
                    ConfigVariant::SingleLoad => b.dual_load_issue(false),
                    _ => b,
                }
            }
            ConfigFamily::SpecSched => {
                let b = b.sched_policy(SchedPolicyKind::AlwaysHit).banked_l1d(true);
                match self.variant {
                    ConfigVariant::Plain | ConfigVariant::SingleLoad => b,
                    ConfigVariant::Ported => b.banked_l1d(false),
                    ConfigVariant::Shift => b.schedule_shifting(true),
                    ConfigVariant::Ctr => b.sched_policy(SchedPolicyKind::GlobalCounter),
                    ConfigVariant::Filter => b.sched_policy(SchedPolicyKind::FilterAndCounter),
                    ConfigVariant::Combined => b
                        .sched_policy(SchedPolicyKind::FilterAndCounter)
                        .schedule_shifting(true),
                    ConfigVariant::Crit => b
                        .sched_policy(SchedPolicyKind::Criticality)
                        .schedule_shifting(true),
                    ConfigVariant::FilterNoSilence => {
                        b.sched_policy(SchedPolicyKind::FilterNoSilence)
                    }
                    ConfigVariant::NoLineBuffer => b.l1d_banking(Some(BankedL1dConfig {
                        line_buffer: false,
                        ..Default::default()
                    })),
                    ConfigVariant::Bimodal => b.predictor(PredictorConfig {
                        bimodal_only: true,
                        ..Default::default()
                    }),
                    ConfigVariant::Replay(scheme) => b.replay_scheme(scheme),
                    ConfigVariant::CritReplay(scheme) => b
                        .sched_policy(SchedPolicyKind::Criticality)
                        .schedule_shifting(true)
                        .replay_scheme(scheme),
                    ConfigVariant::ShiftPred => b.shift_policy(ShiftPolicy::Predicted),
                    ConfigVariant::CritQold => b
                        .sched_policy(SchedPolicyKind::Criticality)
                        .schedule_shifting(true)
                        .crit_criterion(CritCriterion::IqOldest),
                    ConfigVariant::SetInterleaved => b.l1d_banking(Some(BankedL1dConfig {
                        interleaving: BankInterleaving::Set,
                        ..Default::default()
                    })),
                    ConfigVariant::Prf { banks, ports } => b.prf_banking(Some(PrfBankConfig {
                        banks,
                        read_ports_per_bank: ports,
                    })),
                }
            }
        }
        .build()
    }

    /// Bundles the spec with its machine description and display name.
    pub fn named(&self) -> NamedConfig {
        NamedConfig {
            name: self.to_string(),
            spec: *self,
            config: self.config(),
        }
    }

    /// Every configuration the harness's experiments name at the given
    /// delay (the `Prf` variants at the two swept shapes). Used by the
    /// round-trip test and the name-collision test.
    pub fn variants_at(delay: u64) -> Vec<ConfigSpec> {
        let mut out = vec![
            ConfigSpec {
                family: ConfigFamily::Baseline,
                delay,
                variant: ConfigVariant::Plain,
            },
            ConfigSpec {
                family: ConfigFamily::Baseline,
                delay,
                variant: ConfigVariant::SingleLoad,
            },
        ];
        let sv = [
            ConfigVariant::Plain,
            ConfigVariant::Ported,
            ConfigVariant::Shift,
            ConfigVariant::Ctr,
            ConfigVariant::Filter,
            ConfigVariant::Combined,
            ConfigVariant::Crit,
            ConfigVariant::FilterNoSilence,
            ConfigVariant::NoLineBuffer,
            ConfigVariant::Bimodal,
            ConfigVariant::Replay(ReplayScheme::Squash),
            ConfigVariant::Replay(ReplayScheme::Selective),
            ConfigVariant::Replay(ReplayScheme::Refetch),
            ConfigVariant::CritReplay(ReplayScheme::Squash),
            ConfigVariant::CritReplay(ReplayScheme::Selective),
            ConfigVariant::CritReplay(ReplayScheme::Refetch),
            ConfigVariant::ShiftPred,
            ConfigVariant::CritQold,
            ConfigVariant::SetInterleaved,
            ConfigVariant::Prf { banks: 4, ports: 2 },
            ConfigVariant::Prf { banks: 2, ports: 1 },
        ];
        out.extend(sv.into_iter().map(|variant| ConfigSpec {
            family: ConfigFamily::SpecSched,
            delay,
            variant,
        }));
        out
    }
}

/// A named configuration: a [`ConfigSpec`] with its derived display name
/// and machine description. `name` is derived from `spec` by every
/// constructor in the harness; tests may override it to fabricate
/// distinct cache identities.
#[derive(Debug, Clone)]
pub struct NamedConfig {
    /// Display / cache-key name (derived from `spec`, stable across runs).
    pub name: String,
    /// The typed name this configuration was built from.
    pub spec: ConfigSpec,
    /// The machine description.
    pub config: SimConfig,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn spec_roundtrips_for_every_nameable_config() {
        for delay in [0u64, 1, 2, 3, 4, 5, 6, 8] {
            for spec in ConfigSpec::variants_at(delay) {
                let name = spec.to_string();
                let back: ConfigSpec = name.parse().unwrap_or_else(|e| panic!("{e}"));
                assert_eq!(back, spec, "round-trip of `{name}`");
                assert_eq!(back.named().name, name);
            }
        }
    }

    #[test]
    fn spec_roundtrips_on_seeded_random_shapes() {
        // Seeded-loop property test (the workspace's proptest substitute):
        // arbitrary delays and PRF shapes must survive the round-trip.
        let mut rng = SplitMix64::new(0xC0FFEE);
        for _ in 0..500 {
            let delay = rng.next_u64() % 64;
            let banks = (rng.next_u64() % 16 + 1) as u32;
            let ports = (rng.next_u64() % 4 + 1) as u32;
            let variants = ConfigSpec::variants_at(delay);
            let pick = variants[(rng.next_u64() as usize) % variants.len()];
            let with_prf = ConfigSpec {
                variant: ConfigVariant::Prf { banks, ports },
                ..pick
            };
            for spec in [
                pick,
                if pick.family == ConfigFamily::SpecSched {
                    with_prf
                } else {
                    pick
                },
            ] {
                let name = spec.to_string();
                assert_eq!(name.parse::<ConfigSpec>().ok(), Some(spec), "`{name}`");
            }
        }
    }

    #[test]
    fn malformed_names_are_rejected() {
        for bad in [
            "",
            "Baseline",
            "Baseline_x",
            "Baseline_4_Shift",
            "SpecSched_4_Bogus",
            "SpecSched_4_Crit_Bogus",
            "SpecSched_4_Prf4",
            "SpecSched_4_Prfx2",
            "Foo_4",
            "SpecSched__Crit",
        ] {
            assert!(bad.parse::<ConfigSpec>().is_err(), "`{bad}` must not parse");
        }
    }
}
