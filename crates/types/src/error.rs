//! Structured failure taxonomy for the simulator.
//!
//! Every failure mode the workspace can detect maps to one [`SimError`]
//! variant, so the harness can isolate and report per-cell failures
//! instead of aborting an experiment sweep:
//!
//! * [`SimError::Deadlock`] — the watchdog saw no commit for
//!   `watchdog_cycles`; carries a [`DeadlockReport`] with the stuck
//!   window.
//! * [`SimError::InvariantViolation`] — the periodic invariant checker
//!   caught internal state corruption (occupancy counters vs structure
//!   contents, physical-register free-list leaks, replay-queue
//!   consistency) close to where it happened.
//! * [`SimError::ConfigInvalid`] — a [`SimConfig`](crate::SimConfig)
//!   failed [`try_validate`](crate::SimConfig::try_validate).
//! * [`SimError::CacheCorrupt`] — an on-disk stats-cache entry failed its
//!   version or checksum gate and will be re-simulated.
//! * [`SimError::TraceInvalid`] — a trace source handed the pipeline a
//!   malformed µ-op.
//! * [`SimError::Panicked`] — a cell panicked under `catch_unwind`
//!   (an internal bug, preserved so the sweep can continue).
//! * [`SimError::Divergence`] — the out-of-order commit stream differs
//!   from the in-order golden model; carries a [`DivergenceReport`] with
//!   the first diverging commit and a bounded context window.

use crate::commit::CommitRecord;
use crate::ids::Cycle;
use crate::trace::TraceEvent;
use std::fmt;

/// Renders a trailing trace window into a report body: one event per
/// line, oldest first, capped for readability.
fn fmt_trace_window(f: &mut fmt::Formatter<'_>, trace: &[TraceEvent]) -> fmt::Result {
    if trace.is_empty() {
        return Ok(());
    }
    writeln!(f, "\ntrailing trace window ({} events):", trace.len())?;
    for ev in trace {
        writeln!(f, "  {ev}")?;
    }
    Ok(())
}

/// A point-in-time view of pipeline occupancy, attached to deadlock and
/// invariant reports (and used by tracing/debugging tools).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineSnapshot {
    /// Current cycle.
    pub cycle: Cycle,
    /// Occupied reorder-buffer entries.
    pub rob: usize,
    /// Occupied issue-queue entries.
    pub iq: u32,
    /// Occupied load-queue entries.
    pub lq: u32,
    /// Occupied store-queue entries.
    pub sq: u32,
    /// µ-ops in the frontend pipe.
    pub frontend: usize,
    /// µ-ops waiting in the recovery buffer.
    pub recovery: usize,
    /// µ-ops in the issue-to-execute pipe.
    pub inflight: usize,
    /// Fetch currently on the wrong path.
    pub wrong_path: bool,
    /// Committed µ-ops so far.
    pub committed: u64,
    /// Issue events so far.
    pub issued: u64,
    /// Replayed µ-ops so far.
    pub replayed: u64,
}

impl fmt::Display for PipelineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: rob={} iq={} lq={} sq={} frontend={} recovery={} inflight={} wp={} \
             committed={} issued={} replayed={}",
            self.cycle,
            self.rob,
            self.iq,
            self.lq,
            self.sq,
            self.frontend,
            self.recovery,
            self.inflight,
            self.wrong_path,
            self.committed,
            self.issued,
            self.replayed
        )
    }
}

/// Diagnostics for a watchdog-detected pipeline deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Occupancy at the moment the watchdog fired.
    pub snapshot: PipelineSnapshot,
    /// Cycles without a commit that triggered the watchdog.
    pub watchdog_cycles: u64,
    /// Human-readable picture of the stuck window (ROB head entries with
    /// their wake/avail times, recovery/inflight groups).
    pub detail: String,
    /// The most recent trace events before the watchdog fired, oldest
    /// first. Empty when the simulator ran with the no-op sink.
    pub trace: Vec<TraceEvent>,
    /// Path of the nearest state snapshot preceding the failure, when the
    /// run had checkpointing enabled. A repro can restore it and re-run
    /// only the tail instead of replaying from seq 0.
    pub checkpoint: Option<String>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline deadlock ({} cycles without a commit) at {}\n{}",
            self.watchdog_cycles, self.snapshot, self.detail
        )?;
        if let Some(cp) = &self.checkpoint {
            write!(f, "\nnearest checkpoint: {cp}")?;
        }
        fmt_trace_window(f, &self.trace)
    }
}

/// Diagnostics for an internal-consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantReport {
    /// Occupancy at the moment the check failed.
    pub snapshot: PipelineSnapshot,
    /// Which invariant failed, with expected-vs-actual values.
    pub what: String,
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant violation at {}: {}", self.snapshot, self.what)
    }
}

/// Diagnostics for a commit-stream divergence from the golden model.
///
/// Produced by the `DiffChecker` in `ss-core` the first time the
/// out-of-order pipeline commits a µ-op that differs from what the
/// in-order oracle expects. Timing never appears in the comparison —
/// only the content and order of the commit stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Occupancy at the diverging commit.
    pub snapshot: PipelineSnapshot,
    /// Commit-order index at which the streams first differ.
    pub seq: u64,
    /// What the golden model expected to commit at `seq`.
    pub expected: CommitRecord,
    /// What the pipeline actually committed at `seq`.
    pub actual: CommitRecord,
    /// The last N pipeline commits before the divergence (bounded by the
    /// `commit_log_window` config knob), oldest first.
    pub recent: Vec<CommitRecord>,
    /// Human-readable dump of in-flight scheduler/replay state at the
    /// diverging commit (ROB head entries, recovery/inflight groups).
    pub detail: String,
    /// The most recent trace events before the divergence, oldest first.
    /// Empty when the simulator ran with the no-op sink.
    pub trace: Vec<TraceEvent>,
    /// Path of the nearest state snapshot preceding the failure, when the
    /// run had checkpointing enabled (see [`DeadlockReport::checkpoint`]).
    pub checkpoint: Option<String>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "commit-stream divergence at commit #{}: expected [{}], got [{}] ({})",
            self.seq, self.expected, self.actual, self.snapshot
        )?;
        if !self.recent.is_empty() {
            writeln!(f, "last {} commits before divergence:", self.recent.len())?;
            for r in &self.recent {
                writeln!(f, "  {r}")?;
            }
        }
        f.write_str(&self.detail)?;
        if let Some(cp) = &self.checkpoint {
            write!(f, "\nnearest checkpoint: {cp}")?;
        }
        fmt_trace_window(f, &self.trace)
    }
}

/// The structured error type of the whole workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The pipeline stopped committing (watchdog fired).
    Deadlock(Box<DeadlockReport>),
    /// Internal state corruption caught by the invariant checker.
    InvariantViolation(InvariantReport),
    /// A machine configuration is internally inconsistent.
    ConfigInvalid(String),
    /// An on-disk stats-cache entry is stale or corrupt.
    CacheCorrupt {
        /// Path of the offending cache file.
        path: String,
        /// Why it was rejected (version mismatch, checksum, parse).
        reason: String,
    },
    /// A trace source produced a malformed µ-op.
    TraceInvalid {
        /// PC of the offending µ-op.
        pc: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// A simulation cell panicked (caught by the harness).
    Panicked(String),
    /// The commit stream diverged from the in-order golden model.
    Divergence(Box<DivergenceReport>),
    /// A state snapshot failed its checksum/structure gate (torn write,
    /// bit rot, tampering). The file is quarantined, never trusted.
    SnapshotCorrupt {
        /// Path of the offending snapshot (`<memory>` for in-memory ops).
        path: String,
        /// Why decoding was rejected.
        reason: String,
    },
    /// A state snapshot was written by an incompatible format version.
    SnapshotVersionMismatch {
        /// Path of the offending snapshot.
        path: String,
        /// Version stamped in the snapshot header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The run was cancelled cooperatively (its
    /// [`CancelFlag`](crate::CancelFlag) fired between measurement
    /// chunks). `committed` records how far the measurement got.
    Cancelled {
        /// Committed µ-ops measured before the cancellation took effect.
        committed: u64,
    },
    /// The serve layer refused admission: its bounded request queue was
    /// full. Clients should back off and retry — never a hang.
    Overloaded {
        /// Pending requests at the time of rejection.
        depth: usize,
        /// The server's admission limit.
        limit: usize,
    },
    /// The run's wall-clock deadline expired before it finished (checked
    /// between measurement chunks, like [`SimError::Cancelled`]). A
    /// wedged or pathologically slow simulation can pin a serve worker
    /// for at most one deadline, never forever.
    DeadlineExceeded {
        /// Committed µ-ops executed before the deadline fired.
        committed: u64,
        /// The wall-clock budget that expired, in milliseconds.
        budget_ms: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(r) => write!(f, "{r}"),
            SimError::InvariantViolation(r) => write!(f, "{r}"),
            SimError::ConfigInvalid(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::CacheCorrupt { path, reason } => {
                write!(f, "corrupt stats cache {path}: {reason}")
            }
            SimError::TraceInvalid { pc, reason } => {
                write!(f, "invalid µ-op at pc {pc:#x}: {reason}")
            }
            SimError::Panicked(msg) => write!(f, "simulation panicked: {msg}"),
            SimError::Divergence(r) => write!(f, "{r}"),
            SimError::SnapshotCorrupt { path, reason } => {
                write!(f, "corrupt snapshot {path}: {reason}")
            }
            SimError::SnapshotVersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "snapshot version mismatch {path}: found v{found}, this build reads v{expected}"
            ),
            SimError::Cancelled { committed } => {
                write!(f, "run cancelled after {committed} measured µ-ops")
            }
            SimError::Overloaded { depth, limit } => {
                write!(
                    f,
                    "server overloaded: {depth} requests pending at limit {limit}"
                )
            }
            SimError::DeadlineExceeded {
                committed,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded after {committed} committed µ-ops (budget {budget_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let snap = PipelineSnapshot {
            rob: 3,
            ..Default::default()
        };
        let cases: Vec<(SimError, &str)> = vec![
            (
                SimError::Deadlock(Box::new(DeadlockReport {
                    snapshot: snap,
                    watchdog_cycles: 100,
                    detail: "rob head".into(),
                    trace: vec![],
                    checkpoint: Some("warm/x.snap".into()),
                })),
                "deadlock",
            ),
            (
                SimError::InvariantViolation(InvariantReport {
                    snapshot: snap,
                    what: "iq_used 3 != 2".into(),
                }),
                "invariant",
            ),
            (
                SimError::ConfigInvalid("zero width".into()),
                "invalid configuration",
            ),
            (
                SimError::CacheCorrupt {
                    path: "x.kv".into(),
                    reason: "checksum".into(),
                },
                "corrupt stats cache",
            ),
            (
                SimError::TraceInvalid {
                    pc: 0x40,
                    reason: "no payload".into(),
                },
                "invalid µ-op",
            ),
            (SimError::Panicked("boom".into()), "panicked"),
            (
                SimError::Divergence(Box::new(DivergenceReport {
                    snapshot: snap,
                    seq: 12,
                    expected: CommitRecord {
                        seq: 12,
                        pc: crate::ids::Pc::new(0x40),
                        kind: crate::op::OpClass::Load,
                        dst: None,
                    },
                    actual: CommitRecord {
                        seq: 12,
                        pc: crate::ids::Pc::new(0x44),
                        kind: crate::op::OpClass::IntAlu,
                        dst: None,
                    },
                    recent: vec![],
                    detail: "rob head".into(),
                    trace: vec![],
                    checkpoint: None,
                })),
                "divergence",
            ),
            (
                SimError::SnapshotCorrupt {
                    path: "warm/x.snap".into(),
                    reason: "checksum mismatch".into(),
                },
                "corrupt snapshot",
            ),
            (
                SimError::SnapshotVersionMismatch {
                    path: "warm/x.snap".into(),
                    found: 9,
                    expected: 1,
                },
                "version mismatch",
            ),
            (SimError::Cancelled { committed: 1234 }, "cancelled"),
            (
                SimError::Overloaded {
                    depth: 64,
                    limit: 64,
                },
                "overloaded",
            ),
            (
                SimError::DeadlineExceeded {
                    committed: 9_000,
                    budget_ms: 50,
                },
                "deadline exceeded",
            ),
        ];
        for (e, needle) in cases {
            let msg = e.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn checkpoint_path_is_rendered_when_present() {
        let report = DeadlockReport {
            snapshot: PipelineSnapshot::default(),
            watchdog_cycles: 10,
            detail: String::new(),
            trace: vec![],
            checkpoint: Some("ckpt/warm/cell.snap".into()),
        };
        assert!(report
            .to_string()
            .contains("nearest checkpoint: ckpt/warm/cell.snap"));
        let no_cp = DeadlockReport {
            checkpoint: None,
            ..report
        };
        assert!(!no_cp.to_string().contains("nearest checkpoint"));
    }

    #[test]
    fn snapshot_display_names_structures() {
        let s = PipelineSnapshot {
            rob: 5,
            iq: 2,
            ..Default::default()
        }
        .to_string();
        assert!(s.contains("rob=5") && s.contains("iq=2"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::ConfigInvalid("x".into()));
        assert!(e.to_string().contains("x"));
    }
}
