//! µ-op ISA substrate for the speculative-scheduling simulator.
//!
//! The simulator is *trace driven*: workloads produce streams of
//! [`MicroOp`] records carrying everything the timing model needs — PC,
//! op class, architectural register operands, the effective memory address
//! for loads/stores, and the resolved outcome for branches. Value semantics
//! are deliberately absent: the paper's phenomena (speculative scheduling,
//! replay, bank conflicts) are functions of *timing and dependencies*, not
//! of data values.
//!
//! # Example
//!
//! ```
//! use ss_isa::{MicroOp, RegRef};
//! use ss_types::{Addr, ArchReg, Pc};
//!
//! let r1 = RegRef::int(ArchReg::new(1));
//! let r2 = RegRef::int(ArchReg::new(2));
//! let load = MicroOp::load(Pc::new(0x40_0000), r2, r1, Addr::new(0x1000));
//! assert!(load.class.is_load());
//! assert_eq!(load.mem_addr(), Some(Addr::new(0x1000)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ss_types::{Addr, ArchReg, BranchKind, OpClass, Pc, RegClass};

/// A fully-qualified architectural register reference: class + index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegRef {
    /// Which register file the register lives in.
    pub class: RegClass,
    /// The architectural index within that file.
    pub reg: ArchReg,
}

impl RegRef {
    /// An integer register reference.
    #[inline]
    pub fn int(reg: ArchReg) -> Self {
        RegRef {
            class: RegClass::Int,
            reg,
        }
    }

    /// A floating-point register reference.
    #[inline]
    pub fn fp(reg: ArchReg) -> Self {
        RegRef {
            class: RegClass::Float,
            reg,
        }
    }
}

impl std::fmt::Display for RegRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.reg.get()),
            RegClass::Float => write!(f, "f{}", self.reg.get()),
        }
    }
}

/// A memory access performed by a load or store µ-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: Addr,
    /// Access size in bytes. The timing model aliases at quadword (8 B)
    /// granularity, and all kernels emit aligned 8-byte accesses; the
    /// field exists so size-aware aliasing can be added without changing
    /// the trace format.
    pub size: u8,
}

/// The resolved outcome of a branch µ-op, known to the trace (the timing
/// model *predicts* it at fetch and verifies at execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch is actually taken.
    pub taken: bool,
    /// The actual target when taken (fall-through when not).
    pub target: Pc,
}

/// One dynamic µ-op in a trace.
///
/// Invariants (enforced by the constructors and [`MicroOp::validate`]):
/// loads/stores carry a [`MemAccess`]; branches carry a [`BranchOutcome`];
/// nothing else does. Destination/source register classes follow the op
/// class (e.g. an [`OpClass::FpMul`] writes a float register).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// Instruction address (4-byte instructions in the synthetic ISA).
    pub pc: Pc,
    /// Operation class — determines port, latency and scheduler treatment.
    pub class: OpClass,
    /// Destination register, if any.
    pub dst: Option<RegRef>,
    /// Source registers (up to two).
    pub srcs: [Option<RegRef>; 2],
    /// Memory access, present iff `class.is_mem()`.
    pub mem: Option<MemAccess>,
    /// Branch outcome, present iff `class.is_branch()`.
    pub branch: Option<BranchOutcome>,
}

/// Byte size of every instruction in the synthetic ISA.
pub const INST_BYTES: u64 = 4;

impl MicroOp {
    /// A single-cycle integer ALU µ-op `dst = op(src1, src2)`.
    pub fn alu(pc: Pc, dst: RegRef, src1: RegRef, src2: Option<RegRef>) -> Self {
        MicroOp {
            pc,
            class: OpClass::IntAlu,
            dst: Some(dst),
            srcs: [Some(src1), src2],
            mem: None,
            branch: None,
        }
    }

    /// A compute µ-op of an arbitrary non-memory, non-branch class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is a load, store, or branch.
    pub fn compute(
        pc: Pc,
        class: OpClass,
        dst: RegRef,
        src1: RegRef,
        src2: Option<RegRef>,
    ) -> Self {
        assert!(
            !class.is_mem() && !class.is_branch(),
            "compute() cannot build {class} µ-ops"
        );
        MicroOp {
            pc,
            class,
            dst: Some(dst),
            srcs: [Some(src1), src2],
            mem: None,
            branch: None,
        }
    }

    /// A load `dst = [addr_reg]` reading the given effective address.
    pub fn load(pc: Pc, dst: RegRef, addr_reg: RegRef, addr: Addr) -> Self {
        MicroOp {
            pc,
            class: OpClass::Load,
            dst: Some(dst),
            srcs: [Some(addr_reg), None],
            mem: Some(MemAccess { addr, size: 8 }),
            branch: None,
        }
    }

    /// A store `[addr_reg] = data_reg` to the given effective address.
    pub fn store(pc: Pc, addr_reg: RegRef, data_reg: RegRef, addr: Addr) -> Self {
        MicroOp {
            pc,
            class: OpClass::Store,
            dst: None,
            srcs: [Some(addr_reg), Some(data_reg)],
            mem: Some(MemAccess { addr, size: 8 }),
            branch: None,
        }
    }

    /// A conditional branch testing `cond_reg`.
    pub fn cond_branch(pc: Pc, cond_reg: RegRef, taken: bool, target: Pc) -> Self {
        MicroOp {
            pc,
            class: OpClass::Branch(BranchKind::Conditional),
            dst: None,
            srcs: [Some(cond_reg), None],
            mem: None,
            branch: Some(BranchOutcome { taken, target }),
        }
    }

    /// An always-taken branch of the given kind (direct, indirect, call,
    /// return).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is [`BranchKind::Conditional`]; use
    /// [`MicroOp::cond_branch`] for those.
    pub fn jump(pc: Pc, kind: BranchKind, target: Pc, src: Option<RegRef>) -> Self {
        assert!(
            !matches!(kind, BranchKind::Conditional),
            "use cond_branch for conditional branches"
        );
        MicroOp {
            pc,
            class: OpClass::Branch(kind),
            dst: None,
            srcs: [src, None],
            mem: None,
            branch: Some(BranchOutcome {
                taken: true,
                target,
            }),
        }
    }

    /// The effective memory address, for loads and stores.
    #[inline]
    pub fn mem_addr(&self) -> Option<Addr> {
        self.mem.map(|m| m.addr)
    }

    /// The fall-through PC.
    #[inline]
    pub fn next_pc(&self) -> Pc {
        self.pc.step(INST_BYTES)
    }

    /// The PC control flow actually proceeds to after this µ-op.
    #[inline]
    pub fn successor_pc(&self) -> Pc {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.next_pc(),
        }
    }

    /// Iterator over the present source registers.
    pub fn sources(&self) -> impl Iterator<Item = RegRef> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Checks the structural invariants; used by tests and debug builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.class.is_mem() != self.mem.is_some() {
            return Err(format!(
                "{}: mem payload mismatch for {}",
                self.pc, self.class
            ));
        }
        if self.class.is_branch() != self.branch.is_some() {
            return Err(format!(
                "{}: branch payload mismatch for {}",
                self.pc, self.class
            ));
        }
        if self.class.is_store() && self.dst.is_some() {
            return Err(format!("{}: store must not write a register", self.pc));
        }
        if !self.class.is_store() && !self.class.is_branch() && self.dst.is_none() {
            return Err(format!("{}: {} must write a register", self.pc, self.class));
        }
        if let Some(d) = self.dst {
            // Loads may target either file (integer and FP loads); compute
            // µ-ops must write their natural class.
            if !self.class.is_load() && d.class != self.class.reg_class() {
                return Err(format!(
                    "{}: {} writes {:?} register",
                    self.pc, self.class, d.class
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for MicroOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.pc, self.class)?;
        if let Some(d) = self.dst {
            write!(f, " {d} <-")?;
        }
        for s in self.sources() {
            write!(f, " {s}")?;
        }
        if let Some(m) = self.mem {
            write!(f, " [{}]", m.addr)?;
        }
        if let Some(b) = self.branch {
            write!(f, " ({} -> {})", if b.taken { "T" } else { "NT" }, b.target)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::Addr;

    fn pc() -> Pc {
        Pc::new(0x40_0000)
    }

    #[test]
    fn constructors_validate() {
        let r1 = RegRef::int(ArchReg::new(1));
        let r2 = RegRef::int(ArchReg::new(2));
        let f1 = RegRef::fp(ArchReg::new(1));
        let ops = [
            MicroOp::alu(pc(), r1, r2, Some(r2)),
            MicroOp::compute(pc(), OpClass::FpMul, f1, f1, Some(f1)),
            MicroOp::load(pc(), r1, r2, Addr::new(64)),
            MicroOp::store(pc(), r1, r2, Addr::new(64)),
            MicroOp::cond_branch(pc(), r1, true, Pc::new(0x40_0040)),
            MicroOp::jump(pc(), BranchKind::Call, Pc::new(0x50_0000), None),
        ];
        for op in ops {
            op.validate()
                .unwrap_or_else(|e| panic!("invalid op {op}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "cannot build")]
    fn compute_rejects_mem_class() {
        let r = RegRef::int(ArchReg::new(0));
        let _ = MicroOp::compute(pc(), OpClass::Load, r, r, None);
    }

    #[test]
    #[should_panic(expected = "cond_branch")]
    fn jump_rejects_conditional() {
        let _ = MicroOp::jump(pc(), BranchKind::Conditional, pc(), None);
    }

    #[test]
    fn successor_pc_follows_taken_branches() {
        let r = RegRef::int(ArchReg::new(0));
        let t = Pc::new(0x41_0000);
        let taken = MicroOp::cond_branch(pc(), r, true, t);
        let not_taken = MicroOp::cond_branch(pc(), r, false, t);
        let alu = MicroOp::alu(pc(), r, r, None);
        assert_eq!(taken.successor_pc(), t);
        assert_eq!(not_taken.successor_pc(), pc().step(INST_BYTES));
        assert_eq!(alu.successor_pc(), pc().step(INST_BYTES));
    }

    #[test]
    fn sources_iterates_present_only() {
        let r1 = RegRef::int(ArchReg::new(1));
        let alu = MicroOp::alu(pc(), r1, r1, None);
        assert_eq!(alu.sources().count(), 1);
        let store = MicroOp::store(pc(), r1, r1, Addr::new(0));
        assert_eq!(store.sources().count(), 2);
    }

    #[test]
    fn validate_catches_class_mismatches() {
        let r1 = RegRef::int(ArchReg::new(1));
        let mut op = MicroOp::load(pc(), r1, r1, Addr::new(0));
        op.mem = None;
        assert!(op.validate().is_err());

        let mut op = MicroOp::alu(pc(), r1, r1, None);
        op.dst = None;
        assert!(op.validate().is_err());

        let mut op = MicroOp::compute(pc(), OpClass::FpAlu, RegRef::fp(ArchReg::new(0)), r1, None);
        op.dst = Some(r1); // int dst on an FP op
        assert!(op.validate().is_err());
    }

    #[test]
    fn display_nonempty() {
        let r1 = RegRef::int(ArchReg::new(1));
        let op = MicroOp::load(pc(), r1, r1, Addr::new(0x40));
        let s = format!("{op}");
        assert!(s.contains("load"));
        assert!(s.contains("0x40"));
    }
}

ss_types::impl_persist!(RegRef { class, reg });
ss_types::impl_persist!(MemAccess { addr, size });
ss_types::impl_persist!(BranchOutcome { taken, target });
ss_types::impl_persist!(MicroOp {
    pc,
    class,
    dst,
    srcs,
    mem,
    branch,
});
