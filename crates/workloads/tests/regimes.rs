//! Regime tests for the benchmark suite: each kernel must land in the
//! workload region it substitutes for, measured at the *trace* level
//! (op-class mix, footprint, branch behaviour) independent of any timing
//! model.

use ss_workloads::{benchmark, TraceSource, BENCHMARKS};
use std::collections::HashSet;

struct Mix {
    loads: f64,
    stores: f64,
    branches: f64,
    taken_branches: u64,
    distinct_lines: usize,
    distinct_pcs: usize,
}

fn characterize(name: &str, n: usize) -> Mix {
    let mut t = (benchmark(name).expect("known benchmark").build)(7).into_source();
    let (mut loads, mut stores, mut branches, mut taken) = (0u64, 0u64, 0u64, 0u64);
    let mut lines = HashSet::new();
    let mut pcs = HashSet::new();
    for _ in 0..n {
        let op = t.next_uop();
        pcs.insert(op.pc);
        if op.class.is_load() {
            loads += 1;
        }
        if op.class.is_store() {
            stores += 1;
        }
        if op.class.is_branch() {
            branches += 1;
            if op.branch.unwrap().taken {
                taken += 1;
            }
        }
        if let Some(a) = op.mem_addr() {
            lines.insert(a.line(64));
        }
    }
    Mix {
        loads: loads as f64 / n as f64,
        stores: stores as f64 / n as f64,
        branches: branches as f64 / n as f64,
        taken_branches: taken,
        distinct_lines: lines.len(),
        distinct_pcs: pcs.len(),
    }
}

const N: usize = 40_000;

#[test]
fn every_kernel_has_sane_op_mix() {
    for b in &BENCHMARKS {
        let m = characterize(b.name, N);
        assert!(m.loads > 0.05, "{}: too few loads ({:.3})", b.name, m.loads);
        assert!(
            m.loads < 0.55,
            "{}: too many loads ({:.3})",
            b.name,
            m.loads
        );
        assert!(m.branches > 0.001, "{}: no branches", b.name);
        assert!(m.taken_branches > 0, "{}: no taken branches", b.name);
        assert!(
            m.distinct_pcs < 64,
            "{}: code footprint should be loop-sized",
            b.name
        );
    }
}

#[test]
fn footprint_regimes_are_distinct() {
    // L1-resident kernels touch few distinct lines; DRAM-resident ones
    // touch many.
    let resident = characterize("crafty_like", N);
    assert!(
        resident.distinct_lines < 1_000,
        "crafty must be L1-resident: {} lines",
        resident.distinct_lines
    );
    let streaming = characterize("stream_all_miss", N);
    assert!(
        streaming.distinct_lines > 5_000,
        "the stream must open a new line nearly every access: {} lines",
        streaming.distinct_lines
    );
    let chase = characterize("ptr_chase_big", N);
    assert!(
        chase.distinct_lines > 5_000,
        "the chase must wander a huge footprint: {} lines",
        chase.distinct_lines
    );
}

#[test]
fn store_kernels_actually_store() {
    for name in ["store_stream", "rmw_hazard", "stream_all_miss"] {
        let m = characterize(name, N);
        assert!(m.stores > 0.05, "{name}: stores expected ({:.3})", m.stores);
    }
}

#[test]
fn branchy_kernel_is_branchiest() {
    let branchy = characterize("branchy_int", N);
    let compute = characterize("fp_compute", N);
    assert!(
        branchy.branches > 2.0 * compute.branches,
        "branchy_int ({:.3}) must out-branch fp_compute ({:.3})",
        branchy.branches,
        compute.branches
    );
}

#[test]
fn suite_covers_both_register_files() {
    let mut int_dst = false;
    let mut fp_dst = false;
    for b in &BENCHMARKS {
        let mut t = (b.build)(1).into_source();
        for _ in 0..200 {
            if let Some(d) = t.next_uop().dst {
                match d.class {
                    ss_types::RegClass::Int => int_dst = true,
                    ss_types::RegClass::Float => fp_dst = true,
                }
            }
        }
    }
    assert!(int_dst && fp_dst, "suite must exercise INT and FP renaming");
}

#[test]
fn seeds_change_stochastic_kernels_only_stochastically() {
    // Same seed → identical; the op-class MIX stays stable across seeds
    // (regimes are seed-independent).
    let a = characterize("rand_medium", N);
    let mut t2 = (benchmark("rand_medium").unwrap().build)(99).into_source();
    let mut loads2 = 0u64;
    for _ in 0..N {
        if t2.next_uop().class.is_load() {
            loads2 += 1;
        }
    }
    let loads2 = loads2 as f64 / N as f64;
    assert!((a.loads - loads2).abs() < 0.02, "mix must be seed-stable");
}
