//! The kernel engine: turns a [`KernelSpec`] into an infinite,
//! deterministic µ-op trace.
//!
//! PC layout for a kernel based at `B` (4-byte instructions):
//!
//! ```text
//! B + 4*i              body op i
//! B + 4*nb             implicit backward loop branch (target B)
//! B + 4*(nb+1+j)       epilogue op j
//! B + 4*(nb+1+ne)      implicit jump back to B (outer loop)
//! B + 0x4000 + 4*k     callee op k
//! B + 0x4000 + 4*nc    implicit return
//! ```

use crate::pattern::PatternState;
use crate::spec::{BodyOp, BranchBehavior, BranchTarget, KernelSpec, Reg};
use crate::TraceSource;
use ss_isa::{MicroOp, RegRef, INST_BYTES};
use ss_types::rng::Xoshiro256;
use ss_types::{Addr, ArchReg, BranchKind, Pc};

/// Default code base address for kernels.
const CODE_BASE: u64 = 0x40_0000;
/// Callee block offset from the kernel base.
const CALLEE_OFFSET: u64 = 0x4000;
/// Spacing between the data regions of distinct address patterns.
const REGION_SPACING: u64 = 1 << 32;
/// Base of the data address space.
const DATA_BASE: u64 = 0x1_0000_0000;

fn map_reg(r: Reg) -> RegRef {
    match r {
        Reg::Int(i) => RegRef::int(ArchReg::new(i)),
        Reg::Fp(i) => RegRef::fp(ArchReg::new(i)),
    }
}

#[derive(Debug, Clone, Copy)]
enum Position {
    Body(usize),
    Epilogue(usize),
    Callee { idx: usize, resume: usize },
}

/// A running kernel trace; implements [`TraceSource`].
#[derive(Debug, Clone)]
pub struct KernelTrace {
    spec: KernelSpec,
    base: Pc,
    pos: Position,
    patterns: Vec<PatternState>,
    /// Occurrence counters: one per body op (branches use theirs), plus
    /// one extra for the implicit loop branch.
    counters: Vec<u64>,
    rng: Xoshiro256,
}

impl KernelTrace {
    /// Builds the trace engine for a validated spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation.
    pub fn new(spec: KernelSpec) -> Self {
        spec.validate()
            .unwrap_or_else(|e| panic!("invalid kernel spec: {e}"));
        let patterns = spec
            .patterns
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                PatternState::new(
                    p,
                    Addr::new(DATA_BASE + i as u64 * REGION_SPACING),
                    spec.seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64),
                )
            })
            .collect();
        let n = spec.body.len() + spec.epilogue.len() + spec.callee.len() + 1;
        KernelTrace {
            base: Pc::new(CODE_BASE),
            patterns,
            counters: vec![0; n],
            rng: Xoshiro256::seed_from_u64(spec.seed),
            pos: Position::Body(0),
            spec,
        }
    }

    /// The kernel spec this trace runs.
    pub fn spec(&self) -> &KernelSpec {
        &self.spec
    }

    fn body_pc(&self, i: usize) -> Pc {
        self.base.step(i as u64 * INST_BYTES)
    }

    fn loop_branch_pc(&self) -> Pc {
        self.body_pc(self.spec.body.len())
    }

    fn epilogue_pc(&self, j: usize) -> Pc {
        self.body_pc(self.spec.body.len() + 1 + j)
    }

    fn outer_jump_pc(&self) -> Pc {
        self.epilogue_pc(self.spec.epilogue.len())
    }

    fn callee_pc(&self, k: usize) -> Pc {
        Pc::new(self.base.get() + CALLEE_OFFSET + k as u64 * INST_BYTES)
    }

    /// Decides the outcome of a branch given its behaviour and occurrence
    /// counter.
    fn outcome(&mut self, behavior: BranchBehavior, counter_idx: usize) -> bool {
        let count = self.counters[counter_idx];
        self.counters[counter_idx] += 1;
        match behavior {
            BranchBehavior::TakenEvery { period } => (count % period as u64) != (period as u64 - 1),
            BranchBehavior::Bernoulli { taken_pct } => self.rng.percent() < taken_pct,
            BranchBehavior::Pattern { bits, len } => (bits >> (count % len as u64)) & 1 == 1,
        }
    }

    /// Materializes a DSL op at `pc` and computes the next position.
    fn emit(&mut self, op: BodyOp, pc: Pc, pos: Position) -> (MicroOp, Position) {
        let advance = |p: Position| -> Position {
            match p {
                Position::Body(i) => Position::Body(i + 1), // body end handled by caller
                Position::Epilogue(j) => Position::Epilogue(j + 1),
                Position::Callee { idx, resume } => Position::Callee {
                    idx: idx + 1,
                    resume,
                },
            }
        };
        match op {
            BodyOp::Compute {
                class,
                dst,
                src1,
                src2,
            } => (
                MicroOp::compute(pc, class, map_reg(dst), map_reg(src1), src2.map(map_reg)),
                advance(pos),
            ),
            BodyOp::Load {
                dst,
                addr_reg,
                pattern,
            } => {
                let addr = self.patterns[pattern].next_addr();
                (
                    MicroOp::load(pc, map_reg(dst), map_reg(addr_reg), addr),
                    advance(pos),
                )
            }
            BodyOp::Store {
                addr_reg,
                data_reg,
                pattern,
            } => {
                let addr = self.patterns[pattern].next_addr();
                (
                    MicroOp::store(pc, map_reg(addr_reg), map_reg(data_reg), addr),
                    advance(pos),
                )
            }
            BodyOp::StoreLast {
                addr_reg,
                data_reg,
                pattern,
            } => {
                let addr = self.patterns[pattern].last_addr();
                (
                    MicroOp::store(pc, map_reg(addr_reg), map_reg(data_reg), addr),
                    advance(pos),
                )
            }
            BodyOp::LoadLast {
                dst,
                addr_reg,
                pattern,
            } => {
                let addr = self.patterns[pattern].last_addr();
                (
                    MicroOp::load(pc, map_reg(dst), map_reg(addr_reg), addr),
                    advance(pos),
                )
            }
            BodyOp::Branch {
                behavior,
                target,
                cond,
            } => {
                let counter_idx = match pos {
                    Position::Body(i) => i,
                    Position::Epilogue(j) => self.spec.body.len() + j,
                    Position::Callee { idx, .. } => {
                        self.spec.body.len() + self.spec.epilogue.len() + idx
                    }
                };
                let taken = self.outcome(behavior, counter_idx);
                let BranchTarget::SkipNext(n) = target;
                let target_pc = pc.step((1 + n as u64) * INST_BYTES);
                let next = if taken {
                    match pos {
                        Position::Body(i) => Position::Body(i + 1 + n as usize),
                        Position::Epilogue(j) => Position::Epilogue(j + 1 + n as usize),
                        Position::Callee { idx, resume } => Position::Callee {
                            idx: idx + 1 + n as usize,
                            resume,
                        },
                    }
                } else {
                    advance(pos)
                };
                (
                    MicroOp::cond_branch(pc, map_reg(cond), taken, target_pc),
                    next,
                )
            }
            BodyOp::Call => {
                let resume = match pos {
                    Position::Body(i) => i + 1,
                    _ => unreachable!("validated: calls only appear in the body"),
                };
                (
                    MicroOp::jump(pc, BranchKind::Call, self.callee_pc(0), None),
                    Position::Callee { idx: 0, resume },
                )
            }
        }
    }
}

impl TraceSource for KernelTrace {
    fn next_uop(&mut self) -> MicroOp {
        let pos = self.pos;
        let (uop, next) = match pos {
            Position::Body(i) if i < self.spec.body.len() => {
                let op = self.spec.body[i];
                let pc = self.body_pc(i);
                self.emit(op, pc, pos)
            }
            Position::Body(_) => {
                // Implicit backward loop branch.
                let counter_idx = self.counters.len() - 1;
                let taken = self.outcome(self.spec.loop_behavior, counter_idx);
                let pc = self.loop_branch_pc();
                let uop = MicroOp::cond_branch(pc, map_reg(self.spec.loop_cond), taken, self.base);
                let next = if taken {
                    Position::Body(0)
                } else {
                    Position::Epilogue(0)
                };
                (uop, next)
            }
            Position::Epilogue(j) if j < self.spec.epilogue.len() => {
                let op = self.spec.epilogue[j];
                let pc = self.epilogue_pc(j);
                self.emit(op, pc, pos)
            }
            Position::Epilogue(_) => {
                // Implicit jump back to the loop top (outer loop).
                let uop = MicroOp::jump(self.outer_jump_pc(), BranchKind::Direct, self.base, None);
                (uop, Position::Body(0))
            }
            Position::Callee { idx, resume: _ } if idx < self.spec.callee.len() => {
                let op = self.spec.callee[idx];
                let pc = self.callee_pc(idx);
                self.emit(op, pc, pos)
            }
            Position::Callee { resume, .. } => {
                let ret_target = self.body_pc(resume);
                let uop = MicroOp::jump(
                    self.callee_pc(self.spec.callee.len()),
                    BranchKind::Return,
                    ret_target,
                    None,
                );
                (uop, Position::Body(resume))
            }
        };
        debug_assert!(uop.validate().is_ok(), "engine emitted invalid µ-op {uop}");
        self.pos = next;
        uop
    }

    fn name(&self) -> &str {
        self.spec.name
    }
}

impl ss_types::persist::Persist for Position {
    fn save(&self, w: &mut ss_types::persist::Writer) {
        match *self {
            Position::Body(i) => {
                0u8.save(w);
                i.save(w);
            }
            Position::Epilogue(i) => {
                1u8.save(w);
                i.save(w);
            }
            Position::Callee { idx, resume } => {
                2u8.save(w);
                idx.save(w);
                resume.save(w);
            }
        }
    }
    fn load(r: &mut ss_types::persist::Reader<'_>) -> Result<Self, ss_types::persist::DecodeError> {
        Ok(match u8::load(r)? {
            0 => Position::Body(usize::load(r)?),
            1 => Position::Epilogue(usize::load(r)?),
            2 => Position::Callee {
                idx: usize::load(r)?,
                resume: usize::load(r)?,
            },
            t => return Err(r.err(format_args!("invalid Position tag {t}"))),
        })
    }
}

impl ss_types::persist::PersistState for KernelTrace {
    /// The spec itself (static program text, including its `&'static str`
    /// name) is *not* serialized — only a fingerprint that binds the
    /// snapshot to it. The restore target is always built from the same
    /// spec; the fingerprint turns a mismatch into a typed decode error
    /// instead of a silently different instruction stream.
    fn save_state(&self, w: &mut ss_types::persist::Writer) {
        use ss_types::persist::Persist;
        spec_fingerprint(&self.spec).save(w);
        self.base.save(w);
        self.pos.save(w);
        self.patterns.save(w);
        self.counters.save(w);
        self.rng.save(w);
    }
    fn restore_state(
        &mut self,
        r: &mut ss_types::persist::Reader<'_>,
    ) -> Result<(), ss_types::persist::DecodeError> {
        use ss_types::persist::Persist;
        let fp = u64::load(r)?;
        let want = spec_fingerprint(&self.spec);
        if fp != want {
            return Err(r.err(format_args!(
                "kernel spec fingerprint {fp:016x} != expected {want:016x}"
            )));
        }
        self.base = Persist::load(r)?;
        self.pos = Persist::load(r)?;
        self.patterns = Persist::load(r)?;
        self.counters = Persist::load(r)?;
        self.rng = Persist::load(r)?;
        Ok(())
    }
}

/// Fingerprint of a kernel spec's full (debug-formatted) program text.
fn spec_fingerprint(spec: &KernelSpec) -> u64 {
    ss_types::persist::fnv1a64(format!("{spec:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::AddrPattern;
    use crate::spec::{ri, BranchBehavior};
    use ss_types::OpClass;

    fn simple_spec() -> KernelSpec {
        let mut s = KernelSpec::new(
            "simple",
            vec![
                BodyOp::Load {
                    dst: ri(1),
                    addr_reg: ri(2),
                    pattern: 0,
                },
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(3),
                    src1: ri(1),
                    src2: None,
                },
            ],
        );
        s.patterns = vec![AddrPattern::stream(1 << 12)];
        s.loop_behavior = BranchBehavior::TakenEvery { period: 4 };
        s
    }

    #[test]
    fn trace_repeats_body_with_loop_branch() {
        let mut t = simple_spec().into_source();
        // body(2) + loop branch = 3 ops per iteration
        let ops: Vec<MicroOp> = (0..12).map(|_| t.next_uop()).collect();
        assert!(ops[0].class.is_load());
        assert_eq!(ops[1].class, OpClass::IntAlu);
        assert!(ops[2].class.is_branch());
        assert_eq!(
            ops[0].pc, ops[3].pc,
            "second iteration restarts at the body top"
        );
        // loop branch taken 3 of 4 times
        let takens: Vec<bool> = ops
            .iter()
            .filter(|o| o.class.is_branch())
            .map(|o| o.branch.unwrap().taken)
            .collect();
        assert_eq!(takens, vec![true, true, true, false]);
    }

    #[test]
    fn loop_exit_runs_epilogue_then_jumps_back() {
        let mut s = simple_spec();
        s.loop_behavior = BranchBehavior::TakenEvery { period: 2 };
        s.epilogue = vec![BodyOp::Compute {
            class: OpClass::IntAlu,
            dst: ri(4),
            src1: ri(4),
            src2: None,
        }];
        let mut t = s.into_source();
        // iter1 (3 ops, taken), iter2 (3 ops, not taken), epilogue(1), jump(1)
        let ops: Vec<MicroOp> = (0..9).map(|_| t.next_uop()).collect();
        assert!(!ops[5].branch.unwrap().taken, "second loop branch exits");
        assert_eq!(ops[6].class, OpClass::IntAlu); // epilogue
        assert_eq!(ops[7].class, OpClass::Branch(BranchKind::Direct));
        assert_eq!(ops[7].branch.unwrap().target, ops[0].pc);
        assert_eq!(ops[8].pc, ops[0].pc, "control returns to the body");
    }

    #[test]
    fn call_enters_callee_and_returns() {
        let mut s = simple_spec();
        s.body.push(BodyOp::Call);
        s.callee = vec![BodyOp::Compute {
            class: OpClass::IntAlu,
            dst: ri(5),
            src1: ri(5),
            src2: None,
        }];
        let mut t = s.into_source();
        let ops: Vec<MicroOp> = (0..6).map(|_| t.next_uop()).collect();
        assert_eq!(ops[2].class, OpClass::Branch(BranchKind::Call));
        assert_eq!(ops[3].pc, Pc::new(CODE_BASE + CALLEE_OFFSET));
        assert_eq!(ops[4].class, OpClass::Branch(BranchKind::Return));
        // return target = op after the call = implicit loop branch
        assert_eq!(ops[4].branch.unwrap().target, ops[5].pc);
        assert!(ops[5].class.is_branch());
    }

    #[test]
    fn forward_skip_branch_skips_ops() {
        let mut s = simple_spec();
        s.body = vec![
            BodyOp::Branch {
                behavior: BranchBehavior::Pattern { bits: 0b01, len: 2 },
                target: BranchTarget::SkipNext(1),
                cond: ri(1),
            },
            BodyOp::Compute {
                class: OpClass::IntAlu,
                dst: ri(3),
                src1: ri(3),
                src2: None,
            },
        ];
        let mut t = s.into_source();
        // occurrence 0: bit0 = 1 → taken → skip the ALU
        let b0 = t.next_uop();
        assert!(b0.branch.unwrap().taken);
        let after = t.next_uop();
        assert!(
            after.class.is_branch(),
            "skipped straight to the loop branch"
        );
        // occurrence 1: bit1 = 0 → not taken → ALU executes
        let b1 = t.next_uop();
        assert!(!b1.branch.unwrap().taken);
        assert_eq!(t.next_uop().class, OpClass::IntAlu);
    }

    #[test]
    fn trace_is_deterministic() {
        let mut a = simple_spec().into_source();
        let mut b = simple_spec().into_source();
        for _ in 0..500 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn all_uops_validate_for_a_long_run() {
        let mut s = simple_spec();
        s.body.push(BodyOp::Branch {
            behavior: BranchBehavior::Bernoulli { taken_pct: 30 },
            target: BranchTarget::SkipNext(0),
            cond: ri(3),
        });
        s.body.push(BodyOp::Store {
            addr_reg: ri(2),
            data_reg: ri(3),
            pattern: 0,
        });
        let mut t = s.into_source();
        for _ in 0..10_000 {
            let op = t.next_uop();
            op.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn successive_pcs_are_consistent() {
        // Every non-branch µ-op must be followed by the µ-op at its
        // fall-through PC; every taken branch by its target.
        let mut t = simple_spec().into_source();
        let mut prev = t.next_uop();
        for _ in 0..2000 {
            let cur = t.next_uop();
            assert_eq!(
                cur.pc,
                prev.successor_pc(),
                "control-flow discontinuity after {prev}"
            );
            prev = cur;
        }
    }
}
