//! Seeded random kernel generation for property tests and fuzzing.
//!
//! Every generator takes a caller-owned [`Xoshiro256`] and is fully
//! deterministic: the same RNG state always yields the same spec, so a
//! fuzz cell is reproducible from its seed alone. Generated kernels are
//! always valid ([`KernelSpec::validate`] passes) and cover the spec
//! space the simulator exercises: strided/chasing/uniform/hot-cold
//! address patterns, int/fp compute, loads, stores, and data-dependent
//! branches, under a randomized loop backedge period.

use crate::pattern::AddrPattern;
use crate::spec::{rf, ri, BodyOp, BranchBehavior, BranchTarget, KernelSpec};
use ss_types::{OpClass, Xoshiro256};

/// A random address pattern with valid parameters.
pub fn gen_pattern(rng: &mut Xoshiro256) -> AddrPattern {
    match rng.next_below(4) {
        0 => {
            let stride = [8i64, 64, -64, 256][rng.next_below(4) as usize];
            let log_fp = 7 + rng.next_below(17) as u32; // 7..24
            let phase_units = rng.next_below(4);
            AddrPattern::Stride {
                stride,
                footprint: 1 << log_fp,
                phase: (phase_units * 512) % (1 << log_fp),
            }
        }
        1 => AddrPattern::Chase {
            footprint: 1 << (10 + rng.next_below(16) as u32),
        },
        2 => AddrPattern::Uniform {
            footprint: 1 << (7 + rng.next_below(17) as u32),
        },
        _ => AddrPattern::HotCold {
            hot_pct: rng.next_below(101) as u8,
            hot_footprint: 1 << (7 + rng.next_below(7) as u32),
            cold_footprint: 1 << (14 + rng.next_below(12) as u32),
        },
    }
}

/// A random body op referencing pattern 0 or 1 and low registers.
pub fn gen_body_op(rng: &mut Xoshiro256) -> BodyOp {
    let r8 = |rng: &mut Xoshiro256| rng.next_below(8) as u8;
    match rng.next_below(5) {
        0 => BodyOp::Compute {
            class: OpClass::IntAlu,
            dst: ri(r8(rng)),
            src1: ri(r8(rng)),
            src2: Some(ri(r8(rng))),
        },
        1 => BodyOp::Compute {
            class: OpClass::FpMul,
            dst: rf(r8(rng)),
            src1: rf(r8(rng)),
            src2: None,
        },
        2 => BodyOp::Load {
            dst: ri(r8(rng)),
            addr_reg: ri(r8(rng)),
            pattern: rng.next_below(2) as usize,
        },
        3 => BodyOp::Store {
            addr_reg: ri(r8(rng)),
            data_reg: ri(r8(rng)),
            pattern: rng.next_below(2) as usize,
        },
        _ => BodyOp::Branch {
            behavior: BranchBehavior::Bernoulli {
                taken_pct: 1 + rng.next_below(99) as u8,
            },
            target: BranchTarget::SkipNext(0),
            cond: ri(r8(rng)),
        },
    }
}

/// A complete random kernel: 1–11 body ops over two random address
/// patterns with a randomized loop period and pattern seed.
pub fn gen_kernel(rng: &mut Xoshiro256) -> KernelSpec {
    let body_len = 1 + rng.next_below(11) as usize;
    let body: Vec<BodyOp> = (0..body_len).map(|_| gen_body_op(rng)).collect();
    let p0 = gen_pattern(rng);
    let p1 = gen_pattern(rng);
    let mut s = KernelSpec::new("seeded_kernel", body);
    s.patterns = vec![p0, p1];
    s.loop_behavior = BranchBehavior::TakenEvery {
        period: 2 + rng.next_below(198) as u32,
    };
    s.seed = 1 + rng.next_below(999);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_kernels_are_always_valid() {
        let mut rng = Xoshiro256::seed_from_u64(0xF00D);
        for case in 0..200 {
            let spec = gen_kernel(&mut rng);
            assert!(spec.validate().is_ok(), "case {case}: {spec:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a: Vec<KernelSpec> = {
            let mut rng = Xoshiro256::seed_from_u64(77);
            (0..20).map(|_| gen_kernel(&mut rng)).collect()
        };
        let b: Vec<KernelSpec> = {
            let mut rng = Xoshiro256::seed_from_u64(77);
            (0..20).map(|_| gen_kernel(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
