//! Wrong-path µ-op synthesis.
//!
//! After a branch misprediction the real machine fetches, renames, and —
//! crucially for this paper — *issues* µ-ops from the wrong path until the
//! branch resolves. Those µ-ops inflate the `Unique` issued count of
//! Figure 4b and probe the L1D (consuming bank slots). A trace-driven
//! simulator has no wrong path to fetch, so [`WrongPathGen`] synthesizes a
//! plausible one: a deterministic mix of ALU, load, FP, and never-taken
//! branch µ-ops with a dependency texture similar to real code.

use crate::TraceSource;
use ss_isa::{MicroOp, RegRef, INST_BYTES};
use ss_types::rng::Xoshiro256;
use ss_types::{Addr, ArchReg, OpClass, Pc};

/// Data region probed by wrong-path loads (shared, 1 MiB).
const WRONG_PATH_REGION_BASE: u64 = 0x7000_0000;
const WRONG_PATH_REGION_MASK: u64 = (1 << 20) - 1;

/// Generates wrong-path µ-ops starting from an arbitrary (mispredicted)
/// PC. Implements [`TraceSource`] so the pipeline can treat it as a
/// second instruction stream.
#[derive(Debug, Clone)]
pub struct WrongPathGen {
    rng: Xoshiro256,
    pc: Pc,
}

impl WrongPathGen {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        WrongPathGen {
            rng: Xoshiro256::seed_from_u64(seed),
            pc: Pc::new(0x6000_0000),
        }
    }

    /// Redirects the generator to the (wrong) PC fetch jumped to.
    pub fn redirect(&mut self, pc: Pc) {
        self.pc = pc;
    }
}

impl TraceSource for WrongPathGen {
    fn next_uop(&mut self) -> MicroOp {
        let pc = self.pc;
        self.pc = pc.step(INST_BYTES);
        let r = |rng: &mut Xoshiro256| RegRef::int(ArchReg::new(rng.next_below(16) as u8));
        let f = |rng: &mut Xoshiro256| RegRef::fp(ArchReg::new(rng.next_below(16) as u8));
        let roll: u8 = self.rng.percent();
        let uop = if roll < 55 {
            let (d, s1, s2) = (r(&mut self.rng), r(&mut self.rng), r(&mut self.rng));
            MicroOp::alu(pc, d, s1, Some(s2))
        } else if roll < 75 {
            let addr = Addr::new(
                WRONG_PATH_REGION_BASE + (self.rng.next_u64() & WRONG_PATH_REGION_MASK & !7),
            );
            let (d, a) = (r(&mut self.rng), r(&mut self.rng));
            MicroOp::load(pc, d, a, addr)
        } else if roll < 85 {
            let (d, s1, s2) = (f(&mut self.rng), f(&mut self.rng), f(&mut self.rng));
            MicroOp::compute(pc, OpClass::FpAlu, d, s1, Some(s2))
        } else if roll < 95 {
            let addr = Addr::new(
                WRONG_PATH_REGION_BASE + (self.rng.next_u64() & WRONG_PATH_REGION_MASK & !7),
            );
            let (a, d) = (r(&mut self.rng), r(&mut self.rng));
            MicroOp::store(pc, a, d, addr)
        } else {
            // Never-taken conditional so wrong-path fetch streams onward;
            // it is squashed before it could resolve anyway.
            let c = r(&mut self.rng);
            MicroOp::cond_branch(pc, c, false, pc.step(16 * INST_BYTES))
        };
        debug_assert!(uop.validate().is_ok());
        uop
    }

    fn name(&self) -> &str {
        "wrong-path"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_uops_from_redirect() {
        let mut g = WrongPathGen::new(9);
        g.redirect(Pc::new(0x1234_5678));
        let first = g.next_uop();
        assert_eq!(first.pc, Pc::new(0x1234_5678));
        for _ in 0..5_000 {
            g.next_uop().validate().unwrap();
        }
    }

    #[test]
    fn pcs_advance_sequentially() {
        let mut g = WrongPathGen::new(1);
        g.redirect(Pc::new(0x100));
        let a = g.next_uop();
        let b = g.next_uop();
        assert_eq!(b.pc, a.pc.step(INST_BYTES));
    }

    #[test]
    fn loads_stay_in_wrong_path_region() {
        let mut g = WrongPathGen::new(2);
        for _ in 0..2_000 {
            let op = g.next_uop();
            if let Some(a) = op.mem_addr() {
                assert!(a.get() >= WRONG_PATH_REGION_BASE);
                assert!(a.get() <= WRONG_PATH_REGION_BASE + WRONG_PATH_REGION_MASK);
            }
        }
    }

    #[test]
    fn branches_are_never_taken() {
        let mut g = WrongPathGen::new(3);
        for _ in 0..2_000 {
            let op = g.next_uop();
            if let Some(b) = op.branch {
                assert!(!b.taken);
            }
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = WrongPathGen::new(7);
        let mut b = WrongPathGen::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn mix_contains_all_classes() {
        let mut g = WrongPathGen::new(11);
        let mut loads = 0;
        let mut alus = 0;
        let mut branches = 0;
        let mut stores = 0;
        for _ in 0..5_000 {
            match g.next_uop().class {
                OpClass::Load => loads += 1,
                OpClass::IntAlu => alus += 1,
                OpClass::Store => stores += 1,
                c if c.is_branch() => branches += 1,
                _ => {}
            }
        }
        assert!(loads > 500 && alus > 1500 && branches > 100 && stores > 200);
    }
}

ss_types::impl_persist_state!(WrongPathGen { rng, pc });
