//! The kernel DSL: a declarative description of a loop nest from which the
//! engine ([`crate::engine::KernelTrace`]) emits an infinite µ-op trace.
//!
//! A kernel is a loop **body** (a straight-line sequence of [`BodyOp`]s
//! ending in an implicit backward loop branch), an optional **epilogue**
//! executed on loop exit before jumping back to the top (modelling an
//! outer loop), and an optional **callee** invoked by [`BodyOp::Call`].

use crate::pattern::AddrPattern;
use ss_types::OpClass;

/// An abstract register in the kernel DSL, mapped 1:1 onto architectural
/// registers by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg {
    /// Integer register `0..32`.
    Int(u8),
    /// Floating-point register `0..32`.
    Fp(u8),
}

/// Shorthand for an integer register.
pub const fn ri(n: u8) -> Reg {
    Reg::Int(n)
}

/// Shorthand for a floating-point register.
pub const fn rf(n: u8) -> Reg {
    Reg::Fp(n)
}

/// Direction behaviour of a conditional branch in the DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchBehavior {
    /// Taken `period − 1` times out of every `period` (classic loop
    /// branch; highly predictable once the predictor warms).
    TakenEvery {
        /// Loop trip count; must be ≥ 2.
        period: u32,
    },
    /// Taken with the given probability, independently per instance
    /// (unpredictable beyond the bias; mispredict rate ≈ `min(p, 1−p)`).
    Bernoulli {
        /// Percentage (0–100) of taken outcomes.
        taken_pct: u8,
    },
    /// A fixed repeating outcome pattern (LSB first); history predictors
    /// learn it perfectly.
    Pattern {
        /// Outcome bits, bit i = outcome of occurrence `i mod len`.
        bits: u32,
        /// Pattern length in bits (1–32).
        len: u8,
    },
}

/// Where a conditional branch in the body goes when taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchTarget {
    /// Skip the next `n` body ops (forward if-skip).
    SkipNext(u8),
}

/// One static µ-op template in a kernel body, epilogue, or callee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BodyOp {
    /// A register-to-register compute µ-op.
    Compute {
        /// Execution class (must not be a load/store/branch).
        class: OpClass,
        /// Destination register.
        dst: Reg,
        /// First source.
        src1: Reg,
        /// Optional second source.
        src2: Option<Reg>,
    },
    /// A load whose address sequence comes from `pattern`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Register holding the address (the dependence carrier).
        addr_reg: Reg,
        /// Index into [`KernelSpec::patterns`].
        pattern: usize,
    },
    /// A store whose address sequence comes from `pattern`.
    Store {
        /// Register holding the address.
        addr_reg: Reg,
        /// Register holding the data.
        data_reg: Reg,
        /// Index into [`KernelSpec::patterns`].
        pattern: usize,
    },
    /// A store to the address *most recently produced* by `pattern`
    /// (read-after-write aliasing with the preceding access — the memory
    /// dependence the Store Sets predictor exists for).
    StoreLast {
        /// Register holding the address.
        addr_reg: Reg,
        /// Register holding the data.
        data_reg: Reg,
        /// Index into [`KernelSpec::patterns`].
        pattern: usize,
    },
    /// A load from the address most recently produced by `pattern`.
    LoadLast {
        /// Destination register.
        dst: Reg,
        /// Register holding the address.
        addr_reg: Reg,
        /// Index into [`KernelSpec::patterns`].
        pattern: usize,
    },
    /// A forward conditional branch.
    Branch {
        /// Direction behaviour.
        behavior: BranchBehavior,
        /// Taken target.
        target: BranchTarget,
        /// Condition register (timing dependence of the branch).
        cond: Reg,
    },
    /// A call to the kernel's callee block (one level deep).
    Call,
}

/// A complete kernel description.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel name (also the benchmark name in tables).
    pub name: &'static str,
    /// Address patterns referenced by loads/stores.
    pub patterns: Vec<AddrPattern>,
    /// Loop body; an implicit backward branch with `loop_behavior` is
    /// appended by the engine.
    pub body: Vec<BodyOp>,
    /// Behaviour of the implicit loop-back branch.
    pub loop_behavior: BranchBehavior,
    /// Condition register of the loop-back branch.
    pub loop_cond: Reg,
    /// Ops executed on loop exit, before the implicit jump back to the
    /// body (models the outer loop).
    pub epilogue: Vec<BodyOp>,
    /// Callee block for [`BodyOp::Call`]; an implicit return is appended.
    pub callee: Vec<BodyOp>,
    /// RNG seed for address patterns and Bernoulli branches.
    pub seed: u64,
}

impl KernelSpec {
    /// A minimal spec with the given name and body; customize fields after.
    pub fn new(name: &'static str, body: Vec<BodyOp>) -> Self {
        KernelSpec {
            name,
            patterns: Vec::new(),
            body,
            loop_behavior: BranchBehavior::TakenEvery { period: 64 },
            loop_cond: ri(0),
            epilogue: Vec::new(),
            callee: Vec::new(),
            seed: 1,
        }
    }

    /// Checks structural invariants of the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found: empty body,
    /// out-of-range pattern index, a skip running past the end of the
    /// body, a `Call` without a callee or inside the callee, registers out
    /// of range, or invalid branch behaviour parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.body.is_empty() {
            return Err(format!("{}: body must not be empty", self.name));
        }
        for p in &self.patterns {
            p.validate();
        }
        self.validate_behavior(self.loop_behavior)?;
        self.validate_block(&self.body, "body", true)?;
        self.validate_block(&self.epilogue, "epilogue", true)?;
        self.validate_block(&self.callee, "callee", false)?;
        Ok(())
    }

    fn validate_behavior(&self, b: BranchBehavior) -> Result<(), String> {
        match b {
            BranchBehavior::TakenEvery { period } if period < 2 => {
                Err(format!("{}: loop period must be >= 2", self.name))
            }
            BranchBehavior::Bernoulli { taken_pct } if taken_pct > 100 => {
                Err(format!("{}: taken_pct must be <= 100", self.name))
            }
            BranchBehavior::Pattern { len, .. } if len == 0 || len > 32 => {
                Err(format!("{}: pattern length must be in 1..=32", self.name))
            }
            _ => Ok(()),
        }
    }

    fn validate_block(&self, block: &[BodyOp], what: &str, calls_ok: bool) -> Result<(), String> {
        let check_reg = |r: Reg| -> Result<(), String> {
            let idx = match r {
                Reg::Int(i) | Reg::Fp(i) => i,
            };
            if idx >= 32 {
                return Err(format!("{}: register index {idx} out of range", self.name));
            }
            Ok(())
        };
        for (i, op) in block.iter().enumerate() {
            match *op {
                BodyOp::Compute {
                    class,
                    dst,
                    src1,
                    src2,
                } => {
                    if class.is_mem() || class.is_branch() {
                        return Err(format!(
                            "{}: {what}[{i}] compute has class {class}",
                            self.name
                        ));
                    }
                    check_reg(dst)?;
                    check_reg(src1)?;
                    if let Some(s) = src2 {
                        check_reg(s)?;
                    }
                }
                BodyOp::Load {
                    dst,
                    addr_reg,
                    pattern,
                } => {
                    check_reg(dst)?;
                    check_reg(addr_reg)?;
                    if pattern >= self.patterns.len() {
                        return Err(format!(
                            "{}: {what}[{i}] pattern {pattern} out of range",
                            self.name
                        ));
                    }
                }
                BodyOp::Store {
                    addr_reg,
                    data_reg,
                    pattern,
                }
                | BodyOp::StoreLast {
                    addr_reg,
                    data_reg,
                    pattern,
                } => {
                    check_reg(addr_reg)?;
                    check_reg(data_reg)?;
                    if pattern >= self.patterns.len() {
                        return Err(format!(
                            "{}: {what}[{i}] pattern {pattern} out of range",
                            self.name
                        ));
                    }
                }
                BodyOp::LoadLast {
                    dst,
                    addr_reg,
                    pattern,
                } => {
                    check_reg(dst)?;
                    check_reg(addr_reg)?;
                    if pattern >= self.patterns.len() {
                        return Err(format!(
                            "{}: {what}[{i}] pattern {pattern} out of range",
                            self.name
                        ));
                    }
                }
                BodyOp::Branch {
                    behavior,
                    target,
                    cond,
                } => {
                    self.validate_behavior(behavior)?;
                    check_reg(cond)?;
                    let BranchTarget::SkipNext(n) = target;
                    if i + 1 + n as usize > block.len() {
                        return Err(format!(
                            "{}: {what}[{i}] skips {n} ops past the end of the block",
                            self.name
                        ));
                    }
                }
                BodyOp::Call => {
                    if !calls_ok {
                        return Err(format!("{}: nested calls are not supported", self.name));
                    }
                    if self.callee.is_empty() {
                        return Err(format!("{}: Call used but callee is empty", self.name));
                    }
                }
            }
        }
        Ok(())
    }

    /// Converts the spec into a running trace.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`KernelSpec::validate`].
    pub fn into_source(self) -> crate::engine::KernelTrace {
        crate::engine::KernelTrace::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::OpClass;

    fn ok_spec() -> KernelSpec {
        let mut s = KernelSpec::new(
            "t",
            vec![
                BodyOp::Load {
                    dst: ri(1),
                    addr_reg: ri(2),
                    pattern: 0,
                },
                BodyOp::Compute {
                    class: OpClass::IntAlu,
                    dst: ri(3),
                    src1: ri(1),
                    src2: None,
                },
            ],
        );
        s.patterns = vec![AddrPattern::stream(1 << 16)];
        s
    }

    #[test]
    fn valid_spec_passes() {
        ok_spec().validate().unwrap();
    }

    #[test]
    fn empty_body_rejected() {
        let s = KernelSpec::new("t", vec![]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn pattern_out_of_range_rejected() {
        let mut s = ok_spec();
        s.body.push(BodyOp::Load {
            dst: ri(1),
            addr_reg: ri(1),
            pattern: 9,
        });
        assert!(s.validate().unwrap_err().contains("pattern 9"));
    }

    #[test]
    fn skip_past_end_rejected() {
        let mut s = ok_spec();
        s.body.push(BodyOp::Branch {
            behavior: BranchBehavior::Bernoulli { taken_pct: 50 },
            target: BranchTarget::SkipNext(5),
            cond: ri(1),
        });
        assert!(s.validate().unwrap_err().contains("past the end"));
    }

    #[test]
    fn call_without_callee_rejected() {
        let mut s = ok_spec();
        s.body.push(BodyOp::Call);
        assert!(s.validate().unwrap_err().contains("callee is empty"));
    }

    #[test]
    fn call_inside_callee_rejected() {
        let mut s = ok_spec();
        s.callee = vec![BodyOp::Call];
        s.body.push(BodyOp::Call);
        assert!(s.validate().unwrap_err().contains("nested"));
    }

    #[test]
    fn compute_with_mem_class_rejected() {
        let mut s = ok_spec();
        s.body.push(BodyOp::Compute {
            class: OpClass::Load,
            dst: ri(1),
            src1: ri(1),
            src2: None,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn register_out_of_range_rejected() {
        let mut s = ok_spec();
        s.body.push(BodyOp::Compute {
            class: OpClass::IntAlu,
            dst: ri(32),
            src1: ri(1),
            src2: None,
        });
        assert!(s.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn bad_loop_period_rejected() {
        let mut s = ok_spec();
        s.loop_behavior = BranchBehavior::TakenEvery { period: 1 };
        assert!(s.validate().is_err());
    }
}
