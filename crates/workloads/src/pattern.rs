//! Address-pattern generators.
//!
//! Each static load/store in a kernel body references one [`AddrPattern`];
//! the engine keeps per-pattern state and asks for the next effective
//! address on each dynamic instance. Patterns are deterministic given the
//! kernel seed.

use ss_types::rng::Xoshiro256;
use ss_types::Addr;

/// Alignment applied to every generated address (8B keeps accesses inside
/// one quadword bank).
const ALIGN: u64 = 8;

/// A recipe for the address sequence of one static memory µ-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrPattern {
    /// Constant stride within a wrapping footprint: `addr += stride` mod
    /// footprint, starting at `phase`. `stride = 64` streams one cache
    /// line per access (pure streaming); `stride = 8` touches each line 8
    /// times. Two lock-step patterns whose phases differ by a multiple of
    /// 64 bytes (but not of the footprint) hit the *same L1D bank in
    /// different sets* every access — the bank-conflict generator used by
    /// the Figure 4/5 kernels.
    Stride {
        /// Byte stride between consecutive accesses.
        stride: i64,
        /// Region size in bytes (power of two); addresses wrap within it.
        footprint: u64,
        /// Initial offset within the footprint.
        phase: u64,
    },
    /// Pointer-chase: the next address is a pseudo-random function of the
    /// current one, uniform within the footprint. Models linked-data
    /// traversal; pair with a load whose address register is its own
    /// destination to serialize the chain.
    Chase {
        /// Region size in bytes (power of two).
        footprint: u64,
    },
    /// Independent uniform-random address per access.
    Uniform {
        /// Region size in bytes (power of two).
        footprint: u64,
    },
    /// Mostly-hot bimodal pattern: with probability `hot_pct`% the access
    /// falls in a small hot region (L1-resident), otherwise in a large
    /// cold region. Produces per-PC *unstable* hit/miss behaviour — the
    /// case the filter's silencing bit exists for.
    HotCold {
        /// Percentage (0–100) of accesses to the hot region.
        hot_pct: u8,
        /// Hot-region size in bytes (power of two).
        hot_footprint: u64,
        /// Cold-region size in bytes (power of two).
        cold_footprint: u64,
    },
}

impl AddrPattern {
    /// A line-granular streaming pattern over `footprint` bytes.
    pub const fn stream(footprint: u64) -> Self {
        AddrPattern::Stride {
            stride: 64,
            footprint,
            phase: 0,
        }
    }

    /// Validates the pattern parameters.
    ///
    /// # Panics
    ///
    /// Panics if a footprint is zero or not a power of two, or if
    /// `hot_pct > 100`.
    pub fn validate(&self) {
        let check = |fp: u64| {
            assert!(
                fp.is_power_of_two() && fp >= 64,
                "footprint {fp} must be a power of two >= 64"
            );
        };
        match *self {
            AddrPattern::Stride {
                footprint, phase, ..
            } => {
                check(footprint);
                assert!(phase < footprint, "phase must lie within the footprint");
            }
            AddrPattern::Chase { footprint } | AddrPattern::Uniform { footprint } => {
                check(footprint)
            }
            AddrPattern::HotCold {
                hot_pct,
                hot_footprint,
                cold_footprint,
            } => {
                assert!(hot_pct <= 100, "hot_pct must be a percentage");
                check(hot_footprint);
                check(cold_footprint);
            }
        }
    }
}

/// Runtime state for one pattern instance: its base region and cursor.
#[derive(Debug, Clone)]
pub struct PatternState {
    pattern: AddrPattern,
    base: Addr,
    cursor: u64,
    last: u64,
    rng: Xoshiro256,
}

impl PatternState {
    /// Creates pattern state rooted at `base`, seeded deterministically.
    pub fn new(pattern: AddrPattern, base: Addr, seed: u64) -> Self {
        pattern.validate();
        let cursor = match pattern {
            AddrPattern::Stride { phase, .. } => phase,
            _ => 0,
        };
        PatternState {
            pattern,
            base,
            cursor,
            last: cursor,
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// The pattern this state advances.
    pub fn pattern(&self) -> AddrPattern {
        self.pattern
    }

    /// Produces the next effective address.
    pub fn next_addr(&mut self) -> Addr {
        let a = match self.pattern {
            AddrPattern::Stride {
                stride, footprint, ..
            } => {
                let a = self.cursor;
                self.cursor = self.cursor.wrapping_add(stride as u64) & (footprint - 1);
                a
            }
            AddrPattern::Chase { footprint } => {
                // SplitMix-style scramble of the cursor keeps the walk
                // uniform and deterministic.
                let mut z = self.cursor.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                self.cursor = z;
                z & (footprint - 1)
            }
            AddrPattern::Uniform { footprint } => self.rng.next_u64() & (footprint - 1),
            AddrPattern::HotCold {
                hot_pct,
                hot_footprint,
                cold_footprint,
            } => {
                if self.rng.percent() < hot_pct {
                    self.rng.next_u64() & (hot_footprint - 1)
                } else {
                    self.rng.next_u64() & (cold_footprint - 1)
                }
            }
        };
        self.last = a & !(ALIGN - 1);
        self.base + self.last
    }

    /// The address most recently returned by [`PatternState::next_addr`]
    /// (the region base before any access). Lets kernels express
    /// read-after-write aliasing: a `StoreLast`/`LoadLast` touches the
    /// same location as the previous access of the pattern.
    pub fn last_addr(&self) -> Addr {
        self.base + self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(p: AddrPattern) -> PatternState {
        PatternState::new(p, Addr::new(0x1000_0000), 42)
    }

    #[test]
    fn stride_advances_and_wraps() {
        let mut s = state(AddrPattern::Stride {
            stride: 64,
            footprint: 256,
            phase: 0,
        });
        let addrs: Vec<u64> = (0..6).map(|_| s.next_addr().get()).collect();
        assert_eq!(
            addrs,
            vec![
                0x1000_0000,
                0x1000_0040,
                0x1000_0080,
                0x1000_00C0,
                0x1000_0000,
                0x1000_0040
            ]
        );
    }

    #[test]
    fn negative_stride_wraps_within_footprint() {
        let mut s = state(AddrPattern::Stride {
            stride: -64,
            footprint: 256,
            phase: 0,
        });
        let a0 = s.next_addr().get();
        let a1 = s.next_addr().get();
        assert_eq!(a0, 0x1000_0000);
        assert_eq!(a1, 0x1000_00C0); // wrapped backwards
    }

    #[test]
    fn addresses_stay_in_region_and_aligned() {
        for p in [
            AddrPattern::Chase { footprint: 1 << 20 },
            AddrPattern::Uniform { footprint: 1 << 16 },
            AddrPattern::HotCold {
                hot_pct: 90,
                hot_footprint: 1 << 12,
                cold_footprint: 1 << 24,
            },
        ] {
            let mut s = state(p);
            for _ in 0..1000 {
                let a = s.next_addr().get();
                assert!(a >= 0x1000_0000);
                assert!(a < 0x1000_0000 + (1 << 24) + (1 << 20));
                assert_eq!(a % ALIGN, 0, "addresses must be 8B-aligned");
            }
        }
    }

    #[test]
    fn chase_is_deterministic() {
        let mut a = state(AddrPattern::Chase { footprint: 1 << 20 });
        let mut b = state(AddrPattern::Chase { footprint: 1 << 20 });
        for _ in 0..100 {
            assert_eq!(a.next_addr(), b.next_addr());
        }
    }

    #[test]
    fn chase_covers_many_lines() {
        let mut s = state(AddrPattern::Chase { footprint: 1 << 22 });
        let mut lines = std::collections::HashSet::new();
        for _ in 0..1000 {
            lines.insert(s.next_addr().line(64));
        }
        assert!(
            lines.len() > 900,
            "chase should rarely revisit lines, got {}",
            lines.len()
        );
    }

    #[test]
    fn hot_cold_ratio_roughly_holds() {
        let mut s = state(AddrPattern::HotCold {
            hot_pct: 80,
            hot_footprint: 1 << 12,
            cold_footprint: 1 << 26,
        });
        let mut hot = 0;
        for _ in 0..10_000 {
            if s.next_addr().get() < 0x1000_0000 + (1 << 12) {
                hot += 1;
            }
        }
        // hot region is a subset of cold, so hot fraction is >= 80%
        assert!((7800..=10_000).contains(&hot), "hot count {hot}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_footprint_rejected() {
        AddrPattern::Uniform { footprint: 48 }.validate();
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn bad_hot_pct_rejected() {
        AddrPattern::HotCold {
            hot_pct: 101,
            hot_footprint: 64,
            cold_footprint: 64,
        }
        .validate();
    }
}

impl ss_types::persist::Persist for AddrPattern {
    fn save(&self, w: &mut ss_types::persist::Writer) {
        match *self {
            AddrPattern::Stride {
                stride,
                footprint,
                phase,
            } => {
                0u8.save(w);
                stride.save(w);
                footprint.save(w);
                phase.save(w);
            }
            AddrPattern::Chase { footprint } => {
                1u8.save(w);
                footprint.save(w);
            }
            AddrPattern::Uniform { footprint } => {
                2u8.save(w);
                footprint.save(w);
            }
            AddrPattern::HotCold {
                hot_pct,
                hot_footprint,
                cold_footprint,
            } => {
                3u8.save(w);
                hot_pct.save(w);
                hot_footprint.save(w);
                cold_footprint.save(w);
            }
        }
    }
    fn load(r: &mut ss_types::persist::Reader<'_>) -> Result<Self, ss_types::persist::DecodeError> {
        let pattern = match u8::load(r)? {
            0 => AddrPattern::Stride {
                stride: i64::load(r)?,
                footprint: u64::load(r)?,
                phase: u64::load(r)?,
            },
            1 => AddrPattern::Chase {
                footprint: u64::load(r)?,
            },
            2 => AddrPattern::Uniform {
                footprint: u64::load(r)?,
            },
            3 => AddrPattern::HotCold {
                hot_pct: u8::load(r)?,
                hot_footprint: u64::load(r)?,
                cold_footprint: u64::load(r)?,
            },
            t => return Err(r.err(format_args!("invalid AddrPattern tag {t}"))),
        };
        // `validate` panics on bad parameters; decode must reject instead.
        let ok = match pattern {
            AddrPattern::Stride {
                footprint, phase, ..
            } => footprint.is_power_of_two() && footprint >= 64 && phase < footprint,
            AddrPattern::Chase { footprint } | AddrPattern::Uniform { footprint } => {
                footprint.is_power_of_two() && footprint >= 64
            }
            AddrPattern::HotCold {
                hot_pct,
                hot_footprint,
                cold_footprint,
            } => {
                hot_pct <= 100
                    && hot_footprint.is_power_of_two()
                    && hot_footprint >= 64
                    && cold_footprint.is_power_of_two()
                    && cold_footprint >= 64
            }
        };
        if !ok {
            return Err(r.err("invalid AddrPattern parameters"));
        }
        Ok(pattern)
    }
}

ss_types::impl_persist!(PatternState {
    pattern,
    base,
    cursor,
    last,
    rng
});
