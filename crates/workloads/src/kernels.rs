//! The benchmark suite: 18 synthetic kernels substituting for the paper's
//! SPEC CPU2000/2006 slices (Table 2).
//!
//! Each kernel is engineered to land in a characteristic regime along the
//! four axes that drive the paper's results — L1D miss rate, ILP,
//! bank-conflict incidence, branch predictability. The paper analogue
//! named on each constructor is a *regime* match, not an emulation of the
//! program.
//!
//! Bank-conflict pairs are built from two lock-step `Stride` patterns
//! whose phases differ by 512 bytes: same L1D bank (offset is a multiple
//! of 64 B = 8 banks × 8 B), different set (offset is not a multiple of
//! the 4 KiB set span), so the two loads conflict whenever the scheduler
//! issues them in the same cycle.

use crate::pattern::AddrPattern;
use crate::spec::{rf, ri, BodyOp, BranchBehavior, BranchTarget, KernelSpec, Reg};
use ss_types::OpClass;

/// Footprint that comfortably fits the 32 KB L1D even when a kernel uses
/// several patterns at once (plus wrong-path and store traffic).
const L1_FIT: u64 = 8 << 10;
/// Footprint that fits the 1 MB L2 but not the L1D.
const L2_FIT: u64 = 256 << 10;
/// Footprint that overflows the L2 (DRAM-resident).
const DRAM_BIG: u64 = 64 << 20;
/// Very large footprint for pointer chasing.
const DRAM_HUGE: u64 = 256 << 20;
/// Phase offset putting a second stride stream in the same bank,
/// different set (512 B = 8 lines).
const CONFLICT_PHASE: u64 = 512;

fn stride(stride: i64, footprint: u64) -> AddrPattern {
    AddrPattern::Stride {
        stride,
        footprint,
        phase: 0,
    }
}

fn stride_phased(s: i64, footprint: u64, phase: u64) -> AddrPattern {
    AddrPattern::Stride {
        stride: s,
        footprint,
        phase,
    }
}

fn alu(dst: Reg, src1: Reg, src2: Option<Reg>) -> BodyOp {
    BodyOp::Compute {
        class: OpClass::IntAlu,
        dst,
        src1,
        src2,
    }
}

fn fadd(dst: Reg, src1: Reg, src2: Option<Reg>) -> BodyOp {
    BodyOp::Compute {
        class: OpClass::FpAlu,
        dst,
        src1,
        src2,
    }
}

fn fmul(dst: Reg, src1: Reg, src2: Option<Reg>) -> BodyOp {
    BodyOp::Compute {
        class: OpClass::FpMul,
        dst,
        src1,
        src2,
    }
}

fn load(dst: Reg, addr_reg: Reg, pattern: usize) -> BodyOp {
    BodyOp::Load {
        dst,
        addr_reg,
        pattern,
    }
}

fn store(addr_reg: Reg, data_reg: Reg, pattern: usize) -> BodyOp {
    BodyOp::Store {
        addr_reg,
        data_reg,
        pattern,
    }
}

fn bern(taken_pct: u8, skip: u8, cond: Reg) -> BodyOp {
    BodyOp::Branch {
        behavior: BranchBehavior::Bernoulli { taken_pct },
        target: BranchTarget::SkipNext(skip),
        cond,
    }
}

fn patt(bits: u32, len: u8, skip: u8, cond: Reg) -> BodyOp {
    BodyOp::Branch {
        behavior: BranchBehavior::Pattern { bits, len },
        target: BranchTarget::SkipNext(skip),
        cond,
    }
}

/// High-ILP FP streaming with dense spatial reuse (paper regime:
/// 171.swim / 437.leslie3d — IPC > 2, low L1 miss rate thanks to 8×
/// per-line reuse, prefetch-friendly).
pub fn stream_hi_ilp(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "stream_hi_ilp",
        vec![
            alu(ri(2), ri(2), Some(ri(9))), // induction i
            alu(ri(3), ri(3), Some(ri(9))), // induction j
            load(rf(1), ri(2), 0),
            load(rf(2), ri(3), 1),
            fadd(rf(3), rf(1), Some(rf(2))),
            fmul(rf(4), rf(1), Some(rf(2))),
            fadd(rf(5), rf(3), Some(rf(4))),
            alu(ri(4), ri(4), Some(ri(9))),
            store(ri(4), rf(5), 2),
        ],
    );
    s.patterns = vec![
        stride(8, L1_FIT),
        AddrPattern::HotCold {
            hot_pct: 96,
            hot_footprint: L1_FIT,
            cold_footprint: L2_FIT,
        },
        stride(8, L1_FIT),
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 128 };
    s.seed = seed;
    s
}

/// Multi-stream FP stencil, high ILP, mild miss rate (172.mgrid).
pub fn grid_stencil(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "grid_stencil",
        vec![
            alu(ri(2), ri(2), Some(ri(9))),
            load(rf(1), ri(2), 0),
            load(rf(2), ri(2), 1),
            load(rf(3), ri(2), 2),
            fadd(rf(4), rf(1), Some(rf(2))),
            fadd(rf(5), rf(3), Some(rf(4))),
            fmul(rf(6), rf(5), Some(rf(1))),
            alu(ri(3), ri(3), Some(ri(9))),
            store(ri(3), rf(6), 3),
        ],
    );
    s.patterns = vec![
        stride(8, L1_FIT),
        stride_phased(8, L1_FIT, 64 + 8), // next line, different bank
        AddrPattern::HotCold {
            hot_pct: 95,
            hot_footprint: L1_FIT,
            cold_footprint: L2_FIT,
        },
        stride(8, L1_FIT),
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 256 };
    s.seed = seed;
    s
}

/// Serialized pointer chase over a DRAM-sized footprint with
/// data-dependent branches (429.mcf — IPC ≈ 0.1, very high miss rate).
pub fn ptr_chase_big(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "ptr_chase_big",
        vec![
            load(ri(1), ri(1), 0), // r1 = [r1]: the chain
            alu(ri(3), ri(1), Some(ri(3))),
            bern(25, 1, ri(1)),
            alu(ri(4), ri(3), None),
        ],
    );
    s.patterns = vec![AddrPattern::Chase {
        footprint: DRAM_HUGE,
    }];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 64 };
    s.seed = seed;
    s
}

/// Pure streaming over a huge footprint: nearly every access opens a new
/// line (462.libquantum — most accesses miss the L1, Always-Hit is the
/// wrong policy, and the paper reports a >99% replay reduction from the
/// filter).
pub fn stream_all_miss(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "stream_all_miss",
        vec![
            alu(ri(2), ri(2), Some(ri(9))),
            load(ri(1), ri(2), 0),
            alu(ri(3), ri(1), Some(ri(9))), // consumer depends only on the load
            alu(ri(5), ri(3), None),
            alu(ri(4), ri(4), Some(ri(9))),
            store(ri(4), ri(3), 1),
        ],
    );
    s.patterns = vec![stride(64, DRAM_BIG), stride(64, DRAM_BIG)];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 512 };
    s.seed = seed;
    s
}

/// Mixed integer code with moderately missing loads and learnable
/// branches (403.gcc / 197.parser).
pub fn mix_int(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "mix_int",
        vec![
            load(ri(1), ri(2), 0),
            alu(ri(3), ri(1), Some(ri(4))),
            patt(0b1101_0110, 8, 2, ri(3)),
            alu(ri(5), ri(3), None),
            load(ri(6), ri(5), 1),
            alu(ri(7), ri(6), Some(ri(3))),
            alu(ri(2), ri(2), Some(ri(9))),
            store(ri(2), ri(7), 2),
        ],
    );
    s.patterns = vec![
        AddrPattern::HotCold {
            hot_pct: 88,
            hot_footprint: 8 << 10,
            cold_footprint: L2_FIT,
        },
        AddrPattern::Uniform { footprint: 8 << 10 },
        stride(8, L1_FIT),
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 32 };
    s.seed = seed;
    s
}

/// ALU-heavy integer kernel with an L1-resident same-bank load pair —
/// the bank-conflict victim regime (186.crafty: >5% loss to bank
/// conflicts at delay 4).
pub fn crafty_like(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "crafty_like",
        vec![
            alu(ri(2), ri(2), Some(ri(9))),
            load(ri(1), ri(2), 0), // conflict pair: same bank,
            load(ri(3), ri(2), 1), // different set, every iteration
            alu(ri(4), ri(1), Some(ri(3))),
            alu(ri(5), ri(4), Some(ri(2))),
            alu(ri(6), ri(5), None),
            patt(0b0110_1001, 8, 1, ri(4)),
            alu(ri(7), ri(6), Some(ri(4))),
        ],
    );
    s.patterns = vec![stride(8, L1_FIT), stride_phased(8, L1_FIT, CONFLICT_PHASE)];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 64 };
    s.seed = seed;
    s
}

/// High-ILP integer kernel with a ~50% L1 miss rate: the regime where
/// Always-Hit replays many independent µ-ops and hit/miss filtering wins
/// performance (483.xalancbmk — IPC 1.98, 46% miss rate).
pub fn xalanc_like(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "xalanc_like",
        vec![
            load(ri(1), ri(2), 0),
            load(ri(3), ri(4), 1),
            load(ri(13), ri(14), 2),
            alu(ri(5), ri(5), Some(ri(9))),
            alu(ri(6), ri(6), Some(ri(9))),
            alu(ri(7), ri(1), Some(ri(5))),
            alu(ri(8), ri(3), Some(ri(6))),
            alu(ri(10), ri(10), Some(ri(9))),
            alu(ri(11), ri(11), Some(ri(9))),
            alu(ri(15), ri(15), Some(ri(9))),
            alu(ri(16), ri(16), Some(ri(9))),
            alu(ri(12), ri(7), Some(ri(8))),
        ],
    );
    s.patterns = vec![
        AddrPattern::HotCold {
            hot_pct: 55,
            hot_footprint: 8 << 10,
            cold_footprint: 128 << 10,
        },
        AddrPattern::HotCold {
            hot_pct: 55,
            hot_footprint: 8 << 10,
            cold_footprint: 128 << 10,
        },
        AddrPattern::HotCold {
            hot_pct: 55,
            hot_footprint: 8 << 10,
            cold_footprint: 128 << 10,
        },
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 128 };
    s.seed = seed;
    s
}

/// Random pointer-ish accesses over a DRAM-sized heap with a dependent
/// consumer chain (471.omnetpp — IPC ≈ 0.3).
pub fn rand_medium(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "rand_medium",
        vec![
            load(ri(1), ri(2), 0),
            alu(ri(3), ri(1), Some(ri(3))),
            alu(ri(4), ri(3), None),
            load(ri(5), ri(4), 1),
            alu(ri(6), ri(5), Some(ri(6))),
            bern(15, 1, ri(6)),
            alu(ri(7), ri(6), None),
        ],
    );
    s.patterns = vec![
        AddrPattern::Uniform {
            footprint: 32 << 20,
        },
        AddrPattern::Uniform {
            footprint: 32 << 20,
        },
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 32 };
    s.seed = seed;
    s
}

/// Wide floating-point compute with few, L1-resident memory accesses
/// (444.namd / 453.povray — IPC > 1.5, ~no misses).
pub fn fp_compute(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "fp_compute",
        vec![
            load(rf(1), ri(2), 0),
            fmul(rf(2), rf(1), Some(rf(2))),
            fadd(rf(3), rf(3), Some(rf(1))),
            fmul(rf(4), rf(4), Some(rf(1))),
            fadd(rf(5), rf(5), Some(rf(1))),
            fmul(rf(6), rf(2), Some(rf(3))),
            fadd(rf(7), rf(4), Some(rf(5))),
            alu(ri(2), ri(2), Some(ri(9))),
            alu(ri(3), ri(3), Some(ri(9))),
            store(ri(3), rf(6), 1),
        ],
    );
    s.patterns = vec![stride(8, L1_FIT), stride(8, L1_FIT)];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 200 };
    s.seed = seed;
    s
}

/// High-IPC integer table probing with a same-bank conflict pair
/// (456.hmmer — IPC 2.36, bank-conflict-sensitive in Figure 4).
pub fn hash_probe(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "hash_probe",
        vec![
            alu(ri(2), ri(2), Some(ri(9))),
            load(ri(1), ri(2), 0),
            load(ri(3), ri(2), 1),
            alu(ri(4), ri(1), Some(ri(3))),
            alu(ri(5), ri(5), Some(ri(4))),
            alu(ri(6), ri(6), Some(ri(9))),
            alu(ri(7), ri(7), Some(ri(9))),
            alu(ri(8), ri(4), Some(ri(5))),
            store(ri(6), ri(8), 2),
        ],
    );
    s.patterns = vec![
        stride(8, L1_FIT),
        stride_phased(8, L1_FIT, CONFLICT_PHASE),
        stride(8, L1_FIT),
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 100 };
    s.seed = seed;
    s
}

/// Branch-dominated integer search (445.gobmk / 458.sjeng — hard
/// branches, moderate IPC).
pub fn branchy_int(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "branchy_int",
        vec![
            load(ri(1), ri(2), 0),
            bern(15, 2, ri(1)),
            alu(ri(3), ri(1), Some(ri(3))),
            alu(ri(4), ri(3), None),
            patt(0b1100_1010, 8, 1, ri(3)),
            alu(ri(5), ri(4), Some(ri(5))),
            alu(ri(6), ri(6), Some(ri(9))),
            alu(ri(2), ri(2), Some(ri(9))),
        ],
    );
    s.patterns = vec![AddrPattern::Uniform { footprint: L1_FIT }];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 16 };
    s.seed = seed;
    s
}

/// FP stencil with two same-bank streams: bank conflicts on an
/// L2-resident working set (459.GemsFDTD — IPC 2.3, loses >5% to bank
/// conflicts in Figure 4a).
pub fn stencil_conflict(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "stencil_conflict",
        vec![
            alu(ri(2), ri(2), Some(ri(9))),
            load(rf(1), ri(2), 0),
            load(rf(2), ri(2), 1),
            fadd(rf(3), rf(1), Some(rf(2))),
            fmul(rf(4), rf(3), Some(rf(1))),
            fadd(rf(5), rf(5), Some(rf(4))),
            alu(ri(3), ri(3), Some(ri(9))),
            store(ri(3), rf(5), 2),
        ],
    );
    s.patterns = vec![
        stride(8, L1_FIT),
        stride_phased(8, L1_FIT, CONFLICT_PHASE),
        stride(8, L1_FIT),
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 256 };
    s.seed = seed;
    s
}

/// Bimodal hot/cold accesses — per-PC *unstable* hit/miss behaviour, the
/// case the filter's silencing bit exists for (175.vpr / 300.twolf).
pub fn hot_cold_mix(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "hot_cold_mix",
        vec![
            load(ri(1), ri(2), 0),
            alu(ri(3), ri(1), Some(ri(3))),
            load(ri(4), ri(3), 1),
            alu(ri(5), ri(4), Some(ri(5))),
            bern(20, 1, ri(5)),
            alu(ri(6), ri(5), None),
            alu(ri(2), ri(2), Some(ri(9))),
        ],
    );
    s.patterns = vec![
        AddrPattern::HotCold {
            hot_pct: 85,
            hot_footprint: 8 << 10,
            cold_footprint: 32 << 20,
        },
        AddrPattern::HotCold {
            hot_pct: 85,
            hot_footprint: 8 << 10,
            cold_footprint: 32 << 20,
        },
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 24 };
    s.seed = seed;
    s
}

/// Serialized chase over an L2-resident set: every link misses the L1 but
/// hits the L2 (179.art — IPC ≈ 0.3).
pub fn dep_chain_l2(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "dep_chain_l2",
        vec![
            load(ri(1), ri(1), 0),
            fadd(rf(1), rf(1), Some(rf(2))),
            fadd(rf(3), rf(1), Some(rf(3))),
            alu(ri(3), ri(1), None),
        ],
    );
    s.patterns = vec![AddrPattern::Chase { footprint: L2_FIT }];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 64 };
    s.seed = seed;
    s
}

/// Load/store-balanced integer compression loop: streaming stores over a
/// large output with L1-resident input (401.bzip2 / 164.gzip).
pub fn store_stream(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "store_stream",
        vec![
            alu(ri(2), ri(2), Some(ri(9))),
            load(ri(1), ri(2), 0),
            alu(ri(3), ri(1), Some(ri(3))),
            patt(0b1011, 4, 1, ri(3)),
            alu(ri(4), ri(3), None),
            alu(ri(5), ri(5), Some(ri(9))),
            store(ri(5), ri(3), 1),
            store(ri(5), ri(4), 2),
        ],
    );
    s.patterns = vec![stride(8, L1_FIT), stride(64, 16 << 20), stride(8, L1_FIT)];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 48 };
    s.seed = seed;
    s
}

/// Call/return-rich interpreter-style kernel (400.perlbench /
/// 255.vortex).
pub fn call_ret_mix(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "call_ret_mix",
        vec![
            load(ri(1), ri(2), 0),
            alu(ri(3), ri(1), Some(ri(3))),
            BodyOp::Call,
            alu(ri(4), ri(3), Some(ri(4))),
            patt(0b0101_1101, 8, 1, ri(4)),
            alu(ri(5), ri(4), None),
            alu(ri(2), ri(2), Some(ri(9))),
        ],
    );
    s.callee = vec![
        alu(ri(10), ri(10), Some(ri(9))),
        load(ri(11), ri(10), 1),
        alu(ri(12), ri(11), Some(ri(12))),
    ];
    s.patterns = vec![
        AddrPattern::Uniform { footprint: 8 << 10 },
        stride(8, L1_FIT),
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 40 };
    s.seed = seed;
    s
}

/// Blocked FP matrix kernel with a same-bank pair on an L1-resident tile
/// (416.gamess — high IPC, bank-conflict-sensitive).
pub fn matrix_fp(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "matrix_fp",
        vec![
            alu(ri(2), ri(2), Some(ri(9))),
            load(rf(1), ri(2), 0),
            load(rf(2), ri(2), 1),
            fmul(rf(3), rf(1), Some(rf(2))),
            fadd(rf(4), rf(4), Some(rf(3))),
            fmul(rf(5), rf(1), Some(rf(1))),
            fadd(rf(6), rf(6), Some(rf(5))),
            alu(ri(3), ri(3), Some(ri(9))),
        ],
    );
    s.patterns = vec![stride(8, L1_FIT), stride_phased(8, L1_FIT, CONFLICT_PHASE)];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 64 };
    s.epilogue = vec![alu(ri(8), ri(8), Some(ri(9))), store(ri(8), rf(4), 0)];
    s.seed = seed;
    s
}

/// Low-ILP FP over a DRAM-resident unstructured mesh (183.equake /
/// 470.lbm — IPC < 0.5).
pub fn equake_like(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "equake_like",
        vec![
            load(rf(1), ri(2), 0),
            fmul(rf(2), rf(1), Some(rf(2))),
            fadd(rf(3), rf(2), Some(rf(3))),
            load(rf(4), ri(3), 1),
            fadd(rf(5), rf(3), Some(rf(4))),
            alu(ri(2), ri(2), Some(ri(9))),
            alu(ri(3), ri(3), Some(ri(9))),
            alu(ri(4), ri(4), Some(ri(9))),
            store(ri(4), rf(5), 2),
        ],
    );
    s.patterns = vec![
        AddrPattern::Uniform { footprint: 8 << 20 },
        AddrPattern::Uniform { footprint: 8 << 20 },
        stride(64, 8 << 20),
    ];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 96 };
    s.seed = seed;
    s
}

/// Read-after-write in-place updates: every iteration stores to an
/// element behind a slow dependence chain and immediately reloads it.
/// Without memory-dependence prediction the reload issues early and
/// violates memory ordering; Store Sets (188.ammp-style in-place physics
/// updates) learns to serialize the pair.
pub fn rmw_hazard(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "rmw_hazard",
        vec![
            alu(ri(2), ri(2), Some(ri(9))),
            load(ri(1), ri(2), 0),
            BodyOp::Compute {
                class: OpClass::IntMul,
                dst: ri(3),
                src1: ri(1),
                src2: Some(ri(3)),
            },
            alu(ri(4), ri(3), Some(ri(4))),
            BodyOp::StoreLast {
                addr_reg: ri(2),
                data_reg: ri(4),
                pattern: 0,
            },
            BodyOp::LoadLast {
                dst: ri(5),
                addr_reg: ri(2),
                pattern: 0,
            },
            alu(ri(6), ri(5), Some(ri(6))),
        ],
    );
    s.patterns = vec![stride(8, L1_FIT)];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 64 };
    s.seed = seed;
    s
}

/// L1-resident linked-list walk: every load's address is the previous
/// load's result, and the list fits the L1D (175.vpr / 300.twolf-style
/// pointer code). The chain makes load-to-use latency *the* critical
/// path: conservative scheduling at delay d costs d extra cycles per
/// link (the Borch et al. effect Figure 3 quantifies), while speculative
/// scheduling recovers it with essentially no replays (all hits).
pub fn list_walk(seed: u64) -> KernelSpec {
    let mut s = KernelSpec::new(
        "list_walk",
        vec![
            load(ri(1), ri(1), 0), // r1 = [r1]: the walk
            alu(ri(3), ri(1), Some(ri(3))),
            alu(ri(4), ri(3), None),
        ],
    );
    s.patterns = vec![AddrPattern::Chase { footprint: L1_FIT }];
    s.loop_behavior = BranchBehavior::TakenEvery { period: 128 };
    s.seed = seed;
    s
}

/// A named benchmark: a kernel constructor plus its paper-regime
/// annotation.
#[derive(Clone, Copy)]
pub struct Benchmark {
    /// Kernel (and table-row) name.
    pub name: &'static str,
    /// The SPEC benchmark regime this kernel substitutes for.
    pub paper_analogue: &'static str,
    /// Builds the kernel spec for a seed.
    pub build: fn(u64) -> KernelSpec,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("paper_analogue", &self.paper_analogue)
            .finish()
    }
}

/// The full benchmark registry, in table order.
pub const BENCHMARKS: [Benchmark; 20] = [
    Benchmark {
        name: "stream_hi_ilp",
        paper_analogue: "171.swim / 437.leslie3d",
        build: stream_hi_ilp,
    },
    Benchmark {
        name: "grid_stencil",
        paper_analogue: "172.mgrid",
        build: grid_stencil,
    },
    Benchmark {
        name: "ptr_chase_big",
        paper_analogue: "429.mcf",
        build: ptr_chase_big,
    },
    Benchmark {
        name: "stream_all_miss",
        paper_analogue: "462.libquantum",
        build: stream_all_miss,
    },
    Benchmark {
        name: "mix_int",
        paper_analogue: "403.gcc / 197.parser",
        build: mix_int,
    },
    Benchmark {
        name: "crafty_like",
        paper_analogue: "186.crafty",
        build: crafty_like,
    },
    Benchmark {
        name: "xalanc_like",
        paper_analogue: "483.xalancbmk",
        build: xalanc_like,
    },
    Benchmark {
        name: "rand_medium",
        paper_analogue: "471.omnetpp",
        build: rand_medium,
    },
    Benchmark {
        name: "fp_compute",
        paper_analogue: "444.namd / 453.povray",
        build: fp_compute,
    },
    Benchmark {
        name: "hash_probe",
        paper_analogue: "456.hmmer",
        build: hash_probe,
    },
    Benchmark {
        name: "branchy_int",
        paper_analogue: "445.gobmk / 458.sjeng",
        build: branchy_int,
    },
    Benchmark {
        name: "stencil_conflict",
        paper_analogue: "459.GemsFDTD",
        build: stencil_conflict,
    },
    Benchmark {
        name: "hot_cold_mix",
        paper_analogue: "175.vpr / 300.twolf",
        build: hot_cold_mix,
    },
    Benchmark {
        name: "dep_chain_l2",
        paper_analogue: "179.art",
        build: dep_chain_l2,
    },
    Benchmark {
        name: "store_stream",
        paper_analogue: "401.bzip2 / 164.gzip",
        build: store_stream,
    },
    Benchmark {
        name: "call_ret_mix",
        paper_analogue: "400.perlbench / 255.vortex",
        build: call_ret_mix,
    },
    Benchmark {
        name: "matrix_fp",
        paper_analogue: "416.gamess",
        build: matrix_fp,
    },
    Benchmark {
        name: "equake_like",
        paper_analogue: "183.equake / 470.lbm",
        build: equake_like,
    },
    Benchmark {
        name: "rmw_hazard",
        paper_analogue: "188.ammp (in-place updates)",
        build: rmw_hazard,
    },
    Benchmark {
        name: "list_walk",
        paper_analogue: "175.vpr / 300.twolf (resident pointer code)",
        build: list_walk,
    },
];

/// All benchmarks, built with the given seed.
pub fn all_benchmarks(seed: u64) -> Vec<KernelSpec> {
    BENCHMARKS.iter().map(|b| (b.build)(seed)).collect()
}

/// All benchmark names, in table order.
pub fn benchmark_names() -> Vec<&'static str> {
    BENCHMARKS.iter().map(|b| b.name).collect()
}

/// Looks up a benchmark by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSource;
    use std::collections::HashSet;

    #[test]
    fn every_benchmark_validates() {
        for b in &BENCHMARKS {
            let spec = (b.build)(1);
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<_> = benchmark_names().into_iter().collect();
        assert_eq!(names.len(), BENCHMARKS.len());
    }

    #[test]
    fn lookup_finds_and_misses() {
        assert!(benchmark("ptr_chase_big").is_some());
        assert!(benchmark("does_not_exist").is_none());
    }

    #[test]
    fn every_benchmark_streams_valid_uops() {
        for b in &BENCHMARKS {
            let mut t = (b.build)(3).into_source();
            for _ in 0..5_000 {
                let op = t.next_uop();
                op.validate().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            }
        }
    }

    /// The conflict-pair kernels must generate same-bank different-set
    /// load pairs within an iteration (the property Schedule Shifting
    /// exploits).
    #[test]
    fn conflict_pairs_hit_same_bank_different_set() {
        for name in ["crafty_like", "hash_probe", "stencil_conflict", "matrix_fp"] {
            let mut t = (benchmark(name).unwrap().build)(5).into_source();
            let mut pair_seen = 0;
            let mut last_load: Option<ss_types::Addr> = None;
            for _ in 0..2_000 {
                let op = t.next_uop();
                if op.class.is_load() {
                    if let Some(prev) = last_load.take() {
                        let a = op.mem_addr().unwrap();
                        let same_bank = prev.bits(3, 3) == a.bits(3, 3);
                        let same_set = prev.bits(6, 6) == a.bits(6, 6);
                        if same_bank && !same_set {
                            pair_seen += 1;
                        }
                    } else {
                        last_load = Some(op.mem_addr().unwrap());
                    }
                } else {
                    last_load = None;
                }
            }
            assert!(pair_seen > 50, "{name}: only {pair_seen} conflicting pairs");
        }
    }

    /// The chase kernels must serialize: the chased load's address
    /// register equals its own destination.
    #[test]
    fn chase_kernels_serialize_on_the_load() {
        for name in ["ptr_chase_big", "dep_chain_l2", "list_walk"] {
            let mut t = (benchmark(name).unwrap().build)(1).into_source();
            let mut found = false;
            for _ in 0..50 {
                let op = t.next_uop();
                if op.class.is_load() && op.dst == op.srcs[0] {
                    found = true;
                }
            }
            assert!(found, "{name}: no self-chained load found");
        }
    }

    #[test]
    fn distinct_seeds_change_random_kernels() {
        let mut a = rand_medium(1).into_source();
        let mut b = rand_medium(2).into_source();
        let mut differs = false;
        for _ in 0..200 {
            if a.next_uop() != b.next_uop() {
                differs = true;
            }
        }
        assert!(differs);
    }

    #[test]
    fn registry_matches_table_size() {
        // The paper evaluates 36 SPEC slices; each of our 20 kernels
        // substitutes for a regime covering roughly two of them.
        assert_eq!(BENCHMARKS.len(), 20);
    }

    /// rmw_hazard must emit a store and a younger load to the *same*
    /// address within an iteration (the Store Sets training case).
    #[test]
    fn rmw_kernel_aliases_store_then_load() {
        let mut t = rmw_hazard(1).into_source();
        let mut aliased = 0;
        let mut last_store: Option<ss_types::Addr> = None;
        for _ in 0..200 {
            let op = t.next_uop();
            if op.class.is_store() {
                last_store = Some(op.mem_addr().unwrap());
            } else if op.class.is_load() && last_store.take() == op.mem_addr() {
                aliased += 1;
            }
        }
        assert!(
            aliased > 10,
            "store→load aliasing pairs expected, got {aliased}"
        );
    }
}
