//! Synthetic workload substrate — the repository's substitute for the
//! paper's SPEC CPU2000/2006 SimPoint slices.
//!
//! SPEC binaries and reference inputs cannot be redistributed or executed
//! here, so each benchmark is replaced by a *synthetic kernel* engineered
//! to land in the same microarchitectural regime along the four axes that
//! drive the paper's results:
//!
//! 1. **L1D miss rate** (footprint and access pattern),
//! 2. **ILP / achievable IPC** (dependency-chain shape),
//! 3. **L1D bank-conflict incidence** (same-cycle same-bank load pairs),
//! 4. **branch-misprediction rate** (branch behaviour models).
//!
//! The mapping from paper benchmark to kernel is documented on each kernel
//! constructor in [`kernels`].
//!
//! # Example
//!
//! ```
//! use ss_workloads::{kernels, TraceSource};
//!
//! let mut trace = kernels::ptr_chase_big(7).into_source();
//! let op = trace.next_uop();
//! op.validate().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod gen;
pub mod kernels;
pub mod pattern;
pub mod spec;
pub mod wrongpath;

pub use engine::KernelTrace;
pub use kernels::{all_benchmarks, benchmark, benchmark_names, Benchmark, BENCHMARKS};
pub use pattern::AddrPattern;
pub use spec::{BodyOp, BranchBehavior, KernelSpec, Reg};
pub use wrongpath::WrongPathGen;

use ss_isa::MicroOp;

/// An infinite, deterministic stream of dynamic µ-ops.
///
/// The pipeline pulls one µ-op at a time; traces never end (runs are
/// bounded by committed-µ-op budgets instead), which keeps end-of-trace
/// draining logic out of the timing model.
pub trait TraceSource {
    /// Produces the next correct-path µ-op.
    fn next_uop(&mut self) -> MicroOp;

    /// Human-readable workload name.
    fn name(&self) -> &str;
}

// A boxed source (including a trait object) is itself a source, so the
// `RunRequest` runner can hold arbitrary caller-provided traces without
// being generic over them.
impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_uop(&mut self) -> MicroOp {
        (**self).next_uop()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}
