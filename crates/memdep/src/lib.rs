//! Memory-dependence prediction substrate: Store Sets (Chrysos & Emer,
//! ISCA 1998), sized per the paper's Table 1 (1K-entry SSIT / LFST).
//!
//! Independent memory µ-ops are allowed to issue out of order; loads
//! predicted to depend on an in-flight store wait for it. The predictor
//! learns from memory-order violations: when a load executes before an
//! older store to the same address, the two PCs are merged into one store
//! set, and future instances serialize.
//!
//! # Example
//!
//! ```
//! use ss_memdep::StoreSets;
//! use ss_types::{Pc, SeqNum};
//!
//! let mut ss = StoreSets::new(1024, 131_072);
//! // a violation between a load and a store teaches the predictor...
//! ss.on_violation(Pc::new(0x100), Pc::new(0x200));
//! // ...so the next instance of the store is tracked,
//! ss.on_store_dispatch(Pc::new(0x200), SeqNum::new(7));
//! // and the next instance of the load must wait for it.
//! assert_eq!(ss.load_dependence(Pc::new(0x100)), Some(SeqNum::new(7)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ss_types::{Pc, SeqNum};

/// A store-set identifier.
type Ssid = u16;

/// The Store Sets predictor: SSIT (PC → SSID) + LFST (SSID → last fetched
/// store).
#[derive(Debug, Clone)]
pub struct StoreSets {
    /// Store-set ID table, direct-mapped on PC.
    ssit: Vec<Option<Ssid>>,
    /// Last fetched store table, indexed by SSID.
    lfst: Vec<Option<SeqNum>>,
    /// Accesses since the last cyclic clear.
    accesses: u64,
    /// Cyclic-clearing interval (accesses); keeps stale sets from
    /// serializing forever.
    clear_interval: u64,
    /// Memory-order violations observed (predictor training events).
    pub violations: u64,
}

impl StoreSets {
    /// Creates a predictor with `entries` SSIT/LFST entries (power of two)
    /// and the given cyclic-clearing interval.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32, clear_interval: u64) -> Self {
        assert!(entries.is_power_of_two());
        StoreSets {
            ssit: vec![None; entries as usize],
            lfst: vec![None; entries as usize],
            accesses: 0,
            clear_interval,
            violations: 0,
        }
    }

    fn index(&self, pc: Pc) -> usize {
        (pc.get() >> 2) as usize & (self.ssit.len() - 1)
    }

    fn tick(&mut self) {
        self.accesses += 1;
        if self.clear_interval > 0 && self.accesses.is_multiple_of(self.clear_interval) {
            self.ssit.fill(None);
            self.lfst.fill(None);
        }
    }

    /// Called when a store dispatches: returns the store it must wait for
    /// (the previous store in its set, enforcing in-order stores within a
    /// set) and records this store as the set's last fetched store.
    pub fn on_store_dispatch(&mut self, pc: Pc, seq: SeqNum) -> Option<SeqNum> {
        self.tick();
        let idx = self.index(pc);
        let ssid = self.ssit[idx]?;
        let prev = self.lfst[ssid as usize];
        self.lfst[ssid as usize] = Some(seq);
        prev
    }

    /// Called when a load dispatches: returns the store it is predicted to
    /// depend on, if any.
    pub fn load_dependence(&mut self, pc: Pc) -> Option<SeqNum> {
        self.tick();
        let idx = self.index(pc);
        let ssid = self.ssit[idx]?;
        self.lfst[ssid as usize]
    }

    /// Called when a store executes or is squashed: clears its LFST slot
    /// if it is still the set's last fetched store (so later loads do not
    /// wait on a completed store).
    pub fn on_store_complete(&mut self, pc: Pc, seq: SeqNum) {
        let idx = self.index(pc);
        if let Some(ssid) = self.ssit[idx] {
            if self.lfst[ssid as usize] == Some(seq) {
                self.lfst[ssid as usize] = None;
            }
        }
    }

    /// Trains on a memory-order violation between `load_pc` and the older
    /// `store_pc`, merging their store sets (Chrysos & Emer's assignment
    /// rules).
    pub fn on_violation(&mut self, load_pc: Pc, store_pc: Pc) {
        self.violations += 1;
        let li = self.index(load_pc);
        let si = self.index(store_pc);
        match (self.ssit[li], self.ssit[si]) {
            (None, None) => {
                // Create a new set named after the store's index.
                let ssid = (si & 0xFFFF) as Ssid;
                self.ssit[li] = Some(ssid);
                self.ssit[si] = Some(ssid);
            }
            (Some(l), None) => self.ssit[si] = Some(l),
            (None, Some(s)) => self.ssit[li] = Some(s),
            (Some(l), Some(s)) => {
                // Merge: both adopt the smaller SSID (declared winner).
                let w = l.min(s);
                self.ssit[li] = Some(w);
                self.ssit[si] = Some(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ss() -> StoreSets {
        StoreSets::new(1024, 0) // no clearing in unit tests
    }

    #[test]
    fn cold_predictor_predicts_independence() {
        let mut s = ss();
        assert_eq!(s.load_dependence(Pc::new(0x100)), None);
        assert_eq!(s.on_store_dispatch(Pc::new(0x200), SeqNum::new(1)), None);
    }

    #[test]
    fn violation_creates_dependence() {
        let mut s = ss();
        s.on_violation(Pc::new(0x100), Pc::new(0x200));
        assert_eq!(s.on_store_dispatch(Pc::new(0x200), SeqNum::new(5)), None);
        assert_eq!(s.load_dependence(Pc::new(0x100)), Some(SeqNum::new(5)));
        assert_eq!(s.violations, 1);
    }

    #[test]
    fn store_completion_clears_lfst() {
        let mut s = ss();
        s.on_violation(Pc::new(0x100), Pc::new(0x200));
        s.on_store_dispatch(Pc::new(0x200), SeqNum::new(5));
        s.on_store_complete(Pc::new(0x200), SeqNum::new(5));
        assert_eq!(
            s.load_dependence(Pc::new(0x100)),
            None,
            "completed store released"
        );
    }

    #[test]
    fn stale_completion_does_not_clear_newer_store() {
        let mut s = ss();
        s.on_violation(Pc::new(0x100), Pc::new(0x200));
        s.on_store_dispatch(Pc::new(0x200), SeqNum::new(5));
        s.on_store_dispatch(Pc::new(0x200), SeqNum::new(9));
        s.on_store_complete(Pc::new(0x200), SeqNum::new(5)); // old instance
        assert_eq!(s.load_dependence(Pc::new(0x100)), Some(SeqNum::new(9)));
    }

    #[test]
    fn stores_in_one_set_serialize() {
        let mut s = ss();
        // two stores merged into one set via two violations with one load
        s.on_violation(Pc::new(0x100), Pc::new(0x200));
        s.on_violation(Pc::new(0x100), Pc::new(0x300));
        let first = s.on_store_dispatch(Pc::new(0x200), SeqNum::new(5));
        assert_eq!(first, None);
        let second = s.on_store_dispatch(Pc::new(0x300), SeqNum::new(7));
        assert_eq!(second, Some(SeqNum::new(5)), "same-set stores are ordered");
    }

    #[test]
    fn merge_keeps_sets_consistent() {
        let mut s = ss();
        s.on_violation(Pc::new(0x100), Pc::new(0x200)); // set A
        s.on_violation(Pc::new(0x104), Pc::new(0x204)); // set B
                                                        // now a violation linking the two loads' stores
        s.on_violation(Pc::new(0x100), Pc::new(0x204)); // merge
        s.on_store_dispatch(Pc::new(0x204), SeqNum::new(11));
        assert_eq!(
            s.load_dependence(Pc::new(0x100)),
            Some(SeqNum::new(11)),
            "merged set shares the LFST"
        );
    }

    #[test]
    fn cyclic_clearing_forgets() {
        let mut s = StoreSets::new(1024, 4);
        s.on_violation(Pc::new(0x100), Pc::new(0x200));
        s.on_store_dispatch(Pc::new(0x200), SeqNum::new(1)); // access 1
        let _ = s.load_dependence(Pc::new(0x100)); // access 2
        let _ = s.load_dependence(Pc::new(0x100)); // access 3
        let _ = s.load_dependence(Pc::new(0x100)); // access 4 → clear
        assert_eq!(
            s.load_dependence(Pc::new(0x100)),
            None,
            "cleared after interval"
        );
    }

    #[test]
    #[should_panic]
    fn non_pow2_rejected() {
        let _ = StoreSets::new(1000, 0);
    }
}

ss_types::impl_persist_state!(StoreSets {
    ssit,
    lfst,
    accesses,
    violations
});
