//! RV32IM instruction decoder: one 32-bit little-endian word to a typed
//! [`Inst`], or a description of why the word is not a valid RV32IM
//! instruction. Purely combinational — no machine state.

/// Register-register / register-immediate binary operations: the RV32I
/// OP/OP-IMM arithmetic set plus the M extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

impl BinOp {
    /// Whether this is an M-extension multiply (long-latency µ-op class).
    pub fn is_mul(self) -> bool {
        matches!(
            self,
            BinOp::Mul | BinOp::Mulh | BinOp::Mulhsu | BinOp::Mulhu
        )
    }

    /// Whether this is an M-extension divide/remainder.
    pub fn is_div(self) -> bool {
        matches!(self, BinOp::Div | BinOp::Divu | BinOp::Rem | BinOp::Remu)
    }
}

/// Conditional-branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BrOp {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

/// Load width/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum LdOp {
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
}

impl LdOp {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            LdOp::Lb | LdOp::Lbu => 1,
            LdOp::Lh | LdOp::Lhu => 2,
            LdOp::Lw => 4,
        }
    }
}

/// Store width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum StOp {
    Sb,
    Sh,
    Sw,
}

impl StOp {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            StOp::Sb => 1,
            StOp::Sh => 2,
            StOp::Sw => 4,
        }
    }
}

/// One decoded RV32IM instruction. Register fields are architectural
/// indices (`x0`–`x31`); immediates are already sign-extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Inst {
    Lui {
        rd: u8,
        imm: u32,
    },
    Auipc {
        rd: u8,
        imm: u32,
    },
    Jal {
        rd: u8,
        imm: i32,
    },
    Jalr {
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Branch {
        op: BrOp,
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    Load {
        op: LdOp,
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Store {
        op: StOp,
        rs1: u8,
        rs2: u8,
        imm: i32,
    },
    /// OP-IMM: `rd = rs1 <op> imm` (shifts carry the shamt in `imm`).
    OpImm {
        op: BinOp,
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    Op {
        op: BinOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Fence,
    Ecall,
    Ebreak,
}

fn rd(w: u32) -> u8 {
    ((w >> 7) & 0x1f) as u8
}
fn rs1(w: u32) -> u8 {
    ((w >> 15) & 0x1f) as u8
}
fn rs2(w: u32) -> u8 {
    ((w >> 20) & 0x1f) as u8
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}

/// I-type immediate, sign-extended.
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

/// S-type immediate, sign-extended.
fn imm_s(w: u32) -> i32 {
    let imm = ((w >> 25) << 5) | ((w >> 7) & 0x1f);
    ((imm << 20) as i32) >> 20
}

/// B-type immediate (byte offset), sign-extended.
fn imm_b(w: u32) -> i32 {
    let imm = ((w >> 31) << 12)
        | (((w >> 7) & 1) << 11)
        | (((w >> 25) & 0x3f) << 5)
        | (((w >> 8) & 0xf) << 1);
    ((imm << 19) as i32) >> 19
}

/// J-type immediate (byte offset), sign-extended.
fn imm_j(w: u32) -> i32 {
    let imm = ((w >> 31) << 20)
        | (((w >> 12) & 0xff) << 12)
        | (((w >> 20) & 1) << 11)
        | (((w >> 21) & 0x3ff) << 1);
    ((imm << 11) as i32) >> 11
}

/// Decodes one instruction word.
///
/// # Errors
///
/// Returns a human-readable reason when the word is not a valid RV32IM
/// instruction (unknown opcode, funct3/funct7 combination, or a
/// non-RV32I fence/system encoding).
pub fn decode(w: u32) -> Result<Inst, String> {
    let opcode = w & 0x7f;
    match opcode {
        0x37 => Ok(Inst::Lui {
            rd: rd(w),
            imm: w & 0xffff_f000,
        }),
        0x17 => Ok(Inst::Auipc {
            rd: rd(w),
            imm: w & 0xffff_f000,
        }),
        0x6f => Ok(Inst::Jal {
            rd: rd(w),
            imm: imm_j(w),
        }),
        0x67 => match funct3(w) {
            0 => Ok(Inst::Jalr {
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            }),
            f => Err(format!("jalr with funct3 {f}")),
        },
        0x63 => {
            let op = match funct3(w) {
                0b000 => BrOp::Beq,
                0b001 => BrOp::Bne,
                0b100 => BrOp::Blt,
                0b101 => BrOp::Bge,
                0b110 => BrOp::Bltu,
                0b111 => BrOp::Bgeu,
                f => return Err(format!("branch with funct3 {f}")),
            };
            Ok(Inst::Branch {
                op,
                rs1: rs1(w),
                rs2: rs2(w),
                imm: imm_b(w),
            })
        }
        0x03 => {
            let op = match funct3(w) {
                0b000 => LdOp::Lb,
                0b001 => LdOp::Lh,
                0b010 => LdOp::Lw,
                0b100 => LdOp::Lbu,
                0b101 => LdOp::Lhu,
                f => return Err(format!("load with funct3 {f}")),
            };
            Ok(Inst::Load {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            })
        }
        0x23 => {
            let op = match funct3(w) {
                0b000 => StOp::Sb,
                0b001 => StOp::Sh,
                0b010 => StOp::Sw,
                f => return Err(format!("store with funct3 {f}")),
            };
            Ok(Inst::Store {
                op,
                rs1: rs1(w),
                rs2: rs2(w),
                imm: imm_s(w),
            })
        }
        0x13 => {
            let (op, imm) = match funct3(w) {
                0b000 => (BinOp::Add, imm_i(w)),
                0b010 => (BinOp::Slt, imm_i(w)),
                0b011 => (BinOp::Sltu, imm_i(w)),
                0b100 => (BinOp::Xor, imm_i(w)),
                0b110 => (BinOp::Or, imm_i(w)),
                0b111 => (BinOp::And, imm_i(w)),
                0b001 => match funct7(w) {
                    0 => (BinOp::Sll, rs2(w) as i32),
                    f => return Err(format!("slli with funct7 {f:#x}")),
                },
                0b101 => match funct7(w) {
                    0x00 => (BinOp::Srl, rs2(w) as i32),
                    0x20 => (BinOp::Sra, rs2(w) as i32),
                    f => return Err(format!("srli/srai with funct7 {f:#x}")),
                },
                _ => unreachable!("funct3 is 3 bits"),
            };
            Ok(Inst::OpImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            })
        }
        0x33 => {
            let op = match (funct7(w), funct3(w)) {
                (0x00, 0b000) => BinOp::Add,
                (0x20, 0b000) => BinOp::Sub,
                (0x00, 0b001) => BinOp::Sll,
                (0x00, 0b010) => BinOp::Slt,
                (0x00, 0b011) => BinOp::Sltu,
                (0x00, 0b100) => BinOp::Xor,
                (0x00, 0b101) => BinOp::Srl,
                (0x20, 0b101) => BinOp::Sra,
                (0x00, 0b110) => BinOp::Or,
                (0x00, 0b111) => BinOp::And,
                (0x01, 0b000) => BinOp::Mul,
                (0x01, 0b001) => BinOp::Mulh,
                (0x01, 0b010) => BinOp::Mulhsu,
                (0x01, 0b011) => BinOp::Mulhu,
                (0x01, 0b100) => BinOp::Div,
                (0x01, 0b101) => BinOp::Divu,
                (0x01, 0b110) => BinOp::Rem,
                (0x01, 0b111) => BinOp::Remu,
                (f7, f3) => return Err(format!("OP with funct7 {f7:#x} funct3 {f3}")),
            };
            Ok(Inst::Op {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            })
        }
        0x0f => Ok(Inst::Fence),
        0x73 => match w {
            0x0000_0073 => Ok(Inst::Ecall),
            0x0010_0073 => Ok(Inst::Ebreak),
            _ => Err(format!("unsupported SYSTEM encoding {w:#010x}")),
        },
        op => Err(format!("unknown opcode {op:#04x} (word {w:#010x})")),
    }
}
