//! The checked-in real-program suite: four small RV32IM programs
//! assembled by the in-crate encoder ([`crate::asm`]) — no external
//! toolchain, so the workspace stays fully offline. Each takes a seed in
//! `a0`, runs a few thousand dynamic instructions with data-dependent
//! control flow and addressing, and exits via `ecall` with a small
//! checksum so the interpreter tests can pin behaviour.
//!
//! | name       | behaviour                                              |
//! |------------|--------------------------------------------------------|
//! | `sort`     | PRNG-fill 64 words, insertion sort, count inversions   |
//! | `hashjoin` | build a 256-slot open-addressing table, probe hit+miss |
//! | `alloc`    | link 256 nodes in a full-cycle list, pointer-chase it  |
//! | `lz`       | LZ-style match-length scan over a 4-symbol buffer      |

use crate::asm::Asm;
use crate::RvProgram;

/// Total flat memory for every suite program.
const MEM_SIZE: u32 = 1 << 16;
/// Entry point; the image below it is zero.
const ENTRY: u32 = 0x100;
/// Base address of each program's working data.
const DATA: u32 = 0x4000;

// Register aliases (RISC-V ABI names), for readable program text.
const T0: u8 = 5;
const T1: u8 = 6;
const T2: u8 = 7;
const T3: u8 = 28;
const T4: u8 = 29;
const T5: u8 = 30;
const T6: u8 = 31;
const A0: u8 = 10;
const A1: u8 = 11;
const A2: u8 = 12;
const A3: u8 = 13;
const A7: u8 = 17;
/// The exit ecall number, kept in sync with the interpreter.
const SYS_EXIT: u32 = crate::interp::ECALL_EXIT;

/// The names of the suite programs, in canonical order.
pub fn names() -> [&'static str; 4] {
    ["sort", "hashjoin", "alloc", "lz"]
}

/// Builds the named suite program with the given seed folded into `a0`.
/// Returns `None` for an unknown name.
pub fn build(name: &str, seed: u32) -> Option<RvProgram> {
    let asm = match name {
        "sort" => sort(),
        "hashjoin" => hashjoin(),
        "alloc" => alloc(),
        "lz" => lz(),
        _ => return None,
    };
    let code = asm.assemble_bytes();
    let mut image = vec![0u8; ENTRY as usize];
    image.extend_from_slice(&code);
    Some(RvProgram {
        name: name.to_string(),
        entry: ENTRY,
        image,
        mem_size: MEM_SIZE,
        arg: seed,
    })
}

/// Emits one xorshift32 round on register `s`, clobbering `t`.
fn xorshift(a: &mut Asm, s: u8, t: u8) {
    a.slli(t, s, 13);
    a.xor(s, s, t);
    a.srli(t, s, 17);
    a.xor(s, s, t);
    a.slli(t, s, 5);
    a.xor(s, s, t);
}

/// Emits the exit sequence (`a0` already holds the code).
fn exit(a: &mut Asm) {
    a.li(A7, SYS_EXIT);
    a.ecall();
}

/// PRNG-fill 64 words, insertion-sort them (data-dependent `bgeu` inner
/// loop), then exit with the number of remaining inversions — always 0.
fn sort() -> Asm {
    const N: u32 = 64;
    let mut a = Asm::new();
    a.ori(A0, A0, 1); // nonzero PRNG state
    a.li(T0, DATA);
    a.li(T1, 0);
    a.li(T2, N);
    a.label("fill");
    xorshift(&mut a, A0, T3);
    a.slli(T4, T1, 2);
    a.add(T4, T4, T0);
    a.sw(A0, 0, T4);
    a.addi(T1, T1, 1);
    a.bne(T1, T2, "fill");
    // Insertion sort: shift elements greater than the key up by one.
    a.li(T1, 1);
    a.label("outer");
    a.slli(T4, T1, 2);
    a.add(T4, T4, T0);
    a.lw(A1, 0, T4); // key
    a.mv(T3, T1); // j
    a.label("inner");
    a.beq(T3, 0, "place");
    a.slli(T5, T3, 2);
    a.add(T5, T5, T0);
    a.lw(T6, -4, T5); // data[j-1]
    a.bgeu(A1, T6, "place");
    a.sw(T6, 0, T5); // data[j] = data[j-1]
    a.addi(T3, T3, -1);
    a.j("inner");
    a.label("place");
    a.slli(T5, T3, 2);
    a.add(T5, T5, T0);
    a.sw(A1, 0, T5);
    a.addi(T1, T1, 1);
    a.bne(T1, T2, "outer");
    // Count inversions left (must be zero).
    a.li(T1, 1);
    a.li(A0, 0);
    a.label("chk");
    a.slli(T4, T1, 2);
    a.add(T4, T4, T0);
    a.lw(T5, 0, T4);
    a.lw(T6, -4, T4);
    a.bgeu(T5, T6, "chk_ok");
    a.addi(A0, A0, 1);
    a.label("chk_ok");
    a.addi(T1, T1, 1);
    a.bne(T1, T2, "chk");
    exit(&mut a);
    a
}

/// Open-addressing hash join: clear a 256-slot × 8 B table, build 128
/// keys (Fibonacci-hash `mul` + linear probing with wraparound), then
/// probe 128 replayed keys (hits) and 128 fresh keys (mostly misses).
/// Exits with the summed match values folded by `remu`.
fn hashjoin() -> Asm {
    const SLOTS: u32 = 256;
    const TBL_END: u32 = DATA + SLOTS * 8;
    const BUILD: u32 = 128;
    /// Emits hash-and-probe: key in `T4` → matching/empty slot in `T6`.
    /// `hit` receives control with the slot in `T6` when the key is
    /// found; fall-through means empty slot (insert point / miss).
    fn lookup(a: &mut Asm, tag: &str, hit: &str) {
        a.li(T5, 0x9e37_79b1);
        a.mul(T6, T4, T5);
        a.srli(T6, T6, 24);
        a.slli(T6, T6, 3);
        a.li(T5, DATA);
        a.add(T6, T6, T5);
        a.label(tag);
        a.lw(T3, 0, T6);
        a.beq(T3, T4, hit);
        a.beq(T3, 0, &format!("{tag}_empty"));
        a.addi(T6, T6, 8);
        a.li(T5, TBL_END);
        a.bne(T6, T5, tag);
        a.li(T6, DATA);
        a.j(tag);
        a.label(&format!("{tag}_empty"));
    }
    let mut a = Asm::new();
    a.ori(A0, A0, 1);
    a.li(T0, DATA);
    a.li(T5, TBL_END);
    a.label("clr");
    a.sw(0, 0, T0);
    a.sw(0, 4, T0);
    a.addi(T0, T0, 8);
    a.bne(T0, T5, "clr");
    // Build phase: keys come from the PRNG stream starting at `a2`.
    a.mv(A2, A0);
    a.li(T1, 0);
    a.li(T2, BUILD);
    a.label("build");
    xorshift(&mut a, A0, T3);
    a.ori(T4, A0, 1);
    lookup(&mut a, "bprobe", "bprobe_empty"); // keys are unique enough;
                                              // a duplicate just re-lands
                                              // on its own slot
    a.sw(T4, 0, T6);
    a.sw(T1, 4, T6);
    a.addi(T1, T1, 1);
    a.bne(T1, T2, "build");
    // Probe phase 1: replay the build stream — every key hits.
    a.mv(A1, A2);
    a.li(T1, 0);
    a.li(A3, 0);
    a.label("probe_h");
    xorshift(&mut a, A1, T3);
    a.ori(T4, A1, 1);
    lookup(&mut a, "hprobe", "hprobe_hit");
    a.j("h_next"); // empty slot: miss
    a.label("hprobe_hit");
    a.lw(T5, 4, T6);
    a.add(A3, A3, T5);
    a.label("h_next");
    a.addi(T1, T1, 1);
    a.bne(T1, T2, "probe_h");
    // Probe phase 2: fresh keys — misses walk to an empty slot.
    a.li(T1, 0);
    a.label("probe_m");
    xorshift(&mut a, A0, T3);
    a.ori(T4, A0, 1);
    lookup(&mut a, "mprobe", "mprobe_hit");
    a.j("m_next");
    a.label("mprobe_hit");
    a.lw(T5, 4, T6);
    a.add(A3, A3, T5);
    a.label("m_next");
    a.addi(T1, T1, 1);
    a.bne(T1, T2, "probe_m");
    a.li(T5, 251);
    a.remu(A0, A3, T5);
    exit(&mut a);
    a
}

/// Pointer-chasing allocator: 256 fixed-size nodes linked into one
/// 256-long cycle by a seed-dependent odd stride, then 2048 serially
/// dependent `lw` chases. Exits with the payload sum folded to a byte.
fn alloc() -> Asm {
    const NODES: u32 = 256;
    const WALK: u32 = 2048;
    let mut a = Asm::new();
    a.ori(A0, A0, 1);
    a.andi(T1, A0, 255);
    a.ori(T1, T1, 1); // odd stride → full 256-cycle
    a.li(T0, DATA);
    a.li(T2, 0);
    a.li(T3, NODES);
    a.label("link");
    a.add(T4, T2, T1);
    a.andi(T4, T4, 255);
    a.slli(T4, T4, 4);
    a.add(T4, T4, T0); // next-node address
    a.slli(T5, T2, 4);
    a.add(T5, T5, T0); // this node
    a.sw(T4, 0, T5);
    a.sw(T2, 4, T5); // payload
    a.addi(T2, T2, 1);
    a.bne(T2, T3, "link");
    a.li(T2, WALK);
    a.mv(T4, T0);
    a.li(A3, 0);
    a.label("walk");
    a.lw(T5, 4, T4);
    a.add(A3, A3, T5);
    a.lw(T4, 0, T4); // the chase: next load depends on this one
    a.addi(T2, T2, -1);
    a.bne(T2, 0, "walk");
    a.andi(A0, A3, 255);
    exit(&mut a);
    a
}

/// LZ-style inner loop: fill a 512-byte buffer with a 4-symbol alphabet,
/// then for each position pick a PRNG back-offset 1..=16 and measure the
/// match length (≤ 16) byte by byte. Exits with the total matched length
/// folded to a byte.
fn lz() -> Asm {
    const LEN: u32 = 512;
    const MARGIN: u32 = 16;
    let mut a = Asm::new();
    a.ori(A0, A0, 1);
    a.li(T0, DATA);
    a.li(T1, 0);
    a.li(T2, LEN);
    a.label("fillz");
    xorshift(&mut a, A0, T3);
    a.andi(T4, A0, 3);
    a.add(T5, T1, T0);
    a.sb(T4, 0, T5);
    a.addi(T1, T1, 1);
    a.bne(T1, T2, "fillz");
    a.li(T1, MARGIN);
    a.li(T2, LEN - MARGIN);
    a.li(A3, 0);
    a.label("scan");
    xorshift(&mut a, A0, T3);
    a.andi(T4, A0, 15);
    a.addi(T4, T4, 1); // back-offset 1..=16
    a.add(T5, T1, T0); // p
    a.sub(T6, T5, T4); // q = p - offset
    a.li(T3, 0); // match length
    a.label("match");
    a.add(A1, T5, T3);
    a.lbu(A1, 0, A1);
    a.add(A2, T6, T3);
    a.lbu(A2, 0, A2);
    a.bne(A1, A2, "match_done");
    a.addi(T3, T3, 1);
    a.li(A2, MARGIN);
    a.bne(T3, A2, "match");
    a.label("match_done");
    a.add(A3, A3, T3);
    a.addi(T1, T1, 1);
    a.bne(T1, T2, "scan");
    a.andi(A0, A3, 255);
    exit(&mut a);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, Step, Stop};

    fn run(prog: &RvProgram, max: u64) -> (Interp, u32, u64) {
        let mut it = Interp::new(prog);
        for n in 0..max {
            match it.step() {
                Step::Retired(_) => {}
                Step::Stop(Stop::Exit { code, .. }) => return (it, code, n),
                Step::Stop(Stop::Trap { pc, reason }) => {
                    panic!("{}: trap at {pc:#x}: {reason}", prog.name)
                }
            }
        }
        panic!("{}: no exit within {max} steps", prog.name);
    }

    #[test]
    fn every_program_exits_cleanly_across_seeds() {
        for name in names() {
            for seed in [1u32, 7, 0xdead_beef, 0] {
                let prog = build(name, seed).unwrap();
                let (_, _, steps) = run(&prog, 1_000_000);
                assert!(steps > 1_000, "{name}@{seed:#x} too short: {steps}");
            }
        }
    }

    #[test]
    fn sort_leaves_memory_sorted_and_reports_zero_inversions() {
        let prog = build("sort", 0x1234).unwrap();
        let (it, code, _) = run(&prog, 1_000_000);
        assert_eq!(code, 0, "inversions remain");
        let mut prev = 0u32;
        for i in 0..64u32 {
            let v = it.read_u32(DATA + 4 * i).unwrap();
            assert!(v >= prev, "data[{i}] = {v:#x} < {prev:#x}");
            prev = v;
        }
    }

    #[test]
    fn runs_are_deterministic_and_seed_sensitive() {
        for name in names() {
            let (_, a, na) = run(&build(name, 42).unwrap(), 1_000_000);
            let (_, b, nb) = run(&build(name, 42).unwrap(), 1_000_000);
            assert_eq!((a, na), (b, nb), "{name} not deterministic");
            // 44, not 43: the programs force the seed odd, so 42 and 43
            // would collapse to the same PRNG state.
            let (_, _, nc) = run(&build(name, 44).unwrap(), 1_000_000);
            // Different seeds take data-dependent paths; step counts of
            // the sorting/matching loops almost surely differ.
            assert!(na != nc || name == "alloc", "{name} ignores its seed");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build("nope", 1).is_none());
    }
}
