//! Real-program frontend: a functional (timing-free) RV32IM user-mode
//! interpreter that feeds the scheduler *true-dependency* µ-op traces.
//!
//! The synthetic kernels in `ss-workloads` are stationary by
//! construction, so trained predictors (Schedule Shifting, the H/M
//! filter, criticality tables) are only ever measured in steady state.
//! This crate runs real RV32IM programs — a checked-in suite assembled
//! by the in-crate encoder, or any ELF32/flat binary — and cracks each
//! retired instruction into the existing [`ss_isa::MicroOp`] shapes with
//! real register/memory dependencies, real branch outcomes and targets,
//! and real effective addresses.
//!
//! The pieces:
//!
//! - [`decode`] / [`asm`] — an RV32IM decoder and a matching two-pass
//!   encoder (so the program suite needs no external toolchain);
//! - [`interp`] — the architectural machine: registers, PC, flat
//!   little-endian memory, an exit/putchar ecall surface;
//! - [`elf`] — a minimal ELF32 segment loader and a raw `.bin` path;
//! - [`programs`] — the four-program suite (sort, hash join, pointer
//!   chasing, LZ match loop);
//! - [`ProgramSpec`] — a parseable/printable program reference, giving
//!   `RunRequest` its `src=rv:…` wire form;
//! - [`RvTraceSource`] — the [`TraceSource`] adapter (infinite: the
//!   program restarts on exit, joined by a synthetic jump µ-op), with
//!   [`PersistState`](ss_types::persist::PersistState) so snapshots and
//!   chunked execution keep working;
//! - [`FrontendOracle`] — a [`CommitOracle`] that re-walks the same
//!   program so differential checking covers real code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

use ss_isa::{MemAccess, MicroOp, RegRef};
use ss_types::persist::{fnv1a64, DecodeError, Persist, PersistState, Reader, Writer};
use ss_types::{Addr, ArchReg, BranchKind, CommitOracle, CommitRecord, OpClass, Pc};
use ss_workloads::TraceSource;

pub mod asm;
pub mod decode;
pub mod elf;
pub mod interp;
pub mod programs;

use decode::Inst;
use interp::{Interp, Retired, Step, Stop, OUTPUT_CAP};

/// A loaded RV32 program: flat image, entry point, memory budget, and
/// the argument passed in `a0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RvProgram {
    /// Human-readable name (suite name or file path).
    pub name: String,
    /// Entry PC.
    pub entry: u32,
    /// Initial memory image, loaded at address 0.
    pub image: Vec<u8>,
    /// Total flat memory size (image is zero-extended to this).
    pub mem_size: u32,
    /// Program argument, placed in `a0` at reset.
    pub arg: u32,
}

impl RvProgram {
    /// A fingerprint binding snapshots to this exact program.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.image.len() + self.name.len() + 16);
        bytes.extend_from_slice(self.name.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&self.entry.to_le_bytes());
        bytes.extend_from_slice(&self.mem_size.to_le_bytes());
        bytes.extend_from_slice(&self.arg.to_le_bytes());
        bytes.extend_from_slice(&self.image);
        fnv1a64(&bytes)
    }
}

/// A parseable, printable reference to an RV32 program — the `rv:…`
/// source form of the `RunRequest` wire grammar.
///
/// Canonical forms (accepted by [`FromStr`], produced by [`fmt::Display`]):
///
/// - `rv:<name>@<seed>` — suite program ([`programs::build`]); the seed
///   may be decimal or `0x…` hex, and `rv:<name>` defaults it to 1;
/// - `rv:elf:<path>` — an ELF32 RISC-V executable on disk;
/// - `rv:bin:<path>@<entry>` — a raw flat binary loaded at address 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSpec {
    /// A checked-in suite program, by name and seed.
    Suite {
        /// Program name (see [`programs::names`]).
        name: String,
        /// Seed folded into `a0`.
        seed: u32,
    },
    /// An ELF32 executable loaded from disk.
    Elf {
        /// Filesystem path.
        path: String,
    },
    /// A raw flat binary loaded at address 0.
    Bin {
        /// Filesystem path.
        path: String,
        /// Entry PC.
        entry: u32,
    },
}

impl ProgramSpec {
    /// A suite-program spec.
    pub fn suite(name: &str, seed: u32) -> Self {
        ProgramSpec::Suite {
            name: name.to_string(),
            seed,
        }
    }

    /// Loads/builds the program this spec names.
    ///
    /// # Errors
    ///
    /// Returns a description of the failure: unknown suite name,
    /// unreadable file, or a malformed ELF image.
    pub fn resolve(&self) -> Result<RvProgram, String> {
        match self {
            ProgramSpec::Suite { name, seed } => programs::build(name, *seed).ok_or_else(|| {
                format!(
                    "unknown suite program `{name}` (have {:?})",
                    programs::names()
                )
            }),
            ProgramSpec::Elf { path } => {
                let bytes =
                    std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
                elf::load_elf(path, &bytes)
            }
            ProgramSpec::Bin { path, entry } => {
                let bytes =
                    std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
                elf::load_bin(path, &bytes, *entry)
            }
        }
    }
}

impl fmt::Display for ProgramSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramSpec::Suite { name, seed } => write!(f, "rv:{name}@{seed:#x}"),
            ProgramSpec::Elf { path } => write!(f, "rv:elf:{path}"),
            ProgramSpec::Bin { path, entry } => write!(f, "rv:bin:{path}@{entry:#x}"),
        }
    }
}

fn parse_u32(s: &str) -> Result<u32, String> {
    let r = match s.strip_prefix("0x") {
        Some(hex) => u32::from_str_radix(hex, 16),
        None => s.parse(),
    };
    r.map_err(|_| format!("invalid number `{s}`"))
}

impl FromStr for ProgramSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix("rv:")
            .ok_or_else(|| format!("program spec `{s}` must start with `rv:`"))?;
        if let Some(path) = body.strip_prefix("elf:") {
            if path.is_empty() {
                return Err("rv:elf: needs a path".into());
            }
            return Ok(ProgramSpec::Elf {
                path: path.to_string(),
            });
        }
        if let Some(rest) = body.strip_prefix("bin:") {
            let (path, entry) = rest
                .rsplit_once('@')
                .ok_or_else(|| format!("`rv:bin:{rest}` needs `@<entry>`"))?;
            if path.is_empty() {
                return Err("rv:bin: needs a path".into());
            }
            return Ok(ProgramSpec::Bin {
                path: path.to_string(),
                entry: parse_u32(entry)?,
            });
        }
        let (name, seed) = match body.rsplit_once('@') {
            Some((n, s)) => (n, parse_u32(s)?),
            None => (body, 1),
        };
        if name.is_empty() || name.contains(|c: char| c.is_whitespace()) {
            return Err(format!("invalid program name `{name}`"));
        }
        Ok(ProgramSpec::Suite {
            name: name.to_string(),
            seed,
        })
    }
}

/// `x{i}` as a µ-op source operand: `x0` is the always-zero register and
/// never creates a dependency, so it is dropped.
fn rr(i: u8) -> Option<RegRef> {
    (i != 0).then(|| RegRef::int(ArchReg::new(i)))
}

/// `x{i}` as a µ-op destination. Writes to `x0` are architecturally
/// discarded, but the µ-op shape requires a destination; `r0` is safe
/// because [`rr`] never emits it as a source.
fn rd(i: u8) -> Option<RegRef> {
    Some(RegRef::int(ArchReg::new(i)))
}

/// An ALU-class µ-op with 0–2 sources (the constructor in `ss-isa`
/// requires at least one).
fn alu_uop(pc: u32, class: OpClass, dst: u8, s1: Option<RegRef>, s2: Option<RegRef>) -> MicroOp {
    MicroOp {
        pc: Pc::new(pc as u64),
        class,
        dst: rd(dst),
        srcs: [s1, s2],
        mem: None,
        branch: None,
    }
}

/// Whether `x{i}` is a RAS link register (`ra`/`t0` per the RISC-V
/// calling convention's call/return hints).
fn is_link(i: u8) -> bool {
    i == 1 || i == 5
}

/// Cracks one retired instruction into µ-ops, appending to `out`.
///
/// Every instruction becomes at least one µ-op; `jal`/`jalr` with a live
/// link register become two (link-write ALU, then the jump), both at the
/// same PC so the inter-µ-op PC chain stays consistent.
fn crack(r: &Retired, out: &mut VecDeque<MicroOp>) {
    let pc = r.pc;
    match r.inst {
        Inst::Lui { rd: d, .. } | Inst::Auipc { rd: d, .. } => {
            out.push_back(alu_uop(pc, OpClass::IntAlu, d, None, None));
        }
        Inst::OpImm { op, rd: d, rs1, .. } => {
            let class = if op.is_mul() {
                OpClass::IntMul
            } else if op.is_div() {
                OpClass::IntDiv
            } else {
                OpClass::IntAlu
            };
            out.push_back(alu_uop(pc, class, d, rr(rs1), None));
        }
        Inst::Op {
            op,
            rd: d,
            rs1,
            rs2,
        } => {
            let class = if op.is_mul() {
                OpClass::IntMul
            } else if op.is_div() {
                OpClass::IntDiv
            } else {
                OpClass::IntAlu
            };
            out.push_back(alu_uop(pc, class, d, rr(rs1), rr(rs2)));
        }
        Inst::Load { rd: d, rs1, .. } => {
            let (addr, size) = r.ea.expect("retired load has an effective address");
            out.push_back(MicroOp {
                pc: Pc::new(pc as u64),
                class: OpClass::Load,
                dst: rd(d),
                srcs: [rr(rs1), None],
                mem: Some(MemAccess {
                    addr: Addr::new(addr as u64),
                    size,
                }),
                branch: None,
            });
        }
        Inst::Store { rs1, rs2, .. } => {
            let (addr, size) = r.ea.expect("retired store has an effective address");
            out.push_back(MicroOp {
                pc: Pc::new(pc as u64),
                class: OpClass::Store,
                dst: None,
                srcs: [rr(rs1), rr(rs2)],
                mem: Some(MemAccess {
                    addr: Addr::new(addr as u64),
                    size,
                }),
                branch: None,
            });
        }
        Inst::Branch { rs1, rs2, imm, .. } => {
            let taken = r.next_pc != pc.wrapping_add(4);
            out.push_back(MicroOp {
                pc: Pc::new(pc as u64),
                class: OpClass::Branch(BranchKind::Conditional),
                dst: None,
                srcs: [rr(rs1), rr(rs2)],
                mem: None,
                // The taken-path target, whether or not this execution
                // took it — matching how the BTB trains on kernels.
                branch: Some(ss_isa::BranchOutcome {
                    taken,
                    target: Pc::new(pc.wrapping_add(imm as u32) as u64),
                }),
            });
        }
        Inst::Jal { rd: d, .. } => {
            if d != 0 {
                out.push_back(alu_uop(pc, OpClass::IntAlu, d, None, None));
            }
            let kind = if is_link(d) {
                BranchKind::Call
            } else {
                BranchKind::Direct
            };
            out.push_back(MicroOp::jump(
                Pc::new(pc as u64),
                kind,
                Pc::new(r.next_pc as u64),
                None,
            ));
        }
        Inst::Jalr { rd: d, rs1, .. } => {
            if d != 0 {
                out.push_back(alu_uop(pc, OpClass::IntAlu, d, None, None));
            }
            let kind = if is_link(d) {
                BranchKind::Call
            } else if is_link(rs1) {
                BranchKind::Return
            } else {
                BranchKind::Indirect
            };
            out.push_back(MicroOp::jump(
                Pc::new(pc as u64),
                kind,
                Pc::new(r.next_pc as u64),
                rr(rs1),
            ));
        }
        // Fences retire as a dependency-free ALU op (the memory model is
        // already sequential); a retiring ecall is putchar, which reads
        // a7 and a0.
        Inst::Fence => out.push_back(alu_uop(pc, OpClass::IntAlu, 0, None, None)),
        Inst::Ecall => out.push_back(alu_uop(pc, OpClass::IntAlu, 0, rr(17), rr(10))),
        Inst::Ebreak => unreachable!("ebreak traps, it never retires"),
    }
}

/// [`TraceSource`] adapter over the interpreter.
///
/// The pipeline's trace contract is an *infinite* stream (runs are
/// bounded by committed-µ-op budgets), so when the program exits or
/// traps the source emits one synthetic direct jump from the stop PC
/// back to the entry point and restarts the machine — deterministic,
/// and the PC chain stays consistent for the branch predictors.
#[derive(Debug)]
pub struct RvTraceSource {
    prog: RvProgram,
    interp: Interp,
    pending: VecDeque<MicroOp>,
    restarts: u64,
    traps: u64,
    retired: u64,
    out: Vec<u8>,
}

impl RvTraceSource {
    /// A fresh source at the program's entry.
    pub fn new(prog: RvProgram) -> Self {
        let interp = Interp::new(&prog);
        RvTraceSource {
            prog,
            interp,
            pending: VecDeque::new(),
            restarts: 0,
            traps: 0,
            retired: 0,
            out: Vec::new(),
        }
    }

    /// Completed program executions so far (exits + traps).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Executions that ended in a trap rather than a clean exit.
    pub fn traps(&self) -> u64 {
        self.traps
    }

    /// Instructions retired by the functional machine (µ-ops emitted can
    /// be slightly higher: link-writing jumps crack into two).
    pub fn retired_insts(&self) -> u64 {
        self.retired
    }

    /// Bytes written through the putchar ecall, across restarts (capped).
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// The program this source executes.
    pub fn program(&self) -> &RvProgram {
        &self.prog
    }

    fn restart(&mut self, stop_pc: u32) {
        self.restarts += 1;
        for b in self.interp.output() {
            if self.out.len() >= OUTPUT_CAP {
                break;
            }
            self.out.push(*b);
        }
        self.interp = Interp::new(&self.prog);
        self.pending.push_back(MicroOp::jump(
            Pc::new(stop_pc as u64),
            BranchKind::Direct,
            Pc::new(self.prog.entry as u64),
            None,
        ));
    }
}

impl TraceSource for RvTraceSource {
    fn next_uop(&mut self) -> MicroOp {
        loop {
            if let Some(u) = self.pending.pop_front() {
                return u;
            }
            match self.interp.step() {
                Step::Retired(r) => {
                    self.retired += 1;
                    crack(&r, &mut self.pending);
                }
                Step::Stop(Stop::Exit { pc, .. }) => self.restart(pc),
                Step::Stop(Stop::Trap { pc, .. }) => {
                    self.traps += 1;
                    self.restart(pc);
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.prog.name
    }
}

impl PersistState for RvTraceSource {
    /// The program text is not serialized — only a fingerprint binding
    /// the snapshot to it (same scheme as `KernelTrace`): the restore
    /// target is always constructed from the same [`ProgramSpec`], and
    /// the fingerprint turns a mismatch into a typed decode error.
    fn save_state(&self, w: &mut Writer) {
        self.prog.fingerprint().save(w);
        self.interp.regs.save(w);
        self.interp.pc.save(w);
        self.interp.mem.save(w);
        self.interp.out.save(w);
        self.pending.save(w);
        self.restarts.save(w);
        self.traps.save(w);
        self.retired.save(w);
        self.out.save(w);
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), DecodeError> {
        let fp = u64::load(r)?;
        let want = self.prog.fingerprint();
        if fp != want {
            return Err(r.err(format_args!(
                "program fingerprint {fp:016x} != expected {want:016x}"
            )));
        }
        self.interp.regs = Persist::load(r)?;
        self.interp.pc = Persist::load(r)?;
        self.interp.mem = Persist::load(r)?;
        self.interp.out = Persist::load(r)?;
        self.pending = Persist::load(r)?;
        self.restarts = Persist::load(r)?;
        self.traps = Persist::load(r)?;
        self.retired = Persist::load(r)?;
        self.out = Persist::load(r)?;
        Ok(())
    }
}

/// A [`CommitOracle`] that independently re-executes the same program,
/// so the pipeline's commit stream is checked against a second walk of
/// the real code (not against the trace that fed it).
pub struct FrontendOracle {
    src: RvTraceSource,
    seq: u64,
}

impl FrontendOracle {
    /// An oracle over a fresh execution of `prog`.
    pub fn new(prog: RvProgram) -> Self {
        FrontendOracle {
            src: RvTraceSource::new(prog),
            seq: 0,
        }
    }
}

impl CommitOracle for FrontendOracle {
    fn next_commit(&mut self) -> CommitRecord {
        let u = self.src.next_uop();
        let rec = CommitRecord {
            seq: self.seq,
            pc: u.pc,
            kind: u.class,
            dst: u.dst.map(|d| (d.class, d.reg)),
        };
        self.seq += 1;
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite_source(name: &str, seed: u32) -> RvTraceSource {
        RvTraceSource::new(programs::build(name, seed).unwrap())
    }

    #[test]
    fn program_spec_round_trips_through_display() {
        let specs = [
            ProgramSpec::suite("sort", 1),
            ProgramSpec::suite("hashjoin", 0xdead_beef),
            ProgramSpec::Elf {
                path: "/tmp/a.elf".into(),
            },
            ProgramSpec::Bin {
                path: "payload.bin".into(),
                entry: 0x100,
            },
        ];
        for spec in specs {
            let text = spec.to_string();
            assert_eq!(text.parse::<ProgramSpec>().unwrap(), spec, "{text}");
        }
        assert_eq!(
            "rv:sort".parse::<ProgramSpec>().unwrap(),
            ProgramSpec::suite("sort", 1)
        );
        assert_eq!(
            "rv:sort@12".parse::<ProgramSpec>().unwrap(),
            ProgramSpec::suite("sort", 12)
        );
        for bad in [
            "sort@1",
            "rv:",
            "rv:elf:",
            "rv:bin:x",
            "rv:sort@zz",
            "rv:a b@1",
        ] {
            assert!(bad.parse::<ProgramSpec>().is_err(), "{bad}");
        }
    }

    #[test]
    fn unknown_suite_name_fails_to_resolve() {
        let err = ProgramSpec::suite("nope", 1).resolve().unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn every_uop_validates_and_the_pc_chain_is_consistent() {
        for name in programs::names() {
            let mut src = suite_source(name, 0xc0ffee);
            let mut prev: Option<MicroOp> = None;
            for i in 0..50_000u32 {
                let u = src.next_uop();
                u.validate()
                    .unwrap_or_else(|e| panic!("{name} µ-op {i} invalid: {e} ({u})"));
                if let Some(p) = prev {
                    // Either the cracked pair continues at the same PC, or
                    // control flow follows the previous µ-op's successor.
                    assert!(
                        u.pc == p.pc || u.pc == p.successor_pc(),
                        "{name} µ-op {i}: {p} then {u}"
                    );
                }
                prev = Some(u);
            }
            assert!(src.restarts() >= 1, "{name} never restarted in 50k µ-ops");
            assert_eq!(src.traps(), 0, "{name} trapped");
        }
    }

    #[test]
    fn x0_never_appears_as_a_source() {
        let mut src = suite_source("sort", 3);
        for _ in 0..20_000 {
            let u = src.next_uop();
            for s in u.sources() {
                assert!(s.reg.get() != 0, "x0 source in {u}");
            }
        }
    }

    #[test]
    fn snapshot_restore_resumes_the_exact_stream() {
        let mut src = suite_source("hashjoin", 0x77);
        // Stop mid-run, deliberately not at an instruction boundary.
        for _ in 0..12_345 {
            let _ = src.next_uop();
        }
        let mut w = Writer::new();
        src.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = suite_source("hashjoin", 0x77);
        let mut r = Reader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        for i in 0..20_000u32 {
            assert_eq!(src.next_uop(), restored.next_uop(), "diverged at {i}");
        }
        assert_eq!(src.restarts(), restored.restarts());
        assert_eq!(src.retired_insts(), restored.retired_insts());
    }

    #[test]
    fn snapshot_binds_to_the_program_fingerprint() {
        let src = suite_source("sort", 1);
        let mut w = Writer::new();
        src.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = suite_source("lz", 1);
        let mut r = Reader::new(&bytes);
        let err = other.restore_state(&mut r).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn oracle_mirrors_the_trace_stream() {
        let prog = programs::build("alloc", 9).unwrap();
        let mut src = RvTraceSource::new(prog.clone());
        let mut oracle = FrontendOracle::new(prog);
        for seq in 0..10_000u64 {
            let u = src.next_uop();
            let c = oracle.next_commit();
            assert_eq!(c.seq, seq);
            assert_eq!(c.pc, u.pc);
            assert_eq!(c.kind, u.class);
            assert_eq!(c.dst, u.dst.map(|d| (d.class, d.reg)));
        }
    }
}
