//! Minimal ELF32 segment loader (just enough for statically linked
//! RV32 user binaries): validates the identification bytes, walks the
//! program headers, and copies `PT_LOAD` segments into a flat image.
//! No relocation, no dynamic linking, no sections.

use crate::RvProgram;

/// Extra zeroed memory above the highest loaded byte, for stack/heap.
const SLACK: u32 = 64 * 1024;
/// Refuse images that would need more than this much memory.
const MEM_CAP: u32 = 64 * 1024 * 1024;

fn read_u16(b: &[u8], off: usize) -> Result<u16, String> {
    let s = b
        .get(off..off + 2)
        .ok_or_else(|| format!("ELF truncated at offset {off}"))?;
    Ok(u16::from_le_bytes([s[0], s[1]]))
}

fn read_u32(b: &[u8], off: usize) -> Result<u32, String> {
    let s = b
        .get(off..off + 4)
        .ok_or_else(|| format!("ELF truncated at offset {off}"))?;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Loads a little-endian ELF32 RISC-V executable into an [`RvProgram`].
///
/// # Errors
///
/// Returns a description of the first problem found: bad magic, wrong
/// class/endianness/machine, truncated headers, or an image that would
/// exceed the memory cap.
pub fn load_elf(name: &str, bytes: &[u8]) -> Result<RvProgram, String> {
    if bytes.len() < 52 {
        return Err("ELF too short for a 52-byte ELF32 header".into());
    }
    if &bytes[0..4] != b"\x7fELF" {
        return Err("bad ELF magic".into());
    }
    if bytes[4] != 1 {
        return Err(format!("not ELF32 (EI_CLASS {})", bytes[4]));
    }
    if bytes[5] != 1 {
        return Err(format!("not little-endian (EI_DATA {})", bytes[5]));
    }
    let machine = read_u16(bytes, 18)?;
    if machine != 243 {
        return Err(format!("not RISC-V (e_machine {machine})"));
    }
    let entry = read_u32(bytes, 24)?;
    let phoff = read_u32(bytes, 28)? as usize;
    let phentsize = read_u16(bytes, 42)? as usize;
    let phnum = read_u16(bytes, 44)? as usize;
    if phentsize < 32 {
        return Err(format!("ELF32 phentsize {phentsize} too small"));
    }

    let mut image: Vec<u8> = Vec::new();
    let mut top: u32 = 0;
    for i in 0..phnum {
        let ph = phoff + i * phentsize;
        let p_type = read_u32(bytes, ph)?;
        if p_type != 1 {
            continue; // not PT_LOAD
        }
        let p_offset = read_u32(bytes, ph + 4)? as usize;
        let p_vaddr = read_u32(bytes, ph + 8)?;
        let p_filesz = read_u32(bytes, ph + 16)? as usize;
        let p_memsz = read_u32(bytes, ph + 20)?;
        if (p_memsz as usize) < p_filesz {
            return Err(format!("segment {i}: memsz < filesz"));
        }
        let end = p_vaddr
            .checked_add(p_memsz)
            .ok_or_else(|| format!("segment {i}: vaddr+memsz overflows"))?;
        if end > MEM_CAP {
            return Err(format!(
                "segment {i} ends at {end:#x}, beyond the {MEM_CAP:#x} cap"
            ));
        }
        let data = bytes
            .get(p_offset..p_offset + p_filesz)
            .ok_or_else(|| format!("segment {i}: file range out of bounds"))?;
        if image.len() < end as usize {
            image.resize(end as usize, 0);
        }
        image[p_vaddr as usize..p_vaddr as usize + p_filesz].copy_from_slice(data);
        top = top.max(end);
    }
    if top == 0 {
        return Err("no PT_LOAD segments".into());
    }
    let mem_size = top.saturating_add(SLACK).min(MEM_CAP);
    Ok(RvProgram {
        name: name.to_string(),
        entry,
        image,
        mem_size,
        arg: 0,
    })
}

/// Wraps a raw flat binary (loaded at address 0) as an [`RvProgram`].
///
/// # Errors
///
/// Returns an error for an empty image or one beyond the memory cap.
pub fn load_bin(name: &str, bytes: &[u8], entry: u32) -> Result<RvProgram, String> {
    if bytes.is_empty() {
        return Err("empty binary image".into());
    }
    if bytes.len() as u64 > MEM_CAP as u64 {
        return Err(format!("binary larger than the {MEM_CAP:#x} cap"));
    }
    let top = bytes.len() as u32;
    Ok(RvProgram {
        name: name.to_string(),
        entry,
        image: bytes.to_vec(),
        mem_size: top.saturating_add(SLACK).min(MEM_CAP),
        arg: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a one-segment ELF32 RISC-V image around `code` at `vaddr`.
    fn tiny_elf(code: &[u8], vaddr: u32, entry: u32) -> Vec<u8> {
        let mut b = vec![0u8; 52 + 32];
        b[0..4].copy_from_slice(b"\x7fELF");
        b[4] = 1; // ELF32
        b[5] = 1; // little-endian
        b[6] = 1; // EV_CURRENT
        b[16..18].copy_from_slice(&2u16.to_le_bytes()); // ET_EXEC
        b[18..20].copy_from_slice(&243u16.to_le_bytes()); // EM_RISCV
        b[24..28].copy_from_slice(&entry.to_le_bytes());
        b[28..32].copy_from_slice(&52u32.to_le_bytes()); // phoff
        b[42..44].copy_from_slice(&32u16.to_le_bytes()); // phentsize
        b[44..46].copy_from_slice(&1u16.to_le_bytes()); // phnum
        let off = b.len() as u32;
        let ph = 52;
        b[ph..ph + 4].copy_from_slice(&1u32.to_le_bytes()); // PT_LOAD
        b[ph + 4..ph + 8].copy_from_slice(&off.to_le_bytes());
        b[ph + 8..ph + 12].copy_from_slice(&vaddr.to_le_bytes());
        b[ph + 16..ph + 20].copy_from_slice(&(code.len() as u32).to_le_bytes());
        b[ph + 20..ph + 24].copy_from_slice(&(code.len() as u32 + 8).to_le_bytes()); // bss tail
        b.extend_from_slice(code);
        b
    }

    #[test]
    fn loads_a_synthesized_elf() {
        let code = [0x73u8, 0, 0, 0]; // ecall
        let elf = tiny_elf(&code, 0x200, 0x200);
        let prog = load_elf("t", &elf).unwrap();
        assert_eq!(prog.entry, 0x200);
        assert_eq!(&prog.image[0x200..0x204], &code);
        assert!(prog.mem_size > 0x200 + 4);
    }

    #[test]
    fn rejects_bad_magic_and_wrong_machine() {
        assert!(load_elf("t", b"not an elf at all, sorry").is_err());
        let mut elf = tiny_elf(&[0; 4], 0, 0);
        elf[18] = 40; // ARM
        let err = load_elf("t", &elf).unwrap_err();
        assert!(err.contains("e_machine"), "{err}");
    }

    #[test]
    fn bin_path_loads_at_zero() {
        let prog = load_bin("raw", &[0x73, 0, 0, 0], 0).unwrap();
        assert_eq!(prog.entry, 0);
        assert_eq!(prog.image.len(), 4);
        assert!(load_bin("empty", &[], 0).is_err());
    }
}
