//! The functional RV32IM interpreter: architectural state only (32
//! integer registers, PC, flat little-endian memory), no timing. One
//! [`Interp::step`] retires one instruction and reports everything the
//! µ-op cracker needs — the resolved next PC and the effective address —
//! or a typed stop (exit ecall, trap).

use crate::decode::{decode, BinOp, BrOp, Inst, LdOp};
use crate::RvProgram;

/// The ecall number (in `a7`) for process exit; `a0` carries the code.
pub const ECALL_EXIT: u32 = 93;
/// The ecall number (in `a7`) for putchar; `a0` carries the byte.
pub const ECALL_PUTCHAR: u32 = 11;

/// Cap on bytes the putchar ecall accumulates (beyond it, bytes are
/// dropped — the trace keeps flowing forever, the buffer must not).
pub const OUTPUT_CAP: usize = 4096;

/// One retired instruction, with the resolved facts cracking needs.
#[derive(Debug, Clone, Copy)]
pub struct Retired {
    /// The instruction's address.
    pub pc: u32,
    /// Where control flow actually went (fall-through or taken target).
    pub next_pc: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// Effective address and size, for loads and stores.
    pub ea: Option<(u32, u8)>,
}

/// Why execution stopped instead of retiring.
#[derive(Debug, Clone)]
pub enum Stop {
    /// The program exited via `ecall` (`a7` = [`ECALL_EXIT`]).
    Exit {
        /// PC of the exiting ecall.
        pc: u32,
        /// Exit code from `a0`.
        code: u32,
    },
    /// A runtime trap: illegal instruction, out-of-bounds access,
    /// misaligned fetch, or an unknown ecall number.
    Trap {
        /// PC of the trapping instruction.
        pc: u32,
        /// What went wrong.
        reason: String,
    },
}

/// One step's outcome.
#[derive(Debug, Clone)]
pub enum Step {
    /// An instruction retired.
    Retired(Retired),
    /// Execution stopped (the trace source restarts the program).
    Stop(Stop),
}

/// The architectural machine state.
#[derive(Debug, Clone)]
pub struct Interp {
    pub(crate) regs: [u32; 32],
    pub(crate) pc: u32,
    pub(crate) mem: Vec<u8>,
    pub(crate) out: Vec<u8>,
}

impl Interp {
    /// Fresh state at the program's entry: memory is the image
    /// zero-extended to `mem_size`, `a0` holds the program argument,
    /// `sp` points at the (16-byte aligned) top of memory.
    pub fn new(prog: &RvProgram) -> Self {
        let size = (prog.mem_size as usize).max(prog.image.len());
        let mut mem = vec![0u8; size];
        mem[..prog.image.len()].copy_from_slice(&prog.image);
        let mut regs = [0u32; 32];
        regs[2] = (size as u32).saturating_sub(16) & !0xf; // sp
        regs[10] = prog.arg; // a0
        Interp {
            regs,
            pc: prog.entry,
            mem,
            out: Vec::new(),
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Register `x{i}`.
    pub fn reg(&self, i: u8) -> u32 {
        self.regs[i as usize]
    }

    /// Bytes written through the putchar ecall so far.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// Little-endian u32 at `addr`, if in bounds.
    pub fn read_u32(&self, addr: u32) -> Option<u32> {
        let a = addr as usize;
        let bytes = self.mem.get(a..a + 4)?;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }

    fn load(&self, addr: u32, size: u8) -> Result<u32, String> {
        let a = addr as usize;
        let Some(bytes) = self.mem.get(a..a + size as usize) else {
            return Err(format!("load of {size} bytes at {addr:#x} out of bounds"));
        };
        let mut v = 0u32;
        for (i, b) in bytes.iter().enumerate() {
            v |= (*b as u32) << (8 * i);
        }
        Ok(v)
    }

    fn store(&mut self, addr: u32, size: u8, value: u32) -> Result<(), String> {
        let a = addr as usize;
        let Some(bytes) = self.mem.get_mut(a..a + size as usize) else {
            return Err(format!("store of {size} bytes at {addr:#x} out of bounds"));
        };
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn set_reg(&mut self, rd: u8, value: u32) {
        if rd != 0 {
            self.regs[rd as usize] = value;
        }
    }

    fn binop(op: BinOp, a: u32, b: u32) -> u32 {
        match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Sll => a.wrapping_shl(b & 31),
            BinOp::Slt => u32::from((a as i32) < (b as i32)),
            BinOp::Sltu => u32::from(a < b),
            BinOp::Xor => a ^ b,
            BinOp::Srl => a.wrapping_shr(b & 31),
            BinOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            BinOp::Or => a | b,
            BinOp::And => a & b,
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
            BinOp::Mulhsu => (((a as i32 as i64) * (b as i64)) >> 32) as u32,
            BinOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
            // RISC-V defines division corner cases without trapping.
            BinOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if a == i32::MIN as u32 && b == u32::MAX {
                    a
                } else {
                    ((a as i32) / (b as i32)) as u32
                }
            }
            BinOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            BinOp::Rem => {
                if b == 0 {
                    a
                } else if a == i32::MIN as u32 && b == u32::MAX {
                    0
                } else {
                    ((a as i32) % (b as i32)) as u32
                }
            }
            BinOp::Remu => a.checked_rem(b).unwrap_or(a),
        }
    }

    fn branch_taken(op: BrOp, a: u32, b: u32) -> bool {
        match op {
            BrOp::Beq => a == b,
            BrOp::Bne => a != b,
            BrOp::Blt => (a as i32) < (b as i32),
            BrOp::Bge => (a as i32) >= (b as i32),
            BrOp::Bltu => a < b,
            BrOp::Bgeu => a >= b,
        }
    }

    /// Executes one instruction.
    pub fn step(&mut self) -> Step {
        let pc = self.pc;
        let trap = |reason: String| Step::Stop(Stop::Trap { pc, reason });
        if !pc.is_multiple_of(4) {
            return trap(format!("misaligned fetch at {pc:#x}"));
        }
        let word = match self.load(pc, 4) {
            Ok(w) => w,
            Err(_) => return trap(format!("fetch at {pc:#x} out of bounds")),
        };
        let inst = match decode(word) {
            Ok(i) => i,
            Err(e) => return trap(format!("illegal instruction at {pc:#x}: {e}")),
        };
        let mut next_pc = pc.wrapping_add(4);
        let mut ea = None;
        match inst {
            Inst::Lui { rd, imm } => self.set_reg(rd, imm),
            Inst::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm)),
            Inst::Jal { rd, imm } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(imm as u32);
            }
            Inst::Jalr { rd, rs1, imm } => {
                let target = self.regs[rs1 as usize].wrapping_add(imm as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Inst::Branch { op, rs1, rs2, imm } => {
                if Self::branch_taken(op, self.regs[rs1 as usize], self.regs[rs2 as usize]) {
                    next_pc = pc.wrapping_add(imm as u32);
                }
            }
            Inst::Load { op, rd, rs1, imm } => {
                let addr = self.regs[rs1 as usize].wrapping_add(imm as u32);
                let size = op.size();
                let raw = match self.load(addr, size) {
                    Ok(v) => v,
                    Err(e) => return trap(e),
                };
                let value = match op {
                    LdOp::Lb => raw as u8 as i8 as i32 as u32,
                    LdOp::Lh => raw as u16 as i16 as i32 as u32,
                    LdOp::Lw | LdOp::Lbu | LdOp::Lhu => raw,
                };
                self.set_reg(rd, value);
                ea = Some((addr, size));
            }
            Inst::Store { op, rs1, rs2, imm } => {
                let addr = self.regs[rs1 as usize].wrapping_add(imm as u32);
                let size = op.size();
                if let Err(e) = self.store(addr, size, self.regs[rs2 as usize]) {
                    return trap(e);
                }
                ea = Some((addr, size));
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let v = Self::binop(op, self.regs[rs1 as usize], imm as u32);
                self.set_reg(rd, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = Self::binop(op, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                self.set_reg(rd, v);
            }
            Inst::Fence => {}
            Inst::Ecall => match self.regs[17] {
                ECALL_EXIT => {
                    return Step::Stop(Stop::Exit {
                        pc,
                        code: self.regs[10],
                    })
                }
                ECALL_PUTCHAR => {
                    if self.out.len() < OUTPUT_CAP {
                        self.out.push(self.regs[10] as u8);
                    }
                }
                n => return trap(format!("unknown ecall {n} at {pc:#x}")),
            },
            Inst::Ebreak => return trap(format!("ebreak at {pc:#x}")),
        }
        self.pc = next_pc;
        Step::Retired(Retired {
            pc,
            next_pc,
            inst,
            ea,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn prog_of(a: Asm, arg: u32) -> RvProgram {
        RvProgram {
            name: "test".into(),
            entry: 0,
            image: a.assemble_bytes(),
            mem_size: 1 << 14,
            arg,
        }
    }

    fn run_to_exit(prog: &RvProgram, max: u64) -> (Interp, u32) {
        let mut it = Interp::new(prog);
        for _ in 0..max {
            match it.step() {
                Step::Retired(_) => {}
                Step::Stop(Stop::Exit { code, .. }) => return (it, code),
                Step::Stop(Stop::Trap { pc, reason }) => panic!("trap at {pc:#x}: {reason}"),
            }
        }
        panic!("no exit within {max} steps");
    }

    #[test]
    fn arithmetic_and_exit_code() {
        let mut a = Asm::new();
        a.li(5, 21);
        a.li(6, 2);
        a.mul(10, 5, 6); // a0 = 42
        a.li(17, ECALL_EXIT);
        a.ecall();
        let (_, code) = run_to_exit(&prog_of(a, 0), 100);
        assert_eq!(code, 42);
    }

    #[test]
    fn loads_stores_and_branches() {
        let mut a = Asm::new();
        // sum bytes 0..10 stored at 0x1000
        a.li(5, 0x1000);
        a.li(6, 10);
        a.mv(7, 5);
        a.li(28, 0);
        a.label("st");
        a.sb(28, 0, 7);
        a.addi(7, 7, 1);
        a.addi(28, 28, 1);
        a.bne(28, 6, "st");
        a.li(10, 0);
        a.mv(7, 5);
        a.label("ld");
        a.lbu(29, 0, 7);
        a.add(10, 10, 29);
        a.addi(7, 7, 1);
        a.addi(6, 6, -1);
        a.bne(6, 0, "ld");
        a.li(17, ECALL_EXIT);
        a.ecall();
        let (_, code) = run_to_exit(&prog_of(a, 0), 1000);
        assert_eq!(code, 45);
    }

    #[test]
    fn li_round_trips_constants_through_the_machine() {
        for value in [
            0u32,
            1,
            2047,
            2048,
            0x8000,
            0xdead_beef,
            u32::MAX,
            i32::MAX as u32,
        ] {
            let mut a = Asm::new();
            a.li(10, value);
            a.li(17, ECALL_EXIT);
            a.ecall();
            let (_, code) = run_to_exit(&prog_of(a, 0), 10);
            assert_eq!(code, value, "li {value:#x}");
        }
    }

    #[test]
    fn putchar_collects_output() {
        let mut a = Asm::new();
        a.li(17, ECALL_PUTCHAR);
        for b in b"ok" {
            a.li(10, *b as u32);
            a.ecall();
        }
        a.li(17, ECALL_EXIT);
        a.li(10, 0);
        a.ecall();
        let (it, _) = run_to_exit(&prog_of(a, 0), 100);
        assert_eq!(it.output(), b"ok");
    }

    #[test]
    fn division_corner_cases_do_not_trap() {
        assert_eq!(Interp::binop(BinOp::Div, 7, 0), u32::MAX);
        assert_eq!(Interp::binop(BinOp::Rem, 7, 0), 7);
        assert_eq!(
            Interp::binop(BinOp::Div, i32::MIN as u32, u32::MAX),
            i32::MIN as u32
        );
        assert_eq!(Interp::binop(BinOp::Rem, i32::MIN as u32, u32::MAX), 0);
        assert_eq!(Interp::binop(BinOp::Divu, 7, 0), u32::MAX);
        assert_eq!(Interp::binop(BinOp::Remu, 7, 0), 7);
    }

    #[test]
    fn out_of_bounds_access_traps() {
        let mut a = Asm::new();
        a.li(5, 0x7fff_f000); // low 12 bits zero: a single lui
        a.lw(6, 0, 5);
        let prog = prog_of(a, 0);
        let mut it = Interp::new(&prog);
        let _ = it.step(); // lui
        match it.step() {
            Step::Stop(Stop::Trap { reason, .. }) => assert!(reason.contains("out of bounds")),
            other => panic!("expected trap, got {other:?}"),
        }
    }
}
