//! A tiny two-pass RV32IM encoder, so the checked-in program suite is
//! assembled at build time by the crate itself — no external toolchain,
//! and the workspace stays fully offline.
//!
//! The surface is deliberately small: exactly the instructions the
//! decoder understands, plus `li`/`mv`/`j` pseudo-ops and symbolic
//! labels for branch/jump targets (resolved by [`Asm::assemble`]).

use std::collections::HashMap;

/// Which immediate encoding a pending label reference patches.
#[derive(Debug, Clone, Copy)]
enum Fix {
    /// B-type conditional branch offset.
    Branch,
    /// J-type `jal` offset.
    Jal,
}

/// The assembler: instructions are appended with the mnemonic methods,
/// then [`assemble`](Asm::assemble) resolves labels and returns the
/// little-endian instruction words.
#[derive(Debug, Default)]
pub struct Asm {
    words: Vec<u32>,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String, Fix)>,
}

fn enc_r(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn enc_i(imm: i32, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    assert!((-2048..2048).contains(&imm), "I-imm {imm} out of range");
    ((imm as u32 & 0xfff) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn enc_s(imm: i32, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    assert!((-2048..2048).contains(&imm), "S-imm {imm} out of range");
    let imm = imm as u32 & 0xfff;
    ((imm >> 5) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn enc_b(imm: i32, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    assert!(
        imm % 2 == 0 && (-4096..4096).contains(&imm),
        "B-imm {imm} out of range"
    );
    let imm = imm as u32 & 0x1fff;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | 0x63
}

fn enc_j(imm: i32, rd: u8) -> u32 {
    assert!(
        imm % 2 == 0 && (-(1 << 20)..(1 << 20)).contains(&imm),
        "J-imm {imm} out of range"
    );
    let imm = imm as u32 & 0x1f_ffff;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | ((rd as u32) << 7)
        | 0x6f
}

impl Asm {
    /// A fresh, empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    fn push(&mut self, w: u32) {
        self.words.push(w);
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate label.
    pub fn label(&mut self, name: &str) {
        let at = (self.words.len() * 4) as u32;
        assert!(
            self.labels.insert(name.to_string(), at).is_none(),
            "duplicate label `{name}`"
        );
    }

    // --- RV32I base -------------------------------------------------

    /// `lui rd, imm20` (`imm` is the final upper-20 value, low 12 bits 0).
    pub fn lui(&mut self, rd: u8, imm: u32) {
        assert_eq!(imm & 0xfff, 0, "lui immediate must be 4 KiB aligned");
        self.push(imm | ((rd as u32) << 7) | 0x37);
    }

    /// `auipc rd, imm20`.
    pub fn auipc(&mut self, rd: u8, imm: u32) {
        assert_eq!(imm & 0xfff, 0, "auipc immediate must be 4 KiB aligned");
        self.push(imm | ((rd as u32) << 7) | 0x17);
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.push(enc_i(imm, rs1, 0b000, rd, 0x13));
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.push(enc_i(imm, rs1, 0b111, rd, 0x13));
    }

    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.push(enc_i(imm, rs1, 0b110, rd, 0x13));
    }

    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.push(enc_i(imm, rs1, 0b100, rd, 0x13));
    }

    /// `slti rd, rs1, imm`.
    pub fn slti(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.push(enc_i(imm, rs1, 0b010, rd, 0x13));
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        assert!(shamt < 32);
        self.push(enc_i(shamt as i32, rs1, 0b001, rd, 0x13));
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        assert!(shamt < 32);
        self.push(enc_i(shamt as i32, rs1, 0b101, rd, 0x13));
    }

    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: u8, rs1: u8, shamt: u8) {
        assert!(shamt < 32);
        self.push(enc_i(shamt as i32 | 0x400, rs1, 0b101, rd, 0x13));
    }

    /// R-type ALU op by (funct7, funct3): the named wrappers below cover
    /// what the suite uses.
    fn op_r(&mut self, funct7: u32, funct3: u32, rd: u8, rs1: u8, rs2: u8) {
        self.push(enc_r(funct7, rs2, rs1, funct3, rd, 0x33));
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x00, 0b000, rd, rs1, rs2);
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x20, 0b000, rd, rs1, rs2);
    }

    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x00, 0b100, rd, rs1, rs2);
    }

    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x00, 0b110, rd, rs1, rs2);
    }

    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x00, 0b111, rd, rs1, rs2);
    }

    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x00, 0b011, rd, rs1, rs2);
    }

    /// `sll rd, rs1, rs2`.
    pub fn sll(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x00, 0b001, rd, rs1, rs2);
    }

    /// `srl rd, rs1, rs2`.
    pub fn srl(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x00, 0b101, rd, rs1, rs2);
    }

    // --- M extension ------------------------------------------------

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x01, 0b000, rd, rs1, rs2);
    }

    /// `mulhu rd, rs1, rs2`.
    pub fn mulhu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x01, 0b011, rd, rs1, rs2);
    }

    /// `divu rd, rs1, rs2`.
    pub fn divu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x01, 0b101, rd, rs1, rs2);
    }

    /// `remu rd, rs1, rs2`.
    pub fn remu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.op_r(0x01, 0b111, rd, rs1, rs2);
    }

    // --- memory -----------------------------------------------------

    /// `lw rd, imm(rs1)`.
    pub fn lw(&mut self, rd: u8, imm: i32, rs1: u8) {
        self.push(enc_i(imm, rs1, 0b010, rd, 0x03));
    }

    /// `lbu rd, imm(rs1)`.
    pub fn lbu(&mut self, rd: u8, imm: i32, rs1: u8) {
        self.push(enc_i(imm, rs1, 0b100, rd, 0x03));
    }

    /// `lhu rd, imm(rs1)`.
    pub fn lhu(&mut self, rd: u8, imm: i32, rs1: u8) {
        self.push(enc_i(imm, rs1, 0b101, rd, 0x03));
    }

    /// `sw rs2, imm(rs1)`.
    pub fn sw(&mut self, rs2: u8, imm: i32, rs1: u8) {
        self.push(enc_s(imm, rs2, rs1, 0b010, 0x23));
    }

    /// `sh rs2, imm(rs1)`.
    pub fn sh(&mut self, rs2: u8, imm: i32, rs1: u8) {
        self.push(enc_s(imm, rs2, rs1, 0b001, 0x23));
    }

    /// `sb rs2, imm(rs1)`.
    pub fn sb(&mut self, rs2: u8, imm: i32, rs1: u8) {
        self.push(enc_s(imm, rs2, rs1, 0b000, 0x23));
    }

    // --- control flow -----------------------------------------------

    fn branch(&mut self, funct3: u32, rs1: u8, rs2: u8, label: &str) {
        self.fixups
            .push((self.words.len(), label.to_string(), Fix::Branch));
        self.push(enc_b(0, rs2, rs1, funct3));
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(0b000, rs1, rs2, label);
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(0b001, rs1, rs2, label);
    }

    /// `blt rs1, rs2, label` (signed).
    pub fn blt(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(0b100, rs1, rs2, label);
    }

    /// `bltu rs1, rs2, label` (unsigned).
    pub fn bltu(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(0b110, rs1, rs2, label);
    }

    /// `bgeu rs1, rs2, label` (unsigned).
    pub fn bgeu(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(0b111, rs1, rs2, label);
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: u8, label: &str) {
        self.fixups
            .push((self.words.len(), label.to_string(), Fix::Jal));
        self.push(enc_j(0, rd));
    }

    /// `jalr rd, imm(rs1)`.
    pub fn jalr(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.push(enc_i(imm, rs1, 0b000, rd, 0x67));
    }

    /// `ecall`.
    pub fn ecall(&mut self) {
        self.push(0x0000_0073);
    }

    /// `fence`.
    pub fn fence(&mut self) {
        self.push(0x0000_000f);
    }

    // --- pseudo-ops -------------------------------------------------

    /// `mv rd, rs` (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: u8, rs: u8) {
        self.addi(rd, rs, 0);
    }

    /// `j label` (`jal x0, label`).
    pub fn j(&mut self, label: &str) {
        self.jal(0, label);
    }

    /// `li rd, value`: `addi` when the constant fits 12 signed bits,
    /// else `lui` + `addi`.
    pub fn li(&mut self, rd: u8, value: u32) {
        let v = value as i32;
        if (-2048..2048).contains(&v) {
            self.addi(rd, 0, v);
        } else {
            let lo = (v << 20) >> 20; // low 12 bits, sign-extended
            let hi = (value.wrapping_sub(lo as u32)) & 0xffff_f000;
            self.lui(rd, hi);
            if lo != 0 {
                self.addi(rd, rd, lo);
            }
        }
    }

    /// Resolves labels and returns the instruction words.
    ///
    /// # Panics
    ///
    /// Panics on an undefined label or an out-of-range offset — both are
    /// build-time programming errors in a checked-in program.
    pub fn assemble(mut self) -> Vec<u32> {
        for (idx, label, fix) in std::mem::take(&mut self.fixups) {
            let target = *self
                .labels
                .get(&label)
                .unwrap_or_else(|| panic!("undefined label `{label}`"));
            let offset = target as i32 - (idx as i32 * 4);
            let w = self.words[idx];
            self.words[idx] = match fix {
                Fix::Branch => {
                    let rs2 = ((w >> 20) & 0x1f) as u8;
                    let rs1 = ((w >> 15) & 0x1f) as u8;
                    enc_b(offset, rs2, rs1, (w >> 12) & 0x7)
                }
                Fix::Jal => enc_j(offset, ((w >> 7) & 0x1f) as u8),
            };
        }
        self.words
    }

    /// The instruction words as little-endian bytes.
    pub fn assemble_bytes(self) -> Vec<u8> {
        self.assemble()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode, BinOp, BrOp, Inst, LdOp, StOp};

    #[test]
    fn encodings_decode_back() {
        let mut a = Asm::new();
        a.label("top");
        a.addi(5, 0, -3);
        a.lui(6, 0x1_2000);
        a.add(7, 5, 6);
        a.sub(7, 7, 5);
        a.mul(28, 7, 5);
        a.remu(29, 28, 7);
        a.lw(30, -8, 7);
        a.sb(30, 17, 6);
        a.bne(5, 6, "top");
        a.jal(1, "top");
        a.jalr(0, 1, 0);
        a.ecall();
        let words = a.assemble();
        assert_eq!(
            decode(words[0]).unwrap(),
            Inst::OpImm {
                op: BinOp::Add,
                rd: 5,
                rs1: 0,
                imm: -3
            }
        );
        assert_eq!(
            decode(words[1]).unwrap(),
            Inst::Lui {
                rd: 6,
                imm: 0x1_2000
            }
        );
        assert_eq!(
            decode(words[2]).unwrap(),
            Inst::Op {
                op: BinOp::Add,
                rd: 7,
                rs1: 5,
                rs2: 6
            }
        );
        assert_eq!(
            decode(words[3]).unwrap(),
            Inst::Op {
                op: BinOp::Sub,
                rd: 7,
                rs1: 7,
                rs2: 5
            }
        );
        assert_eq!(
            decode(words[4]).unwrap(),
            Inst::Op {
                op: BinOp::Mul,
                rd: 28,
                rs1: 7,
                rs2: 5
            }
        );
        assert_eq!(
            decode(words[5]).unwrap(),
            Inst::Op {
                op: BinOp::Remu,
                rd: 29,
                rs1: 28,
                rs2: 7
            }
        );
        assert_eq!(
            decode(words[6]).unwrap(),
            Inst::Load {
                op: LdOp::Lw,
                rd: 30,
                rs1: 7,
                imm: -8
            }
        );
        assert_eq!(
            decode(words[7]).unwrap(),
            Inst::Store {
                op: StOp::Sb,
                rs1: 6,
                rs2: 30,
                imm: 17
            }
        );
        // bne at word 8 jumps back to word 0: offset −32.
        assert_eq!(
            decode(words[8]).unwrap(),
            Inst::Branch {
                op: BrOp::Bne,
                rs1: 5,
                rs2: 6,
                imm: -32
            }
        );
        assert_eq!(decode(words[9]).unwrap(), Inst::Jal { rd: 1, imm: -36 });
        assert_eq!(
            decode(words[10]).unwrap(),
            Inst::Jalr {
                rd: 0,
                rs1: 1,
                imm: 0
            }
        );
        assert_eq!(decode(words[11]).unwrap(), Inst::Ecall);
    }

    #[test]
    fn li_builds_arbitrary_constants() {
        // Checked against the interpreter in interp.rs tests; here just
        // verify the shapes decode.
        for value in [
            0u32,
            1,
            2047,
            2048,
            0x8000,
            0xdead_beef,
            0xffff_ffff,
            0x7fff_ffff,
        ] {
            let mut a = Asm::new();
            a.li(10, value);
            for w in a.assemble() {
                decode(w).unwrap();
            }
        }
    }
}
