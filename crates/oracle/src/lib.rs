//! In-order golden model for differential checking.
//!
//! The out-of-order pipeline in `ss-core` is a *timing* simulator: µ-ops
//! carry no data values, so the architecturally-visible effect of a run
//! is exactly the ordered stream of committed µ-ops. That makes the
//! golden model delightfully simple — an in-order machine that fetches
//! the same trace and "commits" one µ-op per step, in trace order,
//! emitting one canonical [`CommitRecord`] per µ-op.
//!
//! Whatever the speculative scheduler, replay machinery, and recovery
//! buffer do to *when* µ-ops execute, the committed stream must match
//! this model µ-op for µ-op: wrong-path work never commits, squashed
//! work replays, and nothing is ever dropped or reordered at the ROB
//! head. The `DiffChecker` in `ss-core` pulls records from a
//! [`CommitOracle`] and compares them online against the pipeline's
//! commit stream.
//!
//! # Example
//!
//! ```
//! use ss_oracle::InOrderModel;
//! use ss_types::commit::CommitOracle;
//!
//! let spec = ss_workloads::kernels::stream_hi_ilp(1);
//! let mut oracle = InOrderModel::from_spec(spec);
//! let first = oracle.next_commit();
//! assert_eq!(first.seq, 0);
//! assert_eq!(oracle.next_commit().seq, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ss_types::commit::{CommitOracle, CommitRecord};
use ss_workloads::{KernelSpec, KernelTrace, TraceSource};

/// The in-order reference machine over any [`TraceSource`].
///
/// Each call to [`CommitOracle::next_commit`] fetches the next
/// correct-path µ-op from the trace and returns its canonical commit
/// record; the commit-order index starts at 0 and increments by one per
/// record. Construct it over a *fresh* trace source identical to the one
/// the pipeline consumes (kernel traces are deterministic, so two
/// [`KernelTrace`]s built from the same [`KernelSpec`] yield the same
/// µ-op stream).
#[derive(Debug, Clone)]
pub struct InOrderModel<T: TraceSource> {
    trace: T,
    seq: u64,
}

impl<T: TraceSource> InOrderModel<T> {
    /// Wraps a trace source as the reference machine.
    pub fn new(trace: T) -> Self {
        InOrderModel { trace, seq: 0 }
    }

    /// Number of µ-ops the model has committed so far.
    pub fn committed(&self) -> u64 {
        self.seq
    }

    /// The workload name of the underlying trace.
    pub fn name(&self) -> &str {
        self.trace.name()
    }
}

impl InOrderModel<KernelTrace> {
    /// Builds the reference machine over a fresh deterministic trace of
    /// `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` fails validation (same contract as
    /// [`KernelTrace::new`]).
    pub fn from_spec(spec: KernelSpec) -> Self {
        Self::new(KernelTrace::new(spec))
    }
}

impl<T: TraceSource> CommitOracle for InOrderModel<T> {
    fn next_commit(&mut self) -> CommitRecord {
        let uop = self.trace.next_uop();
        let rec = CommitRecord {
            seq: self.seq,
            pc: uop.pc,
            kind: uop.class,
            dst: uop.dst.map(|d| (d.class, d.reg)),
        };
        self.seq += 1;
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_workloads::kernels;

    #[test]
    fn seq_is_dense_from_zero() {
        let mut m = InOrderModel::from_spec(kernels::ptr_chase_big(7));
        for i in 0..100 {
            assert_eq!(m.next_commit().seq, i);
        }
        assert_eq!(m.committed(), 100);
    }

    #[test]
    fn two_models_over_the_same_spec_agree() {
        let mut a = InOrderModel::from_spec(kernels::mix_int(42));
        let mut b = InOrderModel::from_spec(kernels::mix_int(42));
        for _ in 0..10_000 {
            assert_eq!(a.next_commit(), b.next_commit());
        }
    }

    #[test]
    fn records_mirror_the_trace() {
        let spec = kernels::stream_hi_ilp(3);
        let mut trace = KernelTrace::new(spec.clone());
        let mut m = InOrderModel::from_spec(spec);
        for _ in 0..1_000 {
            let uop = trace.next_uop();
            let rec = m.next_commit();
            assert_eq!(rec.pc, uop.pc);
            assert_eq!(rec.kind, uop.class);
            assert_eq!(rec.dst, uop.dst.map(|d| (d.class, d.reg)));
        }
    }
}
