//! Randomized (deterministic, seeded) tests for the scheduling-policy
//! structures. Formerly proptest properties; now plain loops over the
//! vendored [`Xoshiro256`] generator so the crate builds offline.

use ss_sched::{FilterPrediction, GlobalCounter, HitMissFilter, SchedEngine, WakeupDecision};
use ss_types::rng::Xoshiro256;
use ss_types::{Pc, SchedPolicyKind, SimConfig};

/// The global counter's prediction always reflects its saturating
/// arithmetic: after enough consecutive hits it predicts hit, after
/// enough consecutive misses it predicts miss — from any state.
#[test]
fn global_counter_saturation() {
    let mut rng = Xoshiro256::seed_from_u64(0x6C0B);
    for case in 0..128 {
        let prefix_len = rng.next_below(100) as usize;
        let mut c = GlobalCounter::new(4);
        for _ in 0..prefix_len {
            c.on_load_outcome(rng.next_bool());
        }
        let mut c2 = c.clone();
        for _ in 0..16 {
            c.on_load_outcome(true);
        }
        assert!(c.predict_hit(), "case {case}");
        for _ in 0..8 {
            c2.on_load_outcome(false);
        }
        assert!(!c2.predict_hit(), "case {case}");
    }
}

/// The filter never predicts `SureHit` for a load observed missing on
/// its most recent unsilenced streak, and a long uniform streak always
/// ends in the matching sure state.
#[test]
fn filter_converges_on_uniform_streaks() {
    let mut rng = Xoshiro256::seed_from_u64(0xF117E4);
    for case in 0..64 {
        let hit = rng.next_bool();
        let streak = 16 + rng.next_below(48);
        // reset interval 4 so silencing cannot freeze the entry forever
        let mut f = HitMissFilter::new(2048, 4, true);
        let pc = Pc::new(0x500);
        for _ in 0..streak {
            f.on_load_commit(pc, hit);
        }
        let want = if hit {
            FilterPrediction::SureHit
        } else {
            FilterPrediction::SureMiss
        };
        assert_eq!(
            f.predict(pc),
            want,
            "case {case}: hit={hit} streak={streak}"
        );
    }
}

/// Rapidly alternating behaviour (streaks shorter than the counter
/// can re-saturate between silence resets) keeps the filter mostly
/// silenced — the case the silencing bit exists for. Longer streaks
/// legitimately re-earn Sure states within each phase.
#[test]
fn filter_is_cautious_on_rapidly_alternating_loads() {
    for period in 2u64..4 {
        let mut f = HitMissFilter::new(2048, 10, true);
        let pc = Pc::new(0x700);
        let mut unstable = 0;
        let total = 600;
        for i in 0..total {
            if f.predict(pc) == FilterPrediction::Unstable {
                unstable += 1;
            }
            f.on_load_commit(pc, (i / period) % 2 == 0);
        }
        assert!(
            unstable * 3 > total,
            "rapidly alternating load must be mostly unstable: {unstable}/{total}"
        );
    }
}

/// Every policy's decision stream is a pure function of its training
/// stream (decide() itself never mutates prediction state).
#[test]
fn decisions_are_read_only() {
    let mut rng = Xoshiro256::seed_from_u64(0xDEC1DE);
    for kind in [
        SchedPolicyKind::AlwaysHit,
        SchedPolicyKind::GlobalCounter,
        SchedPolicyKind::FilterAndCounter,
        SchedPolicyKind::Criticality,
    ] {
        let cfg = SimConfig::builder().sched_policy(kind).build();
        let mut e = SchedEngine::new(&cfg);
        // train a bit
        for i in 0..100u64 {
            e.on_load_outcome(i % 3 == 0);
            e.on_load_commit(Pc::new((i % 16) * 4), i % 2 == 0);
            e.on_retire(Pc::new((i % 16) * 4), i % 5 == 0);
        }
        // repeated decides for the same PC must agree
        let pcs_len = 1 + rng.next_below(49) as usize;
        for _ in 0..pcs_len {
            let pc = Pc::new(rng.next_below(64) * 4);
            let first = e.decide(pc);
            for _ in 0..3 {
                assert_eq!(e.decide(pc), first, "{kind:?} {pc:?}");
            }
        }
    }
}

/// Conservative never speculates; AlwaysHit never holds back.
#[test]
fn extreme_policies_are_constant() {
    let mut rng = Xoshiro256::seed_from_u64(0xE17);
    for _ in 0..100 {
        let pc = Pc::new(rng.next_below(1000) * 4);
        let mut cons = SchedEngine::new(
            &SimConfig::builder()
                .sched_policy(SchedPolicyKind::Conservative)
                .build(),
        );
        let mut always = SchedEngine::new(
            &SimConfig::builder()
                .sched_policy(SchedPolicyKind::AlwaysHit)
                .build(),
        );
        for _ in 0..8 {
            cons.on_load_outcome(true);
            always.on_load_outcome(false);
        }
        assert_eq!(cons.decide(pc), WakeupDecision::Conservative);
        assert_eq!(always.decide(pc), WakeupDecision::Speculative);
    }
}
