//! Property-based tests for the scheduling-policy structures.

use proptest::prelude::*;
use ss_sched::{FilterPrediction, GlobalCounter, HitMissFilter, SchedEngine, WakeupDecision};
use ss_types::{Pc, SchedPolicyKind, SimConfig};

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The global counter's prediction always reflects its saturating
    /// arithmetic: after enough consecutive hits it predicts hit, after
    /// enough consecutive misses it predicts miss — from any state.
    #[test]
    fn global_counter_saturation(prefix in proptest::collection::vec(any::<bool>(), 0..100)) {
        let mut c = GlobalCounter::new(4);
        for h in prefix {
            c.on_load_outcome(h);
        }
        let mut c2 = c.clone();
        for _ in 0..16 {
            c.on_load_outcome(true);
        }
        prop_assert!(c.predict_hit());
        for _ in 0..8 {
            c2.on_load_outcome(false);
        }
        prop_assert!(!c2.predict_hit());
    }

    /// The filter never predicts `SureHit` for a load observed missing on
    /// its most recent unsilenced streak, and a long uniform streak always
    /// ends in the matching sure state.
    #[test]
    fn filter_converges_on_uniform_streaks(hit in any::<bool>(), streak in 16u32..64) {
        // reset interval 4 so silencing cannot freeze the entry forever
        let mut f = HitMissFilter::new(2048, 4, true);
        let pc = Pc::new(0x500);
        for _ in 0..streak {
            f.on_load_commit(pc, hit);
        }
        let want = if hit { FilterPrediction::SureHit } else { FilterPrediction::SureMiss };
        prop_assert_eq!(f.predict(pc), want);
    }

    /// Rapidly alternating behaviour (streaks shorter than the counter
    /// can re-saturate between silence resets) keeps the filter mostly
    /// silenced — the case the silencing bit exists for. Longer streaks
    /// legitimately re-earn Sure states within each phase.
    #[test]
    fn filter_is_cautious_on_rapidly_alternating_loads(period in 2u32..4) {
        let mut f = HitMissFilter::new(2048, 10, true);
        let pc = Pc::new(0x700);
        let mut unstable = 0;
        let total = 600;
        for i in 0..total {
            if f.predict(pc) == FilterPrediction::Unstable {
                unstable += 1;
            }
            f.on_load_commit(pc, (i / period) % 2 == 0);
        }
        prop_assert!(
            unstable * 3 > total,
            "rapidly alternating load must be mostly unstable: {unstable}/{total}"
        );
    }

    /// Every policy's decision stream is a pure function of its training
    /// stream (decide() itself never mutates prediction state).
    #[test]
    fn decisions_are_read_only(
        kind in prop_oneof![
            Just(SchedPolicyKind::AlwaysHit),
            Just(SchedPolicyKind::GlobalCounter),
            Just(SchedPolicyKind::FilterAndCounter),
            Just(SchedPolicyKind::Criticality),
        ],
        pcs in proptest::collection::vec(0u64..64, 1..50),
    ) {
        let cfg = SimConfig::builder().sched_policy(kind).build();
        let mut e = SchedEngine::new(&cfg);
        // train a bit
        for i in 0..100u64 {
            e.on_load_outcome(i % 3 == 0);
            e.on_load_commit(Pc::new((i % 16) * 4), i % 2 == 0);
            e.on_retire(Pc::new((i % 16) * 4), i % 5 == 0);
        }
        // repeated decides for the same PC must agree
        for pc_idx in pcs {
            let pc = Pc::new(pc_idx * 4);
            let first = e.decide(pc);
            for _ in 0..3 {
                prop_assert_eq!(e.decide(pc), first);
            }
        }
    }

    /// Conservative never speculates; AlwaysHit never holds back.
    #[test]
    fn extreme_policies_are_constant(pc_idx in 0u64..1000) {
        let pc = Pc::new(pc_idx * 4);
        let mut cons = SchedEngine::new(
            &SimConfig::builder().sched_policy(SchedPolicyKind::Conservative).build(),
        );
        let mut always = SchedEngine::new(
            &SimConfig::builder().sched_policy(SchedPolicyKind::AlwaysHit).build(),
        );
        for _ in 0..8 {
            cons.on_load_outcome(true);
            always.on_load_outcome(false);
        }
        prop_assert_eq!(cons.decide(pc), WakeupDecision::Conservative);
        prop_assert_eq!(always.decide(pc), WakeupDecision::Speculative);
    }
}
