//! The Alpha-21264-style global hit/miss counter (paper §5.2).
//!
//! A single saturating counter, 4 bits by default, decremented by two on
//! a load miss and incremented by one on a load hit; its most significant
//! bit decides whether loads may speculatively wake their dependents.
//!
//! The paper's text says the counter moves "on cycles where a L1 miss
//! takes place", but a per-cycle update recovers fully during the long
//! quiet stretches of memory-bound code (one miss per DRAM round trip
//! never outweighs the hit-cycles between them) and then mispredicts
//! every chain load. The 21264's documented behaviour — and the variant
//! that reproduces the paper's Figure 7 reductions — updates per *load
//! outcome*, which is what this type implements (see DESIGN.md).

/// The global hit/miss counter.
#[derive(Debug, Clone)]
pub struct GlobalCounter {
    value: u32,
    max: u32,
    msb: u32,
}

impl GlobalCounter {
    /// Creates a counter of the given width in bits (4 in the paper),
    /// initialized to its maximum (predict hit).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=16`.
    pub fn new(bits: u32) -> Self {
        assert!((1..=16).contains(&bits));
        let max = (1 << bits) - 1;
        GlobalCounter {
            value: max,
            max,
            msb: 1 << (bits - 1),
        }
    }

    /// Whether the MSB currently predicts "hit" (speculation allowed).
    #[inline]
    pub fn predict_hit(&self) -> bool {
        self.value & self.msb != 0
    }

    /// Records one load outcome: −2 on a miss, +1 on a hit (saturating).
    #[inline]
    pub fn on_load_outcome(&mut self, hit: bool) {
        if hit {
            self.value = (self.value + 1).min(self.max);
        } else {
            self.value = self.value.saturating_sub(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_predicting_hit() {
        assert!(GlobalCounter::new(4).predict_hit());
    }

    #[test]
    fn miss_burst_flips_to_conservative() {
        let mut c = GlobalCounter::new(4);
        // from 15, four misses: 13, 11, 9, 7 → MSB clears at 7
        for _ in 0..3 {
            c.on_load_outcome(false);
            assert!(c.predict_hit());
        }
        c.on_load_outcome(false);
        assert!(!c.predict_hit());
    }

    #[test]
    fn recovers_after_hits() {
        let mut c = GlobalCounter::new(4);
        for _ in 0..8 {
            c.on_load_outcome(false);
        }
        assert!(!c.predict_hit());
        // climb back: needs 8 hits from 0 to reach 8 (MSB set)
        for _ in 0..7 {
            c.on_load_outcome(true);
            assert!(!c.predict_hit());
        }
        c.on_load_outcome(true);
        assert!(c.predict_hit());
    }

    #[test]
    fn mostly_missing_stream_stays_conservative() {
        // 60% misses: −2·0.6 + 1·0.4 < 0 per load on average.
        let mut c = GlobalCounter::new(4);
        let mut conservative = 0;
        for i in 0..1000u32 {
            if !c.predict_hit() {
                conservative += 1;
            }
            c.on_load_outcome(i % 5 < 2); // 40% hits
        }
        assert!(conservative > 800, "got {conservative}");
    }

    #[test]
    fn saturates_at_bounds() {
        let mut c = GlobalCounter::new(4);
        for _ in 0..100 {
            c.on_load_outcome(true);
        }
        assert!(c.predict_hit());
        for _ in 0..100 {
            c.on_load_outcome(false);
        }
        assert!(!c.predict_hit());
        // and can still recover
        for _ in 0..8 {
            c.on_load_outcome(true);
        }
        assert!(c.predict_hit());
    }

    #[test]
    #[should_panic]
    fn zero_bits_rejected() {
        let _ = GlobalCounter::new(0);
    }
}

ss_types::impl_persist_state!(GlobalCounter { value });
