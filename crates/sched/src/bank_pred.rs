//! A PC-indexed L1D bank predictor (Yoaz et al., ISCA 1999 — paper §2.2).
//!
//! Schedule Shifting taxes *every* second load of an issue group with one
//! wakeup cycle, whether or not the pair actually conflicts. Yoaz et al.
//! propose predicting the bank each load will access; with a prediction,
//! the shift can be applied only to pairs predicted to collide
//! ([`ShiftPolicy::Predicted`](ss_types::ShiftPolicy)). The predictor here
//! is a stride-aware variant of their bank-history scheme: a
//! direct-mapped table of the load's last bank, its per-instance bank
//! *stride*, and a 2-bit confidence counter — striding loads rotate
//! through banks, and a last-bank-only predictor would never become
//! confident on exactly the access patterns that conflict.

use ss_types::Pc;

#[derive(Debug, Clone, Copy)]
struct Entry {
    bank: u8,
    /// Bank delta between consecutive dynamic instances (mod the bank
    /// count; 8 banks assumed for the modulus).
    stride: u8,
    confidence: u8,
}

/// Bank count assumed by the stride arithmetic (the paper's L1D).
const BANKS: u8 = 8;

/// The bank predictor: last-bank-with-confidence, direct-mapped on PC.
#[derive(Debug, Clone)]
pub struct BankPredictor {
    entries: Vec<Entry>,
    /// Predictions made (confident or not).
    pub lookups: u64,
    /// Confident predictions that matched the actual bank.
    pub correct: u64,
    /// Confident predictions that missed.
    pub wrong: u64,
}

impl BankPredictor {
    /// Creates a predictor with `entries` entries (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32) -> Self {
        assert!(entries.is_power_of_two());
        BankPredictor {
            entries: vec![
                Entry {
                    bank: 0,
                    stride: 0,
                    confidence: 0
                };
                entries as usize
            ],
            lookups: 0,
            correct: 0,
            wrong: 0,
        }
    }

    fn index(&self, pc: Pc) -> usize {
        (pc.get() >> 2) as usize & (self.entries.len() - 1)
    }

    /// Predicts the bank of the *next* dynamic instance of the load at
    /// `pc`; `None` while not confident.
    pub fn predict(&mut self, pc: Pc) -> Option<u8> {
        self.lookups += 1;
        let e = self.entries[self.index(pc)];
        (e.confidence >= 2).then_some((e.bank + e.stride) % BANKS)
    }

    /// Trains with the actual bank the load accessed; also updates the
    /// accuracy counters for a prior confident prediction.
    pub fn train(&mut self, pc: Pc, actual_bank: u8) {
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        let actual_bank = actual_bank % BANKS;
        let expected = (e.bank + e.stride) % BANKS;
        let new_stride = (actual_bank + BANKS - e.bank) % BANKS;
        if expected == actual_bank {
            if e.confidence >= 2 {
                self.correct += 1;
            }
            e.confidence = (e.confidence + 1).min(3);
        } else {
            if e.confidence >= 2 {
                self.wrong += 1;
            }
            if e.confidence == 0 {
                e.stride = new_stride;
                e.confidence = 1;
            } else {
                e.confidence -= 1;
            }
        }
        e.bank = actual_bank;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predictor_is_unconfident() {
        let mut p = BankPredictor::new(2048);
        assert_eq!(p.predict(Pc::new(0x100)), None);
    }

    #[test]
    fn stable_bank_becomes_confident() {
        let mut p = BankPredictor::new(2048);
        let pc = Pc::new(0x100);
        // learning a constant bank takes a few trains (the cold entry
        // first guesses a bogus stride)
        for _ in 0..4 {
            p.train(pc, 3);
        }
        assert_eq!(p.predict(pc), Some(3));
        p.train(pc, 3);
        assert!(p.correct >= 1);
    }

    #[test]
    fn rotating_banks_are_predicted_via_stride() {
        // Stride-8 loads rotate +1 bank per instance; the predictor must
        // catch them (a last-bank-only scheme never would).
        let mut p = BankPredictor::new(2048);
        let pc = Pc::new(0x300);
        for i in 0..10u8 {
            p.train(pc, i % 8);
        }
        assert_eq!(p.predict(pc), Some(10 % 8));
        p.train(pc, 10 % 8);
        assert!(p.correct >= 1);
    }

    #[test]
    fn stride_change_loses_confidence_then_relearns() {
        let mut p = BankPredictor::new(2048);
        let pc = Pc::new(0x200);
        for _ in 0..4 {
            p.train(pc, 5); // stride 0
        }
        assert_eq!(p.predict(pc), Some(5));
        // the load starts rotating banks
        p.train(pc, 6);
        p.train(pc, 7);
        assert_eq!(p.predict(pc), None, "confidence lost");
        p.train(pc, 0);
        p.train(pc, 1);
        p.train(pc, 2);
        assert_eq!(p.predict(pc), Some(3), "stride 1 relearned");
        assert!(p.wrong >= 1);
    }

    #[test]
    fn random_banks_never_confident() {
        let mut p = BankPredictor::new(2048);
        let pc = Pc::new(0x400);
        let banks = [3u8, 0, 5, 1, 7, 2, 0, 6, 4, 1, 3, 7, 2, 5];
        for &b in banks.iter().cycle().take(100) {
            p.train(pc, b);
        }
        assert_eq!(p.predict(pc), None);
    }

    #[test]
    #[should_panic]
    fn non_pow2_rejected() {
        let _ = BankPredictor::new(1000);
    }
}

ss_types::impl_persist!(Entry {
    bank,
    stride,
    confidence
});
ss_types::impl_persist_state!(BankPredictor {
    entries,
    lookups,
    correct,
    wrong
});
