//! Speculative-scheduling policies — the paper's contribution.
//!
//! The pipeline issues load dependents *speculatively* (assuming an L1
//! hit) to hide the issue-to-execute delay; wrong guesses force replays.
//! This crate implements the three replay-reduction mechanisms of
//! Perais et al. (ISCA 2015):
//!
//! * **Schedule Shifting** (§5.1) lives in the issue stage (`ss-core`);
//!   its decision data — always delay the wakeup of dependents of the
//!   *second* load of an issue group by one cycle — needs no state, so
//!   this crate only defines the policy switches.
//! * the **global hit/miss counter** ([`GlobalCounter`], §5.2),
//! * the **per-PC hit/miss filter with silencing bits**
//!   ([`HitMissFilter`], §5.2),
//! * the **criticality table** ([`CriticalityTable`], §5.3),
//!
//! combined by [`SchedEngine`] into the per-load wakeup decision.
//!
//! # Example
//!
//! ```
//! use ss_sched::{SchedEngine, WakeupDecision};
//! use ss_types::{Pc, SchedPolicyKind, SimConfig};
//!
//! let cfg = SimConfig::builder().sched_policy(SchedPolicyKind::FilterAndCounter).build();
//! let mut engine = SchedEngine::new(&cfg);
//! assert_eq!(engine.decide(Pc::new(0x400)), WakeupDecision::Speculative);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bank_pred;
pub mod criticality;
pub mod engine;
pub mod filter;
pub mod global_counter;

pub use bank_pred::BankPredictor;
pub use criticality::CriticalityTable;
pub use engine::{EngineStats, SchedEngine, WakeupDecision};
pub use filter::{FilterPrediction, HitMissFilter};
pub use global_counter::GlobalCounter;
