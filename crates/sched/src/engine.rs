//! The wakeup-policy engine: combines the global counter, the per-PC
//! filter, and the criticality table into the per-load decision the issue
//! stage asks for — *may this load wake its dependents speculatively?*

use crate::criticality::CriticalityTable;
use crate::filter::{FilterPrediction, HitMissFilter};
use crate::global_counter::GlobalCounter;
use ss_types::{Pc, SchedPolicyKind, SimConfig};

/// The per-load wakeup decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeupDecision {
    /// Wake dependents after load-to-use cycles, assuming an L1 hit.
    Speculative,
    /// Hold dependents until the hit/miss signal is known.
    Conservative,
}

/// Counters describing the engine's decisions, for statistics export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Loads decided speculative.
    pub speculative: u64,
    /// Loads decided conservative.
    pub conservative: u64,
    /// Filter said sure-hit.
    pub sure_hit: u64,
    /// Filter said sure-miss.
    pub sure_miss: u64,
    /// Filter said unstable (silenced).
    pub unstable: u64,
    /// Criticality table said critical (consulted loads only).
    pub critical: u64,
    /// Criticality table said non-critical.
    pub noncritical: u64,
}

/// The policy engine. One instance per simulated core.
#[derive(Debug, Clone)]
pub struct SchedEngine {
    kind: SchedPolicyKind,
    global: GlobalCounter,
    filter: HitMissFilter,
    crit: CriticalityTable,
    /// Decision counters.
    pub stats: EngineStats,
}

impl SchedEngine {
    /// Builds the engine from the machine configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        let use_silencing = cfg.sched_policy != SchedPolicyKind::FilterNoSilence;
        SchedEngine {
            kind: cfg.sched_policy,
            global: GlobalCounter::new(cfg.global_counter_bits),
            filter: HitMissFilter::new(
                cfg.filter_entries,
                cfg.filter_reset_interval,
                use_silencing,
            ),
            crit: CriticalityTable::new(cfg.crit_entries, cfg.crit_counter_bits),
            stats: EngineStats::default(),
        }
    }

    /// The policy this engine implements.
    pub fn kind(&self) -> SchedPolicyKind {
        self.kind
    }

    /// Decides, at issue time, whether the load at `pc` may wake its
    /// dependents speculatively.
    pub fn decide(&mut self, pc: Pc) -> WakeupDecision {
        use SchedPolicyKind::*;
        let d = match self.kind {
            Conservative => WakeupDecision::Conservative,
            AlwaysHit => WakeupDecision::Speculative,
            GlobalCounter => self.global_decision(),
            FilterAndCounter | FilterNoSilence => match self.filter_predict(pc) {
                FilterPrediction::SureHit => WakeupDecision::Speculative,
                FilterPrediction::SureMiss => WakeupDecision::Conservative,
                FilterPrediction::Unstable => self.global_decision(),
            },
            Criticality => match self.filter_predict(pc) {
                FilterPrediction::SureHit => WakeupDecision::Speculative,
                FilterPrediction::SureMiss => WakeupDecision::Conservative,
                FilterPrediction::Unstable => {
                    if self.crit.predict_critical(pc) {
                        self.stats.critical += 1;
                        self.global_decision()
                    } else {
                        self.stats.noncritical += 1;
                        WakeupDecision::Conservative
                    }
                }
            },
        };
        match d {
            WakeupDecision::Speculative => self.stats.speculative += 1,
            WakeupDecision::Conservative => self.stats.conservative += 1,
        }
        d
    }

    fn filter_predict(&mut self, pc: Pc) -> FilterPrediction {
        let p = self.filter.predict(pc);
        match p {
            FilterPrediction::SureHit => self.stats.sure_hit += 1,
            FilterPrediction::SureMiss => self.stats.sure_miss += 1,
            FilterPrediction::Unstable => self.stats.unstable += 1,
        }
        p
    }

    fn global_decision(&self) -> WakeupDecision {
        if self.global.predict_hit() {
            WakeupDecision::Speculative
        } else {
            WakeupDecision::Conservative
        }
    }

    /// Records a load's L1D outcome into the global counter (called at
    /// execute time, when the hit/miss signal exists).
    pub fn on_load_outcome(&mut self, hit: bool) {
        self.global.on_load_outcome(hit);
    }

    /// Trains the filter with a committed load's L1D outcome.
    pub fn on_load_commit(&mut self, pc: Pc, hit: bool) {
        self.filter.on_load_commit(pc, hit);
    }

    /// Trains the criticality table with a retiring µ-op.
    pub fn on_retire(&mut self, pc: Pc, was_rob_head: bool) {
        if self.kind == SchedPolicyKind::Criticality {
            self.crit.on_retire(pc, was_rob_head);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::SimConfig;

    fn engine(kind: SchedPolicyKind) -> SchedEngine {
        SchedEngine::new(&SimConfig::builder().sched_policy(kind).build())
    }

    #[test]
    fn conservative_never_speculates() {
        let mut e = engine(SchedPolicyKind::Conservative);
        for i in 0..50u64 {
            assert_eq!(e.decide(Pc::new(i * 4)), WakeupDecision::Conservative);
        }
        assert_eq!(e.stats.speculative, 0);
    }

    #[test]
    fn always_hit_always_speculates() {
        let mut e = engine(SchedPolicyKind::AlwaysHit);
        for _ in 0..20 {
            e.on_load_outcome(false); // even under a miss storm
        }
        assert_eq!(e.decide(Pc::new(0x100)), WakeupDecision::Speculative);
    }

    #[test]
    fn global_counter_gates_on_miss_bursts() {
        let mut e = engine(SchedPolicyKind::GlobalCounter);
        assert_eq!(e.decide(Pc::new(0x100)), WakeupDecision::Speculative);
        for _ in 0..8 {
            e.on_load_outcome(false);
        }
        assert_eq!(e.decide(Pc::new(0x100)), WakeupDecision::Conservative);
        for _ in 0..16 {
            e.on_load_outcome(true);
        }
        assert_eq!(e.decide(Pc::new(0x100)), WakeupDecision::Speculative);
    }

    #[test]
    fn filter_sure_miss_overrides_global_hit() {
        let e = engine(SchedPolicyKind::FilterAndCounter);
        let pc = Pc::new(0x200);
        // drive the entry to sure-miss (resets let the counter walk down)
        let mut e2 = SchedEngine::new(
            &SimConfig::builder()
                .sched_policy(SchedPolicyKind::FilterAndCounter)
                .tweak(|c| c.filter_reset_interval = 1)
                .build(),
        );
        for _ in 0..8 {
            e2.on_load_commit(pc, false);
        }
        assert_eq!(e2.decide(pc), WakeupDecision::Conservative);
        assert_eq!(e2.stats.sure_miss, 1);
        // global counter is at max (hit) yet the filter overrides
        drop(e);
    }

    #[test]
    fn filter_unstable_defers_to_global() {
        let mut e = engine(SchedPolicyKind::FilterAndCounter);
        let pc = Pc::new(0x300);
        e.on_load_commit(pc, true);
        e.on_load_commit(pc, false); // silences
        assert_eq!(e.decide(pc), WakeupDecision::Speculative, "global says hit");
        assert_eq!(e.stats.unstable, 1);
        for _ in 0..8 {
            e.on_load_outcome(false);
        }
        assert_eq!(
            e.decide(pc),
            WakeupDecision::Conservative,
            "global says miss"
        );
    }

    #[test]
    fn criticality_gates_unstable_noncritical_loads() {
        let mut e = engine(SchedPolicyKind::Criticality);
        let pc = Pc::new(0x400);
        // silence the filter entry
        e.on_load_commit(pc, true);
        e.on_load_commit(pc, false);
        // non-critical training
        for _ in 0..4 {
            e.on_retire(pc, false);
        }
        assert_eq!(
            e.decide(pc),
            WakeupDecision::Conservative,
            "unstable + non-critical must not speculate even when global says hit"
        );
        assert_eq!(e.stats.noncritical, 1);
        // critical loads fall back to the global counter (currently hit)
        for _ in 0..8 {
            e.on_retire(pc, true);
        }
        assert_eq!(e.decide(pc), WakeupDecision::Speculative);
        assert_eq!(e.stats.critical, 1);
    }

    #[test]
    fn criticality_sure_hits_always_speculate() {
        let mut e = engine(SchedPolicyKind::Criticality);
        let pc = Pc::new(0x500);
        for _ in 0..4 {
            e.on_load_commit(pc, true);
        }
        for _ in 0..8 {
            e.on_retire(pc, false); // non-critical
        }
        assert_eq!(
            e.decide(pc),
            WakeupDecision::Speculative,
            "sure hit bypasses criticality"
        );
    }

    #[test]
    fn no_silence_ablation_never_reports_unstable() {
        let mut e = engine(SchedPolicyKind::FilterNoSilence);
        let pc = Pc::new(0x600);
        for i in 0..20 {
            e.on_load_commit(pc, i % 2 == 0);
            let _ = e.decide(pc);
        }
        assert_eq!(e.stats.unstable, 0);
    }

    #[test]
    fn decision_counters_add_up() {
        let mut e = engine(SchedPolicyKind::FilterAndCounter);
        for i in 0..30u64 {
            let _ = e.decide(Pc::new(i * 4));
        }
        assert_eq!(e.stats.speculative + e.stats.conservative, 30);
    }
}

ss_types::impl_persist!(EngineStats {
    speculative,
    conservative,
    sure_hit,
    sure_miss,
    unstable,
    critical,
    noncritical,
});
ss_types::impl_persist_state!(SchedEngine { stats ; global, filter, crit });
