//! The criticality estimator (paper §5.3).
//!
//! Proof-of-concept criterion from Fields et al. / Tune et al.: a µ-op is
//! *critical* if it was at the head of the ROB when it completed during
//! previous executions. An 8K-entry direct-mapped table of 4-bit signed
//! counters, incremented when the µ-op retires having been found critical
//! and decremented otherwise; the sign predicts. Updated at retire time —
//! off the critical path.

use ss_types::Pc;

/// The criticality table.
#[derive(Debug, Clone)]
pub struct CriticalityTable {
    counters: Vec<i8>,
    max: i8,
    min: i8,
}

impl CriticalityTable {
    /// Creates a table with `entries` entries (power of two) of `bits`-bit
    /// signed counters (4 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `bits` not in `2..=7`.
    pub fn new(entries: u32, bits: u32) -> Self {
        assert!(entries.is_power_of_two());
        assert!((2..=7).contains(&bits));
        let max = (1 << (bits - 1)) - 1;
        CriticalityTable {
            counters: vec![0; entries as usize],
            max,
            min: -(max + 1),
        }
    }

    fn index(&self, pc: Pc) -> usize {
        (pc.get() >> 2) as usize & (self.counters.len() - 1)
    }

    /// Whether the µ-op at `pc` is predicted critical. Unseen µ-ops are
    /// predicted critical (optimistic: keep speculating until proven
    /// non-critical).
    pub fn predict_critical(&self, pc: Pc) -> bool {
        self.counters[self.index(pc)] >= 0
    }

    /// Trains at retire: `was_rob_head` is whether this µ-op was at the
    /// ROB head when it completed execution.
    pub fn on_retire(&mut self, pc: Pc, was_rob_head: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        *c = if was_rob_head {
            (*c + 1).min(self.max)
        } else {
            (*c - 1).max(self.min)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CriticalityTable {
        CriticalityTable::new(8192, 4)
    }

    #[test]
    fn unseen_is_critical() {
        assert!(table().predict_critical(Pc::new(0x42)));
    }

    #[test]
    fn repeated_noncritical_flips_prediction() {
        let mut t = table();
        let pc = Pc::new(0x100);
        t.on_retire(pc, false);
        assert!(!t.predict_critical(pc), "one decrement takes 0 to -1");
        t.on_retire(pc, true);
        assert!(t.predict_critical(pc));
    }

    #[test]
    fn saturation_bounds() {
        let mut t = table();
        let pc = Pc::new(0x200);
        for _ in 0..100 {
            t.on_retire(pc, false);
        }
        // 4-bit signed saturates at -8; 8 increments bring it back
        for _ in 0..7 {
            t.on_retire(pc, true);
            assert!(!t.predict_critical(pc));
        }
        t.on_retire(pc, true);
        assert!(t.predict_critical(pc));
    }

    #[test]
    fn hysteresis_tolerates_noise() {
        let mut t = table();
        let pc = Pc::new(0x300);
        for _ in 0..5 {
            t.on_retire(pc, true);
        }
        // a few non-critical sightings do not flip a strongly-critical µ-op
        t.on_retire(pc, false);
        t.on_retire(pc, false);
        assert!(t.predict_critical(pc));
    }

    #[test]
    fn distinct_pcs_independent() {
        let mut t = table();
        t.on_retire(Pc::new(0x400), false);
        assert!(!t.predict_critical(Pc::new(0x400)));
        assert!(t.predict_critical(Pc::new(0x404)));
    }

    #[test]
    #[should_panic]
    fn non_pow2_rejected() {
        let _ = CriticalityTable::new(1000, 4);
    }
}

ss_types::impl_persist_state!(CriticalityTable { counters });
