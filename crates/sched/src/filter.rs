//! The per-instruction hit/miss filter (paper §5.2).
//!
//! A 2K-entry direct-mapped array of 2-bit saturating counters with one
//! *silencing* bit each — 768 bytes of storage, exactly the paper's
//! budget. A counter is incremented on a hit and decremented on a miss,
//! **at commit time** (off the critical path). When a counter leaves a
//! saturated state (3 → 2 after a miss, or 0 → 1 after a hit) its entry is
//! silenced: the load's behaviour is not stable, so the decision is
//! deferred to the global counter (and criticality, in `_Crit`). Silenced
//! counters are not updated. All silence bits reset every 10 000 committed
//! loads so behaviour changes can be re-learned.

use ss_types::Pc;

/// What the filter says about a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterPrediction {
    /// The load has always hit: wake dependents speculatively.
    SureHit,
    /// The load has always missed: schedule dependents conservatively.
    SureMiss,
    /// Behaviour is unstable (entry silenced): defer to the fallback.
    Unstable,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    ctr: u8,
    silenced: bool,
}

/// The per-PC hit/miss filter.
#[derive(Debug, Clone)]
pub struct HitMissFilter {
    entries: Vec<Entry>,
    /// Committed loads since the last silence reset.
    since_reset: u64,
    reset_interval: u64,
    /// Disable the silencing bit (AB1 ablation): plain 2-bit counters
    /// whose MSB predicts, always updated.
    use_silencing: bool,
}

impl HitMissFilter {
    /// Creates a filter with `entries` entries (power of two) and the
    /// given silence-reset interval in committed loads.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: u32, reset_interval: u64, use_silencing: bool) -> Self {
        assert!(entries.is_power_of_two());
        HitMissFilter {
            // Initialize to saturated-hit: unseen loads behave like the
            // Always-Hit default until proven otherwise.
            entries: vec![
                Entry {
                    ctr: 3,
                    silenced: false
                };
                entries as usize
            ],
            since_reset: 0,
            reset_interval,
            use_silencing,
        }
    }

    fn index(&self, pc: Pc) -> usize {
        (pc.get() >> 2) as usize & (self.entries.len() - 1)
    }

    /// Predicts the load at `pc` (read at issue; never updates state).
    pub fn predict(&self, pc: Pc) -> FilterPrediction {
        let e = self.entries[self.index(pc)];
        if self.use_silencing {
            if e.silenced {
                FilterPrediction::Unstable
            } else if e.ctr >= 2 {
                FilterPrediction::SureHit
            } else {
                FilterPrediction::SureMiss
            }
        } else if e.ctr >= 2 {
            FilterPrediction::SureHit
        } else {
            FilterPrediction::SureMiss
        }
    }

    /// Trains on a committed load's actual L1D outcome.
    pub fn on_load_commit(&mut self, pc: Pc, hit: bool) {
        self.since_reset += 1;
        if self.reset_interval > 0 && self.since_reset >= self.reset_interval {
            self.since_reset = 0;
            for e in &mut self.entries {
                e.silenced = false;
            }
        }
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if self.use_silencing && e.silenced {
            return; // silenced counters are not updated
        }
        let was_saturated = e.ctr == 0 || e.ctr == 3;
        let new = if hit {
            (e.ctr + 1).min(3)
        } else {
            e.ctr.saturating_sub(1)
        };
        let now_transient = new == 1 || new == 2;
        e.ctr = new;
        if self.use_silencing && was_saturated && now_transient {
            // Leaving a saturated state: the load's behaviour deviated.
            // Silence the entry; after the next silence reset the counter
            // resumes walking, so a persistent behaviour change reaches
            // the opposite saturated state within a few resets.
            e.silenced = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter() -> HitMissFilter {
        HitMissFilter::new(2048, 10_000, true)
    }

    #[test]
    fn storage_budget_matches_paper() {
        // 2K entries x (2-bit counter + 1 silence bit) = 6 Kbit = 768 B
        let bits = 2048 * 3;
        assert_eq!(bits / 8, 768);
    }

    #[test]
    fn unseen_loads_are_sure_hits() {
        assert_eq!(filter().predict(Pc::new(0x1234)), FilterPrediction::SureHit);
    }

    #[test]
    fn consistent_misser_becomes_sure_miss() {
        let mut f = filter();
        let pc = Pc::new(0x100);
        // first miss: 3 → silenced (was saturated-hit by init)
        f.on_load_commit(pc, false);
        assert_eq!(f.predict(pc), FilterPrediction::Unstable);
        // silence-bit reset re-enables learning
        let mut f2 = HitMissFilter::new(2048, 2, true);
        f2.on_load_commit(pc, false); // silenced, since_reset=1
        f2.on_load_commit(pc, false); // reset fires first → unsilenced → 3→2? saturated→transient → silenced again
                                      // after several reset cycles the counter walks down to sure-miss
        let mut f3 = HitMissFilter::new(2048, 1, true); // reset every load
        for _ in 0..8 {
            f3.on_load_commit(pc, false);
        }
        assert_eq!(f3.predict(pc), FilterPrediction::SureMiss);
    }

    #[test]
    fn stable_hitter_stays_sure_hit() {
        let mut f = filter();
        let pc = Pc::new(0x200);
        for _ in 0..100 {
            f.on_load_commit(pc, true);
        }
        assert_eq!(f.predict(pc), FilterPrediction::SureHit);
    }

    #[test]
    fn deviation_silences_the_entry() {
        let mut f = filter();
        let pc = Pc::new(0x300);
        for _ in 0..10 {
            f.on_load_commit(pc, true);
        }
        f.on_load_commit(pc, false); // 3 → transient: silence
        assert_eq!(f.predict(pc), FilterPrediction::Unstable);
        // updates are ignored while silenced
        for _ in 0..10 {
            f.on_load_commit(pc, true);
        }
        assert_eq!(f.predict(pc), FilterPrediction::Unstable);
    }

    #[test]
    fn silence_reset_restores_bias() {
        let mut f = HitMissFilter::new(2048, 5, true);
        let pc = Pc::new(0x400);
        f.on_load_commit(pc, true);
        f.on_load_commit(pc, false); // silenced; counter keeps 3
        assert_eq!(f.predict(pc), FilterPrediction::Unstable);
        // three more commits trigger the interval-5 reset
        for _ in 0..3 {
            f.on_load_commit(Pc::new(0x999), true);
        }
        assert_eq!(
            f.predict(pc),
            FilterPrediction::SureHit,
            "bias restored after reset"
        );
    }

    #[test]
    fn no_silence_ablation_tracks_msb() {
        let mut f = HitMissFilter::new(2048, 10_000, false);
        let pc = Pc::new(0x500);
        f.on_load_commit(pc, false);
        f.on_load_commit(pc, false);
        assert_eq!(f.predict(pc), FilterPrediction::SureMiss);
        f.on_load_commit(pc, true);
        f.on_load_commit(pc, true);
        assert_eq!(f.predict(pc), FilterPrediction::SureHit);
        // never Unstable without silencing
        f.on_load_commit(pc, false);
        assert_ne!(f.predict(pc), FilterPrediction::Unstable);
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut f = filter();
        let miss_pc = Pc::new(0x600);
        let hit_pc = Pc::new(0x604);
        for _ in 0..4 {
            f.on_load_commit(hit_pc, true);
            f.on_load_commit(miss_pc, false);
        }
        assert_eq!(f.predict(hit_pc), FilterPrediction::SureHit);
        assert_ne!(f.predict(miss_pc), FilterPrediction::SureHit);
    }
}

ss_types::impl_persist!(Entry { ctr, silenced });
ss_types::impl_persist_state!(HitMissFilter {
    entries,
    since_reset
});
