//! Kill-and-resume: a sweep SIGKILLed mid-flight, rerun with the same
//! `--checkpoint-dir`, must finish and produce byte-identical reports to
//! a sweep that was never interrupted.
//!
//! This drives the real `experiments` binary as a child process — the
//! kill lands on a live OS process mid-sweep, exactly like a cluster
//! preemption or an OOM kill would.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_experiments");

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ss-resume-{tag}-{}", std::process::id()))
}

fn sweep_cmd(out: &Path, ckpt: &Path, resume: bool) -> Command {
    let mut cmd = Command::new(EXE);
    cmd.args(["table2", "--smoke", "--jobs", "1", "--no-progress", "--out"])
        .arg(out)
        .arg("--checkpoint-dir")
        .arg(ckpt);
    if resume {
        cmd.arg("--resume");
    }
    cmd
}

/// Every `*.csv` under `dir`, relative path → bytes.
fn csvs(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "cache") {
                    continue; // cache layout is an implementation detail
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "csv") {
                let rel = p.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
                out.push((rel, std::fs::read(&p).unwrap()));
            }
        }
    }
    out.sort();
    out
}

#[test]
fn killed_sweep_resumes_to_byte_identical_reports() {
    let root = tmp("kill");
    let _ = std::fs::remove_dir_all(&root);
    let (out_a, ckpt_a) = (root.join("out-a"), root.join("ckpt-a"));
    let (out_b, ckpt_b) = (root.join("out-b"), root.join("ckpt-b"));

    // 1. Start the sweep and SIGKILL it as soon as the journal shows the
    //    first completed cell — mid-sweep by construction (table2 has
    //    many cells and a single worker completes them one at a time).
    let mut child = sweep_cmd(&out_a, &ckpt_a, false)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawns experiments");
    let journal = ckpt_a.join("journal.log");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut killed_mid_sweep = false;
    loop {
        if let Ok(text) = std::fs::read_to_string(&journal) {
            if text.lines().count() >= 2 {
                // header + ≥1 record: work is durably underway
                child.kill().expect("kills child");
                killed_mid_sweep = true;
                break;
            }
        }
        if child.try_wait().expect("waits").is_some() {
            break; // finished before we could kill it — resume still must work
        }
        assert!(Instant::now() < deadline, "sweep never journaled a cell");
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = child.wait();

    // 2. Resume with the same checkpoint dir; it must run to completion.
    let resumed = sweep_cmd(&out_a, &ckpt_a, true)
        .output()
        .expect("resumed sweep runs");
    assert!(
        resumed.status.success(),
        "resumed sweep failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_err = String::from_utf8_lossy(&resumed.stderr);
    if killed_mid_sweep {
        assert!(
            resumed_err.contains("[resume: "),
            "resume did not report journaled work:\n{resumed_err}"
        );
    }

    // 3. Reference: the same sweep, never interrupted, in fresh dirs.
    let fresh = sweep_cmd(&out_b, &ckpt_b, false)
        .output()
        .expect("fresh sweep runs");
    assert!(
        fresh.status.success(),
        "fresh sweep failed: {}",
        String::from_utf8_lossy(&fresh.stderr)
    );

    // 4. Byte-identical report text and CSV artifacts.
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&fresh.stdout),
        "resumed report text differs from uninterrupted run"
    );
    let (a, b) = (csvs(&out_a), csvs(&out_b));
    assert!(!a.is_empty(), "no CSVs written under {}", out_a.display());
    assert_eq!(
        a.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    for ((name, bytes_a), (_, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(bytes_a, bytes_b, "CSV {name} differs after resume");
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_without_checkpoint_dir_is_a_usage_error() {
    let out = Command::new(EXE)
        .args(["table2", "--smoke", "--resume"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint-dir"));
}
