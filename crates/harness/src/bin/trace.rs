//! Per-cycle pipeline trace: watch the window fill, replay, and drain.
//!
//! ```text
//! trace <benchmark> [--config NAME] [--cycles N] [--skip N] [--every N]
//! ```
//!
//! Prints one line per sampled cycle with the occupancy of every pipeline
//! structure plus cumulative commit/issue/replay counters — the quickest
//! way to see a replay storm or a recovery-buffer drain in action.
//!
//! `--config` accepts every name the harness can build, via
//! [`ConfigSpec`]'s `FromStr`: `Baseline_d`, `SpecSched_d`,
//! `SpecSched_d_Shift`, `_Ctr`, `_Filter`, `_Combined`, `_Crit`, the
//! ablations (`_FilterNoSilence`, `_NoLineBuffer`, `_Bimodal`, …) and
//! extensions (`_Squash`/`_Selective`/`_Refetch`, `_ShiftPred`,
//! `_CritQold`, `_SetInterleaved`, `_Prf4x2`, …).
//!
//! For *per-µ-op* pipeline pictures (Perfetto JSON or a Konata-style
//! ASCII pipeview, including two-config diffs), use the event-level
//! tracer instead: `experiments trace --bench NAME --config SPEC
//! [--window LO..HI] [--format perfetto|pipeview]`.

use ss_core::Simulator;
use ss_harness::ConfigSpec;
use ss_workloads::{benchmark, KernelTrace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench_name = None;
    let mut config_name = "SpecSched_4".to_string();
    let mut cycles = 200u64;
    let mut skip = 1_000u64;
    let mut every = 1u64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => config_name = it.next().expect("--config needs a name"),
            "--cycles" => cycles = it.next().and_then(|v| v.parse().ok()).expect("--cycles N"),
            "--skip" => skip = it.next().and_then(|v| v.parse().ok()).expect("--skip N"),
            "--every" => every = it.next().and_then(|v| v.parse().ok()).expect("--every N"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace <benchmark> [--config NAME] [--cycles N] [--skip N] [--every N]"
                );
                return;
            }
            other => bench_name = Some(other.to_string()),
        }
    }
    let bench_name = bench_name.unwrap_or_else(|| "crafty_like".to_string());
    let Some(bench) = benchmark(&bench_name) else {
        eprintln!(
            "unknown benchmark `{bench_name}`; available: {:?}",
            ss_workloads::benchmark_names()
        );
        std::process::exit(2);
    };
    let cfg = match config_name.parse::<ConfigSpec>() {
        Ok(spec) => spec.named(),
        Err(e) => {
            eprintln!("{e} (e.g. SpecSched_4_Crit)");
            std::process::exit(2);
        }
    };

    println!("# {} on {}", bench.name, cfg.name);
    let mut sim = Simulator::new(cfg.config, KernelTrace::new((bench.build)(0xB5)));
    for _ in 0..skip {
        sim.tick();
    }
    println!(
        "{:>9} {:>4} {:>3} {:>3} {:>3} {:>5} {:>4} {:>4} {:>3}  {:>10} {:>10} {:>9}",
        "cycle",
        "rob",
        "iq",
        "lq",
        "sq",
        "front",
        "recv",
        "infl",
        "wp",
        "committed",
        "issued",
        "replayed"
    );
    let mut last = sim.snapshot();
    for i in 0..cycles {
        sim.tick();
        if i % every != 0 {
            continue;
        }
        let s = sim.snapshot();
        let marker = if s.replayed > last.replayed {
            " <-- replay"
        } else {
            ""
        };
        println!(
            "{:>9} {:>4} {:>3} {:>3} {:>3} {:>5} {:>4} {:>4} {:>3}  {:>10} {:>10} {:>9}{}",
            s.cycle.get(),
            s.rob,
            s.iq,
            s.lq,
            s.sq,
            s.frontend,
            s.recovery,
            s.inflight,
            if s.wrong_path { "y" } else { "" },
            s.committed,
            s.issued,
            s.replayed,
            marker,
        );
        last = s;
    }
    let stats = sim.stats();
    println!("\nIPC so far: {:.3}", stats.ipc());
}
