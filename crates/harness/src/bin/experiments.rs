//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [table2|fig3|fig4|fig5|fig7|fig8|sweep|headline|ablations|all]
//!             [--quick] [--out DIR] [--no-cache]
//! ```
//!
//! Results print as ASCII tables; CSVs land in `--out` (default
//! `results/`). Simulation results are cached under `results/cache/`.

use ss_core::RunLength;
use ss_harness::{experiments, Report, Session};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut quick = false;
    let mut cache = true;
    let mut out = PathBuf::from("results");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--no-cache" => cache = false,
            "--out" => out = PathBuf::from(it.next().expect("--out needs a directory")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [table2|fig3|fig4|fig5|fig7|fig8|sweep|headline|ablations|replay_schemes|bank_prediction|criticality_criteria|interleaving|energy|prf_banking|all]... [--quick] [--out DIR] [--no-cache]"
                );
                return;
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }

    let len = if quick {
        RunLength {
            warmup: 20_000,
            measure: 150_000,
        }
    } else {
        RunLength {
            warmup: 50_000,
            measure: 500_000,
        }
    };
    let cache_dir = cache.then(|| out.join("cache"));
    let mut sess = Session::new(len, cache_dir);

    let t0 = std::time::Instant::now();
    let mut reports: Vec<Report> = Vec::new();
    for w in &which {
        match w.as_str() {
            "table2" => reports.push(experiments::table2(&mut sess)),
            "fig3" => reports.push(experiments::fig3(&mut sess)),
            "fig4" => reports.push(experiments::fig4(&mut sess)),
            "fig5" => reports.push(experiments::fig5(&mut sess)),
            "fig7" => reports.push(experiments::fig7(&mut sess)),
            "fig8" => reports.push(experiments::fig8(&mut sess)),
            "sweep" => reports.push(experiments::sweep(&mut sess)),
            "headline" => reports.push(experiments::headline(&mut sess)),
            "ablations" => reports.push(experiments::ablations(&mut sess)),
            "replay_schemes" => reports.push(experiments::replay_schemes(&mut sess)),
            "bank_prediction" => reports.push(experiments::bank_prediction(&mut sess)),
            "criticality_criteria" => reports.push(experiments::criticality_criteria(&mut sess)),
            "interleaving" => reports.push(experiments::interleaving(&mut sess)),
            "energy" => reports.push(experiments::energy(&mut sess)),
            "prf_banking" => reports.push(experiments::prf_banking(&mut sess)),
            "all" => reports.extend(experiments::all(&mut sess)),
            other => {
                eprintln!("unknown experiment `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    for r in &reports {
        println!("{}", r.to_text());
        if let Err(e) = r.write_csvs(&out) {
            eprintln!("warning: could not write CSVs for {}: {e}", r.id);
        }
    }
    for note in sess.failure_notes() {
        eprintln!("{note}");
    }
    eprintln!(
        "[{} simulations run, {} cache entries rejected, {} cell failures, {:.1}s, run length {}+{} µ-ops, CSVs in {}]",
        sess.simulated,
        sess.cache_rejected,
        sess.failures.len(),
        t0.elapsed().as_secs_f64(),
        sess.run_length().warmup,
        sess.run_length().measure,
        out.display()
    );
    if !sess.failures.is_empty() {
        std::process::exit(1);
    }
}
