//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [table2|fig3|fig4|fig5|fig7|fig8|sweep|headline|ablations|all]
//!             [--jobs N] [--quick] [--smoke] [--out DIR] [--no-cache]
//!             [--no-progress] [--checkpoint-dir DIR] [--resume]
//! experiments fuzz [--seeds N] [--smoke] [--jobs N] [--out DIR]
//!             [--campaign-seed S] [--repro FILE]
//! experiments trace --bench NAME --config SPEC [--config SPEC2]
//!             [--window LO..HI] [--format perfetto|pipeview] [--out FILE]
//! experiments bench [--out FILE] [--smoke] [--baseline FILE]
//!             [--max-regress PCT]
//! experiments snapfuzz [--seeds N] [--seed S]
//! experiments serve --socket PATH [--jobs N] [--queue-depth D]
//!             [--checkpoint-dir DIR] [--lanes K]
//! experiments client --socket PATH [--id ID] [--prio CLASS]
//!             [--cancel-after N] [--stats] [--shutdown] [--req TEXT]
//! experiments run --req TEXT
//! experiments chaos [--seed N] [--events N] [--dir DIR]
//! experiments rvrun [--prog SPEC] [--config SPEC]... [--all] [--delay D]
//!             [--len wNmN] [--smoke] [--no-check] [--jobs N] [--lanes K]
//! ```
//!
//! Results print as ASCII tables; CSVs land in `--out` (default
//! `results/`). Simulation results are cached under `results/cache/`.
//!
//! `--checkpoint-dir DIR` makes the sweep crash-safe and warm-forkable:
//! the stats cache moves to `DIR/cache`, per-cell warm-state snapshots
//! land in `DIR/warm` (each cell's warmup simulates once, ever), and an
//! fsync'd journal of completed cells is kept at `DIR/journal.log`. A
//! killed sweep rerun with the same `--checkpoint-dir` picks up where it
//! died and produces byte-identical reports; add `--resume` to print how
//! much completed work was found on record.
//!
//! `--jobs N` shards the (configuration × benchmark) matrix across `N`
//! worker threads (default: the host's available parallelism) before the
//! reports are generated sequentially from the warmed cache — the report
//! output is byte-identical to a `--jobs 1` run. A live progress line
//! (cells done / total, aggregate sim-cycles/sec) is drawn on stderr.

use ss_core::RunLength;
use ss_harness::{exec, experiments, Report, Session};
use ss_types::CancelFlag;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The fuzz campaign has its own flag set; intercept it before
    // experiment resolution.
    if args.first().map(String::as_str) == Some("fuzz") {
        std::process::exit(ss_harness::fuzz::run_cli(&args[1..]));
    }
    // Same for the trace capture subcommand.
    if args.first().map(String::as_str) == Some("trace") {
        std::process::exit(ss_harness::tracecmd::run_cli(&args[1..]));
    }
    // And the scheduler-throughput benchmark.
    if args.first().map(String::as_str) == Some("bench") {
        std::process::exit(ss_harness::bench::run_cli(&args[1..]));
    }
    // And the snapshot-corruption fuzzer.
    if args.first().map(String::as_str) == Some("snapfuzz") {
        std::process::exit(ss_harness::snapfuzz::run_cli(&args[1..]));
    }
    // And the simulation service plus its client / offline reference.
    if args.first().map(String::as_str) == Some("serve") {
        std::process::exit(ss_harness::serve::run_serve_cli(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("client") {
        std::process::exit(ss_harness::serve::run_client_cli(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("run") {
        std::process::exit(ss_harness::serve::run_offline_cli(&args[1..]));
    }
    // And the service-layer chaos-injection harness.
    if args.first().map(String::as_str) == Some("chaos") {
        std::process::exit(ss_harness::chaos::run_chaos_cli(&args[1..]));
    }
    // And the real-program (RV32IM) frontend runner.
    if args.first().map(String::as_str) == Some("rvrun") {
        std::process::exit(ss_harness::rvrun::run_cli(&args[1..]));
    }
    let mut which: Vec<String> = Vec::new();
    let mut quick = false;
    let mut smoke = false;
    let mut cache = true;
    let mut progress = true;
    let mut jobs = ss_types::exec::default_jobs();
    let mut lanes: Option<usize> = None;
    let mut out = PathBuf::from("results");
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--smoke" => smoke = true,
            "--no-cache" => cache = false,
            "--no-progress" => progress = false,
            "--jobs" | "-j" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a worker count")
            }
            "--lanes" => {
                let k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--lanes needs a lane count");
                if let Err(e) = ss_core::validate_lanes(k) {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
                lanes = Some(k);
            }
            "--out" => out = PathBuf::from(it.next().expect("--out needs a directory")),
            "--checkpoint-dir" => {
                checkpoint_dir = Some(PathBuf::from(
                    it.next().expect("--checkpoint-dir needs a directory"),
                ))
            }
            "--resume" => resume = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [{}|all]... [--jobs N] [--lanes K] [--quick] [--smoke] [--out DIR] [--no-cache] [--no-progress] [--checkpoint-dir DIR] [--resume]",
                    experiments::EXPERIMENTS
                        .iter()
                        .map(|e| e.id)
                        .collect::<Vec<_>>()
                        .join("|")
                );
                return;
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }

    let len = if smoke {
        // CI-sized: exercises the full pipeline, not the statistics.
        RunLength {
            warmup: 1_000,
            measure: 10_000,
        }
    } else if quick {
        RunLength {
            warmup: 20_000,
            measure: 150_000,
        }
    } else {
        RunLength {
            warmup: 50_000,
            measure: 500_000,
        }
    };
    if resume && checkpoint_dir.is_none() {
        eprintln!("--resume requires --checkpoint-dir (the directory of the interrupted sweep)");
        std::process::exit(2);
    }
    let cache_dir = match &checkpoint_dir {
        Some(d) => Some(d.join("cache")),
        None => cache.then(|| out.join("cache")),
    };
    let mut sess = Session::new(len, cache_dir);
    if let Some(d) = &checkpoint_dir {
        sess.enable_warm_fork(d.join("warm"));
        match sess.attach_journal(&d.join("journal.log")) {
            Ok(done) => {
                if resume {
                    eprintln!("[resume: {done} cells already complete on the journal]");
                }
            }
            Err(e) => eprintln!("warning: sweep journal unavailable ({e}); continuing without"),
        }
    }

    // Resolve the experiment list up front so the parallel engine can
    // prewarm exactly the (configuration × benchmark) matrix the
    // regenerators will ask for.
    let mut selected: Vec<&'static experiments::Experiment> = Vec::new();
    for w in &which {
        if w == "all" {
            selected.extend(experiments::EXPERIMENTS.iter());
        } else if let Some(e) = experiments::find(w) {
            selected.push(e);
        } else {
            eprintln!("unknown experiment `{w}` (see --help)");
            std::process::exit(2);
        }
    }

    let t0 = std::time::Instant::now();
    if jobs > 1 {
        let cfgs: Vec<_> = selected.iter().flat_map(|e| (e.plan)()).collect();
        let cancel = CancelFlag::new();
        let lanes = lanes.unwrap_or_else(|| ss_core::default_lanes(cfgs.len()));
        let stats = exec::prewarm(&mut sess, &cfgs, jobs, lanes, &cancel, progress);
        eprintln!(
            "[prewarm: {} cells across {jobs} workers, {:.1}s, {:.1}M sim-cycles/s{}]",
            stats.cells,
            stats.seconds,
            stats.sim_cycles as f64 / stats.seconds.max(1e-9) / 1e6,
            if stats.failures > 0 {
                format!(", {} FAILED", stats.failures)
            } else {
                String::new()
            }
        );
    }

    let mut reports: Vec<Report> = Vec::new();
    let mut broken = 0u32;
    for e in &selected {
        match (e.run)(&mut sess) {
            Ok(r) => reports.push(r),
            Err(err) => {
                broken += 1;
                eprintln!("experiment {} failed: {err}", e.id);
            }
        }
    }
    for r in &reports {
        println!("{}", r.to_text());
        if let Err(e) = r.write_csvs(&out) {
            eprintln!("warning: could not write CSVs for {}: {e}", r.id);
        }
    }
    sess.sort_failures();
    for note in sess.failure_notes() {
        eprintln!("{note}");
    }
    eprintln!(
        "[{} simulations run, {} cache entries rejected, {} quarantined, {} warm forks, {} cell failures, {:.1}s, run length {}+{} µ-ops, CSVs in {}]",
        sess.simulated,
        sess.cache_rejected,
        sess.cache_quarantined,
        sess.warm_forked,
        sess.failures.len(),
        t0.elapsed().as_secs_f64(),
        sess.run_length().warmup,
        sess.run_length().measure,
        out.display()
    );
    if !sess.failures.is_empty() || broken > 0 {
        std::process::exit(1);
    }
}
