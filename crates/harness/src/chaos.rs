//! `experiments chaos`: a deterministic chaos-injection harness for the
//! serve layer.
//!
//! Spins up a real [`Server`] (in-process, `--allow-poison` armed) and
//! drives it through a **seeded fault schedule** — every event drawn
//! from one generator, so a failing run reproduces exactly from its
//! seed:
//!
//! * **clean** — a normal request; the reply must be byte-identical to
//!   the same request executed offline.
//! * **poison** — deliberately kills a worker thread; the supervisor
//!   must respawn it (`restarted` grows, `live` returns to full
//!   strength).
//! * **garbage** — malformed, truncated, oversized, or non-UTF-8
//!   protocol lines; every one must earn a typed `err` reply or a clean
//!   close, never a hang or a crash.
//! * **disconnect** — a client vanishes mid-run; the orphaned run must
//!   be cancelled and counted (`clients_vanished`).
//! * **deadline** — a run whose fault-plan-inflated length cannot finish
//!   inside its `deadline=<ms>` budget; the server must answer with the
//!   typed deadline error and stay available.
//!
//! After the schedule, the harness re-runs every clean request (cached,
//! still byte-identical), then exercises two more failure modes:
//! **SIGKILL-and-restart** of a child-process server whose results
//! cache repopulates from a sweep journal, and a **bounded graceful
//! drain** with a run still in flight.
//!
//! The event schedule and a full transcript are written to the working
//! directory (CI uploads them as artifacts on failure).

use crate::journal::SweepJournal;
use crate::serve::{stats_to_wire, ServeOptions, Server};
use crate::session::stats_to_cache_file;
use ss_core::RunRequest;
use ss_types::rng::SplitMix64;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Requests the clean events rotate through — small enough to finish in
/// tens of milliseconds, distinct enough to exercise separate cache
/// cells.
const CLEAN_POOL: [&str; 3] = [
    "src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w200m2000",
    "src=bench:mix_int@0xb5 cfg=Baseline_4 len=w200m2000",
    "src=bench:hash_probe@0xb5 cfg=SpecSched_4_Crit len=w200m2000",
];

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Clean(usize),
    Poison,
    Garbage(u64),
    Disconnect,
    Deadline,
}

impl Event {
    fn label(&self) -> String {
        match self {
            Event::Clean(i) => format!("clean#{i}"),
            Event::Poison => "poison".into(),
            Event::Garbage(sub) => format!("garbage@{sub:#x}"),
            Event::Disconnect => "disconnect".into(),
            Event::Deadline => "deadline".into(),
        }
    }
}

/// Draws the schedule and guarantees every fault family appears at
/// least once, whatever the seed.
fn build_schedule(seed: u64, events: usize) -> Vec<Event> {
    let mut rng = SplitMix64::new(seed);
    let draw = |rng: &mut SplitMix64| match rng.next_u64() % 5 {
        0 => Event::Clean((rng.next_u64() % CLEAN_POOL.len() as u64) as usize),
        1 => Event::Poison,
        2 => Event::Garbage(rng.next_u64()),
        3 => Event::Disconnect,
        _ => Event::Deadline,
    };
    let mut schedule: Vec<Event> = (0..events).map(|_| draw(&mut rng)).collect();
    let must_have = [
        Event::Clean(0),
        Event::Poison,
        Event::Garbage(seed),
        Event::Disconnect,
        Event::Deadline,
    ];
    for want in must_have {
        let covered = schedule
            .iter()
            .any(|e| std::mem::discriminant(e) == std::mem::discriminant(&want));
        if !covered {
            schedule.push(want);
        }
    }
    schedule
}

/// A line-oriented protocol client with a bounded read patience, so a
/// wedged server fails the harness instead of hanging it.
struct Client {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("connect {}: {e}", socket.display()))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Client { stream, reader })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("send `{line}`: {e}"))
    }

    fn send_raw(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.stream
            .write_all(bytes)
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("raw send: {e}"))
    }

    /// Reads one line; `Ok(None)` is a clean close.
    fn recv(&mut self) -> Result<Option<String>, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => Ok(Some(line.trim_end().to_string())),
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Skips `progress` lines until the request's terminal reply.
    fn terminal(&mut self, id: &str) -> Result<String, String> {
        loop {
            let Some(line) = self.recv()? else {
                return Err(format!("connection closed waiting on `{id}`"));
            };
            if line.starts_with(&format!("progress {id} ")) {
                continue;
            }
            return Ok(line);
        }
    }
}

/// Fetches and parses one `health` report off a fresh connection.
fn health(socket: &Path) -> Result<HashMap<String, u64>, String> {
    let mut c = Client::connect(socket)?;
    c.send("health")?;
    let Some(line) = c.recv()? else {
        return Err("connection closed on health".into());
    };
    let rest = line
        .strip_prefix("health ")
        .ok_or_else(|| format!("unexpected health reply `{line}`"))?;
    Ok(rest
        .split_whitespace()
        .filter_map(|t| t.split_once('='))
        .filter_map(|(k, v)| v.parse().ok().map(|n| (k.to_string(), n)))
        .collect())
}

/// Polls `health` until `pred` holds or the timeout expires.
fn wait_health(
    socket: &Path,
    what: &str,
    timeout: Duration,
    pred: impl Fn(&HashMap<String, u64>) -> bool,
) -> Result<HashMap<String, u64>, String> {
    let t0 = Instant::now();
    loop {
        let h = health(socket)?;
        if pred(&h) {
            return Ok(h);
        }
        if t0.elapsed() > timeout {
            return Err(format!("timed out waiting for {what}: last health {h:?}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The harness: owns the fault schedule, the transcript, and the
/// offline reference results.
struct Chaos {
    dir: PathBuf,
    socket: PathBuf,
    log: Vec<String>,
    /// Clean-pool request text → expected `done` payload, computed
    /// offline before the server ever runs.
    reference: HashMap<&'static str, String>,
    next_id: u64,
}

impl Chaos {
    fn log(&mut self, line: String) {
        eprintln!("[chaos] {line}");
        self.log.push(line);
    }

    fn fresh_id(&mut self, prefix: &str) -> String {
        self.next_id += 1;
        format!("{prefix}{}", self.next_id)
    }

    /// Clean request: served result must be byte-identical to offline.
    fn event_clean(&mut self, which: usize) -> Result<(), String> {
        let req = CLEAN_POOL[which % CLEAN_POOL.len()];
        let want = self.reference[req].clone();
        let id = self.fresh_id("c");
        let mut c = Client::connect(&self.socket)?;
        c.send(&format!("run {id} {req}"))?;
        let ack = c.terminal(&id)?;
        if !ack.starts_with(&format!("ack {id} ")) {
            return Err(format!("clean run `{req}`: expected ack, got `{ack}`"));
        }
        let done = c.terminal(&id)?;
        let got = done
            .strip_prefix(&format!("done {id} "))
            .ok_or_else(|| format!("clean run `{req}`: expected done, got `{done}`"))?;
        if got != want {
            return Err(format!(
                "clean run `{req}` diverged from offline:\n served: {got}\noffline: {want}"
            ));
        }
        self.log(format!("clean `{req}` byte-identical to offline"));
        Ok(())
    }

    /// Poison: a worker dies on purpose; the supervisor must restore the
    /// pool to full strength.
    fn event_poison(&mut self, workers: u64) -> Result<(), String> {
        let before = health(&self.socket)?;
        let id = self.fresh_id("p");
        let mut c = Client::connect(&self.socket)?;
        c.send(&format!("poison {id}"))?;
        // The ack comes from the reader thread, the err from the dying
        // worker — they race on the shared socket, so accept either
        // order.
        let mut replies = [c.terminal(&id)?, c.terminal(&id)?];
        replies.sort();
        if replies[0] != format!("ack {id} poison")
            || !replies[1].starts_with(&format!("err {id} worker poisoned"))
        {
            return Err(format!("poison: unexpected replies {replies:?}"));
        }
        let restarted_before = before.get("restarted").copied().unwrap_or(0);
        let h = wait_health(
            &self.socket,
            "worker respawn",
            Duration::from_secs(10),
            |h| {
                h.get("restarted").copied().unwrap_or(0) > restarted_before
                    && h.get("live").copied().unwrap_or(0) == workers
            },
        )?;
        self.log(format!(
            "poison: pool back to {workers} live workers (restarted={})",
            h["restarted"]
        ));
        Ok(())
    }

    /// Garbage: a seeded malformed line must earn a typed `err` (or a
    /// clean close for unframeable input), after which the server still
    /// answers `ping` from a fresh connection.
    fn event_garbage(&mut self, sub: u64) -> Result<(), String> {
        let mut rng = SplitMix64::new(sub);
        let kind = rng.next_u64() % 6;
        let (desc, payload): (String, Vec<u8>) = match kind {
            0 => ("unknown verb".into(), b"frobnicate the pipeline\n".to_vec()),
            1 => ("run without id".into(), b"run\n".to_vec()),
            2 => (
                "malformed request".into(),
                format!("run g src=bogus:{:x} cfg=Nope len=banana\n", rng.next_u64()).into_bytes(),
            ),
            3 => {
                let n = 70 * 1024 + (rng.next_u64() % 4096) as usize;
                (format!("oversized line ({n} bytes)"), {
                    let mut v = vec![b'x'; n];
                    v.push(b'\n');
                    v
                })
            }
            4 => (
                "non-UTF-8 bytes".into(),
                vec![b'r', b'u', b'n', b' ', 0xff, 0xfe, 0x80, b'\n'],
            ),
            _ => (
                "duplicate keys".into(),
                b"run g src=gen:1 src=gen:2 cfg=Baseline_4 len=w10m100\n".to_vec(),
            ),
        };
        let mut c = Client::connect(&self.socket)?;
        c.send_raw(&payload)?;
        match c.recv()? {
            Some(line) if line.starts_with("err ") => {
                self.log(format!("garbage ({desc}): typed reply `{line}`"));
            }
            Some(line) => return Err(format!("garbage ({desc}): non-err reply `{line}`")),
            None => self.log(format!("garbage ({desc}): connection closed cleanly")),
        }
        // Availability: a fresh client still gets a pong.
        let mut c2 = Client::connect(&self.socket)?;
        c2.send("ping")?;
        if c2.recv()? != Some("pong".into()) {
            return Err(format!("garbage ({desc}): server stopped answering ping"));
        }
        Ok(())
    }

    /// Disconnect: vanish mid-run; the orphaned run must be cancelled
    /// and the vanish counted.
    fn event_disconnect(&mut self) -> Result<(), String> {
        let before = health(&self.socket)?;
        let id = self.fresh_id("d");
        let mut c = Client::connect(&self.socket)?;
        c.send(&format!(
            "run {id} src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1000m40000000"
        ))?;
        let ack = c.terminal(&id)?;
        if !ack.starts_with(&format!("ack {id} queued")) {
            return Err(format!("disconnect: expected queued ack, got `{ack}`"));
        }
        // Wait for the run to actually start (first progress line), then
        // vanish without a word.
        let Some(line) = c.recv()? else {
            return Err("disconnect: server closed first".into());
        };
        if !line.starts_with(&format!("progress {id} ")) {
            return Err(format!("disconnect: expected progress, got `{line}`"));
        }
        drop(c);
        let vanished_before = before.get("clients_vanished").copied().unwrap_or(0);
        let h = wait_health(
            &self.socket,
            "orphan cancellation",
            Duration::from_secs(15),
            |h| {
                h.get("inflight").copied().unwrap_or(u64::MAX) == 0
                    && h.get("clients_vanished").copied().unwrap_or(0) > vanished_before
            },
        )?;
        self.log(format!(
            "disconnect: orphaned run cancelled, clients_vanished={}",
            h["clients_vanished"]
        ));
        Ok(())
    }

    /// Deadline: a replay-storm-inflated run that cannot finish in time
    /// must die to the typed deadline error, with committed evidence.
    fn event_deadline(&mut self) -> Result<(), String> {
        let id = self.fresh_id("t");
        let mut c = Client::connect(&self.socket)?;
        c.send(&format!(
            "run {id} src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1000m40000000 \
             deadline=30 faults=spike@200x50+8"
        ))?;
        let ack = c.terminal(&id)?;
        if !ack.starts_with(&format!("ack {id} queued")) {
            return Err(format!("deadline: expected queued ack, got `{ack}`"));
        }
        let reply = c.terminal(&id)?;
        let msg = reply
            .strip_prefix(&format!("err {id} "))
            .ok_or_else(|| format!("deadline: expected err, got `{reply}`"))?;
        if !msg.contains("deadline exceeded after") || !msg.contains("budget 30 ms") {
            return Err(format!("deadline: untyped error `{msg}`"));
        }
        self.log(format!("deadline: `{msg}`"));
        Ok(())
    }

    fn run_event(&mut self, ev: Event, workers: u64) -> Result<(), String> {
        match ev {
            Event::Clean(i) => self.event_clean(i),
            Event::Poison => self.event_poison(workers),
            Event::Garbage(sub) => self.event_garbage(sub),
            Event::Disconnect => self.event_disconnect(),
            Event::Deadline => self.event_deadline(),
        }
    }

    /// SIGKILL a child-process server and restart it over the same
    /// checkpoint: the journal-backed cache must answer `ack cached`
    /// both before the kill and after the restart.
    fn kill_restart_phase(&mut self) -> Result<(), String> {
        let exe = std::env::current_exe().map_err(|e| e.to_string())?;
        let ckpt = self.dir.join("ckpt");
        let cache = ckpt.join("cache");
        std::fs::create_dir_all(&cache).map_err(|e| e.to_string())?;
        let req = CLEAN_POOL[0];
        let key = "SpecSched_4|SpecSched_4|fp_compute|w200m2000";
        let stats = crate::serve::stats_from_wire(&self.reference[req])
            .ok_or("internal: reference stats unparseable")?;
        let mut journal =
            SweepJournal::open(&ckpt.join("journal.log")).map_err(|e| e.to_string())?;
        journal.record(key).map_err(|e| e.to_string())?;
        std::fs::write(
            cache.join("SpecSched_4__fp_compute__w200m2000.kv"),
            stats_to_cache_file(&stats, key),
        )
        .map_err(|e| e.to_string())?;
        let sock = self.dir.join("child.sock");
        let spawn = |sock: &Path| {
            std::process::Command::new(&exe)
                .args([
                    "serve",
                    "--socket",
                    &sock.display().to_string(),
                    "--jobs",
                    "1",
                    "--checkpoint-dir",
                    &ckpt.display().to_string(),
                ])
                .stderr(std::process::Stdio::null())
                .spawn()
                .map_err(|e| format!("spawn child server: {e}"))
        };
        let wait_up = |sock: &Path| -> Result<(), String> {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_secs(15) {
                if UnixStream::connect(sock).is_ok() {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err("child server never came up".into())
        };
        let want = self.reference[req].clone();
        let expect_cached = move |sock: &Path| -> Result<(), String> {
            let mut c = Client::connect(sock)?;
            c.send(&format!("run k1 {req}"))?;
            let ack = c.terminal("k1")?;
            if ack != "ack k1 cached" {
                return Err(format!("expected `ack k1 cached`, got `{ack}`"));
            }
            let done = c.terminal("k1")?;
            let got = done
                .strip_prefix("done k1 ")
                .ok_or_else(|| format!("expected done, got `{done}`"))?;
            if got != want {
                return Err("journal-repopulated result diverged from offline".into());
            }
            Ok(())
        };
        let mut child = spawn(&sock)?;
        wait_up(&sock)?;
        expect_cached(&sock)?;
        self.log("kill-restart: cold child served from journal-backed cache".into());
        child.kill().map_err(|e| e.to_string())?; // SIGKILL, no cleanup
        let _ = child.wait();
        let mut child = spawn(&sock)?;
        wait_up(&sock)?;
        expect_cached(&sock)?;
        self.log("kill-restart: post-SIGKILL restart served `ack cached` again".into());
        let mut c = Client::connect(&sock)?;
        c.send("shutdown")?;
        let _ = c.recv();
        let _ = child.wait();
        Ok(())
    }
}

/// `experiments chaos [--seed N] [--events N] [--dir DIR]`: runs the
/// full chaos schedule against a live server; exits 0 only if every
/// availability and byte-identity assertion holds.
pub fn run_chaos_cli(args: &[String]) -> i32 {
    let mut seed: u64 = 0xC4A05;
    let mut events: usize = 12;
    let mut dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| {
                        v.strip_prefix("0x")
                            .map_or_else(|| v.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
                    })
                    .expect("--seed needs a number")
            }
            "--events" => {
                events = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--events needs a count")
            }
            "--dir" => dir = Some(PathBuf::from(it.next().expect("--dir needs a directory"))),
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments chaos [--seed N] [--events N] [--dir DIR]\n\
                     \n\
                     flags (with defaults):\n\
                     \x20 --seed N     fault-schedule seed (0xc4a05)\n\
                     \x20 --events N   scheduled events before the fixed phases (12)\n\
                     \x20 --dir DIR    working directory for the socket, schedule,\n\
                     \x20              and transcript (temp dir)"
                );
                return 0;
            }
            other => {
                eprintln!("unknown chaos flag `{other}`");
                return 2;
            }
        }
    }
    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("ss-chaos-{}-{seed:x}", std::process::id()))
    });
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("chaos: cannot create {}: {e}", dir.display());
        return 1;
    }
    match run_chaos(seed, events, &dir) {
        Ok(log) => {
            let _ = std::fs::write(dir.join("chaos.log"), log.join("\n") + "\n");
            println!(
                "chaos PASS seed={seed:#x} events={events} (transcript in {})",
                dir.display()
            );
            0
        }
        Err((log, e)) => {
            let _ = std::fs::write(dir.join("chaos.log"), log.join("\n") + "\n");
            eprintln!("chaos FAIL seed={seed:#x}: {e}");
            eprintln!("chaos: schedule and transcript in {}", dir.display());
            1
        }
    }
}

/// The full harness run. Returns the transcript on success, or the
/// transcript so far plus the failure on error.
#[allow(clippy::result_large_err)]
fn run_chaos(seed: u64, events: usize, dir: &Path) -> Result<Vec<String>, (Vec<String>, String)> {
    const WORKERS: u64 = 2;
    let schedule = build_schedule(seed, events);
    let _ = std::fs::write(
        dir.join("schedule.txt"),
        schedule
            .iter()
            .map(Event::label)
            .collect::<Vec<_>>()
            .join("\n")
            + "\n",
    );
    let mut chaos = Chaos {
        dir: dir.to_path_buf(),
        socket: dir.join("chaos.sock"),
        log: Vec::new(),
        reference: HashMap::new(),
        next_id: 0,
    };
    let fail = |chaos: Chaos, e: String| (chaos.log, e);

    // Offline references first: the ground truth never touches the
    // server.
    for req in CLEAN_POOL {
        let parsed: RunRequest = match req.parse() {
            Ok(r) => r,
            Err(e) => return Err(fail(chaos, e.to_string())),
        };
        match parsed.execute() {
            Ok(out) => {
                chaos.reference.insert(req, stats_to_wire(&out.stats));
            }
            Err(e) => return Err(fail(chaos, format!("offline reference `{req}`: {e}"))),
        }
    }
    chaos.log(format!(
        "schedule: {} events at seed {seed:#x}",
        schedule.len()
    ));

    let server = match Server::start(ServeOptions {
        socket: chaos.socket.clone(),
        jobs: WORKERS as usize,
        queue_depth: 16,
        allow_poison: true,
        drain_grace_ms: 800,
        ..ServeOptions::default()
    }) {
        Ok(s) => s,
        Err(e) => return Err(fail(chaos, format!("server start: {e}"))),
    };

    for (i, ev) in schedule.iter().enumerate() {
        let label = ev.label();
        if let Err(e) = chaos.run_event(*ev, WORKERS) {
            server.shutdown();
            return Err(fail(chaos, format!("event {i} ({label}): {e}")));
        }
    }

    // Post-schedule availability: every clean request again, now served
    // from the memo and still byte-identical.
    for i in 0..CLEAN_POOL.len() {
        if let Err(e) = chaos.event_clean(i) {
            server.shutdown();
            return Err(fail(chaos, format!("post-schedule clean sweep: {e}")));
        }
    }
    match health(&chaos.socket) {
        Ok(h) => chaos.log(format!("final health: {h:?}")),
        Err(e) => {
            server.shutdown();
            return Err(fail(chaos, format!("final health: {e}")));
        }
    }

    // Bounded drain: shut down with a run still in flight that cannot
    // finish inside the grace; the 800 ms budget bounds the wait and the
    // straggler gets a typed cancellation. The client stays connected
    // throughout — dropping it would exercise orphan cleanup instead.
    let drain_client = (|| -> Result<Client, String> {
        let id = "drain1";
        let mut c = Client::connect(&chaos.socket)?;
        c.send(&format!(
            "run {id} src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w1000m400000000"
        ))?;
        let ack = c.terminal(id)?;
        if !ack.starts_with(&format!("ack {id} queued")) {
            return Err(format!("drain: expected queued ack, got `{ack}`"));
        }
        Ok(c)
    })();
    let mut drain_client = match drain_client {
        Ok(c) => c,
        Err(e) => {
            server.shutdown();
            return Err(fail(chaos, e));
        }
    };
    let t0 = Instant::now();
    server.shutdown();
    let drain = t0.elapsed();
    if drain > Duration::from_secs(10) {
        return Err(fail(
            chaos,
            format!("drain took {drain:?}, far beyond the 800 ms grace"),
        ));
    }
    match drain_client.terminal("drain1") {
        Ok(reply) if reply.starts_with("err drain1 ") => {
            chaos.log(format!(
                "drain: shutdown with a run in flight took {drain:?}, straggler got `{reply}`"
            ));
        }
        Ok(reply) => {
            return Err(fail(
                chaos,
                format!("drain: expected a typed err for the straggler, got `{reply}`"),
            ));
        }
        Err(e) => return Err(fail(chaos, format!("drain: {e}"))),
    }
    drop(drain_client);

    if let Err(e) = chaos.kill_restart_phase() {
        return Err(fail(chaos, format!("kill-restart phase: {e}")));
    }

    chaos.log("all chaos phases passed".into());
    Ok(chaos.log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_seeded_and_covers_every_fault_family() {
        let a = build_schedule(7, 12);
        let b = build_schedule(7, 12);
        let c = build_schedule(8, 12);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        for seed in 0..20u64 {
            let s = build_schedule(seed, 3);
            for want in [
                Event::Clean(0),
                Event::Poison,
                Event::Garbage(0),
                Event::Disconnect,
                Event::Deadline,
            ] {
                assert!(
                    s.iter()
                        .any(|e| std::mem::discriminant(e) == std::mem::discriminant(&want)),
                    "seed {seed}: missing {want:?} in {s:?}"
                );
            }
        }
    }
}
