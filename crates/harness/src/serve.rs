//! Simulation-as-a-service: the `experiments serve` resident batch
//! server.
//!
//! A long-lived process keeps hot state across requests — the memoized
//! results cache (pre-populated from a sweep's [`SweepJournal`] and
//! on-disk stats cache), a resident warm-[`Snapshot`] store, and the
//! per-(config, kernel) cost history — and executes [`RunRequest`]s
//! received over a Unix-domain socket, line by line. No async runtime,
//! no dependencies: a threaded accept loop, [`PrioQueue`] worker
//! dispatch, and plain `std::os::unix::net` sockets.
//!
//! # Protocol
//!
//! One UTF-8 line per message (at most 64 KiB). Client → server:
//!
//! ```text
//! run <id> [prio=interactive|normal|bulk] <request-text>
//! cancel <id>
//! stats
//! health
//! ping
//! poison <id>          # chaos hook, only with --allow-poison
//! shutdown
//! ```
//!
//! `<request-text>` is the canonical [`RunRequest`] encoding
//! (`src=bench:fp_compute@0xb5 cfg=SpecSched_4_Crit len=w1000m5000 …`,
//! optionally carrying a `deadline=<ms>` wall-clock budget);
//! `<id>` is a client-chosen token scoped to the connection. Server →
//! client:
//!
//! ```text
//! ack <id> queued prio=<class> | ack <id> cached | ack <id> cancel
//! progress <id> <done>/<total>
//! done <id> <k=v ...>              # wire-encoded SimStats
//! err <id> <message>               # typed SimError rendering
//! overloaded <id> depth=<d> limit=<l>
//! stats <k=v ...> | health <k=v ...> | pong | bye
//! ```
//!
//! # Scheduling policy
//!
//! Admitted requests land in one of three FIFO classes —
//! interactive > normal > bulk — selected by an explicit `prio=`
//! override or, absent one, by the exponential moving average of past
//! wall-clock cost for the request's `(config, kernel)` cell
//! ([`RunRequest::cost_key`], [`CostEma`], α = 1/4; unknown cells run
//! normal). Admission is bounded: when the queue holds `queue_depth`
//! requests the server answers `overloaded` immediately
//! ([`SimError::Overloaded`]) instead of queueing or blocking. Each
//! running request polls its [`CancelFlag`] between bounded chunks, so
//! `cancel` interrupts mid-simulation with a typed
//! [`SimError::Cancelled`].
//!
//! # Failure model
//!
//! The server assumes every component around a request can fail and
//! stays available through all of them (see DESIGN.md, "Service failure
//! model"):
//!
//! * **Worker panics** are contained per job (`catch_unwind`): the
//!   client gets a typed `err` line and the worker survives. A panic
//!   that kills a worker thread anyway (the `poison` chaos hook does
//!   this deliberately) is detected by a supervisor thread that joins
//!   the corpse and respawns a replacement, counting `workers_restarted`.
//! * **Slow or vanished clients** cannot wedge the server: connections
//!   carry read/write timeouts, a blocked or failed reply write marks
//!   the client vanished (`clients_vanished`), cancels its in-flight
//!   runs, and frees the reader thread. A client disconnect mid-run
//!   cancels that connection's orphaned runs the same way.
//! * **Runaway simulations** are bounded by the request's own
//!   `deadline=<ms>` budget, enforced between measurement chunks as
//!   [`SimError::DeadlineExceeded`] with committed-µ-op evidence.
//! * **Shutdown drains**: new work is refused, queued and running
//!   requests get `drain_grace_ms` to finish, then stragglers are
//!   cancelled with typed errors and the process exits.
//!
//! `health` reports the live counters behind all of this; the
//! `experiments chaos` harness drives every one of these paths against
//! a real server under a seeded fault schedule.

use crate::journal::SweepJournal;
use crate::session::{stats_from_cache_file, stats_from_kv, stats_to_kv, WORKLOAD_SEED};
use ss_core::{RunLength, RunRequest};
use ss_snapshot::Snapshot;
use ss_types::{
    Backoff, CancelFlag, ConfigSpec, CostEma, PrioQueue, Priority, PushError, SimError, SimStats,
};
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Longest accepted protocol line, in bytes. Anything larger is a
/// protocol error, not a memory commitment.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Resident worker threads executing requests.
    pub jobs: usize,
    /// Admission-control bound: queued (not yet running) requests.
    pub queue_depth: usize,
    /// Checkpoint directory of a prior sweep (`journal.log` + `cache/`)
    /// to pre-populate the results cache from.
    pub checkpoint_dir: Option<PathBuf>,
    /// EMA-predicted cost (wall ms) at or below which a cell classifies
    /// as interactive.
    pub interactive_max_ms: u64,
    /// EMA-predicted cost (wall ms) at or above which a cell classifies
    /// as bulk.
    pub bulk_min_ms: u64,
    /// Socket read timeout: how often an idle reader thread wakes to
    /// check shutdown and liveness (it does NOT disconnect idle
    /// clients).
    pub read_timeout_ms: u64,
    /// Socket write timeout: a reply blocked longer than this marks the
    /// client vanished and cancels its in-flight runs.
    pub write_timeout_ms: u64,
    /// Graceful-shutdown budget: queued and running requests get this
    /// long to finish before being cancelled with typed errors.
    pub drain_grace_ms: u64,
    /// Enables the `poison` protocol verb (deliberately kills a worker
    /// thread to exercise supervisor respawn). Chaos testing only.
    pub allow_poison: bool,
    /// Lane width for batched sweep execution ([`ss_core::lane`]):
    /// how many same-workload cells one worker steps through a single
    /// driver loop. `1` disables batching.
    pub lanes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: PathBuf::from("experiments.sock"),
            jobs: 2,
            queue_depth: 64,
            checkpoint_dir: None,
            interactive_max_ms: 200,
            bulk_min_ms: 2_000,
            read_timeout_ms: 1_000,
            write_timeout_ms: 5_000,
            drain_grace_ms: 5_000,
            allow_poison: false,
            lanes: 1,
        }
    }
}

impl ServeOptions {
    /// Rejects configurations that cannot run sanely — zero workers,
    /// absurd queue bounds, inverted cost thresholds, zero I/O timeouts
    /// — with a typed [`SimError::ConfigInvalid`] instead of silently
    /// clamping or wedging later.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |m: String| Err(SimError::ConfigInvalid(m));
        if self.jobs == 0 {
            return bad(
                "serve: --jobs must be ≥ 1 (a server with no workers hangs every request)".into(),
            );
        }
        if self.jobs > 1024 {
            return bad(format!("serve: --jobs {} is absurd (max 1024)", self.jobs));
        }
        if self.queue_depth == 0 {
            return bad("serve: --queue-depth must be ≥ 1 (0 rejects every request)".into());
        }
        if self.queue_depth > 65_536 {
            return bad(format!(
                "serve: --queue-depth {} is absurd (max 65536)",
                self.queue_depth
            ));
        }
        if self.interactive_max_ms >= self.bulk_min_ms {
            return bad(format!(
                "serve: --interactive-max-ms {} must be below --bulk-min-ms {}",
                self.interactive_max_ms, self.bulk_min_ms
            ));
        }
        if self.read_timeout_ms == 0 || self.write_timeout_ms == 0 {
            return bad(
                "serve: read/write timeouts must be ≥ 1 ms (0 busy-spins or blocks forever)".into(),
            );
        }
        // Lane width shares the core-side bounds (0 and absurd K are
        // both rejected before any worker exists to misuse them).
        ss_core::validate_lanes(self.lanes)?;
        Ok(())
    }
}

/// Why [`Server::start`] refused to come up.
#[derive(Debug)]
pub enum StartError {
    /// The [`ServeOptions`] failed [`ServeOptions::validate`].
    Config(SimError),
    /// Binding or preparing the socket failed.
    Io(std::io::Error),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::Config(e) => write!(f, "invalid server configuration: {e}"),
            StartError::Io(e) => write!(f, "socket setup failed: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

/// One client connection's shared write half plus liveness and the
/// registry of its in-flight request ids.
struct Conn {
    stream: Mutex<UnixStream>,
    /// Cleared on the first failed write (or disconnect); checked before
    /// every send so a vanished client costs at most one timeout.
    alive: AtomicBool,
    /// id → cancel flag for this connection's admitted, unfinished runs.
    inflight: Mutex<HashMap<String, Arc<CancelFlag>>>,
}

/// One admitted request travelling from the reader thread to a worker.
struct Job {
    /// Global admission sequence number (FIFO evidence).
    seq: u64,
    /// Client-chosen request id, echoed on every reply line.
    id: String,
    prio: Priority,
    /// Canonical request text — the results-cache key.
    canonical: String,
    req: RunRequest,
    cost_key: String,
    cancel: Arc<CancelFlag>,
    enqueued: Instant,
    out: Arc<Conn>,
}

/// What a worker pops off the queue.
enum Task {
    /// A real simulation request.
    Run(Box<Job>),
    /// Chaos hook: reply, then kill this worker thread with an
    /// uncontained panic so the supervisor has a corpse to find.
    Poison { id: String, out: Arc<Conn> },
}

/// Shared server state: everything resident across requests.
struct ServerState {
    opts: ServeOptions,
    queue: PrioQueue<Task>,
    /// canonical request text → statistics.
    results: Mutex<HashMap<String, SimStats>>,
    /// snapshot path → loaded, verified warm state.
    snapshots: Mutex<HashMap<String, Snapshot>>,
    ema: Mutex<CostEma>,
    /// admission seq → cancel flag for every unfinished run (the drain
    /// path's kill list).
    inflight: Mutex<HashMap<u64, Arc<CancelFlag>>>,
    admit_seq: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics_caught: AtomicU64,
    workers_restarted: AtomicU64,
    clients_vanished: AtomicU64,
    drain_cancelled: AtomicU64,
    live_workers: AtomicU64,
    busy_workers: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
    /// (class, admission seq) per executed job, in execution order.
    exec_log: Mutex<Vec<(Priority, u64)>>,
    /// Queue latency samples (µs) per class.
    latency_us: Mutex<[Vec<u64>; 3]>,
}

/// A running server: background accept loop, supervised worker pool,
/// and a monitor thread that respawns dead workers and runs the
/// shutdown drain. Dropping the handle does NOT stop the server; call
/// [`Server::shutdown`] (or send `shutdown` over the socket, then
/// [`Server::join`]).
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<std::thread::JoinHandle<()>>,
    monitor: Option<std::thread::JoinHandle<()>>,
    workers: Arc<Mutex<Vec<Option<std::thread::JoinHandle<()>>>>>,
}

impl Server {
    /// Validates the options, binds the socket, preloads the results
    /// cache, and starts the worker pool, its supervisor, and the
    /// accept loop.
    pub fn start(opts: ServeOptions) -> Result<Server, StartError> {
        opts.validate().map_err(StartError::Config)?;
        // A stale socket file from a dead server would fail the bind.
        let _ = std::fs::remove_file(&opts.socket);
        let listener = UnixListener::bind(&opts.socket).map_err(StartError::Io)?;
        let mut results = HashMap::new();
        if let Some(dir) = &opts.checkpoint_dir {
            let loaded = preload_results(dir, &mut results);
            eprintln!(
                "[serve: preloaded {loaded} cached results from {}]",
                dir.display()
            );
        }
        let state = Arc::new(ServerState {
            queue: PrioQueue::new(opts.queue_depth),
            results: Mutex::new(results),
            snapshots: Mutex::new(HashMap::new()),
            ema: Mutex::new(CostEma::new()),
            inflight: Mutex::new(HashMap::new()),
            admit_seq: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            workers_restarted: AtomicU64::new(0),
            clients_vanished: AtomicU64::new(0),
            drain_cancelled: AtomicU64::new(0),
            live_workers: AtomicU64::new(0),
            busy_workers: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            exec_log: Mutex::new(Vec::new()),
            latency_us: Mutex::new([Vec::new(), Vec::new(), Vec::new()]),
            opts,
        });
        let workers = Arc::new(Mutex::new(
            (0..state.opts.jobs)
                .map(|_| Some(spawn_worker(&state)))
                .collect::<Vec<_>>(),
        ));
        let monitor = {
            let st = Arc::clone(&state);
            let wk = Arc::clone(&workers);
            std::thread::spawn(move || monitor_loop(&st, &wk))
        };
        let accept = {
            let st = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(&st, listener))
        };
        Ok(Server {
            state,
            accept: Some(accept),
            monitor: Some(monitor),
            workers,
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.state.opts.socket
    }

    /// Requests executed to completion (success or typed failure).
    pub fn completed(&self) -> u64 {
        self.state.completed.load(Ordering::SeqCst)
    }

    /// Requests answered straight from the results cache.
    pub fn cache_hits(&self) -> u64 {
        self.state.cache_hits.load(Ordering::SeqCst)
    }

    /// Requests rejected by admission control.
    pub fn rejected(&self) -> u64 {
        self.state.rejected.load(Ordering::SeqCst)
    }

    /// Worker threads the supervisor has respawned after a fatal panic.
    pub fn workers_restarted(&self) -> u64 {
        self.state.workers_restarted.load(Ordering::SeqCst)
    }

    /// Panics contained inside a worker without losing the thread.
    pub fn panics_caught(&self) -> u64 {
        self.state.panics_caught.load(Ordering::SeqCst)
    }

    /// Clients that vanished mid-conversation (failed reply write or
    /// disconnect with runs still in flight).
    pub fn clients_vanished(&self) -> u64 {
        self.state.clients_vanished.load(Ordering::SeqCst)
    }

    /// Runs that exhausted their wall-clock deadline.
    pub fn deadline_exceeded(&self) -> u64 {
        self.state.deadline_exceeded.load(Ordering::SeqCst)
    }

    /// `(class, admission-sequence)` per executed request, in execution
    /// order — the soak test's FIFO-within-priority evidence.
    pub fn exec_log(&self) -> Vec<(Priority, u64)> {
        self.state.exec_log.lock().expect("exec log lock").clone()
    }

    /// Queue-latency samples in microseconds, indexed by
    /// [`Priority::index`].
    pub fn latency_us(&self) -> [Vec<u64>; 3] {
        self.state.latency_us.lock().expect("latency lock").clone()
    }

    /// Initiates shutdown (idempotent), drains with the configured
    /// grace, and joins every thread.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.state.opts.socket);
        self.join_threads();
        let _ = std::fs::remove_file(&self.state.opts.socket);
    }

    /// Waits for a socket-initiated `shutdown` to finish.
    pub fn join(mut self) {
        self.join_threads();
        let _ = std::fs::remove_file(&self.state.opts.socket);
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // The monitor exits only after the drain completes, and it is
        // the only thread that respawns workers — joining it first makes
        // the worker sweep below race-free.
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = {
            let mut slots = self.workers.lock().expect("worker slots lock");
            slots.iter_mut().filter_map(Option::take).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

fn spawn_worker(state: &Arc<ServerState>) -> std::thread::JoinHandle<()> {
    let st = Arc::clone(state);
    std::thread::spawn(move || worker_loop(&st))
}

/// Panic-safe gauge: increments on creation, decrements on drop — the
/// drop also runs during unwinding, so `live_workers`/`busy_workers`
/// stay truthful when a worker dies mid-job.
struct Gauge<'a>(&'a AtomicU64);

impl<'a> Gauge<'a> {
    fn new(counter: &'a AtomicU64) -> Gauge<'a> {
        counter.fetch_add(1, Ordering::SeqCst);
        Gauge(counter)
    }
}

impl Drop for Gauge<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Supervisor: respawns workers that died to an uncontained panic, and
/// runs the graceful drain once shutdown starts.
fn monitor_loop(
    state: &Arc<ServerState>,
    workers: &Arc<Mutex<Vec<Option<std::thread::JoinHandle<()>>>>>,
) {
    loop {
        let shutting_down = state.shutdown.load(Ordering::SeqCst);
        {
            let mut slots = workers.lock().expect("worker slots lock");
            for slot in slots.iter_mut() {
                let dead = matches!(slot, Some(h) if h.is_finished());
                if !dead {
                    continue;
                }
                if let Some(h) = slot.take() {
                    let _ = h.join();
                }
                // During shutdown workers exit normally (closed, empty
                // queue) — leave the slot empty instead of respawning.
                if !shutting_down {
                    state.workers_restarted.fetch_add(1, Ordering::SeqCst);
                    eprintln!("[serve: worker died, respawned]");
                    *slot = Some(spawn_worker(state));
                }
            }
        }
        if shutting_down {
            break;
        }
        std::thread::sleep(Duration::from_millis(15));
    }
    drain(state);
}

/// Graceful drain: give queued + running requests `drain_grace_ms` to
/// finish, then cancel the stragglers with typed errors.
fn drain(state: &Arc<ServerState>) {
    let grace = Duration::from_millis(state.opts.drain_grace_ms);
    let t0 = Instant::now();
    while t0.elapsed() < grace {
        if state.queue.depth() == 0 && state.busy_workers.load(Ordering::SeqCst) == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Grace expired. First pull everything still queued (so no worker
    // picks it up), then cancel whatever is actually running.
    for task in state.queue.drain() {
        if let Task::Run(job) = task {
            state.drain_cancelled.fetch_add(1, Ordering::SeqCst);
            state
                .inflight
                .lock()
                .expect("inflight lock")
                .remove(&job.seq);
            job.out
                .inflight
                .lock()
                .expect("conn inflight lock")
                .remove(&job.id);
            send(
                state,
                &job.out,
                &format!("err {} server shutting down (drain grace expired)", job.id),
            );
        }
    }
    let flags: Vec<Arc<CancelFlag>> = {
        let inflight = state.inflight.lock().expect("inflight lock");
        inflight.values().cloned().collect()
    };
    for f in flags {
        f.cancel();
    }
}

/// Pre-populates the results cache from a sweep checkpoint directory:
/// every journaled `{name}|{spec}|{bench}|w{W}m{M}` cell whose name is
/// the canonical spec (the standard sweep cells) and whose cache file
/// verifies becomes a served `src=bench:… cfg=… len=…` entry.
fn preload_results(dir: &Path, results: &mut HashMap<String, SimStats>) -> usize {
    let journal = match SweepJournal::open(&dir.join("journal.log")) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("[serve: no usable journal in {} ({e})]", dir.display());
            return 0;
        }
    };
    let cache = dir.join("cache");
    let mut loaded = 0;
    for key in journal.completed_cells() {
        let Some((canonical, cache_file)) = translate_journal_key(key) else {
            continue;
        };
        let path = cache.join(cache_file);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        match stats_from_cache_file(&path, &text, key) {
            Ok(stats) => {
                results.insert(canonical, stats);
                loaded += 1;
            }
            Err(e) => eprintln!("[serve: skipping {}: {e}]", path.display()),
        }
    }
    loaded
}

/// Maps a sweep-journal cell key to `(canonical request text, cache file
/// name)`. Only standard cells — display name identical to the canonical
/// [`ConfigSpec`] — translate; renamed test cells are skipped.
fn translate_journal_key(key: &str) -> Option<(String, String)> {
    let mut parts = key.split('|');
    let (name, spec, bench, len) = (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() || name != spec {
        return None;
    }
    let spec: ConfigSpec = spec.parse().ok()?;
    let len_parsed: RunLength = len.parse().ok()?;
    let canonical = RunRequest::bench(bench, WORKLOAD_SEED)
        .config(spec)
        .length(len_parsed)
        .to_string();
    Some((canonical, format!("{name}__{bench}__{len}.kv")))
}

/// Serializes statistics as one `k=v ...` wire line (the `done` payload).
pub fn stats_to_wire(s: &SimStats) -> String {
    stats_to_kv(s)
        .lines()
        .map(|l| l.replacen(' ', "=", 1))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses the `k=v ...` wire line back into statistics.
pub fn stats_from_wire(line: &str) -> Option<SimStats> {
    let kv: String = line
        .split_whitespace()
        .filter_map(|t| t.split_once('='))
        .map(|(k, v)| format!("{k} {v}\n"))
        .collect();
    stats_from_kv(&kv)
}

fn accept_loop(state: &Arc<ServerState>, listener: UnixListener) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                let st = Arc::clone(state);
                std::thread::spawn(move || handle_connection(&st, s));
            }
            Err(e) => {
                eprintln!("[serve: accept error: {e}]");
                break;
            }
        }
    }
}

/// Writes one protocol line, reporting success. The first failed write
/// (broken pipe, write timeout) flips the connection dead and counts
/// one vanished client; every later send is a cheap no-op.
fn send(state: &ServerState, conn: &Conn, line: &str) -> bool {
    let stream = conn.stream.lock().expect("socket writer lock");
    send_via(state, conn, stream, line)
}

/// [`send`] through a caller-held writer lock. The admission path takes
/// the lock *before* publishing a job to the queue and writes its `ack`
/// through this, so a worker finishing instantly (cached result, tiny
/// run) queues its `done` behind the `ack` instead of overtaking it.
fn send_via(
    state: &ServerState,
    conn: &Conn,
    mut stream: std::sync::MutexGuard<'_, UnixStream>,
    line: &str,
) -> bool {
    if !conn.alive.load(Ordering::SeqCst) {
        return false;
    }
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    let ok = stream.write_all(&buf).and_then(|()| stream.flush()).is_ok();
    drop(stream);
    if !ok && conn.alive.swap(false, Ordering::SeqCst) {
        state.clients_vanished.fetch_add(1, Ordering::SeqCst);
    }
    ok
}

/// One bounded line read off the socket.
enum ReadOutcome {
    Line(String),
    /// The read timeout elapsed with no complete line — poll liveness
    /// and try again.
    Timeout,
    /// The line exceeded [`MAX_LINE_BYTES`].
    TooLong,
    BadUtf8,
    /// EOF or a hard read error.
    Closed,
}

/// Bounded, timeout-aware line reader: accumulates bytes via
/// `fill_buf`/`consume` so a single over-long or never-terminated line
/// can neither allocate unboundedly nor block the thread past the read
/// timeout.
struct LineReader {
    inner: BufReader<UnixStream>,
    partial: Vec<u8>,
}

impl LineReader {
    fn new(stream: UnixStream) -> LineReader {
        LineReader {
            inner: BufReader::new(stream),
            partial: Vec::new(),
        }
    }

    fn next_line(&mut self) -> ReadOutcome {
        loop {
            let buf = match self.inner.fill_buf() {
                Ok(b) => b,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return ReadOutcome::Timeout;
                }
                Err(_) => return ReadOutcome::Closed,
            };
            if buf.is_empty() {
                return ReadOutcome::Closed;
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    self.partial.extend_from_slice(&buf[..i]);
                    self.inner.consume(i + 1);
                    let bytes = std::mem::take(&mut self.partial);
                    if bytes.len() > MAX_LINE_BYTES {
                        return ReadOutcome::TooLong;
                    }
                    match String::from_utf8(bytes) {
                        Ok(s) => return ReadOutcome::Line(s),
                        Err(_) => return ReadOutcome::BadUtf8,
                    }
                }
                None => {
                    let n = buf.len();
                    self.partial.extend_from_slice(buf);
                    self.inner.consume(n);
                    if self.partial.len() > MAX_LINE_BYTES {
                        return ReadOutcome::TooLong;
                    }
                }
            }
        }
    }
}

fn handle_connection(state: &Arc<ServerState>, stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(state.opts.read_timeout_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(state.opts.write_timeout_ms)));
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Conn {
        stream: Mutex::new(stream),
        alive: AtomicBool::new(true),
        inflight: Mutex::new(HashMap::new()),
    });
    let mut reader = LineReader::new(reader_half);
    loop {
        match reader.next_line() {
            ReadOutcome::Line(line) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
                match verb {
                    "ping" => {
                        send(state, &conn, "pong");
                    }
                    "stats" => {
                        send(state, &conn, &server_stats_line(state));
                    }
                    "health" => {
                        send(state, &conn, &health_line(state));
                    }
                    "shutdown" => {
                        send(state, &conn, "bye");
                        state.shutdown.store(true, Ordering::SeqCst);
                        state.queue.close();
                        let _ = UnixStream::connect(&state.opts.socket);
                        break;
                    }
                    "cancel" => {
                        let id = rest.trim();
                        let flag = conn
                            .inflight
                            .lock()
                            .expect("conn inflight lock")
                            .get(id)
                            .cloned();
                        match flag {
                            Some(flag) => {
                                // Writer lock before the flag flips: the
                                // worker's `err … cancelled` reply must
                                // queue behind this `ack`.
                                let stream = conn.stream.lock().expect("socket writer lock");
                                flag.cancel();
                                send_via(state, &conn, stream, &format!("ack {id} cancel"));
                            }
                            None => {
                                send(state, &conn, &format!("err {id} unknown request id"));
                            }
                        }
                    }
                    "poison" => handle_poison(state, &conn, rest),
                    "run" => handle_run(state, &conn, rest),
                    other => {
                        send(state, &conn, &format!("err - unknown verb `{other}`"));
                    }
                }
            }
            ReadOutcome::Timeout => {
                if !conn.alive.load(Ordering::SeqCst) {
                    break;
                }
                if state.shutdown.load(Ordering::SeqCst)
                    && conn.inflight.lock().expect("conn inflight lock").is_empty()
                {
                    break;
                }
            }
            ReadOutcome::TooLong => {
                send(
                    state,
                    &conn,
                    &format!("err - line exceeds {MAX_LINE_BYTES} bytes"),
                );
                break;
            }
            ReadOutcome::BadUtf8 => {
                send(state, &conn, "err - line is not valid UTF-8");
                break;
            }
            ReadOutcome::Closed => break,
        }
    }
    // Teardown: a client that left runs behind has vanished — cancel
    // its orphans so they stop burning a worker.
    let orphans: Vec<Arc<CancelFlag>> = {
        let mut inflight = conn.inflight.lock().expect("conn inflight lock");
        inflight.drain().map(|(_, f)| f).collect()
    };
    if orphans.is_empty() {
        conn.alive.store(false, Ordering::SeqCst);
    } else {
        for f in &orphans {
            f.cancel();
        }
        if conn.alive.swap(false, Ordering::SeqCst) {
            state.clients_vanished.fetch_add(1, Ordering::SeqCst);
        }
    }
}

fn server_stats_line(state: &ServerState) -> String {
    format!(
        "stats depth={} limit={} completed={} cached={} rejected={} cancelled={} failed={} results={} ema_cells={}",
        state.queue.depth(),
        state.queue.limit(),
        state.completed.load(Ordering::SeqCst),
        state.cache_hits.load(Ordering::SeqCst),
        state.rejected.load(Ordering::SeqCst),
        state.cancelled.load(Ordering::SeqCst),
        state.failed.load(Ordering::SeqCst),
        state.results.lock().expect("results lock").len(),
        state.ema.lock().expect("ema lock").len(),
    )
}

/// The `health` payload: liveness gauges and failure counters.
fn health_line(state: &ServerState) -> String {
    let [qi, qn, qb] = state.queue.depths();
    format!(
        "health uptime_ms={} workers={} live={} busy={} restarted={} qi={qi} qn={qn} qb={qb} \
         inflight={} completed={} cached={} rejected={} cancelled={} failed={} \
         deadline_exceeded={} panics_caught={} clients_vanished={} drain_cancelled={} results={}",
        state.started.elapsed().as_millis(),
        state.opts.jobs,
        state.live_workers.load(Ordering::SeqCst),
        state.busy_workers.load(Ordering::SeqCst),
        state.workers_restarted.load(Ordering::SeqCst),
        state.inflight.lock().expect("inflight lock").len(),
        state.completed.load(Ordering::SeqCst),
        state.cache_hits.load(Ordering::SeqCst),
        state.rejected.load(Ordering::SeqCst),
        state.cancelled.load(Ordering::SeqCst),
        state.failed.load(Ordering::SeqCst),
        state.deadline_exceeded.load(Ordering::SeqCst),
        state.panics_caught.load(Ordering::SeqCst),
        state.clients_vanished.load(Ordering::SeqCst),
        state.drain_cancelled.load(Ordering::SeqCst),
        state.results.lock().expect("results lock").len(),
    )
}

/// Admits a `poison <id>` chaos request (only with
/// [`ServeOptions::allow_poison`]): a worker will reply, then die to a
/// deliberate uncontained panic for the supervisor to clean up.
fn handle_poison(state: &Arc<ServerState>, conn: &Arc<Conn>, rest: &str) {
    let id = rest.trim();
    let id = if id.is_empty() { "-" } else { id };
    if !state.opts.allow_poison {
        send(
            state,
            conn,
            &format!("err {id} poison is disabled (start the server with --allow-poison)"),
        );
        return;
    }
    let task = Task::Poison {
        id: id.to_string(),
        out: Arc::clone(conn),
    };
    // Writer lock before the push (see `handle_run`): the poisoned
    // worker's dying `err` must not overtake this `ack`.
    let stream = conn.stream.lock().expect("socket writer lock");
    match state.queue.try_push(Priority::Interactive, task) {
        Ok(()) => {
            send_via(state, conn, stream, &format!("ack {id} poison"));
        }
        Err((_, PushError::Overloaded { depth, limit })) => {
            state.rejected.fetch_add(1, Ordering::SeqCst);
            send_via(
                state,
                conn,
                stream,
                &format!("overloaded {id} depth={depth} limit={limit}"),
            );
        }
        Err((_, PushError::Closed)) => {
            send_via(
                state,
                conn,
                stream,
                &format!("err {id} server is shutting down"),
            );
        }
    }
}

/// Parses and admits one `run` line:
/// `<id> [prio=<class>] <request-text>`.
fn handle_run(state: &Arc<ServerState>, conn: &Arc<Conn>, rest: &str) {
    let (id, rest) = rest.trim().split_once(' ').unwrap_or((rest.trim(), ""));
    if id.is_empty() {
        send(state, conn, "err - run needs `<id> <request>`");
        return;
    }
    let (explicit_prio, req_text) = match rest.strip_prefix("prio=") {
        Some(tail) => {
            let (tag, req) = tail.split_once(' ').unwrap_or((tail, ""));
            match tag.parse::<Priority>() {
                Ok(p) => (Some(p), req),
                Err(e) => {
                    send(state, conn, &format!("err {id} {e}"));
                    return;
                }
            }
        }
        None => (None, rest),
    };
    let mut req = match req_text.parse::<RunRequest>() {
        Ok(r) => r,
        Err(e) => {
            // Through `SimError`, so a library-only `<…>` marker comes
            // back as the typed ConfigInvalid that names the marker.
            send(state, conn, &format!("err {id} {}", SimError::from(e)));
            return;
        }
    };
    let canonical = req.to_string();
    if let Some(stats) = state
        .results
        .lock()
        .expect("results lock")
        .get(&canonical)
        .cloned()
    {
        state.cache_hits.fetch_add(1, Ordering::SeqCst);
        send(state, conn, &format!("ack {id} cached"));
        send(state, conn, &format!("done {id} {}", stats_to_wire(&stats)));
        return;
    }
    if conn
        .inflight
        .lock()
        .expect("conn inflight lock")
        .contains_key(id)
    {
        send(
            state,
            conn,
            &format!("err {id} request id already in flight"),
        );
        return;
    }
    // Satisfy disk-snapshot forks from the resident warm-state store.
    if let Some(path) = req.snapshot_path().map(str::to_string) {
        let hit = state
            .snapshots
            .lock()
            .expect("snapshot lock")
            .get(&path)
            .cloned();
        let snap = match hit {
            Some(s) => Some(s),
            None => match ss_snapshot::read_verified(Path::new(&path)) {
                Ok(s) => {
                    state
                        .snapshots
                        .lock()
                        .expect("snapshot lock")
                        .insert(path.clone(), s.clone());
                    Some(s)
                }
                // Leave the path in place: execution reports the typed
                // SnapshotCorrupt / io error with full context.
                Err(_) => None,
            },
        };
        if let Some(s) = snap {
            req = req.from_snapshot(s).checkpoint_note(&path);
        }
    }
    let cost_key = req.cost_key();
    let prio = explicit_prio.unwrap_or_else(|| {
        state.ema.lock().expect("ema lock").classify(
            &cost_key,
            state.opts.interactive_max_ms,
            state.opts.bulk_min_ms,
        )
    });
    let cancel = Arc::new(CancelFlag::new());
    let seq = state.admit_seq.fetch_add(1, Ordering::SeqCst);
    let job = Box::new(Job {
        seq,
        id: id.to_string(),
        prio,
        canonical,
        req,
        cost_key,
        cancel: Arc::clone(&cancel),
        enqueued: Instant::now(),
        out: Arc::clone(conn),
    });
    // Register before pushing: a fast worker must find the entries to
    // remove, never the other way around.
    conn.inflight
        .lock()
        .expect("conn inflight lock")
        .insert(id.to_string(), Arc::clone(&cancel));
    state
        .inflight
        .lock()
        .expect("inflight lock")
        .insert(seq, cancel);
    // Take the writer lock before the push: the instant the job is
    // visible a worker may finish it, and its `done` must not reach the
    // socket ahead of our `ack`.
    let stream = conn.stream.lock().expect("socket writer lock");
    match state.queue.try_push(prio, Task::Run(job)) {
        Ok(()) => {
            send_via(
                state,
                conn,
                stream,
                &format!("ack {id} queued prio={}", prio.tag()),
            );
        }
        Err((_, e)) => {
            // Nothing was published, so no worker can race us: release
            // the writer lock before touching the inflight registries
            // (workers lock registry-then-stream; never invert that).
            drop(stream);
            conn.inflight.lock().expect("conn inflight lock").remove(id);
            state.inflight.lock().expect("inflight lock").remove(&seq);
            match e {
                PushError::Overloaded { depth, limit } => {
                    state.rejected.fetch_add(1, Ordering::SeqCst);
                    send(
                        state,
                        conn,
                        &format!("overloaded {id} depth={depth} limit={limit}"),
                    );
                }
                PushError::Closed => {
                    send(state, conn, &format!("err {id} server is shutting down"));
                }
            }
        }
    }
}

fn worker_loop(state: &Arc<ServerState>) {
    let _live = Gauge::new(&state.live_workers);
    while let Some(task) = state.queue.pop() {
        match task {
            Task::Poison { id, out } => {
                send(
                    state,
                    &out,
                    &format!("err {id} worker poisoned (deliberate chaos fault)"),
                );
                // Escapes every catch_unwind on purpose: the monitor
                // must find a genuinely dead thread to respawn.
                panic!("chaos: worker deliberately poisoned");
            }
            Task::Run(job) => run_job(state, *job),
        }
    }
}

/// Executes one admitted request with panic containment: a panic inside
/// the simulator becomes a typed `err` reply and a counter bump, never
/// a lost worker.
fn run_job(state: &Arc<ServerState>, job: Job) {
    let _busy = Gauge::new(&state.busy_workers);
    let wait_us = job.enqueued.elapsed().as_micros() as u64;
    {
        let mut log = state.exec_log.lock().expect("exec log lock");
        log.push((job.prio, job.seq));
    }
    state.latency_us.lock().expect("latency lock")[job.prio.index()].push(wait_us);
    let Job {
        seq,
        id,
        canonical,
        req,
        cost_key,
        cancel,
        out,
        ..
    } = job;
    let total = req
        .run_length()
        .map(|l| l.warmup + l.measure)
        .unwrap_or(u64::MAX);
    // ~8 progress lines per run, chunk floor so cancel stays snappy.
    let chunk = (total / 8).clamp(1_000, 250_000);
    let started = Instant::now();
    let progress_cancel = Arc::clone(&cancel);
    let result = catch_unwind(AssertUnwindSafe(|| {
        req.execute_observed(&cancel, chunk, |done, total| {
            // A reply the client will never read is a run nobody wants:
            // a failed progress write cancels the request.
            if !send(state, &out, &format!("progress {id} {done}/{total}")) {
                progress_cancel.cancel();
            }
        })
    }));
    state.inflight.lock().expect("inflight lock").remove(&seq);
    out.inflight.lock().expect("conn inflight lock").remove(&id);
    state.completed.fetch_add(1, Ordering::SeqCst);
    match result {
        Ok(Ok(outcome)) => {
            let ms = started.elapsed().as_millis() as u64;
            state
                .ema
                .lock()
                .expect("ema lock")
                .observe(&cost_key, ms.max(1));
            state
                .results
                .lock()
                .expect("results lock")
                .insert(canonical, outcome.stats.clone());
            send(
                state,
                &out,
                &format!("done {id} {}", stats_to_wire(&outcome.stats)),
            );
        }
        Ok(Err(e)) => {
            match e {
                SimError::Cancelled { .. } => {
                    state.cancelled.fetch_add(1, Ordering::SeqCst);
                }
                SimError::DeadlineExceeded { .. } => {
                    state.deadline_exceeded.fetch_add(1, Ordering::SeqCst);
                }
                _ => {
                    state.failed.fetch_add(1, Ordering::SeqCst);
                }
            }
            send(state, &out, &format!("err {id} {e}"));
        }
        Err(_panic) => {
            state.panics_caught.fetch_add(1, Ordering::SeqCst);
            state.failed.fetch_add(1, Ordering::SeqCst);
            send(
                state,
                &out,
                &format!("err {id} internal: worker panicked executing the request (pool intact)"),
            );
        }
    }
}

// ---------------------------------------------------------------------
// CLI entry points: `experiments serve`, `experiments client`,
// `experiments run`.
// ---------------------------------------------------------------------

/// `experiments serve --socket PATH [flags]`: runs the server until a
/// client sends `shutdown` (or the process is killed).
pub fn run_serve_cli(args: &[String]) -> i32 {
    let mut opts = ServeOptions {
        jobs: ss_types::exec::default_jobs(),
        ..ServeOptions::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => opts.socket = PathBuf::from(it.next().expect("--socket needs a path")),
            "--jobs" | "-j" => {
                opts.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a worker count")
            }
            "--queue-depth" => {
                opts.queue_depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queue-depth needs a count")
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(PathBuf::from(
                    it.next().expect("--checkpoint-dir needs a directory"),
                ))
            }
            "--interactive-max-ms" => {
                opts.interactive_max_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--interactive-max-ms needs a millisecond count")
            }
            "--bulk-min-ms" => {
                opts.bulk_min_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--bulk-min-ms needs a millisecond count")
            }
            "--read-timeout-ms" => {
                opts.read_timeout_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--read-timeout-ms needs a millisecond count")
            }
            "--write-timeout-ms" => {
                opts.write_timeout_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--write-timeout-ms needs a millisecond count")
            }
            "--drain-grace-ms" => {
                opts.drain_grace_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--drain-grace-ms needs a millisecond count")
            }
            "--allow-poison" => opts.allow_poison = true,
            "--lanes" => {
                opts.lanes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--lanes needs a lane count")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments serve --socket PATH [flags]\n\
                     \n\
                     flags (with defaults):\n\
                     \x20 --socket PATH            socket path (experiments.sock)\n\
                     \x20 --jobs N                 worker threads (cores - 1)\n\
                     \x20 --queue-depth D          admission bound (64)\n\
                     \x20 --checkpoint-dir DIR     preload results from a sweep checkpoint\n\
                     \x20 --interactive-max-ms MS  interactive cost ceiling (200)\n\
                     \x20 --bulk-min-ms MS         bulk cost floor (2000)\n\
                     \x20 --read-timeout-ms MS     reader liveness poll (1000)\n\
                     \x20 --write-timeout-ms MS    reply-write bound before a client\n\
                     \x20                          counts as vanished (5000)\n\
                     \x20 --drain-grace-ms MS      graceful-shutdown budget (5000)\n\
                     \x20 --allow-poison           enable the `poison` chaos verb (off)\n\
                     \x20 --lanes K                lane width for batched sweeps (1 = off)"
                );
                return 0;
            }
            other => {
                eprintln!("unknown serve flag `{other}`");
                return 2;
            }
        }
    }
    let server = match Server::start(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: could not start: {e}");
            return 1;
        }
    };
    eprintln!(
        "[serve: listening on {} with {} workers, queue depth {}]",
        server.socket().display(),
        server.state.opts.jobs,
        server.state.opts.queue_depth
    );
    server.join();
    eprintln!("[serve: shut down cleanly]");
    0
}

/// One client attempt's verdict.
enum Attempt {
    /// Terminal outcome: exit with this code, no retry.
    Exit(i32),
    /// Transient failure worth a backoff-delayed retry.
    Retry(String),
    /// Hard failure: no retry.
    Fail(String),
}

/// `experiments client --socket PATH [flags]`: one-shot client with
/// seeded-backoff retries. Streams every server line to stdout; exits 0
/// on `done` (or acknowledged control message), 1 on `err`. Connect
/// failures and `overloaded` rejections retry with jittered exponential
/// backoff — safe because completed runs are memoized server-side and
/// answered `ack cached`, so a retried request never re-executes.
pub fn run_client_cli(args: &[String]) -> i32 {
    let mut socket = PathBuf::from("experiments.sock");
    let mut id = String::from("r1");
    let mut prio: Option<String> = None;
    let mut req: Option<String> = None;
    let mut cancel_after: Option<u32> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut retries: u32 = 3;
    let mut retry_base_ms: u64 = 100;
    let mut retry_cap_ms: u64 = 5_000;
    let mut retry_seed: u64 = 0x5EED;
    let mut timeout_ms: u64 = 0;
    let mut want_stats = false;
    let mut want_health = false;
    let mut want_shutdown = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = PathBuf::from(it.next().expect("--socket needs a path")),
            "--id" => id = it.next().expect("--id needs a token").clone(),
            "--prio" => prio = Some(it.next().expect("--prio needs a class").clone()),
            "--req" => req = Some(it.next().expect("--req needs request text").clone()),
            "--cancel-after" => {
                cancel_after = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--cancel-after needs a progress-line count"),
                )
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--deadline-ms needs a millisecond count"),
                )
            }
            "--retries" => {
                retries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--retries needs a count")
            }
            "--retry-base-ms" => {
                retry_base_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--retry-base-ms needs a millisecond count")
            }
            "--retry-cap-ms" => {
                retry_cap_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--retry-cap-ms needs a millisecond count")
            }
            "--retry-seed" => {
                retry_seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--retry-seed needs a number")
            }
            "--timeout-ms" => {
                timeout_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--timeout-ms needs a millisecond count")
            }
            "--stats" => want_stats = true,
            "--health" => want_health = true,
            "--shutdown" => want_shutdown = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments client --socket PATH [flags]\n\
                     \n\
                     flags (with defaults):\n\
                     \x20 --req 'src=... cfg=... len=...'  request to run\n\
                     \x20 --id ID                  request id token (r1)\n\
                     \x20 --prio P                 interactive|normal|bulk (server EMA)\n\
                     \x20 --deadline-ms MS         arm a wall-clock deadline on the request\n\
                     \x20 --cancel-after N         cancel after N progress lines\n\
                     \x20 --retries N              retry budget for connect/overloaded (3)\n\
                     \x20 --retry-base-ms MS       backoff base delay (100)\n\
                     \x20 --retry-cap-ms MS        backoff delay cap (5000)\n\
                     \x20 --retry-seed N           backoff jitter seed (0x5EED)\n\
                     \x20 --timeout-ms MS          overall wall budget, 0 = unlimited (0)\n\
                     \x20 --stats | --health | --shutdown   control verbs"
                );
                return 0;
            }
            other => {
                eprintln!("unknown client flag `{other}`");
                return 2;
            }
        }
    }
    // Arm the deadline by round-tripping through the typed request, so
    // a malformed request fails here, not at the server.
    if let Some(ms) = deadline_ms {
        match req.as_deref().map(str::parse::<RunRequest>) {
            Some(Ok(parsed)) => req = Some(parsed.deadline_ms(ms).to_string()),
            Some(Err(e)) => {
                eprintln!("client: {e}");
                return 2;
            }
            None => {
                eprintln!("client: --deadline-ms needs --req");
                return 2;
            }
        }
    }
    let overall = Instant::now();
    let out_of_budget =
        |overall: &Instant| timeout_ms > 0 && overall.elapsed().as_millis() as u64 >= timeout_ms;
    let mut backoff = Backoff::new(retry_base_ms, retry_cap_ms, retry_seed);
    let mut attempt = 0u32;
    loop {
        let verdict = client_attempt(
            &socket,
            &id,
            prio.as_deref(),
            req.as_deref(),
            cancel_after,
            want_stats,
            want_health,
            want_shutdown,
            timeout_ms,
            &overall,
        );
        match verdict {
            Attempt::Exit(code) => return code,
            Attempt::Fail(reason) => {
                eprintln!("client: {reason}");
                return 1;
            }
            Attempt::Retry(reason) => {
                if attempt >= retries {
                    eprintln!("client: giving up after {attempt} retries ({reason})");
                    return 1;
                }
                attempt += 1;
                let delay = backoff.next_delay_ms();
                if out_of_budget(&overall) {
                    eprintln!("client: --timeout-ms budget exhausted ({reason})");
                    return 1;
                }
                eprintln!("client: {reason}; retry {attempt}/{retries} in {delay} ms");
                std::thread::sleep(Duration::from_millis(delay));
            }
        }
    }
}

/// One connect-send-read transaction against the server.
#[allow(clippy::too_many_arguments)]
fn client_attempt(
    socket: &Path,
    id: &str,
    prio: Option<&str>,
    req: Option<&str>,
    cancel_after: Option<u32>,
    want_stats: bool,
    want_health: bool,
    want_shutdown: bool,
    timeout_ms: u64,
    overall: &Instant,
) -> Attempt {
    let mut stream = match UnixStream::connect(socket) {
        Ok(s) => s,
        Err(e) => {
            return Attempt::Retry(format!("cannot connect to {}: {e}", socket.display()));
        }
    };
    if timeout_ms > 0 {
        // Poll in slices so the overall budget is enforced even when
        // the server stops talking mid-conversation.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    }
    let mut reader = match stream.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(e) => return Attempt::Fail(e.to_string()),
    };
    let send_line = |s: &mut UnixStream, line: &str| -> bool {
        s.write_all(line.as_bytes()).is_ok() && s.write_all(b"\n").is_ok() && s.flush().is_ok()
    };
    let out_of_budget =
        |overall: &Instant| timeout_ms > 0 && overall.elapsed().as_millis() as u64 >= timeout_ms;
    let read_line = |reader: &mut BufReader<UnixStream>| -> Result<Option<String>, Attempt> {
        let mut line = String::new();
        loop {
            if out_of_budget(overall) {
                return Err(Attempt::Fail("--timeout-ms budget exhausted".into()));
            }
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(None),
                Ok(_) => return Ok(Some(line.trim_end().to_string())),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(e) => return Err(Attempt::Retry(format!("read failed: {e}"))),
            }
        }
    };
    if want_stats || want_health || want_shutdown {
        let verb = if want_shutdown {
            "shutdown"
        } else if want_health {
            "health"
        } else {
            "stats"
        };
        if !send_line(&mut stream, verb) {
            return Attempt::Retry("send failed".into());
        }
        return match read_line(&mut reader) {
            Ok(Some(line)) => {
                println!("{line}");
                Attempt::Exit(0)
            }
            Ok(None) => Attempt::Retry("connection closed before a reply".into()),
            Err(a) => a,
        };
    }
    let Some(req) = req else {
        eprintln!("client: --req (or --stats/--health/--shutdown) is required");
        return Attempt::Exit(2);
    };
    let line = match prio {
        Some(p) => format!("run {id} prio={p} {req}"),
        None => format!("run {id} {req}"),
    };
    if !send_line(&mut stream, &line) {
        return Attempt::Retry("send failed".into());
    }
    let mut progress_seen = 0u32;
    loop {
        let line = match read_line(&mut reader) {
            Ok(Some(l)) => l,
            Ok(None) => {
                return Attempt::Retry("connection closed before a terminal reply".into());
            }
            Err(a) => return a,
        };
        println!("{line}");
        let verb = line.split(' ').next().unwrap_or("");
        match verb {
            "done" => return Attempt::Exit(0),
            "err" => return Attempt::Exit(1),
            // Admission-control rejection is the retryable overload
            // signal: back off and try again.
            "overloaded" => return Attempt::Retry("server overloaded".into()),
            "progress" => {
                progress_seen += 1;
                if cancel_after == Some(progress_seen)
                    && !send_line(&mut stream, &format!("cancel {id}"))
                {
                    return Attempt::Fail("cancel send failed".into());
                }
            }
            _ => {}
        }
    }
}

/// `experiments run --req TEXT`: executes one wire-encoded request
/// offline (no server) and prints the identical `done <k=v ...>` line —
/// the reference output the CI smoke test diffs server replies against.
pub fn run_offline_cli(args: &[String]) -> i32 {
    let mut req: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--req" => req = Some(it.next().expect("--req needs request text").clone()),
            "--help" | "-h" => {
                eprintln!("usage: experiments run --req 'src=... cfg=... len=...'");
                return 0;
            }
            other => {
                eprintln!("unknown run flag `{other}`");
                return 2;
            }
        }
    }
    let Some(text) = req else {
        eprintln!("run: --req is required");
        return 2;
    };
    let parsed = match text.parse::<RunRequest>() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run: {}", SimError::from(e));
            return 2;
        }
    };
    let id = "offline";
    match parsed.execute() {
        Ok(outcome) => {
            println!("done {id} {}", stats_to_wire(&outcome.stats));
            0
        }
        Err(e) => {
            println!("err {id} {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_stats_round_trip_preserves_all_fields() {
        let mut s = SimStats {
            cycles: 12_345,
            committed_uops: 678,
            ..Default::default()
        };
        s.l1d.misses = 9;
        s.l2.accesses = 11;
        let line = stats_to_wire(&s);
        assert!(line.contains("cycles=12345"), "{line}");
        let back = stats_from_wire(&line).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn journal_keys_translate_only_for_standard_cells() {
        let (canonical, file) =
            translate_journal_key("SpecSched_4_Crit|SpecSched_4_Crit|fp_compute|w1000m5000")
                .expect("standard cell translates");
        assert_eq!(
            canonical,
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4_Crit len=w1000m5000"
        );
        assert_eq!(file, "SpecSched_4_Crit__fp_compute__w1000m5000.kv");
        // Renamed test cells and malformed keys are skipped, not errors.
        assert!(translate_journal_key("odd-name|SpecSched_4|fp_compute|w1m2").is_none());
        assert!(translate_journal_key("SpecSched_4|SpecSched_4|fp_compute").is_none());
        assert!(translate_journal_key("Bogus_4|Bogus_4|fp_compute|w1m2").is_none());
    }

    #[test]
    fn invalid_options_are_rejected_before_binding() {
        let cases = [
            ServeOptions {
                jobs: 0,
                ..ServeOptions::default()
            },
            ServeOptions {
                queue_depth: 0,
                ..ServeOptions::default()
            },
            ServeOptions {
                queue_depth: 1 << 20,
                ..ServeOptions::default()
            },
            ServeOptions {
                interactive_max_ms: 5_000,
                bulk_min_ms: 100,
                ..ServeOptions::default()
            },
            ServeOptions {
                write_timeout_ms: 0,
                ..ServeOptions::default()
            },
        ];
        for opts in cases {
            let err = opts.validate().expect_err("must be rejected");
            assert!(
                matches!(err, SimError::ConfigInvalid(_)),
                "expected ConfigInvalid, got {err}"
            );
            // Server::start surfaces the same error without binding.
            match Server::start(opts) {
                Err(StartError::Config(_)) => {}
                other => panic!(
                    "expected StartError::Config, got {other:?}",
                    other = other.map(|_| ())
                ),
            }
        }
        assert!(ServeOptions::default().validate().is_ok());
    }

    #[test]
    fn server_answers_ping_run_and_stats_over_the_socket() {
        let dir = std::env::temp_dir().join(format!("ss-serve-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let server = Server::start(ServeOptions {
            socket: dir.join("unit.sock"),
            jobs: 1,
            queue_depth: 4,
            ..ServeOptions::default()
        })
        .expect("server starts");
        let mut c = UnixStream::connect(server.socket()).unwrap();
        c.write_all(b"ping\nrun a src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w200m2000\n")
            .unwrap();
        let mut lines = BufReader::new(c.try_clone().unwrap()).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "pong");
        assert_eq!(lines.next().unwrap().unwrap(), "ack a queued prio=normal");
        let done = loop {
            let line = lines.next().unwrap().unwrap();
            if let Some(rest) = line.strip_prefix("done a ") {
                break rest.to_string();
            }
            assert!(line.starts_with("progress a "), "unexpected line {line}");
        };
        let stats = stats_from_wire(&done).expect("wire stats parse");
        assert!(stats.committed_uops >= 2_000);
        // Same request again: served from the results memo.
        c.write_all(b"run b src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w200m2000\n")
            .unwrap();
        assert_eq!(lines.next().unwrap().unwrap(), "ack b cached");
        let cached = lines.next().unwrap().unwrap();
        assert_eq!(cached.strip_prefix("done b ").unwrap(), done);
        // Health reports a fully alive pool and the completed run.
        c.write_all(b"health\n").unwrap();
        let health = lines.next().unwrap().unwrap();
        assert!(health.starts_with("health uptime_ms="), "{health}");
        assert!(health.contains("workers=1"), "{health}");
        assert!(health.contains(" live=1"), "{health}");
        assert!(health.contains(" restarted=0"), "{health}");
        assert!(health.contains(" completed=1"), "{health}");
        // Poison is refused unless explicitly enabled.
        c.write_all(b"poison p1\n").unwrap();
        let refused = lines.next().unwrap().unwrap();
        assert!(
            refused.starts_with("err p1 poison is disabled"),
            "{refused}"
        );
        drop(c);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
