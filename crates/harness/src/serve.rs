//! Simulation-as-a-service: the `experiments serve` resident batch
//! server.
//!
//! A long-lived process keeps hot state across requests — the memoized
//! results cache (pre-populated from a sweep's [`SweepJournal`] and
//! on-disk stats cache), a resident warm-[`Snapshot`] store, and the
//! per-(config, kernel) cost history — and executes [`RunRequest`]s
//! received over a Unix-domain socket, line by line. No async runtime,
//! no dependencies: a threaded accept loop, [`PrioQueue`] worker
//! dispatch, and plain `std::os::unix::net` sockets.
//!
//! # Protocol
//!
//! One UTF-8 line per message. Client → server:
//!
//! ```text
//! run <id> [prio=interactive|normal|bulk] <request-text>
//! cancel <id>
//! stats
//! ping
//! shutdown
//! ```
//!
//! `<request-text>` is the canonical [`RunRequest`] encoding
//! (`src=bench:fp_compute@0xb5 cfg=SpecSched_4_Crit len=w1000m5000 …`);
//! `<id>` is a client-chosen token scoped to the connection. Server →
//! client:
//!
//! ```text
//! ack <id> queued prio=<class> | ack <id> cached | ack <id> cancel
//! progress <id> <done>/<total>
//! done <id> <k=v ...>              # wire-encoded SimStats
//! err <id> <message>               # typed SimError rendering
//! overloaded <id> depth=<d> limit=<l>
//! stats <k=v ...> | pong | bye
//! ```
//!
//! # Scheduling policy
//!
//! Admitted requests land in one of three FIFO classes —
//! interactive > normal > bulk — selected by an explicit `prio=`
//! override or, absent one, by the exponential moving average of past
//! wall-clock cost for the request's `(config, kernel)` cell
//! ([`RunRequest::cost_key`], [`CostEma`], α = 1/4; unknown cells run
//! normal). Admission is bounded: when the queue holds `queue_depth`
//! requests the server answers `overloaded` immediately
//! ([`SimError::Overloaded`]) instead of queueing or blocking. Each
//! running request polls its [`CancelFlag`] between bounded chunks, so
//! `cancel` interrupts mid-simulation with a typed
//! [`SimError::Cancelled`].

use crate::journal::SweepJournal;
use crate::session::{stats_from_cache_file, stats_from_kv, stats_to_kv, WORKLOAD_SEED};
use ss_core::{RunLength, RunRequest};
use ss_snapshot::Snapshot;
use ss_types::{CancelFlag, ConfigSpec, CostEma, PrioQueue, Priority, PushError, SimStats};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Resident worker threads executing requests.
    pub jobs: usize,
    /// Admission-control bound: queued (not yet running) requests.
    pub queue_depth: usize,
    /// Checkpoint directory of a prior sweep (`journal.log` + `cache/`)
    /// to pre-populate the results cache from.
    pub checkpoint_dir: Option<PathBuf>,
    /// EMA-predicted cost (wall ms) at or below which a cell classifies
    /// as interactive.
    pub interactive_max_ms: u64,
    /// EMA-predicted cost (wall ms) at or above which a cell classifies
    /// as bulk.
    pub bulk_min_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: PathBuf::from("experiments.sock"),
            jobs: 2,
            queue_depth: 64,
            checkpoint_dir: None,
            interactive_max_ms: 200,
            bulk_min_ms: 2_000,
        }
    }
}

/// One admitted request travelling from the reader thread to a worker.
struct Job {
    /// Global admission sequence number (FIFO evidence).
    seq: u64,
    /// Client-chosen request id, echoed on every reply line.
    id: String,
    prio: Priority,
    /// Canonical request text — the results-cache key.
    canonical: String,
    req: RunRequest,
    cost_key: String,
    cancel: Arc<CancelFlag>,
    enqueued: Instant,
    out: Arc<Mutex<UnixStream>>,
}

/// Shared server state: everything resident across requests.
struct ServerState {
    opts: ServeOptions,
    queue: PrioQueue<Job>,
    /// canonical request text → statistics.
    results: Mutex<HashMap<String, SimStats>>,
    /// snapshot path → loaded, verified warm state.
    snapshots: Mutex<HashMap<String, Snapshot>>,
    ema: Mutex<CostEma>,
    admit_seq: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    shutdown: AtomicBool,
    /// (class, admission seq) per executed job, in execution order.
    exec_log: Mutex<Vec<(Priority, u64)>>,
    /// Queue latency samples (µs) per class.
    latency_us: Mutex<[Vec<u64>; 3]>,
}

/// A running server: background accept loop + worker pool. Dropping the
/// handle does NOT stop the server; call [`Server::shutdown`] (or send
/// `shutdown` over the socket, then [`Server::join`]).
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the socket, preloads the results cache, and starts the
    /// worker pool and accept loop.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        // A stale socket file from a dead server would fail the bind.
        let _ = std::fs::remove_file(&opts.socket);
        let listener = UnixListener::bind(&opts.socket)?;
        let mut results = HashMap::new();
        if let Some(dir) = &opts.checkpoint_dir {
            let loaded = preload_results(dir, &mut results);
            eprintln!(
                "[serve: preloaded {loaded} cached results from {}]",
                dir.display()
            );
        }
        let state = Arc::new(ServerState {
            queue: PrioQueue::new(opts.queue_depth),
            results: Mutex::new(results),
            snapshots: Mutex::new(HashMap::new()),
            ema: Mutex::new(CostEma::new()),
            admit_seq: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            exec_log: Mutex::new(Vec::new()),
            latency_us: Mutex::new([Vec::new(), Vec::new(), Vec::new()]),
            opts,
        });
        let workers = (0..state.opts.jobs.max(1))
            .map(|_| {
                let st = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&st))
            })
            .collect();
        let accept = {
            let st = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(&st, listener))
        };
        Ok(Server {
            state,
            accept: Some(accept),
            workers,
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.state.opts.socket
    }

    /// Requests executed to completion (success or typed failure).
    pub fn completed(&self) -> u64 {
        self.state.completed.load(Ordering::SeqCst)
    }

    /// Requests answered straight from the results cache.
    pub fn cache_hits(&self) -> u64 {
        self.state.cache_hits.load(Ordering::SeqCst)
    }

    /// Requests rejected by admission control.
    pub fn rejected(&self) -> u64 {
        self.state.rejected.load(Ordering::SeqCst)
    }

    /// `(class, admission-sequence)` per executed request, in execution
    /// order — the soak test's FIFO-within-priority evidence.
    pub fn exec_log(&self) -> Vec<(Priority, u64)> {
        self.state.exec_log.lock().expect("exec log lock").clone()
    }

    /// Queue-latency samples in microseconds, indexed by
    /// [`Priority::index`].
    pub fn latency_us(&self) -> [Vec<u64>; 3] {
        self.state.latency_us.lock().expect("latency lock").clone()
    }

    /// Initiates shutdown (idempotent) and joins every thread.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.state.opts.socket);
        self.join_threads();
        let _ = std::fs::remove_file(&self.state.opts.socket);
    }

    /// Waits for a socket-initiated `shutdown` to finish.
    pub fn join(mut self) {
        self.join_threads();
        let _ = std::fs::remove_file(&self.state.opts.socket);
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Pre-populates the results cache from a sweep checkpoint directory:
/// every journaled `{name}|{spec}|{bench}|w{W}m{M}` cell whose name is
/// the canonical spec (the standard sweep cells) and whose cache file
/// verifies becomes a served `src=bench:… cfg=… len=…` entry.
fn preload_results(dir: &Path, results: &mut HashMap<String, SimStats>) -> usize {
    let journal = match SweepJournal::open(&dir.join("journal.log")) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("[serve: no usable journal in {} ({e})]", dir.display());
            return 0;
        }
    };
    let cache = dir.join("cache");
    let mut loaded = 0;
    for key in journal.completed_cells() {
        let Some((canonical, cache_file)) = translate_journal_key(key) else {
            continue;
        };
        let path = cache.join(cache_file);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        match stats_from_cache_file(&path, &text, key) {
            Ok(stats) => {
                results.insert(canonical, stats);
                loaded += 1;
            }
            Err(e) => eprintln!("[serve: skipping {}: {e}]", path.display()),
        }
    }
    loaded
}

/// Maps a sweep-journal cell key to `(canonical request text, cache file
/// name)`. Only standard cells — display name identical to the canonical
/// [`ConfigSpec`] — translate; renamed test cells are skipped.
fn translate_journal_key(key: &str) -> Option<(String, String)> {
    let mut parts = key.split('|');
    let (name, spec, bench, len) = (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() || name != spec {
        return None;
    }
    let spec: ConfigSpec = spec.parse().ok()?;
    let len_parsed: RunLength = len.parse().ok()?;
    let canonical = RunRequest::bench(bench, WORKLOAD_SEED)
        .config(spec)
        .length(len_parsed)
        .to_string();
    Some((canonical, format!("{name}__{bench}__{len}.kv")))
}

/// Serializes statistics as one `k=v ...` wire line (the `done` payload).
pub fn stats_to_wire(s: &SimStats) -> String {
    stats_to_kv(s)
        .lines()
        .map(|l| l.replacen(' ', "=", 1))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses the `k=v ...` wire line back into statistics.
pub fn stats_from_wire(line: &str) -> Option<SimStats> {
    let kv: String = line
        .split_whitespace()
        .filter_map(|t| t.split_once('='))
        .map(|(k, v)| format!("{k} {v}\n"))
        .collect();
    stats_from_kv(&kv)
}

fn accept_loop(state: &Arc<ServerState>, listener: UnixListener) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                let st = Arc::clone(state);
                std::thread::spawn(move || handle_connection(&st, s));
            }
            Err(e) => {
                eprintln!("[serve: accept error: {e}]");
                break;
            }
        }
    }
}

/// Writes one protocol line; connection teardown is not an error.
fn send(out: &Arc<Mutex<UnixStream>>, line: &str) {
    let mut s = out.lock().expect("socket writer lock");
    let _ = s.write_all(line.as_bytes());
    let _ = s.write_all(b"\n");
    let _ = s.flush();
}

fn handle_connection(state: &Arc<ServerState>, stream: UnixStream) {
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(stream));
    // Cancellation registry, scoped to this connection: ids belong to the
    // client that issued them.
    let mut running: HashMap<String, Arc<CancelFlag>> = HashMap::new();
    for line in BufReader::new(reader_half).lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        match verb {
            "ping" => send(&out, "pong"),
            "stats" => send(&out, &server_stats_line(state)),
            "shutdown" => {
                send(&out, "bye");
                state.shutdown.store(true, Ordering::SeqCst);
                state.queue.close();
                let _ = UnixStream::connect(&state.opts.socket);
                return;
            }
            "cancel" => {
                let id = rest.trim();
                match running.get(id) {
                    Some(flag) => {
                        flag.cancel();
                        send(&out, &format!("ack {id} cancel"));
                    }
                    None => send(&out, &format!("err {id} unknown request id")),
                }
            }
            "run" => handle_run(state, &out, rest, &mut running),
            other => send(&out, &format!("err - unknown verb `{other}`")),
        }
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn server_stats_line(state: &ServerState) -> String {
    format!(
        "stats depth={} limit={} completed={} cached={} rejected={} cancelled={} failed={} results={} ema_cells={}",
        state.queue.depth(),
        state.queue.limit(),
        state.completed.load(Ordering::SeqCst),
        state.cache_hits.load(Ordering::SeqCst),
        state.rejected.load(Ordering::SeqCst),
        state.cancelled.load(Ordering::SeqCst),
        state.failed.load(Ordering::SeqCst),
        state.results.lock().expect("results lock").len(),
        state.ema.lock().expect("ema lock").len(),
    )
}

/// Parses and admits one `run` line:
/// `<id> [prio=<class>] <request-text>`.
fn handle_run(
    state: &Arc<ServerState>,
    out: &Arc<Mutex<UnixStream>>,
    rest: &str,
    running: &mut HashMap<String, Arc<CancelFlag>>,
) {
    let (id, rest) = rest.trim().split_once(' ').unwrap_or((rest.trim(), ""));
    if id.is_empty() {
        send(out, "err - run needs `<id> <request>`");
        return;
    }
    let (explicit_prio, req_text) = match rest.strip_prefix("prio=") {
        Some(tail) => {
            let (tag, req) = tail.split_once(' ').unwrap_or((tail, ""));
            match tag.parse::<Priority>() {
                Ok(p) => (Some(p), req),
                Err(e) => {
                    send(out, &format!("err {id} {e}"));
                    return;
                }
            }
        }
        None => (None, rest),
    };
    let mut req = match req_text.parse::<RunRequest>() {
        Ok(r) => r,
        Err(e) => {
            send(out, &format!("err {id} {e}"));
            return;
        }
    };
    let canonical = req.to_string();
    if let Some(stats) = state
        .results
        .lock()
        .expect("results lock")
        .get(&canonical)
        .cloned()
    {
        state.cache_hits.fetch_add(1, Ordering::SeqCst);
        send(out, &format!("ack {id} cached"));
        send(out, &format!("done {id} {}", stats_to_wire(&stats)));
        return;
    }
    // Satisfy disk-snapshot forks from the resident warm-state store.
    if let Some(path) = req.snapshot_path().map(str::to_string) {
        let hit = state
            .snapshots
            .lock()
            .expect("snapshot lock")
            .get(&path)
            .cloned();
        let snap = match hit {
            Some(s) => Some(s),
            None => match ss_snapshot::read_verified(Path::new(&path)) {
                Ok(s) => {
                    state
                        .snapshots
                        .lock()
                        .expect("snapshot lock")
                        .insert(path.clone(), s.clone());
                    Some(s)
                }
                // Leave the path in place: execution reports the typed
                // SnapshotCorrupt / io error with full context.
                Err(_) => None,
            },
        };
        if let Some(s) = snap {
            req = req.from_snapshot(s).checkpoint_note(&path);
        }
    }
    let cost_key = req.cost_key();
    let prio = explicit_prio.unwrap_or_else(|| {
        state.ema.lock().expect("ema lock").classify(
            &cost_key,
            state.opts.interactive_max_ms,
            state.opts.bulk_min_ms,
        )
    });
    let cancel = Arc::new(CancelFlag::new());
    let job = Job {
        seq: state.admit_seq.fetch_add(1, Ordering::SeqCst),
        id: id.to_string(),
        prio,
        canonical,
        req,
        cost_key,
        cancel: Arc::clone(&cancel),
        enqueued: Instant::now(),
        out: Arc::clone(out),
    };
    match state.queue.try_push(prio, job) {
        Ok(()) => {
            running.insert(id.to_string(), cancel);
            send(out, &format!("ack {id} queued prio={}", prio.tag()));
        }
        Err((_, PushError::Overloaded { depth, limit })) => {
            state.rejected.fetch_add(1, Ordering::SeqCst);
            send(out, &format!("overloaded {id} depth={depth} limit={limit}"));
        }
        Err((_, PushError::Closed)) => {
            send(out, &format!("err {id} server is shutting down"));
        }
    }
}

fn worker_loop(state: &Arc<ServerState>) {
    while let Some(job) = state.queue.pop() {
        let wait_us = job.enqueued.elapsed().as_micros() as u64;
        {
            let mut log = state.exec_log.lock().expect("exec log lock");
            log.push((job.prio, job.seq));
        }
        state.latency_us.lock().expect("latency lock")[job.prio.index()].push(wait_us);
        let Job {
            id,
            canonical,
            req,
            cost_key,
            cancel,
            out,
            ..
        } = job;
        let total = req
            .run_length()
            .map(|l| l.warmup + l.measure)
            .unwrap_or(u64::MAX);
        // ~8 progress lines per run, chunk floor so cancel stays snappy.
        let chunk = (total / 8).clamp(1_000, 250_000);
        let started = Instant::now();
        let result = req.execute_observed(&cancel, chunk, |done, total| {
            send(&out, &format!("progress {id} {done}/{total}"));
        });
        match result {
            Ok(outcome) => {
                let ms = started.elapsed().as_millis() as u64;
                state
                    .ema
                    .lock()
                    .expect("ema lock")
                    .observe(&cost_key, ms.max(1));
                state
                    .results
                    .lock()
                    .expect("results lock")
                    .insert(canonical, outcome.stats.clone());
                state.completed.fetch_add(1, Ordering::SeqCst);
                send(
                    &out,
                    &format!("done {id} {}", stats_to_wire(&outcome.stats)),
                );
            }
            Err(e) => {
                if matches!(e, ss_types::SimError::Cancelled { .. }) {
                    state.cancelled.fetch_add(1, Ordering::SeqCst);
                } else {
                    state.failed.fetch_add(1, Ordering::SeqCst);
                }
                state.completed.fetch_add(1, Ordering::SeqCst);
                send(&out, &format!("err {id} {e}"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// CLI entry points: `experiments serve`, `experiments client`,
// `experiments run`.
// ---------------------------------------------------------------------

/// `experiments serve --socket PATH [--jobs N] [--queue-depth D]
/// [--checkpoint-dir DIR] [--interactive-max-ms MS] [--bulk-min-ms MS]`:
/// runs the server until a client sends `shutdown` (or the process is
/// killed).
pub fn run_serve_cli(args: &[String]) -> i32 {
    let mut opts = ServeOptions {
        jobs: ss_types::exec::default_jobs(),
        ..ServeOptions::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => opts.socket = PathBuf::from(it.next().expect("--socket needs a path")),
            "--jobs" | "-j" => {
                opts.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a worker count")
            }
            "--queue-depth" => {
                opts.queue_depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queue-depth needs a count")
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(PathBuf::from(
                    it.next().expect("--checkpoint-dir needs a directory"),
                ))
            }
            "--interactive-max-ms" => {
                opts.interactive_max_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--interactive-max-ms needs a millisecond count")
            }
            "--bulk-min-ms" => {
                opts.bulk_min_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--bulk-min-ms needs a millisecond count")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments serve --socket PATH [--jobs N] [--queue-depth D] [--checkpoint-dir DIR] [--interactive-max-ms MS] [--bulk-min-ms MS]"
                );
                return 0;
            }
            other => {
                eprintln!("unknown serve flag `{other}`");
                return 2;
            }
        }
    }
    let server = match Server::start(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: could not start: {e}");
            return 1;
        }
    };
    eprintln!(
        "[serve: listening on {} with {} workers, queue depth {}]",
        server.socket().display(),
        server.state.opts.jobs,
        server.state.opts.queue_depth
    );
    server.join();
    eprintln!("[serve: shut down cleanly]");
    0
}

/// `experiments client --socket PATH [--id ID] [--prio P]
/// [--cancel-after N] [--stats] [--shutdown] [--req TEXT]`: one-shot
/// client. Streams every server line to stdout; exits 0 on `done`
/// (or acknowledged control message), 1 on `err`/`overloaded`.
pub fn run_client_cli(args: &[String]) -> i32 {
    let mut socket = PathBuf::from("experiments.sock");
    let mut id = String::from("r1");
    let mut prio: Option<String> = None;
    let mut req: Option<String> = None;
    let mut cancel_after: Option<u32> = None;
    let mut want_stats = false;
    let mut want_shutdown = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = PathBuf::from(it.next().expect("--socket needs a path")),
            "--id" => id = it.next().expect("--id needs a token").clone(),
            "--prio" => prio = Some(it.next().expect("--prio needs a class").clone()),
            "--req" => req = Some(it.next().expect("--req needs request text").clone()),
            "--cancel-after" => {
                cancel_after = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--cancel-after needs a progress-line count"),
                )
            }
            "--stats" => want_stats = true,
            "--shutdown" => want_shutdown = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments client --socket PATH [--id ID] [--prio interactive|normal|bulk] [--cancel-after N] [--stats] [--shutdown] [--req 'src=... cfg=... len=...']"
                );
                return 0;
            }
            other => {
                eprintln!("unknown client flag `{other}`");
                return 2;
            }
        }
    }
    let mut stream = match UnixStream::connect(&socket) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("client: cannot connect to {}: {e}", socket.display());
            return 1;
        }
    };
    let reader = match stream.try_clone() {
        Ok(r) => BufReader::new(r),
        Err(e) => {
            eprintln!("client: {e}");
            return 1;
        }
    };
    let send_line = |s: &mut UnixStream, line: &str| -> bool {
        s.write_all(line.as_bytes()).is_ok() && s.write_all(b"\n").is_ok() && s.flush().is_ok()
    };
    if want_stats || want_shutdown {
        let verb = if want_shutdown { "shutdown" } else { "stats" };
        if !send_line(&mut stream, verb) {
            eprintln!("client: send failed");
            return 1;
        }
        // Single-line reply.
        return match reader.lines().map_while(Result::ok).next() {
            Some(line) => {
                println!("{line}");
                0
            }
            None => 1,
        };
    }
    let Some(req) = req else {
        eprintln!("client: --req (or --stats/--shutdown) is required");
        return 2;
    };
    let line = match &prio {
        Some(p) => format!("run {id} prio={p} {req}"),
        None => format!("run {id} {req}"),
    };
    if !send_line(&mut stream, &line) {
        eprintln!("client: send failed");
        return 1;
    }
    let mut progress_seen = 0u32;
    for line in reader.lines().map_while(Result::ok) {
        println!("{line}");
        let verb = line.split(' ').next().unwrap_or("");
        match verb {
            "done" => return 0,
            "err" | "overloaded" => return 1,
            "progress" => {
                progress_seen += 1;
                if cancel_after == Some(progress_seen)
                    && !send_line(&mut stream, &format!("cancel {id}"))
                {
                    return 1;
                }
            }
            _ => {}
        }
    }
    eprintln!("client: connection closed before a terminal reply");
    1
}

/// `experiments run --req TEXT`: executes one wire-encoded request
/// offline (no server) and prints the identical `done <k=v ...>` line —
/// the reference output the CI smoke test diffs server replies against.
pub fn run_offline_cli(args: &[String]) -> i32 {
    let mut req: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--req" => req = Some(it.next().expect("--req needs request text").clone()),
            "--help" | "-h" => {
                eprintln!("usage: experiments run --req 'src=... cfg=... len=...'");
                return 0;
            }
            other => {
                eprintln!("unknown run flag `{other}`");
                return 2;
            }
        }
    }
    let Some(text) = req else {
        eprintln!("run: --req is required");
        return 2;
    };
    let parsed = match text.parse::<RunRequest>() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run: {e}");
            return 2;
        }
    };
    let id = "offline";
    match parsed.execute() {
        Ok(outcome) => {
            println!("done {id} {}", stats_to_wire(&outcome.stats));
            0
        }
        Err(e) => {
            println!("err {id} {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_stats_round_trip_preserves_all_fields() {
        let mut s = SimStats {
            cycles: 12_345,
            committed_uops: 678,
            ..Default::default()
        };
        s.l1d.misses = 9;
        s.l2.accesses = 11;
        let line = stats_to_wire(&s);
        assert!(line.contains("cycles=12345"), "{line}");
        let back = stats_from_wire(&line).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn journal_keys_translate_only_for_standard_cells() {
        let (canonical, file) =
            translate_journal_key("SpecSched_4_Crit|SpecSched_4_Crit|fp_compute|w1000m5000")
                .expect("standard cell translates");
        assert_eq!(
            canonical,
            "src=bench:fp_compute@0xb5 cfg=SpecSched_4_Crit len=w1000m5000"
        );
        assert_eq!(file, "SpecSched_4_Crit__fp_compute__w1000m5000.kv");
        // Renamed test cells and malformed keys are skipped, not errors.
        assert!(translate_journal_key("odd-name|SpecSched_4|fp_compute|w1m2").is_none());
        assert!(translate_journal_key("SpecSched_4|SpecSched_4|fp_compute").is_none());
        assert!(translate_journal_key("Bogus_4|Bogus_4|fp_compute|w1m2").is_none());
    }

    #[test]
    fn server_answers_ping_run_and_stats_over_the_socket() {
        let dir = std::env::temp_dir().join(format!("ss-serve-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let server = Server::start(ServeOptions {
            socket: dir.join("unit.sock"),
            jobs: 1,
            queue_depth: 4,
            ..ServeOptions::default()
        })
        .expect("server starts");
        let mut c = UnixStream::connect(server.socket()).unwrap();
        c.write_all(b"ping\nrun a src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w200m2000\n")
            .unwrap();
        let mut lines = BufReader::new(c.try_clone().unwrap()).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "pong");
        assert_eq!(lines.next().unwrap().unwrap(), "ack a queued prio=normal");
        let done = loop {
            let line = lines.next().unwrap().unwrap();
            if let Some(rest) = line.strip_prefix("done a ") {
                break rest.to_string();
            }
            assert!(line.starts_with("progress a "), "unexpected line {line}");
        };
        let stats = stats_from_wire(&done).expect("wire stats parse");
        assert!(stats.committed_uops >= 2_000);
        // Same request again: served from the results memo.
        c.write_all(b"run b src=bench:fp_compute@0xb5 cfg=SpecSched_4 len=w200m2000\n")
            .unwrap();
        assert_eq!(lines.next().unwrap().unwrap(), "ack b cached");
        let cached = lines.next().unwrap().unwrap();
        assert_eq!(cached.strip_prefix("done b ").unwrap(), done);
        drop(c);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
