//! The `experiments bench` subcommand: a fixed scheduler-throughput
//! micro-benchmark grid comparing the event-driven ready queue against
//! the legacy per-cycle O(ROB) scan.
//!
//! ```text
//! experiments bench [--out FILE] [--smoke] [--baseline FILE]
//!                   [--max-regress PCT] [--only SUBSTRING]
//! ```
//!
//! Each cell runs one kernel on one machine shape under **both**
//! scheduler implementations and records simulated-cycles-per-second of
//! wall time, wall time, and the process peak RSS. The grid is then run
//! *as a whole* two ways — per-cell (the reference `RunRequest` pool
//! path) and lane-batched ([`ss_core::lane`]: cells sharing a kernel
//! step through one driver loop over one decoded µ-op stream), both on
//! one thread — and the aggregate throughput of each lands in the
//! report's `aggregate` row. Results land as JSON (`BENCH_sched.json`
//! by default; schema documented in EXPERIMENTS.md).
//! With `--baseline FILE`, the run fails (exit 1) if any cell's
//! event/legacy speedup ratio — or the aggregate lane/pool ratio, when
//! the baseline records one — regressed more than `--max-regress`
//! percent (default 20) against the committed baseline — the ratio, not
//! absolute throughput, so the gate is stable across host machines. A
//! *missing* baseline file skips the gate with exit 0 (a fresh branch
//! has nothing to regress against); only a present-but-unreadable
//! baseline is an error.

use ss_core::{run_lane_batch, LaneCell, RunLength, RunRequest};
use ss_frontend::{ProgramSpec, RvTraceSource};
use ss_types::{CancelFlag, SimConfig};
use ss_workloads::kernels;
use ss_workloads::TraceSource as _;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// One (kernel × machine shape) grid point.
struct Cell {
    name: &'static str,
    kernel: &'static str,
    rob: u32,
    iq: u32,
}

/// The fixed grid: the paper machine (ROB 192) and a doubled window
/// (ROB 384), on a dependency-chained and a mixed-integer kernel — the
/// two shapes where per-cycle scan cost dominates — plus a streaming
/// memory-bound kernel as a low-IQ-occupancy control.
const GRID: &[Cell] = &[
    Cell {
        name: "dep_chain_l2_rob192",
        kernel: "dep_chain_l2",
        rob: 192,
        iq: 60,
    },
    Cell {
        name: "mix_int_rob192",
        kernel: "mix_int",
        rob: 192,
        iq: 60,
    },
    Cell {
        name: "stream_all_miss_rob192",
        kernel: "stream_all_miss",
        rob: 192,
        iq: 60,
    },
    Cell {
        name: "dep_chain_l2_rob384",
        kernel: "dep_chain_l2",
        rob: 384,
        iq: 120,
    },
    Cell {
        name: "mix_int_rob384",
        kernel: "mix_int",
        rob: 384,
        iq: 120,
    },
];

/// Measured numbers for one scheduler on one cell.
struct Sample {
    sim_cycles: u64,
    wall_ms: f64,
    cycles_per_sec: f64,
    peak_rss_kb: u64,
}

/// A completed cell: both schedulers plus the ratio the CI gate watches.
struct CellResult {
    name: &'static str,
    kernel: &'static str,
    rob: u32,
    event: Sample,
    legacy: Sample,
    speedup: f64,
}

fn kernel_spec(name: &str) -> ss_workloads::KernelSpec {
    match name {
        "dep_chain_l2" => kernels::dep_chain_l2(1),
        "mix_int" => kernels::mix_int(1),
        "stream_all_miss" => kernels::stream_all_miss(1),
        other => panic!("bench grid names unknown kernel {other}"),
    }
}

/// Process peak RSS in kB from `/proc/self/status` (`VmHWM`); 0 where
/// procfs is unavailable (non-Linux hosts still produce a valid report).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Short git revision of the working tree, or `unknown` outside a repo.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `YYYY-MM-DD` (UTC) from a unix timestamp — civil-from-days, so the
/// harness needs no date dependency.
fn civil_date(unix: u64) -> String {
    let days = (unix / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn cell_config(cell: &Cell, legacy: bool) -> SimConfig {
    SimConfig::builder()
        .issue_to_execute_delay(4)
        .sched_policy(ss_types::SchedPolicyKind::AlwaysHit)
        .banked_l1d(true)
        .rob_entries(cell.rob)
        .iq_entries(cell.iq)
        .legacy_scan(legacy)
        .build()
}

fn run_one(cell: &Cell, legacy: bool, len: RunLength) -> Result<Sample, String> {
    let cfg = cell_config(cell, legacy);
    let start = Instant::now();
    let stats = RunRequest::kernel(kernel_spec(cell.kernel))
        .custom_config(cfg)
        .length(len)
        .execute()
        .map(|o| o.stats)
        .map_err(|e| format!("{}: run failed: {e}", cell.name))?;
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1_000.0;
    Ok(Sample {
        sim_cycles: stats.cycles,
        wall_ms,
        cycles_per_sec: stats.cycles as f64 / wall.as_secs_f64().max(1e-9),
        peak_rss_kb: peak_rss_kb(),
    })
}

/// One whole-grid pass measured as a unit: total simulated cycles over
/// total wall time, with every cell on a single thread.
struct AggSample {
    sim_cycles: u64,
    wall_ms: f64,
    cycles_per_sec: f64,
}

/// The aggregate-grid comparison the lane engine is gated on: the same
/// cells run per-cell (the reference `RunRequest` pool path) vs
/// lane-batched (cells sharing a kernel step through one driver loop
/// over one decoded µ-op stream), both on one thread.
struct Aggregate {
    cells: usize,
    pool: AggSample,
    lanes: AggSample,
    speedup: f64,
}

/// One sequential pass over the grid through the per-cell path.
fn run_pool_pass(cells: &[&Cell], len: RunLength) -> Result<AggSample, String> {
    let start = Instant::now();
    let mut sim_cycles = 0u64;
    for cell in cells {
        let stats = RunRequest::kernel(kernel_spec(cell.kernel))
            .custom_config(cell_config(cell, false))
            .length(len)
            .execute()
            .map(|o| o.stats)
            .map_err(|e| format!("{}: pool run failed: {e}", cell.name))?;
        sim_cycles += stats.cycles;
    }
    let wall = start.elapsed();
    Ok(AggSample {
        sim_cycles,
        wall_ms: wall.as_secs_f64() * 1_000.0,
        cycles_per_sec: sim_cycles as f64 / wall.as_secs_f64().max(1e-9),
    })
}

/// One pass over the grid through the lane engine: cells sharing a
/// kernel become one batch (the grid's widest batch is the lane width).
fn run_lane_pass(cells: &[&Cell], len: RunLength) -> Result<AggSample, String> {
    let mut groups: Vec<(&'static str, Vec<&Cell>)> = Vec::new();
    for cell in cells {
        match groups.iter_mut().find(|(k, _)| *k == cell.kernel) {
            Some((_, v)) => v.push(cell),
            None => groups.push((cell.kernel, vec![cell])),
        }
    }
    let start = Instant::now();
    let mut sim_cycles = 0u64;
    for (kernel, group) in &groups {
        let lane_cells = group
            .iter()
            .map(|c| LaneCell::new(cell_config(c, false), len))
            .collect();
        let results = run_lane_batch(
            lane_cells,
            group.len(),
            || kernel_spec(kernel).into_source(),
            &CancelFlag::new(),
            |_, _, _| {},
        );
        for (cell, r) in group.iter().zip(results) {
            let stats = r.map_err(|e| format!("{}: lane run failed: {e}", cell.name))?;
            sim_cycles += stats.cycles;
        }
    }
    let wall = start.elapsed();
    Ok(AggSample {
        sim_cycles,
        wall_ms: wall.as_secs_f64() * 1_000.0,
        cycles_per_sec: sim_cycles as f64 / wall.as_secs_f64().max(1e-9),
    })
}

/// Best-of-3 aggregate comparison, interleaved like the per-cell grid.
fn run_aggregate(cells: &[&Cell], len: RunLength) -> Result<Aggregate, String> {
    let mut pool: Option<AggSample> = None;
    let mut lanes: Option<AggSample> = None;
    for _rep in 0..3 {
        let p = run_pool_pass(cells, len)?;
        if pool
            .as_ref()
            .is_none_or(|b| p.cycles_per_sec > b.cycles_per_sec)
        {
            pool = Some(p);
        }
        let l = run_lane_pass(cells, len)?;
        if lanes
            .as_ref()
            .is_none_or(|b| l.cycles_per_sec > b.cycles_per_sec)
        {
            lanes = Some(l);
        }
    }
    let (Some(pool), Some(lanes)) = (pool, lanes) else {
        unreachable!("three reps filled both slots")
    };
    let speedup = lanes.cycles_per_sec / pool.cycles_per_sec.max(1e-9);
    Ok(Aggregate {
        cells: cells.len(),
        pool,
        lanes,
        speedup,
    })
}

/// Measured decode+crack throughput of the RV32IM frontend on its own
/// (no pipeline attached): µ-ops emitted per second of wall time.
struct FrontendSample {
    uops: u64,
    wall_ms: f64,
    uops_per_sec: f64,
}

/// Pulls `uops` µ-ops out of a fresh [`RvTraceSource`] over the suite's
/// `sort` program — pure interpret+crack cost, the frontend-side ceiling
/// on real-program simulation speed.
fn run_frontend(uops: u64) -> Result<FrontendSample, String> {
    let prog = ProgramSpec::suite("sort", 1).resolve()?;
    let mut src = RvTraceSource::new(prog);
    let start = Instant::now();
    for _ in 0..uops {
        let u = src.next_uop();
        std::hint::black_box(&u);
    }
    let wall = start.elapsed();
    Ok(FrontendSample {
        uops,
        wall_ms: wall.as_secs_f64() * 1_000.0,
        uops_per_sec: uops as f64 / wall.as_secs_f64().max(1e-9),
    })
}

fn frontend_json(s: &FrontendSample) -> String {
    format!(
        "{{\"program\": \"rv:sort@0x1\", \"uops\": {}, \"wall_ms\": {:.3}, \"uops_per_sec\": {:.1}}}",
        s.uops, s.wall_ms, s.uops_per_sec
    )
}

fn sample_json(s: &Sample) -> String {
    format!(
        "{{\"sim_cycles\": {}, \"wall_ms\": {:.3}, \"cycles_per_sec\": {:.1}, \"peak_rss_kb\": {}}}",
        s.sim_cycles, s.wall_ms, s.cycles_per_sec, s.peak_rss_kb
    )
}

fn agg_sample_json(s: &AggSample) -> String {
    format!(
        "{{\"sim_cycles\": {}, \"wall_ms\": {:.3}, \"cycles_per_sec\": {:.1}}}",
        s.sim_cycles, s.wall_ms, s.cycles_per_sec
    )
}

fn aggregate_json(a: &Aggregate) -> String {
    format!(
        "{{\"cells\": {}, \"pool\": {}, \"lane\": {}, \"speedup\": {:.3}}}",
        a.cells,
        agg_sample_json(&a.pool),
        agg_sample_json(&a.lanes),
        a.speedup
    )
}

/// Renders the full report document (schema `bench_sched/v1`; the
/// `frontend` and `aggregate` keys are additive — per-cell gating reads
/// `cells`, and the aggregate gate reads `aggregate.speedup` only when
/// the baseline carries it).
fn report_json(
    results: &[CellResult],
    frontend: &FrontendSample,
    aggregate: &Aggregate,
    len: RunLength,
) -> String {
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"bench_sched/v1\",");
    let _ = writeln!(out, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(out, "  \"date\": \"{}\",", civil_date(unix));
    let _ = writeln!(out, "  \"unix_time\": {unix},");
    let _ = writeln!(out, "  \"warmup\": {},", len.warmup);
    let _ = writeln!(out, "  \"measure\": {},", len.measure);
    let _ = writeln!(out, "  \"frontend\": {},", frontend_json(frontend));
    let _ = writeln!(out, "  \"aggregate\": {},", aggregate_json(aggregate));
    let _ = writeln!(out, "  \"cells\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"kernel\": \"{}\",", r.kernel);
        let _ = writeln!(out, "      \"rob\": {},", r.rob);
        let _ = writeln!(out, "      \"event\": {},", sample_json(&r.event));
        let _ = writeln!(out, "      \"legacy\": {},", sample_json(&r.legacy));
        let _ = writeln!(out, "      \"speedup\": {:.3}", r.speedup);
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Reads the baseline's aggregate lane/pool speedup, if the document
/// carries one (`None` on baselines written before the aggregate row —
/// the gate then skips that check rather than failing on an older
/// baseline).
fn baseline_aggregate_speedup(path: &PathBuf) -> Result<Option<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = ss_trace::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(doc
        .get("aggregate")
        .and_then(|a| a.get("speedup"))
        .and_then(|s| s.as_num()))
}

/// Reads `name → speedup` pairs out of a committed baseline document.
fn baseline_speedups(path: &PathBuf) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = ss_trace::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let cells = doc
        .get("cells")
        .and_then(|c| c.as_arr())
        .ok_or_else(|| format!("{}: no `cells` array", path.display()))?;
    let mut out = Vec::new();
    for c in cells {
        let name = c
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or("cell without name")?
            .to_string();
        let speedup = c
            .get("speedup")
            .and_then(|s| s.as_num())
            .ok_or("cell without speedup")?;
        out.push((name, speedup));
    }
    Ok(out)
}

/// Entry point for `experiments bench`; returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut out_path = PathBuf::from("BENCH_sched.json");
    let mut baseline: Option<PathBuf> = None;
    let mut only: Option<String> = None;
    let mut max_regress_pct = 20.0f64;
    let mut len = RunLength {
        warmup: 20_000,
        measure: 400_000,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(v) => out_path = PathBuf::from(v),
                None => {
                    eprintln!("error: --out needs a file");
                    return 2;
                }
            },
            "--baseline" => match it.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => {
                    eprintln!("error: --baseline needs a file");
                    return 2;
                }
            },
            "--only" => match it.next() {
                Some(v) => only = Some(v.clone()),
                None => {
                    eprintln!("error: --only needs a cell-name substring");
                    return 2;
                }
            },
            "--max-regress" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_regress_pct = v,
                None => {
                    eprintln!("error: --max-regress needs a percentage");
                    return 2;
                }
            },
            "--smoke" => {
                // CI-sized: enough committed work for stable ratios,
                // small enough for a PR gate.
                len = RunLength {
                    warmup: 5_000,
                    measure: 60_000,
                }
            }
            other => {
                eprintln!("error: unknown bench option `{other}`");
                eprintln!(
                    "usage: experiments bench [--out FILE] [--smoke] [--baseline FILE] \
                     [--max-regress PCT] [--only SUBSTRING]"
                );
                return 2;
            }
        }
    }

    let cells: Vec<&Cell> = GRID
        .iter()
        .filter(|c| only.as_deref().is_none_or(|o| c.name.contains(o)))
        .collect();
    println!(
        "bench: {} cells × {} committed µ-ops (warmup {})",
        cells.len(),
        len.measure,
        len.warmup
    );
    let mut results = Vec::with_capacity(cells.len());
    for cell in cells {
        // Best-of-3, interleaved: wall-clock noise on a shared host hits
        // both schedulers alike, and the fastest repetition of each is
        // the least-perturbed measurement.
        let mut best: [Option<Sample>; 2] = [None, None];
        for _rep in 0..3 {
            for (slot, legacy) in [(0usize, false), (1, true)] {
                let s = match run_one(cell, legacy, len) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                };
                if best[slot]
                    .as_ref()
                    .is_none_or(|b| s.cycles_per_sec > b.cycles_per_sec)
                {
                    best[slot] = Some(s);
                }
            }
        }
        let [Some(event), Some(legacy)] = best else {
            unreachable!("three reps filled both slots")
        };
        let speedup = event.cycles_per_sec / legacy.cycles_per_sec.max(1e-9);
        println!(
            "  {:<24} event {:>10.0} c/s  legacy {:>10.0} c/s  speedup {:.2}x",
            cell.name, event.cycles_per_sec, legacy.cycles_per_sec, speedup
        );
        results.push(CellResult {
            name: cell.name,
            kernel: cell.kernel,
            rob: cell.rob,
            event,
            legacy,
            speedup,
        });
    }

    // Frontend decode+crack throughput: best-of-3, same noise logic as
    // the scheduler cells.
    let mut frontend: Option<FrontendSample> = None;
    for _rep in 0..3 {
        let s = match run_frontend(len.measure) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: frontend bench: {e}");
                return 1;
            }
        };
        if frontend
            .as_ref()
            .is_none_or(|b| s.uops_per_sec > b.uops_per_sec)
        {
            frontend = Some(s);
        }
    }
    let Some(frontend) = frontend else {
        unreachable!("three reps filled the frontend slot")
    };
    println!(
        "  {:<24} decode+crack {:>10.0} µops/s ({} µops)",
        "frontend_rv_sort", frontend.uops_per_sec, frontend.uops
    );

    // Aggregate-grid throughput: the whole selected grid per-cell vs
    // lane-batched, one thread each, best-of-3.
    let grid: Vec<&Cell> = GRID
        .iter()
        .filter(|c| only.as_deref().is_none_or(|o| c.name.contains(o)))
        .collect();
    let aggregate = match run_aggregate(&grid, len) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: aggregate bench: {e}");
            return 1;
        }
    };
    println!(
        "  {:<24} pool {:>10.0} c/s  lane {:>12.0} c/s  speedup {:.2}x",
        "aggregate_grid", aggregate.pool.cycles_per_sec, aggregate.lanes.cycles_per_sec, aggregate.speedup
    );

    let doc = report_json(&results, &frontend, &aggregate, len);
    if let Some(dir) = out_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("error: writing {}: {e}", out_path.display());
        return 1;
    }
    println!("bench: wrote {}", out_path.display());

    if let Some(base_path) = baseline {
        // A missing baseline is not a failure: first runs on a fresh
        // branch (or a CI job before the baseline is committed) have
        // nothing to gate against. Only a present-but-unreadable baseline
        // fails the run.
        if !base_path.exists() {
            println!(
                "bench: no baseline at {} — gate skipped (commit one to enable regression gating)",
                base_path.display()
            );
            return 0;
        }
        let base = match baseline_speedups(&base_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: baseline: {e}");
                return 1;
            }
        };
        let mut failed = false;
        for (name, base_speedup) in base {
            let Some(r) = results.iter().find(|r| r.name == name) else {
                eprintln!("warn: baseline cell `{name}` not in current grid; skipped");
                continue;
            };
            // Gate on the event/legacy ratio: machine-speed independent.
            let floor = base_speedup * (1.0 - max_regress_pct / 100.0);
            if r.speedup < floor {
                eprintln!(
                    "FAIL: {name}: speedup {:.2}x fell below {floor:.2}x \
                     (baseline {base_speedup:.2}x − {max_regress_pct}%)",
                    r.speedup
                );
                failed = true;
            }
        }
        // Aggregate lane/pool ratio: gated only when the baseline
        // records one (additive key — older baselines skip this check).
        match baseline_aggregate_speedup(&base_path) {
            Ok(Some(base_agg)) => {
                let floor = base_agg * (1.0 - max_regress_pct / 100.0);
                if aggregate.speedup < floor {
                    eprintln!(
                        "FAIL: aggregate_grid: lane/pool speedup {:.2}x fell below {floor:.2}x \
                         (baseline {base_agg:.2}x − {max_regress_pct}%)",
                        aggregate.speedup
                    );
                    failed = true;
                }
            }
            Ok(None) => {
                println!("bench: baseline has no aggregate row — aggregate gate skipped");
            }
            Err(e) => {
                eprintln!("error: baseline: {e}");
                return 1;
            }
        }
        if failed {
            return 1;
        }
        println!(
            "bench: all cells within {max_regress_pct}% of baseline {}",
            base_path.display()
        );
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_round_trips_known_epochs() {
        assert_eq!(civil_date(0), "1970-01-01");
        assert_eq!(civil_date(951_782_400), "2000-02-29");
        assert_eq!(civil_date(1_785_974_400), "2026-08-06");
    }

    #[test]
    fn report_json_parses_and_carries_the_gate_fields() {
        let results = vec![CellResult {
            name: "dep_chain_l2_rob192",
            kernel: "dep_chain_l2",
            rob: 192,
            event: Sample {
                sim_cycles: 1_000,
                wall_ms: 2.0,
                cycles_per_sec: 500_000.0,
                peak_rss_kb: 4_096,
            },
            legacy: Sample {
                sim_cycles: 1_000,
                wall_ms: 4.0,
                cycles_per_sec: 250_000.0,
                peak_rss_kb: 4_096,
            },
            speedup: 2.0,
        }];
        let frontend = FrontendSample {
            uops: 10_000,
            wall_ms: 5.0,
            uops_per_sec: 2_000_000.0,
        };
        let aggregate = Aggregate {
            cells: 5,
            pool: AggSample {
                sim_cycles: 5_000,
                wall_ms: 10.0,
                cycles_per_sec: 500_000.0,
            },
            lanes: AggSample {
                sim_cycles: 5_000,
                wall_ms: 8.0,
                cycles_per_sec: 625_000.0,
            },
            speedup: 1.25,
        };
        let doc = report_json(
            &results,
            &frontend,
            &aggregate,
            RunLength {
                warmup: 1,
                measure: 2,
            },
        );
        let parsed = ss_trace::json::parse(&doc).expect("self-emitted JSON parses");
        let cells = parsed.get("cells").and_then(|c| c.as_arr()).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(
            cells[0].get("speedup").and_then(|s| s.as_num()),
            Some(2.0),
            "the CI gate reads this field"
        );
        assert_eq!(
            cells[0]
                .get("event")
                .and_then(|e| e.get("cycles_per_sec"))
                .and_then(|v| v.as_num()),
            Some(500_000.0)
        );
        assert!(parsed.get("schema").and_then(|s| s.as_str()) == Some("bench_sched/v1"));
        let fe = parsed.get("frontend").expect("frontend row present");
        assert_eq!(
            fe.get("program").and_then(|p| p.as_str()),
            Some("rv:sort@0x1")
        );
        assert_eq!(
            fe.get("uops_per_sec").and_then(|v| v.as_num()),
            Some(2_000_000.0)
        );
        let agg = parsed.get("aggregate").expect("aggregate row present");
        assert_eq!(
            agg.get("speedup").and_then(|v| v.as_num()),
            Some(1.25),
            "the aggregate CI gate reads this field"
        );
        assert_eq!(
            agg.get("lane")
                .and_then(|l| l.get("cycles_per_sec"))
                .and_then(|v| v.as_num()),
            Some(625_000.0)
        );
    }

    #[test]
    fn baseline_aggregate_speedup_is_optional() {
        let dir = std::env::temp_dir().join("ss_bench_agg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        // An older baseline without the aggregate row: the gate skips.
        std::fs::write(
            &path,
            "{\"schema\": \"bench_sched/v1\", \"cells\": [{\"name\": \"a\", \"speedup\": 1.5}]}",
        )
        .unwrap();
        assert_eq!(baseline_aggregate_speedup(&path).unwrap(), None);
        // A current baseline carries it.
        std::fs::write(
            &path,
            "{\"schema\": \"bench_sched/v1\", \"aggregate\": {\"speedup\": 1.12}, \"cells\": []}",
        )
        .unwrap();
        assert_eq!(baseline_aggregate_speedup(&path).unwrap(), Some(1.12));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn frontend_bench_emits_real_uops() {
        let s = run_frontend(5_000).expect("suite program resolves");
        assert_eq!(s.uops, 5_000);
        assert!(s.uops_per_sec > 0.0);
    }

    #[test]
    fn baseline_gate_reads_speedups() {
        let dir = std::env::temp_dir().join("ss_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(
            &path,
            "{\"schema\": \"bench_sched/v1\", \"cells\": [\
             {\"name\": \"a\", \"speedup\": 1.5}, {\"name\": \"b\", \"speedup\": 2.25}]}",
        )
        .unwrap();
        let base = baseline_speedups(&path).unwrap();
        assert_eq!(base.len(), 2);
        assert_eq!(base[0], ("a".to_string(), 1.5));
        assert_eq!(base[1], ("b".to_string(), 2.25));
        let _ = std::fs::remove_file(&path);
    }
}
