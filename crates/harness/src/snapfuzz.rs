//! Snapshot-corruption fuzzer: seeded bit-flips, truncations, and
//! section swaps against the checkpoint container and its decoders.
//!
//! Two layers are attacked, matching the two layers that defend:
//!
//! 1. **Container** — a real captured snapshot is serialized to disk,
//!    mutated ([`ss_snapshot::Mutation`]), and read back through
//!    [`ss_snapshot::read_verified`]. Every applied mutation must yield a
//!    typed [`ss_snapshot::SnapshotError`] — the header grammar and the
//!    FNV-1a payload checksum make silent acceptance structurally
//!    impossible, and this campaign proves it empirically.
//! 2. **Decoders** — the same mutations are applied to one section's
//!    *decoded* bytes (below the checksum, as if memory were corrupted
//!    after verification) and fed to [`Simulator::restore`]. Here a
//!    mutation may legitimately decode clean (a flipped counter bit is
//!    just another counter), but it must **never panic**: every reject
//!    is a typed [`SimError::SnapshotCorrupt`].
//!
//! [`Simulator::restore`]: ss_core::Simulator::restore

use ss_core::{RunLength, Simulator};
use ss_snapshot::{Mutation, Snapshot};
use ss_types::rng::Xoshiro256;
use ss_types::{SimConfig, SimError};
use ss_workloads::{kernels, KernelTrace};

/// Outcome of one corruption campaign.
#[derive(Debug, Default)]
pub struct SnapFuzzStats {
    /// Mutations whose damage the container read path rejected (typed).
    pub container_rejected: u64,
    /// Mutations the container read path accepted — **bugs**.
    pub container_accepted: u64,
    /// Section-level mutations the decoders rejected (typed).
    pub decoder_rejected: u64,
    /// Section-level mutations that decoded clean (legitimate below the
    /// checksum; counted for the record).
    pub decoder_clean: u64,
    /// Panics anywhere — **bugs**.
    pub panics: u64,
    /// Mutations that were no-ops on the input (skipped).
    pub skipped: u64,
}

impl SnapFuzzStats {
    /// Whether the campaign found no escapes: zero silent container
    /// acceptances and zero panics.
    pub fn clean(&self) -> bool {
        self.container_accepted == 0 && self.panics == 0
    }
}

/// Captures a real warm snapshot to attack (small but fully populated:
/// every subsystem has live state after a few thousand commits).
fn subject_snapshot() -> Snapshot {
    let cfg = SimConfig::builder().build();
    let mut sim = Simulator::new(cfg, KernelTrace::new(kernels::mix_int(7)));
    sim.try_run_committed(RunLength::SMOKE.warmup)
        .expect("subject simulation runs");
    sim.capture()
}

/// Runs `count` seeded mutations against the container and decoder
/// layers. Deterministic in `seed`: a failing seed reproduces exactly.
pub fn run_campaign(seed: u64, count: u64) -> SnapFuzzStats {
    let snap = subject_snapshot();
    let bytes = snap.to_bytes();
    let cfg = SimConfig::builder().build();
    let mut stats = SnapFuzzStats::default();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    for _ in 0..count {
        // Layer 1: the on-disk container.
        let m = Mutation::arbitrary(&mut rng, bytes.len());
        match m.apply(&bytes) {
            None => stats.skipped += 1,
            Some(mutated) => {
                let outcome = std::panic::catch_unwind(|| Snapshot::from_bytes(&mutated).err());
                match outcome {
                    Ok(Some(_typed)) => stats.container_rejected += 1,
                    Ok(None) => {
                        stats.container_accepted += 1;
                        eprintln!("ESCAPE: container accepted corrupt bytes after {m}");
                    }
                    Err(_) => {
                        stats.panics += 1;
                        eprintln!("PANIC: container decode panicked after {m}");
                    }
                }
            }
        }
        // Layer 2: one section's decoded bytes, below the checksum.
        let idx = (rng.next_u64() % snap.sections.len() as u64) as usize;
        let section = &snap.sections[idx];
        let m = Mutation::arbitrary(&mut rng, section.bytes.len());
        let Some(mutated) = m.apply(&section.bytes) else {
            stats.skipped += 1;
            continue;
        };
        let mut forged = snap.clone();
        forged.sections[idx].bytes = mutated;
        let tag = section.tag;
        let outcome = std::panic::catch_unwind(|| {
            let mut sim = Simulator::new(cfg.clone(), KernelTrace::new(kernels::mix_int(7)));
            sim.restore(&forged).err()
        });
        match outcome {
            Ok(Some(SimError::SnapshotCorrupt { .. })) => stats.decoder_rejected += 1,
            Ok(Some(e)) => {
                stats.panics += 1; // wrong error class is a contract break
                eprintln!("ESCAPE: section {tag} mutation {m} gave untyped error: {e}");
            }
            Ok(None) => stats.decoder_clean += 1,
            Err(_) => {
                stats.panics += 1;
                eprintln!("PANIC: restore panicked on section {tag} after {m}");
            }
        }
    }
    stats
}

/// CLI entry point for `experiments snapfuzz`.
pub fn run_cli(args: &[String]) -> i32 {
    let mut seed = 0xC0FF_EE5E_ED00_0001u64;
    let mut count = 500u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                let v = v.strip_prefix("0x").unwrap_or(v);
                seed = u64::from_str_radix(v, 16)
                    .or_else(|_| v.parse())
                    .expect("--seed needs a number");
            }
            "--seeds" => {
                count = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds needs a count")
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments snapfuzz [--seeds N] [--seed S]");
                return 0;
            }
            other => {
                eprintln!("unknown snapfuzz flag `{other}` (see --help)");
                return 2;
            }
        }
    }
    let stats = run_campaign(seed, count);
    println!(
        "snapfuzz seed {seed:#x}: {} mutations — container {} rejected / {} accepted, \
         decoders {} rejected / {} clean, {} panics, {} no-ops",
        count,
        stats.container_rejected,
        stats.container_accepted,
        stats.decoder_rejected,
        stats.decoder_clean,
        stats.panics,
        stats.skipped
    );
    if stats.clean() {
        0
    } else {
        eprintln!("snapshot corruption escaped typed handling (see ESCAPE/PANIC lines above)");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_campaign_is_clean_and_exercises_both_layers() {
        let stats = run_campaign(0xDEAD_BEEF, 60);
        assert!(stats.clean(), "{stats:?}");
        assert!(stats.container_rejected > 30, "{stats:?}");
        assert!(
            stats.decoder_rejected + stats.decoder_clean > 30,
            "{stats:?}"
        );
    }

    #[test]
    fn campaign_is_deterministic_in_its_seed() {
        let a = run_campaign(42, 30);
        let b = run_campaign(42, 30);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
