//! A simple event-cost energy proxy.
//!
//! The paper frames replays primarily as an *energy* problem ("replays
//! cost energy in both cases", §1) but reports only issued-µ-op counts as
//! the proxy. This module makes the proxy explicit: each micro-event gets
//! a relative cost (normalized to one issue = 1.0), loosely following the
//! per-structure energy ratios used in microarchitecture literature
//! (register-file and cache accesses dominate; predictor tables are
//! small). Absolute joules are meaningless here — only *ratios between
//! configurations* are, which is exactly how the experiment reports them.

use ss_types::SimStats;

/// Relative event costs (issue event = 1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Scheduler wakeup/select + PRF read + bypass per issue event.
    pub per_issue: f64,
    /// L1D access (read port + tag + data array).
    pub per_l1d_access: f64,
    /// L2 access.
    pub per_l2_access: f64,
    /// DRAM line transfer.
    pub per_dram_access: f64,
    /// Frontend work per fetched-and-dispatched µ-op.
    pub per_dispatch: f64,
    /// Squash bookkeeping per replayed µ-op (recovery-buffer write/read).
    pub per_replay: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            per_issue: 1.0,
            per_l1d_access: 1.2,
            per_l2_access: 6.0,
            per_dram_access: 60.0,
            per_dispatch: 0.8,
            per_replay: 0.5,
        }
    }
}

impl EnergyModel {
    /// Total relative energy of a run.
    pub fn total(&self, s: &SimStats) -> f64 {
        self.per_issue * s.issued_total as f64
            + self.per_l1d_access * s.l1d.accesses as f64
            + self.per_l2_access * (s.l2.accesses + s.l2.prefetches) as f64
            + self.per_dram_access * s.l2.misses as f64
            + self.per_dispatch * s.unique_issued as f64
            + self.per_replay * s.replayed_total() as f64
    }

    /// Relative energy per committed µ-op — the figure of merit the
    /// paper's "issued µ-ops" proxy approximates.
    pub fn per_committed(&self, s: &SimStats) -> f64 {
        if s.committed_uops == 0 {
            0.0
        } else {
            self.total(s) / s.committed_uops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(issued: u64, committed: u64, replayed: u64) -> SimStats {
        SimStats {
            issued_total: issued,
            committed_uops: committed,
            unique_issued: committed,
            replayed_miss: replayed,
            ..Default::default()
        }
    }

    #[test]
    fn replays_cost_energy() {
        let m = EnergyModel::default();
        let clean = stats(1000, 1000, 0);
        let replaying = stats(1500, 1000, 500);
        assert!(m.per_committed(&replaying) > m.per_committed(&clean));
    }

    #[test]
    fn per_committed_normalizes() {
        let m = EnergyModel::default();
        let a = stats(1000, 1000, 0);
        let b = stats(2000, 2000, 0);
        assert!((m.per_committed(&a) - m.per_committed(&b)).abs() < 1e-9);
    }

    #[test]
    fn zero_committed_is_zero() {
        assert_eq!(
            EnergyModel::default().per_committed(&SimStats::default()),
            0.0
        );
    }

    #[test]
    fn memory_hierarchy_costs_ordered() {
        let m = EnergyModel::default();
        assert!(m.per_dram_access > m.per_l2_access);
        assert!(m.per_l2_access > m.per_l1d_access);
    }
}
