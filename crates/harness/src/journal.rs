//! Crash-safe sweep journal: an fsync'd, append-only record of completed
//! sweep cells.
//!
//! A sweep killed mid-flight (power loss, OOM kill, ctrl-C) leaves its
//! on-disk stats cache holding every *completed* cell. The journal adds
//! the durable record of **which** cells completed, so a resumed sweep
//! can report exactly how much work it skipped, and a torn final record
//! (the kill landed mid-write) is detected — never trusted.
//!
//! Format: a header line `ss-sweep-journal v1`, then one record per
//! completed cell: `{fnv1a64(key):016x} {key}`. Every record is
//! self-checksummed, so the only failure a kill can produce — a torn
//! final line — fails its checksum and is dropped (and counted) at open.
//! Records are appended with a single `write` + `fsync` per cell:
//! whole-line atomicity on the append makes one journal shareable by
//! every worker of a parallel sweep, each through its own handle.

use ss_types::persist::fnv1a64;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic tag on the journal's header line.
const JOURNAL_MAGIC: &str = "ss-sweep-journal";

/// Journal format version; bump on incompatible record changes.
const JOURNAL_VERSION: u32 = 1;

/// An append-only, fsync'd journal of completed sweep-cell keys.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: File,
    done: HashSet<String>,
    /// Records dropped at open because their checksum failed — the torn
    /// tail a mid-write kill leaves behind (anything else is corruption).
    pub torn_dropped: u64,
}

impl SweepJournal {
    /// Opens (or creates) the journal at `path`, loading every valid
    /// record already present. Records failing their checksum — the torn
    /// tail of a killed sweep — are dropped and counted, never trusted.
    /// A file that is not a journal at all is moved aside to
    /// `<path>.corrupt` and a fresh journal started.
    pub fn open(path: &Path) -> std::io::Result<SweepJournal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut done = HashSet::new();
        let mut torn = 0u64;
        let header = format!("{JOURNAL_MAGIC} v{JOURNAL_VERSION}");
        let mut fresh = true;
        if let Ok(text) = std::fs::read_to_string(path) {
            let mut lines = text.lines();
            match lines.next() {
                Some(first) if first == header => {
                    fresh = false;
                    for line in lines {
                        match parse_record(line) {
                            Some(key) => {
                                done.insert(key.to_string());
                            }
                            None => torn += 1,
                        }
                    }
                }
                // Not our file (or a torn header): move it aside rather
                // than appending records something else might read back.
                _ => {
                    let quarantine = quarantined(path);
                    std::fs::rename(path, &quarantine)?;
                    eprintln!(
                        "warning: {} is not a sweep journal; moved to {}",
                        path.display(),
                        quarantine.display()
                    );
                }
            }
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if fresh {
            file.write_all(format!("{header}\n").as_bytes())?;
            file.sync_data()?;
        }
        Ok(SweepJournal {
            path: path.to_path_buf(),
            file,
            done,
            torn_dropped: torn,
        })
    }

    /// A second handle on the same journal (for a parallel-sweep worker).
    /// The completed set is carried over; appends from distinct handles
    /// interleave as whole lines.
    pub fn reopen(&self) -> std::io::Result<SweepJournal> {
        let file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(SweepJournal {
            path: self.path.clone(),
            file,
            done: self.done.clone(),
            torn_dropped: 0,
        })
    }

    /// The journal's filesystem path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether `key` is already journaled as completed.
    pub fn contains(&self, key: &str) -> bool {
        self.done.contains(key)
    }

    /// Number of completed cells on record.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// Every completed cell key on record, in arbitrary order. The serve
    /// layer uses this to pre-populate its results cache on startup.
    pub fn completed_cells(&self) -> impl Iterator<Item = &str> {
        self.done.iter().map(String::as_str)
    }

    /// Durably records `key` as completed: one checksummed line, one
    /// `fsync`. Recording an already-journaled key is a no-op.
    pub fn record(&mut self, key: &str) -> std::io::Result<()> {
        if !self.done.insert(key.to_string()) {
            return Ok(());
        }
        let line = format!("{:016x} {key}\n", fnv1a64(key.as_bytes()));
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// Parses one `{checksum:016x} {key}` record; `None` if torn or forged.
fn parse_record(line: &str) -> Option<&str> {
    let (sum, key) = line.split_once(' ')?;
    if sum.len() != 16
        || !sum
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
    {
        return None;
    }
    let want = u64::from_str_radix(sum, 16).ok()?;
    (fnv1a64(key.as_bytes()) == want).then_some(key)
}

/// `<path>.corrupt` (same quarantine convention as the snapshot store).
fn quarantined(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".corrupt");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ss-journal-{tag}-{}", std::process::id()))
    }

    #[test]
    fn records_survive_reopen() {
        let dir = tmp("reopen");
        let path = dir.join("journal.log");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut j = SweepJournal::open(&path).unwrap();
            assert_eq!(j.completed(), 0);
            j.record("A|spec|bench|w1m2").unwrap();
            j.record("B|spec|bench|w1m2").unwrap();
            j.record("A|spec|bench|w1m2").unwrap(); // dedup
        }
        let j = SweepJournal::open(&path).unwrap();
        assert_eq!(j.completed(), 2);
        assert!(j.contains("A|spec|bench|w1m2"));
        assert!(j.contains("B|spec|bench|w1m2"));
        assert_eq!(j.torn_dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_not_trusted() {
        let dir = tmp("torn");
        let path = dir.join("journal.log");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut j = SweepJournal::open(&path).unwrap();
            j.record("good-cell").unwrap();
        }
        // Simulate a kill mid-append: a record missing its tail bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        let half = format!("{:016x} half-writ", fnv1a64("half-written-cell".as_bytes()));
        bytes.extend_from_slice(half.as_bytes());
        std::fs::write(&path, bytes).unwrap();
        let j = SweepJournal::open(&path).unwrap();
        assert_eq!(j.completed(), 1, "only the intact record survives");
        assert!(!j.contains("half-writ"));
        assert_eq!(j.torn_dropped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_quarantined() {
        let dir = tmp("foreign");
        let path = dir.join("journal.log");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "definitely not a journal\n").unwrap();
        let j = SweepJournal::open(&path).unwrap();
        assert_eq!(j.completed(), 0);
        assert!(quarantined(&path).exists(), "original moved aside");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_handles_interleave_whole_records() {
        let dir = tmp("workers");
        let path = dir.join("journal.log");
        let _ = std::fs::remove_dir_all(&dir);
        let mut main = SweepJournal::open(&path).unwrap();
        let mut w1 = main.reopen().unwrap();
        let mut w2 = main.reopen().unwrap();
        w1.record("cell-1").unwrap();
        w2.record("cell-2").unwrap();
        main.record("cell-0").unwrap();
        let back = SweepJournal::open(&path).unwrap();
        assert_eq!(back.completed(), 3);
        assert_eq!(back.torn_dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
