//! The named machine configurations of the paper's evaluation (§3–§5).
//!
//! * `Baseline_d` — conservative scheduling (no speculation on load
//!   latency), ideal dual-ported L1D, issue-to-execute delay `d`.
//! * `SpecSched_d` — speculative scheduling with the Always-Hit policy and
//!   the Alpha-style replay mechanism; `_banked` variants model the
//!   8-bank quadword-interleaved L1D.
//! * `SpecSched_d_Shift` — plus Schedule Shifting (§5.1).
//! * `SpecSched_d_Ctr` / `_Filter` — global-counter / filter+counter
//!   hit/miss gating (§5.2).
//! * `SpecSched_d_Combined` — Shifting + Filter (§5.3).
//! * `SpecSched_d_Crit` — Shifting + Filter + criticality gating (§5.3).

use ss_types::{
    BankInterleaving, BankedL1dConfig, CritCriterion, PredictorConfig, PrfBankConfig, ReplayScheme,
    SchedPolicyKind, ShiftPolicy, SimConfig,
};

/// A named configuration.
#[derive(Debug, Clone)]
pub struct NamedConfig {
    /// Display / cache-key name (stable across runs).
    pub name: String,
    /// The machine description.
    pub config: SimConfig,
}

fn base(delay: u64) -> ss_types::SimConfigBuilder {
    SimConfig::builder().issue_to_execute_delay(delay)
}

/// `Baseline_d`: conservative scheduling, dual-ported L1D.
pub fn baseline(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("Baseline_{delay}"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::Conservative)
            .banked_l1d(false)
            .build(),
    }
}

/// `Baseline_0` restricted to one load per cycle (the first bar of
/// Figure 3).
pub fn baseline_single_load() -> NamedConfig {
    NamedConfig {
        name: "Baseline_0_1ld".to_string(),
        config: base(0)
            .sched_policy(SchedPolicyKind::Conservative)
            .banked_l1d(false)
            .dual_load_issue(false)
            .build(),
    }
}

/// `SpecSched_d`: Always-Hit speculative scheduling.
pub fn spec_sched(delay: u64, banked: bool) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}{}", if banked { "" } else { "_ported" }),
        config: base(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(banked)
            .build(),
    }
}

/// `SpecSched_d_Shift`: plus Schedule Shifting.
pub fn spec_sched_shift(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_Shift"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(true)
            .schedule_shifting(true)
            .build(),
    }
}

/// `SpecSched_d_Ctr`: global-counter hit/miss gating.
pub fn spec_sched_ctr(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_Ctr"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::GlobalCounter)
            .banked_l1d(true)
            .build(),
    }
}

/// `SpecSched_d_Filter`: per-PC filter + global counter.
pub fn spec_sched_filter(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_Filter"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::FilterAndCounter)
            .banked_l1d(true)
            .build(),
    }
}

/// `SpecSched_d_Combined`: Schedule Shifting + filter + counter.
pub fn spec_sched_combined(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_Combined"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::FilterAndCounter)
            .banked_l1d(true)
            .schedule_shifting(true)
            .build(),
    }
}

/// `SpecSched_d_Crit`: Shifting + filter + criticality gating.
pub fn spec_sched_crit(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_Crit"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::Criticality)
            .banked_l1d(true)
            .schedule_shifting(true)
            .build(),
    }
}

/// AB1 ablation: the filter without its silencing bit.
pub fn ablation_no_silence(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_FilterNoSilence"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::FilterNoSilence)
            .banked_l1d(true)
            .build(),
    }
}

/// AB2 ablation: a plain banked cache without the Rivers line buffer.
pub fn ablation_no_line_buffer(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_NoLineBuffer"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .l1d_banking(Some(BankedL1dConfig {
                line_buffer: false,
                ..Default::default()
            }))
            .build(),
    }
}

/// AB3 ablation: bimodal direction prediction instead of TAGE.
pub fn ablation_bimodal(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_Bimodal"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(true)
            .predictor(PredictorConfig {
                bimodal_only: true,
                ..Default::default()
            })
            .build(),
    }
}

/// EXT1: the paper's configurations under a different replay scheme
/// (§2.1 — demonstrates the mechanisms are replay-scheme-agnostic).
pub fn with_replay_scheme(delay: u64, scheme: ReplayScheme, crit: bool) -> NamedConfig {
    let tag = match scheme {
        ReplayScheme::Squash => "Squash",
        ReplayScheme::Selective => "Selective",
        ReplayScheme::Refetch => "Refetch",
    };
    let (policy, shift, name_mid) = if crit {
        (SchedPolicyKind::Criticality, true, "_Crit")
    } else {
        (SchedPolicyKind::AlwaysHit, false, "")
    };
    NamedConfig {
        name: format!("SpecSched_{delay}{name_mid}_{tag}"),
        config: base(delay)
            .sched_policy(policy)
            .banked_l1d(true)
            .schedule_shifting(shift)
            .replay_scheme(scheme)
            .build(),
    }
}

/// EXT2: bank-predicted shifting (Yoaz et al.) instead of unconditional
/// Schedule Shifting.
pub fn spec_sched_shift_predicted(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_ShiftPred"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(true)
            .shift_policy(ShiftPolicy::Predicted)
            .build(),
    }
}

/// EXT3: the criticality policy trained with the QOLD (oldest-in-IQ)
/// criterion instead of ROB-head.
pub fn spec_sched_crit_qold(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_CritQold"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::Criticality)
            .banked_l1d(true)
            .schedule_shifting(true)
            .crit_criterion(CritCriterion::IqOldest)
            .build(),
    }
}

/// EXT4: set-interleaved L1D banks (the paper found word and set
/// interleaving equivalent at equal bank counts).
pub fn ablation_set_interleaved(delay: u64) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_SetInterleaved"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .l1d_banking(Some(BankedL1dConfig {
                interleaving: BankInterleaving::Set,
                ..Default::default()
            }))
            .build(),
    }
}

/// EXT6: the banked-PRF replay source the paper's evaluation assumes away
/// (§4.2/§4.3).
pub fn with_prf_banking(delay: u64, banks: u32, ports: u32) -> NamedConfig {
    NamedConfig {
        name: format!("SpecSched_{delay}_Prf{banks}x{ports}"),
        config: base(delay)
            .sched_policy(SchedPolicyKind::AlwaysHit)
            .banked_l1d(true)
            .prf_banking(Some(PrfBankConfig {
                banks,
                read_ports_per_bank: ports,
            }))
            .build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let configs = [
            baseline(0),
            baseline_single_load(),
            baseline(4),
            spec_sched(4, true),
            spec_sched(4, false),
            spec_sched_shift(4),
            spec_sched_ctr(4),
            spec_sched_filter(4),
            spec_sched_combined(4),
            spec_sched_crit(4),
            ablation_no_silence(4),
            ablation_no_line_buffer(4),
            ablation_bimodal(4),
        ];
        let names: std::collections::HashSet<_> = configs.iter().map(|c| &c.name).collect();
        let ext = [
            with_replay_scheme(4, ReplayScheme::Selective, false),
            with_replay_scheme(4, ReplayScheme::Refetch, false),
            with_replay_scheme(4, ReplayScheme::Selective, true),
            spec_sched_shift_predicted(4),
            spec_sched_crit_qold(4),
            ablation_set_interleaved(4),
        ];
        let ext_names: std::collections::HashSet<_> = ext.iter().map(|c| &c.name).collect();
        assert_eq!(ext_names.len(), ext.len());
        assert!(!ext.iter().any(|c| names.contains(&c.name)));
        assert_eq!(names.len(), configs.len());
        assert_eq!(baseline(4).name, "Baseline_4");
        assert_eq!(spec_sched(4, true).name, "SpecSched_4");
        assert_eq!(spec_sched(4, false).name, "SpecSched_4_ported");
    }

    #[test]
    fn configs_encode_their_mechanisms() {
        assert!(!baseline(4).config.sched_policy.may_speculate());
        assert!(baseline(4).config.l1d_banking.is_none());
        assert!(spec_sched(4, true).config.l1d_banking.is_some());
        assert_eq!(
            spec_sched_shift(4).config.shift_policy,
            ss_types::ShiftPolicy::Always
        );
        assert_eq!(
            spec_sched_filter(4).config.shift_policy,
            ss_types::ShiftPolicy::Off
        );
        assert_eq!(
            spec_sched_crit(4).config.shift_policy,
            ss_types::ShiftPolicy::Always
        );
        assert_eq!(
            spec_sched_crit(4).config.sched_policy,
            SchedPolicyKind::Criticality
        );
        assert!(!baseline_single_load().config.dual_load_issue);
        let nlb = ablation_no_line_buffer(4);
        assert!(!nlb.config.l1d_banking.unwrap().line_buffer);
        assert!(ablation_bimodal(4).config.predictor.bimodal_only);
        assert_eq!(
            with_replay_scheme(4, ReplayScheme::Selective, false)
                .config
                .replay_scheme,
            ReplayScheme::Selective
        );
        assert_eq!(
            spec_sched_shift_predicted(4).config.shift_policy,
            ShiftPolicy::Predicted
        );
        assert_eq!(
            spec_sched_crit_qold(4).config.crit_criterion,
            CritCriterion::IqOldest
        );
        assert_eq!(
            ablation_set_interleaved(4)
                .config
                .l1d_banking
                .unwrap()
                .interleaving,
            BankInterleaving::Set
        );
    }
}
