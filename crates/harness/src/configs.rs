//! The named machine configurations of the paper's evaluation (§3–§5),
//! built around one typed name: [`ConfigSpec`].
//!
//! A `ConfigSpec` is `{ family, delay, variant }`; its [`Display`] form
//! is the paper's configuration name (`Baseline_4`, `SpecSched_4_Crit`,
//! …) and its [`FromStr`] parses that name back — the two round-trip for
//! every configuration the harness can name. Display names, session
//! cache keys, and report row labels are all derived from this one type;
//! there is no stringly-typed naming anywhere else.
//!
//! * `Baseline_d` — conservative scheduling (no speculation on load
//!   latency), ideal dual-ported L1D, issue-to-execute delay `d`.
//! * `SpecSched_d` — speculative scheduling with the Always-Hit policy and
//!   the Alpha-style replay mechanism; `_ported` variants model the ideal
//!   dual-ported L1D instead of the 8-bank quadword-interleaved one.
//! * `SpecSched_d_Shift` — plus Schedule Shifting (§5.1).
//! * `SpecSched_d_Ctr` / `_Filter` — global-counter / filter+counter
//!   hit/miss gating (§5.2).
//! * `SpecSched_d_Combined` — Shifting + Filter (§5.3).
//! * `SpecSched_d_Crit` — Shifting + Filter + criticality gating (§5.3).
//! * ablation and extension variants (`_FilterNoSilence`, `_NoLineBuffer`,
//!   `_Bimodal`, `_Squash`/`_Selective`/`_Refetch`, `_ShiftPred`,
//!   `_CritQold`, `_SetInterleaved`, `_Prf4x2`, …).

pub use ss_types::config_spec::{
    ConfigFamily, ConfigSpec, ConfigVariant, NamedConfig, ParseConfigError,
};
use ss_types::ReplayScheme;

fn spec(family: ConfigFamily, delay: u64, variant: ConfigVariant) -> NamedConfig {
    ConfigSpec {
        family,
        delay,
        variant,
    }
    .named()
}

/// `Baseline_d`: conservative scheduling, dual-ported L1D.
pub fn baseline(delay: u64) -> NamedConfig {
    spec(ConfigFamily::Baseline, delay, ConfigVariant::Plain)
}

/// `Baseline_0_1ld`: restricted to one load per cycle (the first bar of
/// Figure 3).
pub fn baseline_single_load() -> NamedConfig {
    spec(ConfigFamily::Baseline, 0, ConfigVariant::SingleLoad)
}

/// `SpecSched_d`: Always-Hit speculative scheduling.
pub fn spec_sched(delay: u64, banked: bool) -> NamedConfig {
    let variant = if banked {
        ConfigVariant::Plain
    } else {
        ConfigVariant::Ported
    };
    spec(ConfigFamily::SpecSched, delay, variant)
}

/// `SpecSched_d_Shift`: plus Schedule Shifting.
pub fn spec_sched_shift(delay: u64) -> NamedConfig {
    spec(ConfigFamily::SpecSched, delay, ConfigVariant::Shift)
}

/// `SpecSched_d_Ctr`: global-counter hit/miss gating.
pub fn spec_sched_ctr(delay: u64) -> NamedConfig {
    spec(ConfigFamily::SpecSched, delay, ConfigVariant::Ctr)
}

/// `SpecSched_d_Filter`: per-PC filter + global counter.
pub fn spec_sched_filter(delay: u64) -> NamedConfig {
    spec(ConfigFamily::SpecSched, delay, ConfigVariant::Filter)
}

/// `SpecSched_d_Combined`: Schedule Shifting + filter + counter.
pub fn spec_sched_combined(delay: u64) -> NamedConfig {
    spec(ConfigFamily::SpecSched, delay, ConfigVariant::Combined)
}

/// `SpecSched_d_Crit`: Shifting + filter + criticality gating.
pub fn spec_sched_crit(delay: u64) -> NamedConfig {
    spec(ConfigFamily::SpecSched, delay, ConfigVariant::Crit)
}

/// AB1 ablation: the filter without its silencing bit.
pub fn ablation_no_silence(delay: u64) -> NamedConfig {
    spec(
        ConfigFamily::SpecSched,
        delay,
        ConfigVariant::FilterNoSilence,
    )
}

/// AB2 ablation: a plain banked cache without the Rivers line buffer.
pub fn ablation_no_line_buffer(delay: u64) -> NamedConfig {
    spec(ConfigFamily::SpecSched, delay, ConfigVariant::NoLineBuffer)
}

/// AB3 ablation: bimodal direction prediction instead of TAGE.
pub fn ablation_bimodal(delay: u64) -> NamedConfig {
    spec(ConfigFamily::SpecSched, delay, ConfigVariant::Bimodal)
}

/// EXT1: the paper's configurations under a different replay scheme
/// (§2.1 — demonstrates the mechanisms are replay-scheme-agnostic).
pub fn with_replay_scheme(delay: u64, scheme: ReplayScheme, crit: bool) -> NamedConfig {
    let variant = if crit {
        ConfigVariant::CritReplay(scheme)
    } else {
        ConfigVariant::Replay(scheme)
    };
    spec(ConfigFamily::SpecSched, delay, variant)
}

/// EXT2: bank-predicted shifting (Yoaz et al.) instead of unconditional
/// Schedule Shifting.
pub fn spec_sched_shift_predicted(delay: u64) -> NamedConfig {
    spec(ConfigFamily::SpecSched, delay, ConfigVariant::ShiftPred)
}

/// EXT3: the criticality policy trained with the QOLD (oldest-in-IQ)
/// criterion instead of ROB-head.
pub fn spec_sched_crit_qold(delay: u64) -> NamedConfig {
    spec(ConfigFamily::SpecSched, delay, ConfigVariant::CritQold)
}

/// EXT4: set-interleaved L1D banks (the paper found word and set
/// interleaving equivalent at equal bank counts).
pub fn ablation_set_interleaved(delay: u64) -> NamedConfig {
    spec(
        ConfigFamily::SpecSched,
        delay,
        ConfigVariant::SetInterleaved,
    )
}

/// EXT6: the banked-PRF replay source the paper's evaluation assumes away
/// (§4.2/§4.3).
pub fn with_prf_banking(delay: u64, banks: u32, ports: u32) -> NamedConfig {
    spec(
        ConfigFamily::SpecSched,
        delay,
        ConfigVariant::Prf { banks, ports },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::{BankInterleaving, CritCriterion, SchedPolicyKind, ShiftPolicy};

    #[test]
    fn names_are_stable_and_distinct() {
        let configs = [
            baseline(0),
            baseline_single_load(),
            baseline(4),
            spec_sched(4, true),
            spec_sched(4, false),
            spec_sched_shift(4),
            spec_sched_ctr(4),
            spec_sched_filter(4),
            spec_sched_combined(4),
            spec_sched_crit(4),
            ablation_no_silence(4),
            ablation_no_line_buffer(4),
            ablation_bimodal(4),
        ];
        let names: std::collections::HashSet<_> = configs.iter().map(|c| &c.name).collect();
        let ext = [
            with_replay_scheme(4, ReplayScheme::Selective, false),
            with_replay_scheme(4, ReplayScheme::Refetch, false),
            with_replay_scheme(4, ReplayScheme::Selective, true),
            spec_sched_shift_predicted(4),
            spec_sched_crit_qold(4),
            ablation_set_interleaved(4),
        ];
        let ext_names: std::collections::HashSet<_> = ext.iter().map(|c| &c.name).collect();
        assert_eq!(ext_names.len(), ext.len());
        assert!(!ext.iter().any(|c| names.contains(&c.name)));
        assert_eq!(names.len(), configs.len());
        assert_eq!(baseline(4).name, "Baseline_4");
        assert_eq!(spec_sched(4, true).name, "SpecSched_4");
        assert_eq!(spec_sched(4, false).name, "SpecSched_4_ported");
        assert_eq!(baseline_single_load().name, "Baseline_0_1ld");
        assert_eq!(
            with_replay_scheme(4, ReplayScheme::Selective, true).name,
            "SpecSched_4_Crit_Selective"
        );
        assert_eq!(with_prf_banking(4, 4, 2).name, "SpecSched_4_Prf4x2");
    }

    #[test]
    fn configs_encode_their_mechanisms() {
        assert!(!baseline(4).config.sched_policy.may_speculate());
        assert!(baseline(4).config.l1d_banking.is_none());
        assert!(spec_sched(4, true).config.l1d_banking.is_some());
        assert_eq!(
            spec_sched_shift(4).config.shift_policy,
            ss_types::ShiftPolicy::Always
        );
        assert_eq!(
            spec_sched_filter(4).config.shift_policy,
            ss_types::ShiftPolicy::Off
        );
        assert_eq!(
            spec_sched_crit(4).config.shift_policy,
            ss_types::ShiftPolicy::Always
        );
        assert_eq!(
            spec_sched_crit(4).config.sched_policy,
            SchedPolicyKind::Criticality
        );
        assert!(!baseline_single_load().config.dual_load_issue);
        let nlb = ablation_no_line_buffer(4);
        assert!(!nlb.config.l1d_banking.unwrap().line_buffer);
        assert!(ablation_bimodal(4).config.predictor.bimodal_only);
        assert_eq!(
            with_replay_scheme(4, ReplayScheme::Selective, false)
                .config
                .replay_scheme,
            ReplayScheme::Selective
        );
        assert_eq!(
            spec_sched_shift_predicted(4).config.shift_policy,
            ShiftPolicy::Predicted
        );
        assert_eq!(
            spec_sched_crit_qold(4).config.crit_criterion,
            CritCriterion::IqOldest
        );
        assert_eq!(
            ablation_set_interleaved(4)
                .config
                .l1d_banking
                .unwrap()
                .interleaving,
            BankInterleaving::Set
        );
    }

    #[test]
    fn parsed_spec_builds_the_same_machine_as_the_constructor() {
        for (name, built) in [
            ("Baseline_4", baseline(4)),
            ("SpecSched_4_Crit", spec_sched_crit(4)),
            ("SpecSched_2_ported", spec_sched(2, false)),
            ("SpecSched_6_Prf2x1", with_prf_banking(6, 2, 1)),
        ] {
            let parsed = name.parse::<ConfigSpec>().expect(name).named();
            assert_eq!(parsed.name, built.name);
            assert_eq!(parsed.config, built.config);
        }
    }
}
