//! Tabular reporting: ASCII tables (the rows/series the paper's figures
//! plot), CSV emission, and the geometric-mean helper the paper uses for
//! averaging speedups.

use std::fmt::Write as _;

/// Geometric mean of a slice of positive values (the paper averages
/// speedups with gmean — §5).
///
/// # Panics
///
/// Panics if any value is non-positive or the slice is empty.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gmean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "gmean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// A simple column-aligned table with a title, rendered as ASCII and CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringify values with [`fmt3`] or `format!`).
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the ASCII form.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders the CSV form.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }
}

/// Renders a horizontal ASCII bar chart (the terminal rendition of one
/// figure series). Values are scaled so the longest bar spans the full
/// width; a `|` tick marks 1.0 when the data straddles it (normalized
/// performance charts).
pub fn bar_chart(title: &str, items: &[(&str, f64)]) -> String {
    use std::fmt::Write as _;
    const WIDTH: f64 = 50.0;
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    if items.is_empty() {
        return out;
    }
    let max = items
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let tick = if items.iter().any(|(_, v)| *v < 1.0) && max >= 1.0 {
        Some((1.0 / max * WIDTH).round() as usize)
    } else {
        None
    };
    for (label, v) in items {
        let len = ((v / max) * WIDTH).round().max(0.0) as usize;
        let mut bar: Vec<char> = std::iter::repeat_n('#', len).collect();
        if let Some(t) = tick {
            while bar.len() <= t {
                bar.push(' ');
            }
            if bar[t] == ' ' {
                bar[t] = '|';
            }
        }
        let bar: String = bar.into_iter().collect();
        let _ = writeln!(out, "{label:>label_w$} {bar} {v:.3}");
    }
    out
}

/// Formats a ratio/IPC with three decimals.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// A rendered experiment: one or more tables plus free-form notes that
/// summarize the paper-vs-measured comparison.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment identifier (e.g. "fig5").
    pub id: &'static str,
    /// The tables regenerating the figure/table's rows/series.
    pub tables: Vec<Table>,
    /// ASCII bar charts rendering the headline series.
    pub charts: Vec<String>,
    /// Headline comparisons ("paper: −74.8% RpldBank, measured: −81%").
    pub notes: Vec<String>,
}

impl Report {
    /// Renders everything as human-readable text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==== {} ====", self.id);
        for t in &self.tables {
            out.push_str(&t.to_ascii());
            out.push('\n');
        }
        for c in &self.charts {
            out.push_str(c);
            out.push('\n');
        }
        for n in &self.notes {
            let _ = writeln!(out, "  * {n}");
        }
        out
    }

    /// Writes each table as `<outdir>/<id>_<n>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csvs(&self, outdir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(outdir)?;
        for (i, t) in self.tables.iter().enumerate() {
            let path = outdir.join(format!("{}_{}.csv", self.id, i));
            std::fs::write(path, t.to_csv())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // gmean <= amean
        let vals = [0.5, 1.5, 2.5];
        assert!(gmean(&vals) < vals.iter().sum::<f64>() / 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[1.0, 0.0]);
    }

    #[test]
    fn table_renders_aligned_ascii_and_csv() {
        let mut t = Table::new("demo", &["bench", "ipc"]);
        t.row(vec!["a_long_name".into(), fmt3(1.0)]);
        t.row(vec!["b".into(), fmt3(12.345)]);
        let ascii = t.to_ascii();
        assert!(ascii.contains("## demo"));
        assert!(ascii.contains("a_long_name"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().next(), Some("bench,ipc"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn report_renders_tables_and_notes() {
        let mut t = Table::new("x", &["c"]);
        t.row(vec!["1".into()]);
        let r = Report {
            id: "fig0",
            tables: vec![t],
            charts: vec![bar_chart("series", &[("a", 1.0)])],
            notes: vec!["paper vs us".into()],
        };
        let text = r.to_text();
        assert!(text.contains("==== fig0 ===="));
        assert!(text.contains("paper vs us"));
        assert!(text.contains("## series"));
    }

    #[test]
    fn bar_chart_scales_and_ticks() {
        let chart = bar_chart("ipc vs B0", &[("fast", 1.0), ("slow", 0.5)]);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        let fast_bar = lines[1].matches('#').count();
        let slow_bar = lines[2].matches('#').count();
        assert_eq!(fast_bar, 50, "longest bar spans the width");
        assert_eq!(slow_bar, 25, "bars scale linearly");
        assert!(
            chart.contains('|'),
            "the 1.0 tick appears when values straddle it"
        );
    }

    #[test]
    fn bar_chart_handles_empty_and_flat() {
        assert!(bar_chart("empty", &[]).contains("## empty"));
        let flat = bar_chart("flat", &[("a", 2.0), ("b", 2.0)]);
        // skip the "## flat" title line when counting bar characters
        let bars: usize = flat.lines().skip(1).map(|l| l.matches('#').count()).sum();
        assert_eq!(bars, 100);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(pct(0.748), "74.8%");
    }
}
