//! Deterministic differential fuzz campaign with automatic shrinking.
//!
//! The campaign samples random `(SimConfig × kernel × FaultPlan)` cells
//! — every cell derived from a single `u64` seed, so the whole run is
//! reproducible from the campaign seed alone — and executes each one
//! with the in-order golden model attached ([`ss_oracle::InOrderModel`]
//! plus [`DiffChecker`]). Any divergence, panic, deadlock, or invariant
//! violation is fed to an automatic **shrinker** that minimizes the
//! failing cell (halve the run length, drop fault windows, neutralize
//! config knobs one at a time, keeping each mutation only while the same
//! failure class persists) and writes a plain-text repro file that
//! `experiments fuzz --repro <file>` replays.
//!
//! Every cell runs with a bounded [`RingSink`] trace attached, so a
//! failing cell's [`DivergenceReport`](ss_types::DivergenceReport) /
//! [`DeadlockReport`](ss_types::DeadlockReport) carries the trailing
//! pipeline-event window and each repro file gets a
//! `repro-<seed>.trace.txt` pipeview sidecar — a replayable picture of
//! the cycles leading up to the failure.
//!
//! Cells are sharded across worker threads with the same
//! [`ss_types::exec`] pool the experiment matrix uses; shrinking runs
//! sequentially afterwards (failures are rare and shrink runs are
//! cheap).

use crate::session::CellFailure;
use ss_core::{FaultPlan, RunLength, RunRequest};
use ss_trace::{pipeview, RingSink, TraceEvent};
use ss_types::exec::{scoped_workers, WorkQueue};
use ss_types::{
    ReplayScheme, SchedPolicyKind, ShiftPolicy, SimConfig, SimError, SplitMix64, Xoshiro256,
};
use ss_workloads::{gen, KernelSpec};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic tag leading every repro file.
const REPRO_MAGIC: &str = "ss-fuzz-repro";
/// Repro file format version.
const REPRO_VERSION: u32 = 1;
/// Commit-log ring size used for divergence context in fuzz cells.
const FUZZ_COMMIT_LOG_WINDOW: u32 = 32;
/// Shrinker floor for the run length (committed µ-ops).
const MIN_RUN: u64 = 64;

/// One injected-fault window of a fuzz cell, in plain-`u64` form so it
/// serializes trivially into repro files.
///
/// `kind` is 0 = latency spike, 1 = bank-conflict burst, 2 = replay
/// storm; `param` is the spike/burst magnitude (ignored for storms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Fault kind tag (0 spike, 1 bank burst, 2 storm).
    pub kind: u8,
    /// First active cycle.
    pub start: u64,
    /// Window length in cycles (always > 0).
    pub duration: u64,
    /// Magnitude (extra/delay cycles) for spike/burst kinds.
    pub param: u64,
}

impl FaultSpec {
    fn name(&self) -> &'static str {
        match self.kind {
            0 => "spike",
            1 => "bank",
            _ => "storm",
        }
    }
}

/// One fully-derived fuzz cell: a machine configuration, a generated
/// kernel, a fault plan, and a run length. Everything is plain data so a
/// *shrunk* cell (which no longer matches its seed's derivation) still
/// round-trips through a repro file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCell {
    /// The seed this cell was originally derived from.
    pub seed: u64,
    /// Issue-to-execute delay (paper sweep: 0, 2, 4, 6).
    pub delay: u64,
    /// Wakeup policy.
    pub policy: SchedPolicyKind,
    /// Replay scheme.
    pub replay: ReplayScheme,
    /// Schedule-shifting policy.
    pub shift: ShiftPolicy,
    /// Banked L1D model on/off.
    pub banked: bool,
    /// Dual-load issue on/off.
    pub dual_load: bool,
    /// Seed for the generated kernel ([`gen::gen_kernel`]).
    pub kernel_seed: u64,
    /// Injected-fault windows (non-overlapping, positive duration).
    pub faults: Vec<FaultSpec>,
    /// Committed µ-ops to run.
    pub run: u64,
    /// Test hook: arm the intentionally-seeded wakeup-recovery bug
    /// ([`ss_core::Simulator::seed_wakeup_bug`]) so oracle "teeth" tests have a
    /// real divergence to find.
    pub seed_bug: bool,
}

impl FuzzCell {
    /// Derives a complete cell from `seed`. Deterministic: the same seed
    /// always yields the same cell.
    pub fn from_seed(seed: u64, run: u64, seed_bug: bool) -> FuzzCell {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let delay = [0, 2, 4, 6][rng.next_below(4) as usize];
        let policy = [
            SchedPolicyKind::Conservative,
            SchedPolicyKind::AlwaysHit,
            SchedPolicyKind::GlobalCounter,
            SchedPolicyKind::FilterAndCounter,
            SchedPolicyKind::FilterNoSilence,
            SchedPolicyKind::Criticality,
        ][rng.next_below(6) as usize];
        let replay = [
            ReplayScheme::Squash,
            ReplayScheme::Selective,
            ReplayScheme::Refetch,
        ][rng.next_below(3) as usize];
        let shift = [
            ShiftPolicy::Off,
            ShiftPolicy::Always,
            ShiftPolicy::Predicted,
        ][rng.next_below(3) as usize];
        let banked = rng.next_bool();
        let dual_load = rng.next_bool();
        let kernel_seed = rng.next_u64();
        // Non-overlapping windows by construction: each one starts past
        // the previous window's end.
        let mut faults = Vec::new();
        let mut cursor = 200;
        for _ in 0..rng.next_below(3) {
            let start = cursor + rng.next_below(2_000);
            let duration = 1 + rng.next_below(500);
            faults.push(FaultSpec {
                kind: rng.next_below(3) as u8,
                start,
                duration,
                param: 1 + rng.next_below(24),
            });
            cursor = start + duration;
        }
        FuzzCell {
            seed,
            delay,
            policy,
            replay,
            shift,
            banked,
            dual_load,
            kernel_seed,
            faults,
            run,
            seed_bug,
        }
    }

    /// The machine configuration this cell runs.
    pub fn config(&self) -> Result<SimConfig, SimError> {
        SimConfig::builder()
            .issue_to_execute_delay(self.delay)
            .sched_policy(self.policy)
            .replay_scheme(self.replay)
            .shift_policy(self.shift)
            .banked_l1d(self.banked)
            .dual_load_issue(self.dual_load)
            .commit_log_window(FUZZ_COMMIT_LOG_WINDOW)
            .watchdog_cycles(100_000)
            .invariant_check_interval(5_000)
            .try_build()
    }

    /// The generated kernel this cell runs.
    pub fn kernel(&self) -> KernelSpec {
        let mut rng = Xoshiro256::seed_from_u64(self.kernel_seed);
        gen::gen_kernel(&mut rng)
    }

    /// The fault plan this cell injects (valid by construction; the
    /// shrinker only ever removes windows).
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            plan = match f.kind {
                0 => plan.latency_spike(f.start, f.duration, f.param),
                1 => plan.bank_conflict_burst(f.start, f.duration, f.param),
                _ => plan.replay_storm(f.start, f.duration),
            };
        }
        plan
    }

    /// Canonical cell key, analogous to [`crate::Session::cell_key`]:
    /// every knob that defines the cell, so a reported failure is
    /// reproducible from the report alone.
    pub fn cell_key(&self) -> String {
        let faults: Vec<String> = self
            .faults
            .iter()
            .map(|f| format!("{}@{}+{}x{}", f.name(), f.start, f.duration, f.param))
            .collect();
        format!(
            "fuzz|seed={:#x}|d{}|{:?}|{:?}|{:?}|banked={}|dual={}|k={:#x}|faults=[{}]|r{}{}",
            self.seed,
            self.delay,
            self.policy,
            self.replay,
            self.shift,
            self.banked,
            self.dual_load,
            self.kernel_seed,
            faults.join(","),
            self.run,
            if self.seed_bug { "|seeded-bug" } else { "" },
        )
    }

    /// Short human-readable configuration summary (report `config`
    /// column).
    pub fn summary(&self) -> String {
        format!(
            "fuzz[d{} {:?} {:?} {:?}{}{}]",
            self.delay,
            self.policy,
            self.replay,
            self.shift,
            if self.banked { " banked" } else { "" },
            if self.dual_load { " dual" } else { "" },
        )
    }
}

/// Runs one cell with the differential oracle attached. `Ok(())` means
/// the cell completed with every commit verified; panics are caught and
/// come back as [`SimError::Panicked`].
pub fn run_cell(cell: &FuzzCell) -> Result<(), SimError> {
    let cfg = cell.config()?;
    let spec = cell.kernel();
    let plan = cell.fault_plan();
    let run = cell.run;
    let seed_bug = cell.seed_bug;
    let outcome = std::panic::catch_unwind(move || -> Result<(), SimError> {
        // Bounded ring trace: failure reports carry the trailing
        // pipeline-event window at negligible steady-state cost.
        let mut req = RunRequest::kernel(spec)
            .custom_config(cfg)
            .length(RunLength {
                warmup: 0,
                measure: run,
            })
            .checked(true)
            .ring_trace(RingSink::DEFAULT_CAPACITY)
            .faults(plan);
        if seed_bug {
            req = req.seed_wakeup_bug();
        }
        req.execute().map(|_| ())
    });
    match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload")
                .to_string();
            Err(SimError::Panicked(msg))
        }
    }
}

/// Whether two errors are the same failure class (the shrinker's
/// invariant: a mutation is kept only while the class persists).
fn same_class(a: &SimError, b: &SimError) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
}

/// The first-divergence commit index, if the error is a divergence.
pub fn divergence_seq(e: &SimError) -> Option<u64> {
    match e {
        SimError::Divergence(r) => Some(r.seq),
        _ => None,
    }
}

/// The nearest-checkpoint path a failure report carries, if any.
pub fn error_checkpoint(e: &SimError) -> Option<&str> {
    match e {
        SimError::Divergence(r) => r.checkpoint.as_deref(),
        SimError::Deadlock(r) => r.checkpoint.as_deref(),
        _ => None,
    }
}

/// The trailing pipeline-trace window a failure report carries (empty
/// for error classes that don't capture one).
pub fn error_trace(e: &SimError) -> &[TraceEvent] {
    match e {
        SimError::Divergence(r) => &r.trace,
        SimError::Deadlock(r) => &r.trace,
        _ => &[],
    }
}

/// Automatic shrinker: minimizes `cell` while the same failure class
/// persists. Deterministic (each candidate is one fresh `run_cell`).
///
/// The shrink order is: (1) halve the run length, (2) drop fault windows
/// one at a time (youngest first), (3) neutralize config knobs one at a
/// time toward the defaults (shift off, squash replay, unbanked,
/// single-load, always-hit wakeup). Returns the minimal cell and the
/// error it still produces.
pub fn shrink(cell: &FuzzCell, baseline: &SimError) -> (FuzzCell, SimError) {
    let mut best = cell.clone();
    let mut err = baseline.clone();
    let try_keep = |cand: FuzzCell, best: &mut FuzzCell, err: &mut SimError| -> bool {
        match run_cell(&cand) {
            Err(e) if same_class(&e, baseline) => {
                *best = cand;
                *err = e;
                true
            }
            _ => false,
        }
    };

    // 1. Halve the run length while the failure persists.
    loop {
        let half = best.run / 2;
        if half < MIN_RUN {
            break;
        }
        let cand = FuzzCell {
            run: half,
            ..best.clone()
        };
        if !try_keep(cand, &mut best, &mut err) {
            break;
        }
    }
    // 2. Drop fault windows one at a time.
    let mut i = best.faults.len();
    while i > 0 {
        i -= 1;
        let mut cand = best.clone();
        cand.faults.remove(i);
        try_keep(cand, &mut best, &mut err);
    }
    // 3. Neutralize config knobs one at a time.
    let knobs: [fn(&mut FuzzCell); 5] = [
        |c| c.shift = ShiftPolicy::Off,
        |c| c.replay = ReplayScheme::Squash,
        |c| c.banked = false,
        |c| c.dual_load = false,
        |c| c.policy = SchedPolicyKind::AlwaysHit,
    ];
    for knob in knobs {
        let mut cand = best.clone();
        knob(&mut cand);
        if cand != best {
            try_keep(cand, &mut best, &mut err);
        }
    }
    (best, err)
}

// ---------------------------------------------------------------------
// repro files
// ---------------------------------------------------------------------

/// Serializes a failing cell (plus its campaign context and recorded
/// first-divergence seq, if any) into the plain-text repro format.
pub fn write_repro(cell: &FuzzCell, campaign_seed: u64, error: &SimError) -> String {
    let mut out = format!("{REPRO_MAGIC} v{REPRO_VERSION}\n");
    out += &format!("campaign_seed {:#x}\n", campaign_seed);
    out += &format!("cell_seed {:#x}\n", cell.seed);
    out += &format!("run {}\n", cell.run);
    out += &format!("delay {}\n", cell.delay);
    out += &format!("policy {:?}\n", cell.policy);
    out += &format!("replay {:?}\n", cell.replay);
    out += &format!("shift {:?}\n", cell.shift);
    out += &format!("banked {}\n", u8::from(cell.banked));
    out += &format!("dual_load {}\n", u8::from(cell.dual_load));
    out += &format!("kernel_seed {:#x}\n", cell.kernel_seed);
    for f in &cell.faults {
        out += &format!(
            "fault {} {} {} {}\n",
            f.name(),
            f.start,
            f.duration,
            f.param
        );
    }
    out += &format!("seed_bug {}\n", u8::from(cell.seed_bug));
    if let Some(seq) = divergence_seq(error) {
        out += &format!("divergence_seq {seq}\n");
    }
    if let Some(cp) = error_checkpoint(error) {
        out += &format!("checkpoint {cp}\n");
    }
    let first_line = error.to_string();
    let first_line = first_line.lines().next().unwrap_or("").to_string();
    out += &format!("error {first_line}\n");
    out
}

/// Parses a repro file back into a cell and the recorded
/// first-divergence seq (if the original failure was a divergence).
pub fn parse_repro(text: &str) -> Result<(FuzzCell, Option<u64>), String> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if header != format!("{REPRO_MAGIC} v{REPRO_VERSION}") {
        return Err(format!(
            "not a {REPRO_MAGIC} v{REPRO_VERSION} file: `{header}`"
        ));
    }
    let mut cell = FuzzCell {
        seed: 0,
        delay: 4,
        policy: SchedPolicyKind::AlwaysHit,
        replay: ReplayScheme::Squash,
        shift: ShiftPolicy::Off,
        banked: false,
        dual_load: false,
        kernel_seed: 1,
        faults: Vec::new(),
        run: 1_000,
        seed_bug: false,
    };
    let mut recorded_seq = None;
    let parse_u64 = |v: &str| -> Result<u64, String> {
        let v = v.trim();
        if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|e| format!("bad number `{v}`: {e}"))
        } else {
            v.parse().map_err(|e| format!("bad number `{v}`: {e}"))
        }
    };
    for line in lines {
        let Some((key, val)) = line.split_once(' ') else {
            continue;
        };
        match key {
            "campaign_seed" => {} // informational
            "cell_seed" => cell.seed = parse_u64(val)?,
            "run" => cell.run = parse_u64(val)?,
            "delay" => cell.delay = parse_u64(val)?,
            "policy" => {
                cell.policy = match val {
                    "Conservative" => SchedPolicyKind::Conservative,
                    "AlwaysHit" => SchedPolicyKind::AlwaysHit,
                    "GlobalCounter" => SchedPolicyKind::GlobalCounter,
                    "FilterAndCounter" => SchedPolicyKind::FilterAndCounter,
                    "FilterNoSilence" => SchedPolicyKind::FilterNoSilence,
                    "Criticality" => SchedPolicyKind::Criticality,
                    other => return Err(format!("unknown policy `{other}`")),
                }
            }
            "replay" => {
                cell.replay = match val {
                    "Squash" => ReplayScheme::Squash,
                    "Selective" => ReplayScheme::Selective,
                    "Refetch" => ReplayScheme::Refetch,
                    other => return Err(format!("unknown replay scheme `{other}`")),
                }
            }
            "shift" => {
                cell.shift = match val {
                    "Off" => ShiftPolicy::Off,
                    "Always" => ShiftPolicy::Always,
                    "Predicted" => ShiftPolicy::Predicted,
                    other => return Err(format!("unknown shift policy `{other}`")),
                }
            }
            "banked" => cell.banked = parse_u64(val)? != 0,
            "dual_load" => cell.dual_load = parse_u64(val)? != 0,
            "kernel_seed" => cell.kernel_seed = parse_u64(val)?,
            "seed_bug" => cell.seed_bug = parse_u64(val)? != 0,
            "divergence_seq" => recorded_seq = Some(parse_u64(val)?),
            "fault" => {
                let parts: Vec<&str> = val.split_whitespace().collect();
                let [name, start, duration, param] = parts[..] else {
                    return Err(format!("malformed fault line `{line}`"));
                };
                let kind = match name {
                    "spike" => 0,
                    "bank" => 1,
                    "storm" => 2,
                    other => return Err(format!("unknown fault kind `{other}`")),
                };
                cell.faults.push(FaultSpec {
                    kind,
                    start: parse_u64(start)?,
                    duration: parse_u64(duration)?,
                    param: parse_u64(param)?,
                });
            }
            "checkpoint" => {} // informational (nearest warm-state snapshot)
            "error" => {}      // informational
            other => return Err(format!("unknown repro key `{other}`")),
        }
    }
    Ok((cell, recorded_seq))
}

/// Result of replaying a repro file.
#[derive(Debug)]
pub struct ReproResult {
    /// The replayed cell.
    pub cell: FuzzCell,
    /// First-divergence seq recorded in the file, if any.
    pub recorded_seq: Option<u64>,
    /// What the replay produced (`Ok` = the cell ran clean).
    pub outcome: Result<(), SimError>,
    /// Whether the replay reproduced the recorded failure: some failure
    /// occurred and, when a divergence seq was recorded, the replay
    /// diverged at the same commit index.
    pub reproduced: bool,
}

/// Replays a repro file.
pub fn replay_repro(text: &str) -> Result<ReproResult, String> {
    let (cell, recorded_seq) = parse_repro(text)?;
    let outcome = run_cell(&cell);
    let reproduced = match (&outcome, recorded_seq) {
        (Err(e), Some(seq)) => divergence_seq(e) == Some(seq),
        (Err(_), None) => true,
        (Ok(()), _) => false,
    };
    Ok(ReproResult {
        cell,
        recorded_seq,
        outcome,
        reproduced,
    })
}

// ---------------------------------------------------------------------
// campaign
// ---------------------------------------------------------------------

/// Options for one fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Seed every cell seed derives from.
    pub campaign_seed: u64,
    /// Number of cells to run.
    pub cells: u64,
    /// Committed µ-ops per cell.
    pub run: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Directory for repro files (`None` = don't write any).
    pub out_dir: Option<PathBuf>,
    /// Test hook: arm the seeded wakeup bug in every cell.
    pub seed_bug: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            campaign_seed: 0xD1FF_5EED,
            cells: 64,
            run: 10_000,
            jobs: 1,
            out_dir: None,
            seed_bug: false,
        }
    }
}

/// One failing cell of a campaign, after shrinking.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// The original failing cell.
    pub cell: FuzzCell,
    /// The error the original cell produced.
    pub error: SimError,
    /// The shrunk (minimal) cell.
    pub shrunk: FuzzCell,
    /// The error the shrunk cell produces (same class as `error`).
    pub shrunk_error: SimError,
    /// Repro file written for the shrunk cell, if an output directory
    /// was configured.
    pub repro_path: Option<PathBuf>,
}

/// The result of a whole campaign.
#[derive(Debug)]
pub struct FuzzReport {
    /// The campaign seed the run derived from.
    pub campaign_seed: u64,
    /// Cells executed.
    pub cells: u64,
    /// Failing cells, shrunk, in cell-index order.
    pub outcomes: Vec<FuzzOutcome>,
    /// Session-style failure records (config summary, kernel name,
    /// canonical cell key, and the cell seed) for report integration.
    pub failures: Vec<CellFailure>,
}

impl FuzzReport {
    /// Human-readable lines describing every failure (mirrors
    /// [`crate::Session::failure_notes`]).
    pub fn failure_notes(&self) -> Vec<String> {
        self.failures
            .iter()
            .map(|f| {
                let seed = match f.fuzz_seed {
                    Some(s) => format!(" [fuzz seed {s:#x}]"),
                    None => String::new(),
                };
                format!(
                    "FAILED {} × {}: {} [cell {}]{seed}",
                    f.config, f.bench, f.error, f.cell_key
                )
            })
            .collect()
    }
}

/// Runs a deterministic fuzz campaign: `opts.cells` cells derived from
/// `opts.campaign_seed`, sharded over `opts.jobs` workers, each checked
/// against the golden model. Failing cells are shrunk and (when
/// `opts.out_dir` is set) written as repro files
/// `fuzz/repro-<cell_seed>.txt` under the output directory.
pub fn run_campaign(opts: &FuzzOptions) -> FuzzReport {
    // Derive per-cell seeds up front (SplitMix64 stream, like the RNG
    // seeding idiom everywhere else in the workspace).
    let mut sm = SplitMix64::new(opts.campaign_seed);
    let cells: Vec<FuzzCell> = (0..opts.cells)
        .map(|_| FuzzCell::from_seed(sm.next_u64(), opts.run, opts.seed_bug))
        .collect();

    let queue = WorkQueue::new(cells.len());
    let results: Mutex<Vec<Option<SimError>>> = Mutex::new(vec![None; cells.len()]);
    scoped_workers(opts.jobs, |_w| {
        while let Some(i) = queue.take() {
            if let Err(e) = run_cell(&cells[i]) {
                if let Ok(mut slots) = results.lock() {
                    slots[i] = Some(e);
                }
            }
        }
    });
    let results = results.into_inner().unwrap_or_else(|p| p.into_inner());

    let mut outcomes = Vec::new();
    let mut failures = Vec::new();
    for (cell, error) in cells.iter().zip(results) {
        let Some(error) = error else { continue };
        let (shrunk, shrunk_error) = shrink(cell, &error);
        let repro_path = opts.out_dir.as_ref().and_then(|dir| {
            let fuzz_dir = dir.join("fuzz");
            if let Err(e) = std::fs::create_dir_all(&fuzz_dir) {
                eprintln!("warning: cannot create {}: {e}", fuzz_dir.display());
                return None;
            }
            let path = fuzz_dir.join(format!("repro-{:016x}.txt", cell.seed));
            let body = write_repro(&shrunk, opts.campaign_seed, &shrunk_error);
            // Pipeview sidecar: the trailing trace window rendered as a
            // pipeline picture, next to the repro it explains.
            let trace = error_trace(&shrunk_error);
            if !trace.is_empty() {
                let tpath = fuzz_dir.join(format!("repro-{:016x}.trace.txt", cell.seed));
                if let Err(e) = std::fs::write(&tpath, pipeview::render(trace)) {
                    eprintln!("warning: cannot write {}: {e}", tpath.display());
                }
            }
            match std::fs::write(&path, body) {
                Ok(()) => Some(path),
                Err(e) => {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                    None
                }
            }
        });
        failures.push(CellFailure {
            config: cell.summary(),
            bench: format!("seeded_kernel#{:x}", cell.kernel_seed),
            cell_key: cell.cell_key(),
            fuzz_seed: Some(cell.seed),
            error: error.clone(),
        });
        outcomes.push(FuzzOutcome {
            cell: cell.clone(),
            error,
            shrunk,
            shrunk_error,
            repro_path,
        });
    }
    FuzzReport {
        campaign_seed: opts.campaign_seed,
        cells: opts.cells,
        outcomes,
        failures,
    }
}

// ---------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------

/// Entry point for the `experiments fuzz` subcommand. Returns the
/// process exit code: 0 on a clean campaign (or a reproduced repro),
/// 1 on failures (or a repro that no longer reproduces), 2 on usage or
/// parse errors.
pub fn run_cli(args: &[String]) -> i32 {
    let mut opts = FuzzOptions {
        jobs: ss_types::exec::default_jobs(),
        out_dir: Some(PathBuf::from("results")),
        ..FuzzOptions::default()
    };
    let mut repro: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{what} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match a.as_str() {
                "--seeds" => opts.cells = grab("--seeds")?.parse().map_err(|e| format!("{e}"))?,
                "--smoke" => opts.run = 2_000,
                "--jobs" | "-j" => {
                    opts.jobs = grab("--jobs")?.parse().map_err(|e| format!("{e}"))?
                }
                "--out" => opts.out_dir = Some(PathBuf::from(grab("--out")?)),
                "--campaign-seed" => {
                    let v = grab("--campaign-seed")?;
                    let v = v.trim();
                    opts.campaign_seed = if let Some(hex) = v.strip_prefix("0x") {
                        u64::from_str_radix(hex, 16).map_err(|e| format!("{e}"))?
                    } else {
                        v.parse().map_err(|e| format!("{e}"))?
                    };
                }
                "--seed-bug" => opts.seed_bug = true,
                "--repro" => repro = Some(PathBuf::from(grab("--repro")?)),
                "--no-progress" => {} // accepted for CLI symmetry; fuzz has no live line
                other => return Err(format!("unknown fuzz option `{other}`")),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: experiments fuzz [--seeds N] [--smoke] [--jobs N] [--out DIR] \
                 [--campaign-seed S] [--repro FILE]"
            );
            return 2;
        }
    }

    if let Some(path) = repro {
        return run_repro_cli(&path);
    }

    println!(
        "fuzz: {} cells × {} committed µ-ops, campaign seed {:#x}, {} jobs",
        opts.cells, opts.run, opts.campaign_seed, opts.jobs
    );
    let report = run_campaign(&opts);
    if report.outcomes.is_empty() {
        println!("fuzz: {} cells clean (zero divergences)", report.cells);
        return 0;
    }
    for (note, o) in report.failure_notes().iter().zip(&report.outcomes) {
        eprintln!("{note}");
        eprintln!(
            "  shrunk to: run={} faults={} key={}",
            o.shrunk.run,
            o.shrunk.faults.len(),
            o.shrunk.cell_key()
        );
        if let Some(p) = &o.repro_path {
            eprintln!("  repro written: {}", p.display());
        }
    }
    eprintln!(
        "fuzz: {}/{} cells FAILED",
        report.outcomes.len(),
        report.cells
    );
    1
}

fn run_repro_cli(path: &Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let result = match replay_repro(&text) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {}: {msg}", path.display());
            return 2;
        }
    };
    println!("repro cell: {}", result.cell.cell_key());
    match (&result.outcome, result.recorded_seq) {
        (Err(e), _) => println!("replay failed as recorded: {e}"),
        (Ok(()), _) => println!("replay ran clean"),
    }
    if let Some(seq) = result.recorded_seq {
        println!("recorded first-divergence seq: {seq}");
    }
    if result.reproduced {
        println!("REPRODUCED");
        0
    } else {
        println!("NOT reproduced");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_derivation_is_deterministic() {
        let a = FuzzCell::from_seed(0xABCD, 5_000, false);
        let b = FuzzCell::from_seed(0xABCD, 5_000, false);
        assert_eq!(a, b);
        let c = FuzzCell::from_seed(0xABCE, 5_000, false);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn generated_fault_plans_are_always_valid() {
        let mut sm = SplitMix64::new(42);
        for _ in 0..500 {
            let cell = FuzzCell::from_seed(sm.next_u64(), 1_000, false);
            assert!(
                cell.fault_plan().validate().is_ok(),
                "cell {:#x} built an invalid plan",
                cell.seed
            );
            assert!(cell.config().is_ok());
        }
    }

    #[test]
    fn repro_roundtrips_cell_and_seq() {
        let mut cell = FuzzCell::from_seed(0x5EED, 4_000, true);
        cell.run = 1_234; // pretend the shrinker shortened it
        let snap = ss_types::PipelineSnapshot::default();
        let rec = ss_types::CommitRecord {
            seq: 17,
            pc: ss_types::Pc::new(0x40),
            kind: ss_types::OpClass::Load,
            dst: None,
        };
        let err = SimError::Divergence(Box::new(ss_types::DivergenceReport {
            snapshot: snap,
            seq: 17,
            expected: rec,
            actual: rec,
            recent: vec![],
            detail: String::new(),
            checkpoint: Some("warm/cell.snap".into()),
            trace: vec![],
        }));
        let text = write_repro(&cell, 0xC0FFEE, &err);
        let (back, seq) = parse_repro(&text).expect("parses");
        assert_eq!(back, cell);
        assert_eq!(seq, Some(17));
    }

    #[test]
    fn repro_rejects_garbage() {
        assert!(parse_repro("not a repro").is_err());
        assert!(parse_repro("ss-fuzz-repro v1\npolicy Bogus\n").is_err());
    }
}
