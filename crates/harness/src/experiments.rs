//! One regenerator per table/figure of the paper's evaluation.
//!
//! Every regenerator takes a [`Session`] (cached simulation results) and
//! returns a [`Report`] whose tables carry the same rows/series the paper
//! plots, normalized the same way (performance relative to `Baseline_0`
//! with a dual-ported L1D; issue counts relative to `Baseline_0`'s
//! distinct issued µ-ops). Notes compare the paper's headline numbers with
//! the measured ones.
//!
//! Regenerators are fallible: a failing cell surfaces as `Err` (and is
//! recorded in [`Session::failures`]) instead of panicking, so the
//! `experiments` binary reports it and keeps regenerating the rest.
//!
//! The [`EXPERIMENTS`] registry pairs every regenerator with its *plan* —
//! the configurations it will ask the session for. The parallel execution
//! engine ([`crate::exec`]) prewarms the (plan × benchmark) matrix across
//! workers before the regenerators run; a plan that under-reports merely
//! loses parallelism (the regenerator falls back to simulating in-line),
//! never correctness.

use crate::configs::{self, NamedConfig};
use crate::energy::EnergyModel;
use crate::report::{fmt3, gmean, pct, Report, Table};
use crate::session::Session;
use ss_types::{ReplayScheme, SimError, SimStats};
use ss_workloads::BENCHMARKS;

/// Relative reduction `1 − after/before`, 0 when `before` is 0.
fn reduction(before: u64, after: u64) -> f64 {
    if before == 0 {
        0.0
    } else {
        1.0 - after as f64 / before as f64
    }
}

/// Per-benchmark IPCs of `cfg` normalized to `base` (same benchmark
/// order), plus the gmean.
fn norm_ipc(
    sess: &mut Session,
    cfg: &NamedConfig,
    base: &[(&str, SimStats)],
) -> Result<(Vec<f64>, f64), SimError> {
    let mut rows = Vec::with_capacity(BENCHMARKS.len());
    for (b, (bn, bs)) in BENCHMARKS.iter().zip(base) {
        debug_assert_eq!(b.name, *bn);
        rows.push(sess.try_run(cfg, b)?.ipc() / bs.ipc());
    }
    let g = gmean(&rows);
    Ok((rows, g))
}

fn baseline0(sess: &mut Session) -> Result<Vec<(&'static str, SimStats)>, SimError> {
    sess.try_run_suite(&configs::baseline(0))
}

fn suite_totals(sess: &mut Session, cfg: &NamedConfig) -> Result<SimStats, SimError> {
    let mut total = SimStats::default();
    for b in &BENCHMARKS {
        let s = sess.try_run(cfg, b)?;
        total.unique_issued += s.unique_issued;
        total.issued_total += s.issued_total;
        total.replayed_miss += s.replayed_miss;
        total.replayed_bank += s.replayed_bank;
        total.replayed_prf += s.replayed_prf;
        total.committed_uops += s.committed_uops;
        total.cycles += s.cycles;
        total.wrong_path_issued += s.wrong_path_issued;
        total.l1d.accesses += s.l1d.accesses;
        total.l1d.hits += s.l1d.hits;
        total.l1d.misses += s.l1d.misses;
        total.l2.accesses += s.l2.accesses;
        total.l2.hits += s.l2.hits;
        total.l2.misses += s.l2.misses;
        total.l2.prefetches += s.l2.prefetches;
    }
    Ok(total)
}

/// Table 2: the benchmark suite with baseline IPCs and characteristics.
pub fn table2(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let mut t = Table::new(
        "Table 2 — benchmark suite (synthetic SPEC substitutes), Baseline_0",
        &[
            "benchmark",
            "paper analogue",
            "IPC",
            "L1D miss",
            "branch MPKI",
        ],
    );
    for (b, (_, s)) in BENCHMARKS.iter().zip(&base) {
        t.row(vec![
            b.name.to_string(),
            b.paper_analogue.to_string(),
            fmt3(s.ipc()),
            pct(s.l1d.miss_ratio()),
            format!("{:.1}", s.branch_mpki()),
        ]);
    }
    Ok(Report {
        charts: Vec::new(),
        id: "table2",
        tables: vec![t],
        notes: vec![
            "Paper: 36 SPEC slices, IPC 0.116 (mcf) .. 2.44 (namd). Ours are regime \
             substitutes; the IPC spread should cover roughly the same range."
                .into(),
        ],
    })
}

/// Figure 3: slowdown of conservative (non-speculative) scheduling as the
/// issue-to-execute delay grows, plus the one-load-per-cycle point.
pub fn fig3(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let cfgs = [
        configs::baseline_single_load(),
        configs::baseline(2),
        configs::baseline(4),
        configs::baseline(6),
    ];
    let mut t = Table::new(
        "Figure 3 — performance vs Baseline_0 (conservative scheduling, dual-ported L1D)",
        &[
            "benchmark",
            "B0 1ld/cyc",
            "Baseline_2",
            "Baseline_4",
            "Baseline_6",
        ],
    );
    let mut cols: Vec<(Vec<f64>, f64)> = Vec::new();
    for c in &cfgs {
        cols.push(norm_ipc(sess, c, &base)?);
    }
    for (i, b) in BENCHMARKS.iter().enumerate() {
        t.row(vec![
            b.name.to_string(),
            fmt3(cols[0].0[i]),
            fmt3(cols[1].0[i]),
            fmt3(cols[2].0[i]),
            fmt3(cols[3].0[i]),
        ]);
    }
    t.row(vec![
        "gmean".into(),
        fmt3(cols[0].1),
        fmt3(cols[1].1),
        fmt3(cols[2].1),
        fmt3(cols[3].1),
    ]);
    let chart_rows: Vec<(&str, f64)> = BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, b)| (b.name, cols[2].0[i]))
        .collect();
    Ok(Report {
        charts: vec![crate::report::bar_chart(
            "Figure 3 series — Baseline_4 IPC normalized to Baseline_0",
            &chart_rows,
        )],
        id: "fig3",
        tables: vec![t],
        notes: vec![
            format!(
                "Shape check: performance must drop monotonically with delay \
                 (measured gmeans {} / {} / {}); the paper shows drops to roughly \
                 0.95/0.85/0.75 with outliers far lower.",
                fmt3(cols[1].1),
                fmt3(cols[2].1),
                fmt3(cols[3].1)
            ),
            "The 1-load/cycle point shows dual-load issue matters even at delay 0.".into(),
        ],
    })
}

/// Figure 4: speculative scheduling (Always Hit) vs delay, dual-ported vs
/// banked L1D (a), and the issued-µ-op breakdown (b).
pub fn fig4(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let delays = [0u64, 2, 4, 6];
    let mut ta = Table::new(
        "Figure 4a — SpecSched_* performance vs Baseline_0 (dual-ported vs banked L1D)",
        &[
            "benchmark",
            "SS0 ported",
            "SS2 ported",
            "SS4 ported",
            "SS6 ported",
            "SS0 banked",
            "SS2 banked",
            "SS4 banked",
            "SS6 banked",
        ],
    );
    let mut cols: Vec<(Vec<f64>, f64)> = Vec::new();
    for &banked in &[false, true] {
        for &d in &delays {
            cols.push(norm_ipc(sess, &configs::spec_sched(d, banked), &base)?);
        }
    }
    for (i, b) in BENCHMARKS.iter().enumerate() {
        let mut row = vec![b.name.to_string()];
        row.extend(cols.iter().map(|c| fmt3(c.0[i])));
        ta.row(row);
    }
    let mut grow = vec!["gmean".to_string()];
    grow.extend(cols.iter().map(|c| fmt3(c.1)));
    ta.row(grow);

    // (b) issued-µ-op breakdown at delay 4, banked, normalized to the
    // benchmark's Baseline_0 distinct issued µ-ops.
    let mut tb = Table::new(
        "Figure 4b — issued µ-ops normalized to Baseline_0 (SpecSched_4, banked L1D)",
        &["benchmark", "Unique", "RpldMiss", "RpldBank"],
    );
    let ss4 = configs::spec_sched(4, true);
    for (b, (_, bs)) in BENCHMARKS.iter().zip(&base) {
        let s = sess.try_run(&ss4, b)?;
        let n = bs.unique_issued as f64;
        tb.row(vec![
            b.name.to_string(),
            fmt3(s.unique_issued as f64 / n),
            fmt3(s.replayed_miss as f64 / n),
            fmt3(s.replayed_bank as f64 / n),
        ]);
    }
    // per-delay totals over the whole suite
    let mut tc = Table::new(
        "Figure 4b (totals) — suite-wide issued µ-ops vs delay (banked L1D)",
        &[
            "delay",
            "Unique",
            "RpldMiss",
            "RpldBank",
            "issued/committed",
        ],
    );
    for &d in &delays {
        let tot = suite_totals(sess, &configs::spec_sched(d, true))?;
        tc.row(vec![
            format!("{d}"),
            format!("{}", tot.unique_issued),
            format!("{}", tot.replayed_miss),
            format!("{}", tot.replayed_bank),
            fmt3(tot.issued_total as f64 / tot.committed_uops as f64),
        ]);
    }

    let gm_p4 = cols[2].1;
    let gm_b4 = cols[6].1;
    let chart_rows: Vec<(&str, f64)> = BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, b)| (b.name, cols[6].0[i]))
        .collect();
    Ok(Report {
        charts: vec![crate::report::bar_chart(
            "Figure 4a series — SpecSched_4 (banked) IPC normalized to Baseline_0",
            &chart_rows,
        )],
        id: "fig4",
        tables: vec![ta, tb, tc],
        notes: vec![
            format!(
                "Shape check: banked gmean below ported gmean at delay 4 \
                 (measured {} banked vs {} ported; the paper reports ~4.7% average \
                 loss from bank conflicts).",
                fmt3(gm_b4),
                fmt3(gm_p4)
            ),
            "Replayed µ-ops grow with delay; benchmarks losing most to banking are \
             those with the biggest RpldBank share (crafty/hmmer/GemsFDTD analogues)."
                .into(),
        ],
    })
}

/// Figure 5: Schedule Shifting.
pub fn fig5(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let ss4 = configs::spec_sched(4, true);
    let shift = configs::spec_sched_shift(4);
    let (ss4_ipc, ss4_g) = norm_ipc(sess, &ss4, &base)?;
    let (sh_ipc, sh_g) = norm_ipc(sess, &shift, &base)?;
    let mut t = Table::new(
        "Figure 5 — Schedule Shifting (SpecSched_4, banked L1D), vs Baseline_0",
        &[
            "benchmark",
            "SpecSched_4",
            "with Shifting",
            "Unique",
            "RpldMiss",
            "RpldBank",
        ],
    );
    for (i, (b, (_, bs))) in BENCHMARKS.iter().zip(&base).enumerate() {
        let s = sess.try_run(&shift, b)?;
        let n = bs.unique_issued as f64;
        t.row(vec![
            b.name.to_string(),
            fmt3(ss4_ipc[i]),
            fmt3(sh_ipc[i]),
            fmt3(s.unique_issued as f64 / n),
            fmt3(s.replayed_miss as f64 / n),
            fmt3(s.replayed_bank as f64 / n),
        ]);
    }
    t.row(vec![
        "gmean".into(),
        fmt3(ss4_g),
        fmt3(sh_g),
        "".into(),
        "".into(),
        "".into(),
    ]);
    let tot4 = suite_totals(sess, &ss4)?;
    let tots = suite_totals(sess, &shift)?;
    let bank_red = reduction(tot4.replayed_bank, tots.replayed_bank);
    let speedup = sh_g / ss4_g - 1.0;
    let chart_rows: Vec<(&str, f64)> = BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, b)| (b.name, sh_ipc[i]))
        .collect();
    Ok(Report {
        charts: vec![crate::report::bar_chart(
            "Figure 5 series — SpecSched_4_Shift IPC normalized to Baseline_0",
            &chart_rows,
        )],
        id: "fig5",
        tables: vec![t],
        notes: vec![
            format!(
                "RpldBank reduction: paper −74.8% on average; measured {}.",
                pct(bank_red)
            ),
            format!(
                "Speedup over SpecSched_4: paper +2.9% gmean; measured {}.",
                pct(speedup)
            ),
        ],
    })
}

/// Figure 7: hit/miss filtering (global counter, then counter + filter).
pub fn fig7(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let ss4 = configs::spec_sched(4, true);
    let ctr = configs::spec_sched_ctr(4);
    let filt = configs::spec_sched_filter(4);
    let (ss4_ipc, ss4_g) = norm_ipc(sess, &ss4, &base)?;
    let (ctr_ipc, ctr_g) = norm_ipc(sess, &ctr, &base)?;
    let (f_ipc, f_g) = norm_ipc(sess, &filt, &base)?;
    let mut t = Table::new(
        "Figure 7 — hit/miss filtering (delay 4, banked L1D), vs Baseline_0",
        &[
            "benchmark",
            "SpecSched_4",
            "_Ctr",
            "_Filter",
            "Filter RpldMiss",
            "Filter RpldBank",
        ],
    );
    for (i, (b, (_, bs))) in BENCHMARKS.iter().zip(&base).enumerate() {
        let s = sess.try_run(&filt, b)?;
        let n = bs.unique_issued as f64;
        t.row(vec![
            b.name.to_string(),
            fmt3(ss4_ipc[i]),
            fmt3(ctr_ipc[i]),
            fmt3(f_ipc[i]),
            fmt3(s.replayed_miss as f64 / n),
            fmt3(s.replayed_bank as f64 / n),
        ]);
    }
    t.row(vec![
        "gmean".into(),
        fmt3(ss4_g),
        fmt3(ctr_g),
        fmt3(f_g),
        "".into(),
        "".into(),
    ]);
    let tot4 = suite_totals(sess, &ss4)?;
    let totc = suite_totals(sess, &ctr)?;
    let totf = suite_totals(sess, &filt)?;
    Ok(Report {
        charts: Vec::new(),
        id: "fig7",
        tables: vec![t],
        notes: vec![
            format!(
                "RpldMiss reduction — global counter: paper −59.3%, measured {}; \
                 counter+filter: paper −65.0%, measured {}.",
                pct(reduction(tot4.replayed_miss, totc.replayed_miss)),
                pct(reduction(tot4.replayed_miss, totf.replayed_miss))
            ),
            format!(
                "Total replayed µ-ops — counter: paper −44.7%, measured {}; \
                 counter+filter: paper −45.4%, measured {}.",
                pct(reduction(
                    tot4.replayed_miss + tot4.replayed_bank,
                    totc.replayed_miss + totc.replayed_bank
                )),
                pct(reduction(
                    tot4.replayed_miss + tot4.replayed_bank,
                    totf.replayed_miss + totf.replayed_bank
                ))
            ),
            "Performance should stay roughly flat (the mechanism trades replays, \
             not latency), with gains only where high IPC meets a high miss rate \
             (the xalancbmk analogue)."
                .into(),
        ],
    })
}

/// Figure 8: Combined (Shifting + Filter) and Crit (plus criticality).
pub fn fig8(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let ss4 = configs::spec_sched(4, true);
    let comb = configs::spec_sched_combined(4);
    let crit = configs::spec_sched_crit(4);
    let (ss4_ipc, ss4_g) = norm_ipc(sess, &ss4, &base)?;
    let (co_ipc, co_g) = norm_ipc(sess, &comb, &base)?;
    let (cr_ipc, cr_g) = norm_ipc(sess, &crit, &base)?;
    let mut t = Table::new(
        "Figure 8 — SpecSched_4_Combined / SpecSched_4_Crit, vs Baseline_0",
        &[
            "benchmark",
            "SpecSched_4",
            "_Combined",
            "_Crit",
            "Crit RpldMiss",
            "Crit RpldBank",
        ],
    );
    for (i, (b, (_, bs))) in BENCHMARKS.iter().zip(&base).enumerate() {
        let s = sess.try_run(&crit, b)?;
        let n = bs.unique_issued as f64;
        t.row(vec![
            b.name.to_string(),
            fmt3(ss4_ipc[i]),
            fmt3(co_ipc[i]),
            fmt3(cr_ipc[i]),
            fmt3(s.replayed_miss as f64 / n),
            fmt3(s.replayed_bank as f64 / n),
        ]);
    }
    t.row(vec![
        "gmean".into(),
        fmt3(ss4_g),
        fmt3(co_g),
        fmt3(cr_g),
        "".into(),
        "".into(),
    ]);
    let tot4 = suite_totals(sess, &ss4)?;
    let totco = suite_totals(sess, &comb)?;
    let totcr = suite_totals(sess, &crit)?;
    let rep4 = tot4.replayed_miss + tot4.replayed_bank;
    let chart_rows: Vec<(&str, f64)> = BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, b)| (b.name, cr_ipc[i]))
        .collect();
    Ok(Report {
        charts: vec![crate::report::bar_chart(
            "Figure 8 series — SpecSched_4_Crit IPC normalized to Baseline_0",
            &chart_rows,
        )],
        id: "fig8",
        tables: vec![t],
        notes: vec![
            format!(
                "Speedup over SpecSched_4 — Combined: paper +3.7%, measured {}; \
                 Crit: paper +3.4%, measured {}.",
                pct(co_g / ss4_g - 1.0),
                pct(cr_g / ss4_g - 1.0)
            ),
            format!(
                "Replayed µ-ops — Combined: paper −68.2%, measured {}; Crit: paper \
                 −90.6%, measured {}.",
                pct(reduction(rep4, totco.replayed_miss + totco.replayed_bank)),
                pct(reduction(rep4, totcr.replayed_miss + totcr.replayed_bank))
            ),
            format!(
                "Issued µ-ops per committed — Combined: paper −11.6%, measured {}; \
                 Crit: paper −13.4%, measured {}.",
                pct(1.0
                    - (totco.issued_total as f64 / totco.committed_uops as f64)
                        / (tot4.issued_total as f64 / tot4.committed_uops as f64)),
                pct(1.0
                    - (totcr.issued_total as f64 / totcr.committed_uops as f64)
                        / (tot4.issued_total as f64 / tot4.committed_uops as f64))
            ),
        ],
    })
}

/// §5.3 delay sweep: `SpecSched_d_Crit` vs `SpecSched_d` for d ∈ {2, 4, 6}.
pub fn sweep(sess: &mut Session) -> Result<Report, SimError> {
    let mut t = Table::new(
        "§5.3 sweep — SpecSched_d_Crit vs SpecSched_d (banked L1D)",
        &[
            "delay",
            "replay reduction",
            "issued/committed reduction",
            "speedup (gmean)",
        ],
    );
    let base = baseline0(sess)?;
    let mut notes = Vec::new();
    for d in [2u64, 4, 6] {
        let ss = configs::spec_sched(d, true);
        let crit = configs::spec_sched_crit(d);
        let (_, g_ss) = norm_ipc(sess, &ss, &base)?;
        let (_, g_cr) = norm_ipc(sess, &crit, &base)?;
        let tot = suite_totals(sess, &ss)?;
        let totc = suite_totals(sess, &crit)?;
        t.row(vec![
            format!("{d}"),
            pct(reduction(
                tot.replayed_miss + tot.replayed_bank,
                totc.replayed_miss + totc.replayed_bank,
            )),
            pct(1.0
                - (totc.issued_total as f64 / totc.committed_uops as f64)
                    / (tot.issued_total as f64 / tot.committed_uops as f64)),
            pct(g_cr / g_ss - 1.0),
        ]);
    }
    notes.push(
        "Paper: replay reduction ≈ constant ~90% across delays; issued reduction \
         11.2% (d=2) / 13.4% (d=4) / 18.7% (d=6); speedups 2.3% / 3.4% / 4.8%."
            .into(),
    );
    Ok(Report {
        charts: Vec::new(),
        id: "sweep",
        tables: vec![t],
        notes,
    })
}

/// §1/§6 headline numbers, derived from the Figure 4/8 runs.
pub fn headline(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let ss4 = configs::spec_sched(4, true);
    let crit = configs::spec_sched_crit(4);
    let b4 = configs::baseline(4);
    let tot4 = suite_totals(sess, &ss4)?;
    let totcr = suite_totals(sess, &crit)?;
    let totb4 = suite_totals(sess, &b4)?;
    let (_, g_ss4) = norm_ipc(sess, &ss4, &base)?;
    let (_, g_cr) = norm_ipc(sess, &crit, &base)?;

    let mut t = Table::new(
        "Headline — SpecSched_4_Crit vs SpecSched_4 (suite-wide)",
        &["metric", "paper", "measured"],
    );
    t.row(vec![
        "bank-conflict replays avoided".into(),
        "78.0%".into(),
        pct(reduction(tot4.replayed_bank, totcr.replayed_bank)),
    ]);
    t.row(vec![
        "L1-miss replays avoided".into(),
        "96.5%".into(),
        pct(reduction(tot4.replayed_miss, totcr.replayed_miss)),
    ]);
    t.row(vec![
        "all replays avoided".into(),
        "90.6%".into(),
        pct(reduction(
            tot4.replayed_miss + tot4.replayed_bank,
            totcr.replayed_miss + totcr.replayed_bank,
        )),
    ]);
    t.row(vec![
        "issued µ-ops (per committed)".into(),
        "-13.4%".into(),
        format!(
            "{}",
            pct((totcr.issued_total as f64 / totcr.committed_uops as f64)
                / (tot4.issued_total as f64 / tot4.committed_uops as f64)
                - 1.0)
        ),
    ]);
    t.row(vec![
        "performance vs SpecSched_4".into(),
        "+3.4%".into(),
        format!("+{}", pct(g_cr / g_ss4 - 1.0)),
    ]);
    t.row(vec![
        "Baseline_4 issued vs SpecSched_4".into(),
        "-15.6%".into(),
        format!(
            "{}",
            pct((totb4.issued_total as f64 / totb4.committed_uops as f64)
                / (tot4.issued_total as f64 / tot4.committed_uops as f64)
                - 1.0)
        ),
    ]);
    Ok(Report {
        charts: Vec::new(),
        id: "headline",
        tables: vec![t],
        notes: vec![],
    })
}

/// Design-choice ablations called out in DESIGN.md (AB1–AB3).
pub fn ablations(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    // AB1: silencing bit
    let filt = configs::spec_sched_filter(4);
    let nosil = configs::ablation_no_silence(4);
    let (_, g_f) = norm_ipc(sess, &filt, &base)?;
    let (_, g_n) = norm_ipc(sess, &nosil, &base)?;
    let tf = suite_totals(sess, &filt)?;
    let tn = suite_totals(sess, &nosil)?;
    let mut t1 = Table::new(
        "AB1 — filter silencing bit (SpecSched_4_Filter vs plain 2-bit counters)",
        &["variant", "gmean vs B0", "RpldMiss", "RpldBank"],
    );
    t1.row(vec![
        "with silencing".into(),
        fmt3(g_f),
        format!("{}", tf.replayed_miss),
        format!("{}", tf.replayed_bank),
    ]);
    t1.row(vec![
        "no silencing".into(),
        fmt3(g_n),
        format!("{}", tn.replayed_miss),
        format!("{}", tn.replayed_bank),
    ]);

    // AB2: line buffer
    let ss4 = configs::spec_sched(4, true);
    let nlb = configs::ablation_no_line_buffer(4);
    let (_, g_s) = norm_ipc(sess, &ss4, &base)?;
    let (_, g_l) = norm_ipc(sess, &nlb, &base)?;
    let ts = suite_totals(sess, &ss4)?;
    let tl = suite_totals(sess, &nlb)?;
    let mut t2 = Table::new(
        "AB2 — Rivers single line buffer (banked L1D, SpecSched_4)",
        &["variant", "gmean vs B0", "RpldBank"],
    );
    t2.row(vec![
        "with line buffer".into(),
        fmt3(g_s),
        format!("{}", ts.replayed_bank),
    ]);
    t2.row(vec![
        "plain banked".into(),
        fmt3(g_l),
        format!("{}", tl.replayed_bank),
    ]);

    // AB3: TAGE vs bimodal
    let bim = configs::ablation_bimodal(4);
    let (_, g_b) = norm_ipc(sess, &bim, &base)?;
    let tb = suite_totals(sess, &bim)?;
    let mut t3 = Table::new(
        "AB3 — TAGE vs bimodal direction prediction (SpecSched_4)",
        &["variant", "gmean vs B0", "wrong-path issued"],
    );
    t3.row(vec![
        "TAGE".into(),
        fmt3(g_s),
        format!("{}", ts.wrong_path_issued),
    ]);
    t3.row(vec![
        "bimodal".into(),
        fmt3(g_b),
        format!("{}", tb.wrong_path_issued),
    ]);

    Ok(Report {
        charts: Vec::new(),
        id: "ablations",
        tables: vec![t1, t2, t3],
        notes: vec![
            "AB1: without silencing the filter flips on unstable loads and loses \
             either replays or performance."
                .into(),
            "AB2: the line buffer absorbs same-set pairs; removing it must increase \
             RpldBank (the paper notes it already reduces conflicts vs a simple \
             banked cache)."
                .into(),
            "AB3: a weaker predictor issues more wrong-path µ-ops and lowers \
             performance; replay counts are mostly orthogonal."
                .into(),
        ],
    })
}

/// EXT1: the paper's premise that its mechanisms are agnostic of the
/// replay scheme (§2.1), demonstrated by running `SpecSched_4` and
/// `SpecSched_4_Crit` under all three recovery mechanisms.
pub fn replay_schemes(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let mut t = Table::new(
        "EXT1 — replay schemes (delay 4, banked L1D)",
        &[
            "scheme",
            "SpecSched_4 gmean",
            "Crit gmean",
            "Crit speedup",
            "replays",
            "Crit replays",
            "Crit replay reduction",
        ],
    );
    let mut notes = Vec::new();
    for scheme in [
        ReplayScheme::Squash,
        ReplayScheme::Selective,
        ReplayScheme::Refetch,
    ] {
        let ss = configs::with_replay_scheme(4, scheme, false);
        let crit = configs::with_replay_scheme(4, scheme, true);
        let (_, g_ss) = norm_ipc(sess, &ss, &base)?;
        let (_, g_cr) = norm_ipc(sess, &crit, &base)?;
        let tot = suite_totals(sess, &ss)?;
        let totc = suite_totals(sess, &crit)?;
        let rep = tot.replayed_miss + tot.replayed_bank;
        let repc = totc.replayed_miss + totc.replayed_bank;
        t.row(vec![
            format!("{scheme:?}"),
            fmt3(g_ss),
            fmt3(g_cr),
            pct(g_cr / g_ss - 1.0),
            format!("{rep}"),
            format!("{repc}"),
            pct(reduction(rep, repc)),
        ]);
    }
    notes.push(
        "The Crit mechanisms must reduce replays and not lose performance under          *every* scheme; selective replay suffers least from replays in the first          place, squash sits in the middle, refetch is the costly strawman."
            .into(),
    );
    Ok(Report {
        charts: Vec::new(),
        id: "replay_schemes",
        tables: vec![t],
        notes,
    })
}

/// EXT2: bank-predicted shifting (Yoaz et al., §2.2) vs the paper's
/// unconditional Schedule Shifting.
pub fn bank_prediction(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let ss4 = configs::spec_sched(4, true);
    let always = configs::spec_sched_shift(4);
    let pred = configs::spec_sched_shift_predicted(4);
    let (_, g_0) = norm_ipc(sess, &ss4, &base)?;
    let (_, g_a) = norm_ipc(sess, &always, &base)?;
    let (_, g_p) = norm_ipc(sess, &pred, &base)?;
    let t0 = suite_totals(sess, &ss4)?;
    let ta = suite_totals(sess, &always)?;
    let tp = suite_totals(sess, &pred)?;
    let mut t = Table::new(
        "EXT2 — Schedule Shifting vs bank-predicted shifting (delay 4)",
        &["variant", "gmean vs B0", "RpldBank", "RpldBank reduction"],
    );
    t.row(vec![
        "no shifting".into(),
        fmt3(g_0),
        format!("{}", t0.replayed_bank),
        "-".into(),
    ]);
    t.row(vec![
        "Shifting (always)".into(),
        fmt3(g_a),
        format!("{}", ta.replayed_bank),
        pct(reduction(t0.replayed_bank, ta.replayed_bank)),
    ]);
    t.row(vec![
        "Shifting (bank-predicted)".into(),
        fmt3(g_p),
        format!("{}", tp.replayed_bank),
        pct(reduction(t0.replayed_bank, tp.replayed_bank)),
    ]);
    Ok(Report {
        charts: Vec::new(),
        id: "bank_prediction",
        tables: vec![t],
        notes: vec![
            "Predicted shifting avoids the one-cycle wakeup tax on pairs that do              not collide; it trails unconditional shifting in replay elimination              wherever the predictor lacks confidence (cold/irregular PCs)."
                .into(),
        ],
    })
}

/// EXT3: criticality criterion — ROB-head (paper §5.3) vs QOLD.
pub fn criticality_criteria(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let ss4 = configs::spec_sched(4, true);
    let rob = configs::spec_sched_crit(4);
    let qold = configs::spec_sched_crit_qold(4);
    let (_, g_ss) = norm_ipc(sess, &ss4, &base)?;
    let (_, g_r) = norm_ipc(sess, &rob, &base)?;
    let (_, g_q) = norm_ipc(sess, &qold, &base)?;
    let t0 = suite_totals(sess, &ss4)?;
    let tr = suite_totals(sess, &rob)?;
    let tq = suite_totals(sess, &qold)?;
    let rep0 = t0.replayed_miss + t0.replayed_bank;
    let mut t = Table::new(
        "EXT3 — criticality criterion (SpecSched_4_Crit)",
        &[
            "criterion",
            "gmean vs B0",
            "speedup vs SpecSched_4",
            "replay reduction",
        ],
    );
    t.row(vec![
        "ROB-head (paper)".into(),
        fmt3(g_r),
        pct(g_r / g_ss - 1.0),
        pct(reduction(rep0, tr.replayed_miss + tr.replayed_bank)),
    ]);
    t.row(vec![
        "QOLD (oldest in IQ)".into(),
        fmt3(g_q),
        pct(g_q / g_ss - 1.0),
        pct(reduction(rep0, tq.replayed_miss + tq.replayed_bank)),
    ]);
    Ok(Report {
        charts: Vec::new(),
        id: "criticality_criteria",
        tables: vec![t],
        notes: vec![
            "Both criteria should land close; the paper calls its choice a proof of concept."
                .into(),
        ],
    })
}

/// EXT4: word vs set interleaving of the L1D banks (§4.2: the paper
/// found them to perform similarly at equal bank counts).
pub fn interleaving(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let word = configs::spec_sched(4, true);
    let set = configs::ablation_set_interleaved(4);
    let (_, g_w) = norm_ipc(sess, &word, &base)?;
    let (_, g_s) = norm_ipc(sess, &set, &base)?;
    let tw = suite_totals(sess, &word)?;
    let ts = suite_totals(sess, &set)?;
    let mut t = Table::new(
        "EXT4 — L1D bank interleaving (SpecSched_4)",
        &["interleaving", "gmean vs B0", "RpldBank"],
    );
    t.row(vec![
        "word (8B, paper)".into(),
        fmt3(g_w),
        format!("{}", tw.replayed_bank),
    ]);
    t.row(vec![
        "set (line)".into(),
        fmt3(g_s),
        format!("{}", ts.replayed_bank),
    ]);
    Ok(Report {
        charts: Vec::new(),
        id: "interleaving",
        tables: vec![t],
        notes: vec![
            "Conflict incidence depends on which address bits the kernels stride              over; the paper reports the two schemes as roughly equivalent on              SPEC."
                .into(),
        ],
    })
}

/// EXT6: the PRF bank/port replay source (§4.2), which the paper's
/// monolithic-PRF assumption removes (§4.3). Sweeping the banking shows
/// the third replay cause the taxonomy reserves.
pub fn prf_banking(sess: &mut Session) -> Result<Report, SimError> {
    let base = baseline0(sess)?;
    let mono = configs::spec_sched(4, true);
    let mut t = Table::new(
        "EXT6 — banked PRF as a replay source (SpecSched_4, banked L1D)",
        &["PRF", "gmean vs B0", "RpldPrf", "RpldMiss", "RpldBank"],
    );
    let (_, g_m) = norm_ipc(sess, &mono, &base)?;
    let tm = suite_totals(sess, &mono)?;
    t.row(vec![
        "monolithic (paper)".into(),
        fmt3(g_m),
        format!("{}", tm.replayed_prf),
        format!("{}", tm.replayed_miss),
        format!("{}", tm.replayed_bank),
    ]);
    for (banks, ports) in [(4u32, 2u32), (2, 1)] {
        let cfg = configs::with_prf_banking(4, banks, ports);
        let (_, g) = norm_ipc(sess, &cfg, &base)?;
        let tot = suite_totals(sess, &cfg)?;
        t.row(vec![
            format!("{banks} banks x {ports}R"),
            fmt3(g),
            format!("{}", tot.replayed_prf),
            format!("{}", tot.replayed_miss),
            format!("{}", tot.replayed_bank),
        ]);
    }
    Ok(Report {
        charts: Vec::new(),
        id: "prf_banking",
        tables: vec![t],
        notes: vec![
            "The paper provisions full PRF ports precisely to isolate the two              cache-side causes; under-ported banks make the third cause dominate              wide-ILP kernels."
                .into(),
        ],
    })
}

/// EXT5: the energy proxy behind the paper's issued-µ-op argument.
pub fn energy(sess: &mut Session) -> Result<Report, SimError> {
    let model = EnergyModel::default();
    let mut t = Table::new(
        "EXT5 — relative energy per committed µ-op (suite-wide, event-cost proxy)",
        &["config", "energy/committed", "vs SpecSched_4"],
    );
    let ss4 = suite_totals(sess, &configs::spec_sched(4, true))?;
    let e0 = model.per_committed(&ss4);
    for cfg in [
        configs::baseline(4),
        configs::spec_sched(4, true),
        configs::spec_sched_shift(4),
        configs::spec_sched_filter(4),
        configs::spec_sched_combined(4),
        configs::spec_sched_crit(4),
    ] {
        let tot = suite_totals(sess, &cfg)?;
        let e = model.per_committed(&tot);
        t.row(vec![cfg.name.clone(), fmt3(e), pct(e / e0 - 1.0)]);
    }
    Ok(Report {
        charts: Vec::new(),
        id: "energy",
        tables: vec![t],
        notes: vec![
            "The paper argues replays waste energy even when they cost no time;              the Crit configuration should recover most of the issue-energy gap              back to the conservative baseline while keeping its performance."
                .into(),
        ],
    })
}

/// A registered experiment: its id (the CLI argument), regenerator, and
/// the configuration plan the parallel engine prewarms.
pub struct Experiment {
    /// CLI / report id.
    pub id: &'static str,
    /// The regenerator.
    pub run: fn(&mut Session) -> Result<Report, SimError>,
    /// The configurations the regenerator will ask the session for.
    pub plan: fn() -> Vec<NamedConfig>,
}

fn plan_table2() -> Vec<NamedConfig> {
    vec![configs::baseline(0)]
}

fn plan_fig3() -> Vec<NamedConfig> {
    vec![
        configs::baseline(0),
        configs::baseline_single_load(),
        configs::baseline(2),
        configs::baseline(4),
        configs::baseline(6),
    ]
}

fn plan_fig4() -> Vec<NamedConfig> {
    let mut v = vec![configs::baseline(0)];
    for banked in [false, true] {
        for d in [0u64, 2, 4, 6] {
            v.push(configs::spec_sched(d, banked));
        }
    }
    v
}

fn plan_fig5() -> Vec<NamedConfig> {
    vec![
        configs::baseline(0),
        configs::spec_sched(4, true),
        configs::spec_sched_shift(4),
    ]
}

fn plan_fig7() -> Vec<NamedConfig> {
    vec![
        configs::baseline(0),
        configs::spec_sched(4, true),
        configs::spec_sched_ctr(4),
        configs::spec_sched_filter(4),
    ]
}

fn plan_fig8() -> Vec<NamedConfig> {
    vec![
        configs::baseline(0),
        configs::spec_sched(4, true),
        configs::spec_sched_combined(4),
        configs::spec_sched_crit(4),
    ]
}

fn plan_sweep() -> Vec<NamedConfig> {
    let mut v = vec![configs::baseline(0)];
    for d in [2u64, 4, 6] {
        v.push(configs::spec_sched(d, true));
        v.push(configs::spec_sched_crit(d));
    }
    v
}

fn plan_headline() -> Vec<NamedConfig> {
    vec![
        configs::baseline(0),
        configs::spec_sched(4, true),
        configs::spec_sched_crit(4),
        configs::baseline(4),
    ]
}

fn plan_ablations() -> Vec<NamedConfig> {
    vec![
        configs::baseline(0),
        configs::spec_sched_filter(4),
        configs::ablation_no_silence(4),
        configs::spec_sched(4, true),
        configs::ablation_no_line_buffer(4),
        configs::ablation_bimodal(4),
    ]
}

fn plan_replay_schemes() -> Vec<NamedConfig> {
    let mut v = vec![configs::baseline(0)];
    for scheme in [
        ReplayScheme::Squash,
        ReplayScheme::Selective,
        ReplayScheme::Refetch,
    ] {
        v.push(configs::with_replay_scheme(4, scheme, false));
        v.push(configs::with_replay_scheme(4, scheme, true));
    }
    v
}

fn plan_bank_prediction() -> Vec<NamedConfig> {
    vec![
        configs::baseline(0),
        configs::spec_sched(4, true),
        configs::spec_sched_shift(4),
        configs::spec_sched_shift_predicted(4),
    ]
}

fn plan_criticality_criteria() -> Vec<NamedConfig> {
    vec![
        configs::baseline(0),
        configs::spec_sched(4, true),
        configs::spec_sched_crit(4),
        configs::spec_sched_crit_qold(4),
    ]
}

fn plan_interleaving() -> Vec<NamedConfig> {
    vec![
        configs::baseline(0),
        configs::spec_sched(4, true),
        configs::ablation_set_interleaved(4),
    ]
}

fn plan_energy() -> Vec<NamedConfig> {
    vec![
        configs::spec_sched(4, true),
        configs::baseline(4),
        configs::spec_sched_shift(4),
        configs::spec_sched_filter(4),
        configs::spec_sched_combined(4),
        configs::spec_sched_crit(4),
    ]
}

fn plan_prf_banking() -> Vec<NamedConfig> {
    vec![
        configs::baseline(0),
        configs::spec_sched(4, true),
        configs::with_prf_banking(4, 4, 2),
        configs::with_prf_banking(4, 2, 1),
    ]
}

/// Every experiment, in paper order, then the extensions. The ids double
/// as the `experiments` binary's CLI arguments.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        id: "table2",
        run: table2,
        plan: plan_table2,
    },
    Experiment {
        id: "fig3",
        run: fig3,
        plan: plan_fig3,
    },
    Experiment {
        id: "fig4",
        run: fig4,
        plan: plan_fig4,
    },
    Experiment {
        id: "fig5",
        run: fig5,
        plan: plan_fig5,
    },
    Experiment {
        id: "fig7",
        run: fig7,
        plan: plan_fig7,
    },
    Experiment {
        id: "fig8",
        run: fig8,
        plan: plan_fig8,
    },
    Experiment {
        id: "sweep",
        run: sweep,
        plan: plan_sweep,
    },
    Experiment {
        id: "headline",
        run: headline,
        plan: plan_headline,
    },
    Experiment {
        id: "ablations",
        run: ablations,
        plan: plan_ablations,
    },
    Experiment {
        id: "replay_schemes",
        run: replay_schemes,
        plan: plan_replay_schemes,
    },
    Experiment {
        id: "bank_prediction",
        run: bank_prediction,
        plan: plan_bank_prediction,
    },
    Experiment {
        id: "criticality_criteria",
        run: criticality_criteria,
        plan: plan_criticality_criteria,
    },
    Experiment {
        id: "interleaving",
        run: interleaving,
        plan: plan_interleaving,
    },
    Experiment {
        id: "energy",
        run: energy,
        plan: plan_energy,
    },
    Experiment {
        id: "prf_banking",
        run: prf_banking,
        plan: plan_prf_banking,
    },
];

/// Looks up a registered experiment by id.
pub fn find(id: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.id == id)
}

/// Runs every experiment, in paper order, then the extensions; failures
/// are returned per experiment so one broken regenerator cannot take the
/// rest down.
pub fn all(sess: &mut Session) -> Vec<(&'static str, Result<Report, SimError>)> {
    EXPERIMENTS.iter().map(|e| (e.id, (e.run)(sess))).collect()
}
