//! The `experiments rvrun` subcommand: run a real RV32IM program from
//! the `ss-frontend` suite (or an ELF/flat binary on disk) through the
//! full out-of-order pipeline under a set of scheduling configurations,
//! with the commit oracle cross-checking every committed µ-op against a
//! second functional execution of the same program.
//!
//! ```text
//! experiments rvrun [--prog SPEC] [--config SPEC]... [--all] [--delay D]
//!                   [--len wNmN] [--smoke] [--no-check] [--jobs N]
//! ```
//!
//! `--prog` takes the canonical program grammar (`rv:sort@0x1`,
//! `rv:hashjoin@7`, `rv:elf:/path/to/a.out`, `rv:bin:/path@0x100`;
//! default `rv:sort@0x1`). The default configuration set is the paper's
//! headline ladder at one delay — `Baseline_D` plus the six `SpecSched_D`
//! wakeup variants; `--all` widens it to every named variant at that
//! delay ([`ConfigSpec::variants_at`]). The oracle check is **on** by
//! default (`--no-check` disables it), so a zero exit is a proof that
//! every configuration committed the exact architectural instruction
//! stream of the functional interpreter.
//!
//! Output is deterministic and byte-identical for any `--jobs` value:
//! cells execute in parallel but results print in configuration order.
//!
//! With the oracle off (`--no-check`), the ladder runs as one *lane
//! batch* ([`ss_core::lane`]) by default: the program is decoded by the
//! functional frontend once and its µ-op stream shared by every
//! configuration, each stepped through a single driver loop. `--lanes K`
//! overrides the width (`--lanes 1` restores per-cell execution); the
//! per-cell statistics are bit-identical either way. With the check on,
//! lanes do not apply — the oracle holds a per-cell golden model — and
//! cells always run the per-cell path.

use crate::configs::ConfigSpec;
use ss_core::{default_lanes, run_lane_batch, LaneCell, RunLength, RunOutcome, RunRequest};
use ss_frontend::{ProgramSpec, RvTraceSource};
use ss_types::exec::{default_jobs, scoped_workers};
use ss_types::{CancelFlag, SimStats, WorkQueue};
use std::sync::Mutex;

const USAGE: &str = "usage: experiments rvrun [--prog SPEC] [--config SPEC]... [--all] \
                     [--delay D] [--len wNmN] [--smoke] [--no-check] [--jobs N] [--lanes K]";

/// Parsed command line for `experiments rvrun`.
#[derive(Debug)]
struct RvArgs {
    prog: ProgramSpec,
    configs: Vec<ConfigSpec>,
    len: RunLength,
    check: bool,
    jobs: usize,
    lanes: usize,
}

/// The default ladder: baseline plus every headline speculative-wakeup
/// policy at one delay.
fn default_configs(delay: u64) -> Vec<ConfigSpec> {
    [
        format!("Baseline_{delay}"),
        format!("SpecSched_{delay}"),
        format!("SpecSched_{delay}_Shift"),
        format!("SpecSched_{delay}_Ctr"),
        format!("SpecSched_{delay}_Filter"),
        format!("SpecSched_{delay}_Combined"),
        format!("SpecSched_{delay}_Crit"),
    ]
    .iter()
    .map(|s| s.parse().expect("default ladder names are canonical"))
    .collect()
}

fn parse_args(args: &[String]) -> Result<RvArgs, String> {
    let mut prog: Option<ProgramSpec> = None;
    let mut configs: Vec<ConfigSpec> = Vec::new();
    let mut all = false;
    let mut delay = 4u64;
    let mut len = RunLength {
        warmup: 10_000,
        measure: 100_000,
    };
    let mut check = true;
    let mut jobs = 0usize;
    let mut lanes: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match a.as_str() {
            "--prog" => prog = Some(value("--prog")?.parse::<ProgramSpec>()?),
            "--config" => {
                configs.push(
                    value("--config")?
                        .parse::<ConfigSpec>()
                        .map_err(|e| e.to_string())?,
                );
            }
            "--all" => all = true,
            "--delay" => {
                delay = value("--delay")?
                    .parse()
                    .map_err(|_| "--delay wants an integer cycle count".to_string())?;
            }
            "--len" => len = value("--len")?.parse::<RunLength>()?,
            "--smoke" => {
                len = RunLength {
                    warmup: 1_000,
                    measure: 10_000,
                }
            }
            "--no-check" => check = false,
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs wants a worker count".to_string())?;
                if jobs == 0 {
                    return Err("--jobs wants at least 1".to_string());
                }
            }
            "--lanes" => {
                let k = value("--lanes")?
                    .parse()
                    .map_err(|_| "--lanes wants a lane count".to_string())?;
                ss_core::validate_lanes(k).map_err(|e| e.to_string())?;
                lanes = Some(k);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if all && !configs.is_empty() {
        return Err("--all and --config are mutually exclusive".to_string());
    }
    let configs = if all {
        ConfigSpec::variants_at(delay)
    } else if configs.is_empty() {
        default_configs(delay)
    } else {
        configs
    };
    // Default lane width follows the batch shape (one lane per config)
    // when the oracle is off; the oracle path is lane-ineligible (it
    // holds a per-cell golden model), so it defaults to per-cell.
    let lanes = lanes.unwrap_or_else(|| if check { 1 } else { default_lanes(configs.len()) });
    Ok(RvArgs {
        prog: prog.unwrap_or_else(|| ProgramSpec::suite("sort", 1)),
        configs,
        len,
        check,
        jobs: if jobs == 0 { default_jobs() } else { jobs },
        lanes,
    })
}

/// Runs one configuration over the program; errors (including oracle
/// divergences) come back as strings for the report.
fn run_cell(
    prog: &ProgramSpec,
    spec: ConfigSpec,
    len: RunLength,
    check: bool,
) -> Result<RunOutcome, String> {
    RunRequest::program(prog.clone())
        .config(spec)
        .length(len)
        .checked(check)
        .execute()
        .map_err(|e| format!("{spec}: {e}"))
}

/// One formatted result row; kept as a function so the table stays
/// aligned if columns change.
fn row(spec: &ConfigSpec, s: &SimStats) -> String {
    let per_k = |n: u64| {
        if s.committed_uops == 0 {
            0.0
        } else {
            n as f64 * 1_000.0 / s.committed_uops as f64
        }
    };
    format!(
        "  {:<24} ipc {:>6.3}  repl/1k {:>7.2}  mpki {:>6.2}  committed {:>9}",
        spec.to_string(),
        s.ipc(),
        per_k(s.replayed_total()),
        per_k(s.cond_mispredicts),
        s.committed_uops,
    )
}

/// Entry point for `experiments rvrun ...`; returns the process exit
/// code (0 on success, 1 on any run error or oracle divergence, 2 on a
/// bad command line).
pub fn run_cli(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return 0;
    }
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    println!(
        "rvrun: {} len={} check={} configs={}",
        parsed.prog,
        parsed.len,
        if parsed.check { "on" } else { "off" },
        parsed.configs.len()
    );
    let results: Vec<Option<Result<SimStats, String>>> = if parsed.lanes > 1 && !parsed.check {
        // Lane-batched: decode the program once, share its µ-op stream
        // across the whole ladder on one thread. Bit-identical to the
        // per-cell path below (tests/lane_equivalence.rs).
        let prog = match parsed.prog.resolve() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("rvrun: {e}");
                return 2;
            }
        };
        let cells = parsed
            .configs
            .iter()
            .map(|s| LaneCell::new(s.config(), parsed.len))
            .collect();
        run_lane_batch(
            cells,
            parsed.lanes,
            || RvTraceSource::new(prog.clone()),
            &CancelFlag::new(),
            |_, _, _| {},
        )
        .into_iter()
        .zip(&parsed.configs)
        .map(|(r, spec)| Some(r.map_err(|e| format!("{spec}: {e}"))))
        .collect()
    } else {
        let jobs = parsed.jobs.min(parsed.configs.len()).max(1);
        let queue = WorkQueue::new(parsed.configs.len());
        let slots: Vec<Mutex<Option<Result<RunOutcome, String>>>> =
            parsed.configs.iter().map(|_| Mutex::new(None)).collect();
        scoped_workers(jobs, |_worker| {
            while let Some(i) = queue.take() {
                let r = run_cell(&parsed.prog, parsed.configs[i], parsed.len, parsed.check);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .ok()
                    .flatten()
                    .map(|r| r.map(|outcome| outcome.stats))
            })
            .collect()
    };
    let mut failed = false;
    for (spec, cell) in parsed.configs.iter().zip(results) {
        match cell {
            Some(Ok(stats)) => println!("{}", row(spec, &stats)),
            Some(Err(msg)) => {
                println!("  {:<24} FAILED: {msg}", spec.to_string());
                failed = true;
            }
            None => {
                println!("  {:<24} FAILED: worker dropped the cell", spec.to_string());
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("rvrun: at least one configuration failed");
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults_are_the_headline_ladder() {
        let a = parse_args(&[]).unwrap();
        assert_eq!(a.prog, ProgramSpec::suite("sort", 1));
        assert_eq!(a.configs.len(), 7);
        assert_eq!(a.configs[0].to_string(), "Baseline_4");
        assert_eq!(a.configs[6].to_string(), "SpecSched_4_Crit");
        assert!(a.check, "oracle check defaults on");
    }

    #[test]
    fn all_expands_to_every_variant_and_excludes_config() {
        let a = parse_args(&s(&["--all", "--delay", "2"])).unwrap();
        assert_eq!(a.configs, ConfigSpec::variants_at(2));
        assert!(parse_args(&s(&["--all", "--config", "Baseline_4"])).is_err());
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(
            parse_args(&s(&["--prog", "sort@1"])).is_err(),
            "missing rv: prefix"
        );
        assert!(parse_args(&s(&["--jobs", "0"])).is_err());
        assert!(parse_args(&s(&["--len", "bogus"])).is_err());
        assert!(parse_args(&s(&["--frobnicate"])).is_err());
    }

    #[test]
    fn checked_cell_runs_divergence_free() {
        let len = RunLength {
            warmup: 200,
            measure: 2_000,
        };
        let prog = ProgramSpec::suite("hashjoin", 3);
        let spec: ConfigSpec = "SpecSched_4_Combined".parse().unwrap();
        let out = run_cell(&prog, spec, len, true).expect("oracle-checked run");
        assert!(out.stats.ipc() > 0.0);
        assert!(out.stats.committed_uops >= len.measure);
        let line = row(&spec, &out);
        assert!(line.contains("SpecSched_4_Combined"), "{line}");
        assert!(line.contains("ipc"), "{line}");
    }

    #[test]
    fn output_rows_are_jobs_invariant() {
        // The printing loop iterates `configs` in order reading indexed
        // slots, so ordering cannot depend on jobs; this pins the row
        // formatter itself to a stable shape.
        let out = run_cell(
            &ProgramSpec::suite("sort", 1),
            "Baseline_4".parse().unwrap(),
            RunLength {
                warmup: 100,
                measure: 1_000,
            },
            false,
        )
        .unwrap();
        let line = row(&"Baseline_4".parse().unwrap(), &out);
        assert!(line.starts_with("  Baseline_4"), "{line}");
    }
}
