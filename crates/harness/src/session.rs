//! Experiment session: runs (configuration × benchmark) simulations with
//! an in-memory and on-disk cache so figures sharing configurations (and
//! repeated invocations) do not re-simulate.

use crate::configs::NamedConfig;
use ss_core::{run_kernel, RunLength};
use ss_types::{CacheStats, SimStats};
use ss_workloads::{Benchmark, BENCHMARKS};
use std::collections::HashMap;
use std::path::PathBuf;

/// Seed used for all workload generation (fixed for reproducibility).
pub const WORKLOAD_SEED: u64 = 0xB5;

/// Runs simulations and caches their statistics.
pub struct Session {
    len: RunLength,
    cache_dir: Option<PathBuf>,
    mem: HashMap<(String, String), SimStats>,
    /// Simulations actually executed (not served from cache).
    pub simulated: u64,
}

impl Session {
    /// Creates a session with the given run length; `cache_dir` enables
    /// the on-disk cache.
    pub fn new(len: RunLength, cache_dir: Option<PathBuf>) -> Self {
        if let Some(d) = &cache_dir {
            let _ = std::fs::create_dir_all(d);
        }
        Session { len, cache_dir, mem: HashMap::new(), simulated: 0 }
    }

    /// The run length in use.
    pub fn run_length(&self) -> RunLength {
        self.len
    }

    fn cache_path(&self, cfg: &str, bench: &str) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|d| {
            d.join(format!("{cfg}__{bench}__w{}m{}.kv", self.len.warmup, self.len.measure))
        })
    }

    /// Runs (or recalls) one configuration × benchmark.
    pub fn run(&mut self, cfg: &NamedConfig, bench: &Benchmark) -> SimStats {
        let key = (cfg.name.clone(), bench.name.to_string());
        if let Some(s) = self.mem.get(&key) {
            return s.clone();
        }
        if let Some(path) = self.cache_path(&cfg.name, bench.name) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Some(s) = stats_from_kv(&text) {
                    self.mem.insert(key, s.clone());
                    return s;
                }
            }
        }
        let stats = run_kernel(cfg.config.clone(), (bench.build)(WORKLOAD_SEED), self.len);
        self.simulated += 1;
        if let Some(path) = self.cache_path(&cfg.name, bench.name) {
            let _ = std::fs::write(&path, stats_to_kv(&stats));
        }
        self.mem.insert(key, stats.clone());
        stats
    }

    /// Runs one configuration over the whole benchmark suite, in table
    /// order.
    pub fn run_suite(&mut self, cfg: &NamedConfig) -> Vec<(&'static str, SimStats)> {
        BENCHMARKS.iter().map(|b| (b.name, self.run(cfg, b))).collect()
    }
}

macro_rules! stat_fields {
    ($m:ident) => {
        $m!(
            cycles,
            committed_uops,
            committed_loads,
            unique_issued,
            issued_total,
            replayed_miss,
            replayed_bank,
            replayed_prf,
            replay_events_miss,
            replay_events_bank,
            replay_events_prf,
            wrong_path_issued,
            cond_branches,
            cond_mispredicts,
            target_mispredicts,
            bank_delayed_loads,
            bank_delay_cycles,
            loads_merged_into_mshr,
            dram_row_hits,
            dram_row_misses,
            loads_spec_woken,
            loads_conservative,
            filter_sure_hit,
            filter_sure_miss,
            filter_unstable,
            crit_predicted_critical,
            crit_predicted_noncritical,
            memdep_violations,
            dispatch_stall_cycles,
            recovery_buffer_replays
        )
    };
}

macro_rules! cache_fields {
    ($m:ident) => {
        $m!(accesses, hits, misses, mshr_merges, prefetches, prefetch_hits)
    };
}

/// Serializes statistics to a `key value` line format.
pub fn stats_to_kv(s: &SimStats) -> String {
    let mut out = String::new();
    macro_rules! w {
        ($($f:ident),*) => { $( out.push_str(&format!("{} {}\n", stringify!($f), s.$f)); )* };
    }
    stat_fields!(w);
    macro_rules! wc {
        ($($f:ident),*) => { $(
            out.push_str(&format!("l1d.{} {}\n", stringify!($f), s.l1d.$f));
            out.push_str(&format!("l2.{} {}\n", stringify!($f), s.l2.$f));
        )* };
    }
    cache_fields!(wc);
    out
}

/// Parses statistics from the `key value` format; `None` if the file is
/// unusable. The core progress counters are required; counters added in
/// newer builds default to 0 so caches written by slightly older builds
/// (whose behaviour is identical) remain readable.
pub fn stats_from_kv(text: &str) -> Option<SimStats> {
    let map: HashMap<&str, u64> = text
        .lines()
        .filter_map(|l| {
            let (k, v) = l.split_once(' ')?;
            Some((k, v.parse().ok()?))
        })
        .collect();
    // Required sentinels: a cache file without these is garbage.
    if !map.contains_key("cycles") || !map.contains_key("committed_uops") {
        return None;
    }
    let mut s = SimStats::default();
    macro_rules! r {
        ($($f:ident),*) => { $( s.$f = map.get(stringify!($f)).copied().unwrap_or(0); )* };
    }
    stat_fields!(r);
    let mut l1d = CacheStats::default();
    let mut l2 = CacheStats::default();
    macro_rules! rc {
        ($($f:ident),*) => { $(
            l1d.$f = map.get(concat!("l1d.", stringify!($f))).copied().unwrap_or(0);
            l2.$f = map.get(concat!("l2.", stringify!($f))).copied().unwrap_or(0);
        )* };
    }
    cache_fields!(rc);
    s.l1d = l1d;
    s.l2 = l2;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use ss_workloads::benchmark;

    #[test]
    fn kv_roundtrip_preserves_all_fields() {
        let mut s = SimStats::default();
        s.cycles = 123;
        s.committed_uops = 456;
        s.replayed_bank = 7;
        s.l1d.misses = 9;
        s.l2.prefetches = 11;
        s.crit_predicted_critical = 13;
        let text = stats_to_kv(&s);
        let back = stats_from_kv(&text).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_cache_is_rejected() {
        assert!(stats_from_kv("garbage").is_none());
        assert!(stats_from_kv("cycles notanumber").is_none());
        assert!(stats_from_kv("cycles 5").is_none(), "committed_uops required");
    }

    #[test]
    fn older_cache_files_default_new_fields() {
        let s = stats_from_kv("cycles 10
committed_uops 20
").expect("parses");
        assert_eq!(s.cycles, 10);
        assert_eq!(s.committed_uops, 20);
        assert_eq!(s.replayed_prf, 0);
    }

    #[test]
    fn memory_cache_avoids_resimulation() {
        let mut sess = Session::new(RunLength { warmup: 1000, measure: 5000 }, None);
        let cfg = configs::spec_sched(4, true);
        let bench = benchmark("fp_compute").unwrap();
        let a = sess.run(&cfg, bench);
        assert_eq!(sess.simulated, 1);
        let b = sess.run(&cfg, bench);
        assert_eq!(sess.simulated, 1, "second call served from memory");
        assert_eq!(a, b);
    }

    #[test]
    fn disk_cache_roundtrips() {
        let dir = std::env::temp_dir().join(format!("ss-harness-test-{}", std::process::id()));
        let len = RunLength { warmup: 1000, measure: 5000 };
        let cfg = configs::baseline(0);
        let bench = benchmark("fp_compute").unwrap();
        let a = {
            let mut sess = Session::new(len, Some(dir.clone()));
            sess.run(&cfg, bench)
        };
        let mut sess2 = Session::new(len, Some(dir.clone()));
        let b = sess2.run(&cfg, bench);
        assert_eq!(sess2.simulated, 0, "served from disk");
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(dir);
    }
}
