//! Experiment session: runs (configuration × benchmark) simulations with
//! an in-memory and on-disk cache so figures sharing configurations (and
//! repeated invocations) do not re-simulate.
//!
//! The session is the harness's fault boundary. Each cell runs under
//! [`Session::try_run`], which catches panics and structured
//! [`SimError`]s and records them in [`Session::failures`] so one broken
//! cell cannot abort a whole sweep. On-disk cache entries carry a format
//! version and an FNV-1a checksum. *Stale* entries (older format version
//! or another cell's key — expected across builds) are deleted and
//! re-simulated, counted in [`Session::cache_rejected`]; *corrupt*
//! entries (damaged bytes) are quarantined to `<name>.corrupt` for
//! inspection and counted separately in [`Session::cache_quarantined`].
//! Disk I/O failures are logged once and degrade the session to
//! in-memory-only caching.
//!
//! With a warm-state directory attached ([`Session::enable_warm_fork`]),
//! the warmup phase of each (config × benchmark × warmup) cell is
//! simulated once, captured as an [`ss_snapshot`] snapshot, and every
//! later measurement for that cell forks off the warm state instead of
//! re-simulating the warmup — bit-identical to the fresh run by the
//! snapshot identity guarantee.

use crate::configs::NamedConfig;
use crate::journal::SweepJournal;
use ss_core::{run_lane_batch, LaneCell, RunLength, RunRequest};
use ss_snapshot::Snapshot;
use ss_types::{CacheStats, CancelFlag, SimConfig, SimError, SimStats};
use ss_workloads::{Benchmark, KernelSpec, BENCHMARKS};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Seed used for all workload generation (fixed for reproducibility).
pub const WORKLOAD_SEED: u64 = 0xB5;

/// On-disk cache format version. Bump whenever the simulator's behaviour
/// or the serialized field set changes incompatibly, so stale entries
/// from older builds are re-simulated instead of silently reused.
/// v3 added the canonical cell key (name, [`crate::configs::ConfigSpec`]
/// string, benchmark, run length) to the header, so a renamed variant or
/// a different run length can never read a stale entry.
pub const CACHE_FORMAT_VERSION: u32 = 3;

/// Magic tag leading every cache file's header line.
const CACHE_MAGIC: &str = "ss-stats-cache";

/// One failed (configuration × benchmark) cell of a sweep.
///
/// Carries enough identity to reproduce the cell from the report alone:
/// the canonical cell key ([`Session::cell_key`]: config spec, benchmark,
/// run length) and, for fuzz-campaign cells, the cell's derivation seed.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Configuration name.
    pub config: String,
    /// Benchmark name.
    pub bench: String,
    /// Canonical cell key (`{name}|{spec}|{bench}|w{W}m{M}`), exactly as
    /// stamped into the stats cache — paste it back into a session to
    /// re-run the identical cell.
    pub cell_key: String,
    /// For fuzz cells: the seed the whole cell (config × kernel × fault
    /// plan) derives from, replayable via `experiments fuzz --repro`.
    pub fuzz_seed: Option<u64>,
    /// What went wrong.
    pub error: SimError,
}

/// Runs simulations and caches their statistics.
pub struct Session {
    len: RunLength,
    cache_dir: Option<PathBuf>,
    mem: HashMap<(String, String), SimStats>,
    /// Memoized failed cells: a cell that failed once is not re-simulated
    /// on later recalls (each figure sharing it gets the same error back).
    failed: HashMap<(String, String), SimError>,
    disk_warned: bool,
    /// Simulations actually executed (not served from cache).
    pub simulated: u64,
    /// On-disk cache entries rejected as *stale* (older format version or
    /// another cell's key; deleted and re-simulated).
    pub cache_rejected: u64,
    /// On-disk cache entries rejected as *corrupt* (damaged bytes;
    /// quarantined to `<name>.corrupt` and re-simulated).
    pub cache_quarantined: u64,
    /// Measurement runs forked off an on-disk warm-state snapshot
    /// (warmup simulation skipped).
    pub warm_forked: u64,
    /// Cells that failed (panic or structured error); the sweep
    /// continues past them.
    pub failures: Vec<CellFailure>,
    /// Warm-state snapshot directory, when warm forking is enabled.
    warm_dir: Option<PathBuf>,
    /// Crash-safe record of completed cells, when attached.
    journal: Option<SweepJournal>,
}

impl Session {
    /// Creates a session with the given run length; `cache_dir` enables
    /// the on-disk cache. If the directory cannot be created the error
    /// is logged and the session falls back to in-memory-only caching.
    pub fn new(len: RunLength, cache_dir: Option<PathBuf>) -> Self {
        let mut sess = Session {
            len,
            cache_dir: None,
            mem: HashMap::new(),
            failed: HashMap::new(),
            disk_warned: false,
            simulated: 0,
            cache_rejected: 0,
            cache_quarantined: 0,
            warm_forked: 0,
            failures: Vec::new(),
            warm_dir: None,
            journal: None,
        };
        if let Some(d) = cache_dir {
            match std::fs::create_dir_all(&d) {
                Ok(()) => sess.cache_dir = Some(d),
                Err(e) => sess.disk_cache_failed(&format!("create {}", d.display()), &e),
            }
        }
        sess
    }

    /// The run length in use.
    pub fn run_length(&self) -> RunLength {
        self.len
    }

    /// Whether this cell already has an in-memory result (or a memoized
    /// failure) and needs no work.
    pub fn is_cached(&self, cfg: &NamedConfig, bench: &Benchmark) -> bool {
        let key = (cfg.name.clone(), bench.name.to_string());
        self.mem.contains_key(&key) || self.failed.contains_key(&key)
    }

    /// An empty worker session sharing this session's run length, cache
    /// directory, and disk-degradation state. The parallel engine gives
    /// one to each worker and [`Session::merge`]s them back afterwards.
    pub fn fork_worker(&self) -> Session {
        Session {
            len: self.len,
            cache_dir: self.cache_dir.clone(),
            mem: HashMap::new(),
            failed: HashMap::new(),
            disk_warned: self.disk_warned,
            simulated: 0,
            cache_rejected: 0,
            cache_quarantined: 0,
            warm_forked: 0,
            failures: Vec::new(),
            warm_dir: self.warm_dir.clone(),
            journal: self.journal.as_ref().and_then(|j| j.reopen().ok()),
        }
    }

    /// Enables warm-state forking: warmup snapshots are captured into
    /// (and reused from) `dir`. If the directory cannot be created the
    /// error is logged and forking stays disabled.
    pub fn enable_warm_fork(&mut self, dir: PathBuf) {
        match std::fs::create_dir_all(&dir) {
            Ok(()) => self.warm_dir = Some(dir),
            Err(e) => eprintln!(
                "warning: warm-state dir {} unavailable ({e}); warm forking disabled",
                dir.display()
            ),
        }
    }

    /// Attaches the crash-safe sweep journal at `path`, creating it if
    /// absent. Returns the number of cells already on record (a resumed
    /// sweep's completed work).
    pub fn attach_journal(&mut self, path: &Path) -> std::io::Result<usize> {
        let journal = SweepJournal::open(path)?;
        let completed = journal.completed();
        self.journal = Some(journal);
        Ok(completed)
    }

    /// The attached sweep journal, if any.
    pub fn journal(&self) -> Option<&SweepJournal> {
        self.journal.as_ref()
    }

    /// Logs a disk-cache failure once and degrades to in-memory-only
    /// caching for the rest of the session.
    fn disk_cache_failed(&mut self, what: &str, err: &std::io::Error) {
        if !self.disk_warned {
            eprintln!("warning: stats cache disabled (failed to {what}: {err}); continuing in-memory only");
            self.disk_warned = true;
        }
        self.cache_dir = None;
    }

    fn cache_path(&self, cfg: &str, bench: &str) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|d| {
            d.join(format!(
                "{cfg}__{bench}__w{}m{}.kv",
                self.len.warmup, self.len.measure
            ))
        })
    }

    /// The canonical cell key stamped into (and validated against) every
    /// on-disk cache entry: display name, [`ConfigSpec`] canonical
    /// string, benchmark, and run length. A renamed variant, a name that
    /// drifted from its spec, or a different run length all change the
    /// key, so none of them can read a stale entry.
    ///
    /// [`ConfigSpec`]: crate::configs::ConfigSpec
    pub fn cell_key(&self, cfg: &NamedConfig, bench: &str) -> String {
        format!(
            "{}|{}|{}|w{}m{}",
            cfg.name, cfg.spec, bench, self.len.warmup, self.len.measure
        )
    }

    /// Runs (or recalls) one configuration × benchmark, isolating
    /// failures: a panicking or erroring simulation is recorded in
    /// [`Session::failures`] and returned as `Err` instead of taking the
    /// whole sweep down. A cell that already failed in this session is
    /// not re-simulated; the recorded error is returned again.
    pub fn try_run(&mut self, cfg: &NamedConfig, bench: &Benchmark) -> Result<SimStats, SimError> {
        if let Some(recalled) = self.try_recall(cfg, bench) {
            return recalled;
        }
        let config = cfg.config.clone();
        let len = self.len;
        let warm_path = self.warm_path(&cfg.name, bench.name);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cell(
                config,
                (bench.build)(WORKLOAD_SEED),
                warm_path.as_deref(),
                len,
            )
        }));
        let outcome = match outcome {
            Ok(Ok((s, forked))) => {
                self.warm_forked += u64::from(forked);
                Ok(s)
            }
            Ok(Err(e)) => Err(e),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("opaque panic payload")
                    .to_string();
                Err(SimError::Panicked(msg))
            }
        };
        self.record_run(cfg, bench, outcome)
    }

    /// Recall-only front half of [`Session::try_run`]: serves the cell
    /// from the in-memory result map, the memoized-failure map, or the
    /// on-disk cache. `None` means the cell is fresh and must be
    /// simulated (stale cache entries were deleted, corrupt ones
    /// quarantined, exactly as `try_run` would).
    pub fn try_recall(
        &mut self,
        cfg: &NamedConfig,
        bench: &Benchmark,
    ) -> Option<Result<SimStats, SimError>> {
        let key = (cfg.name.clone(), bench.name.to_string());
        if let Some(s) = self.mem.get(&key) {
            return Some(Ok(s.clone()));
        }
        if let Some(e) = self.failed.get(&key) {
            return Some(Err(e.clone()));
        }
        if let Some(path) = self.cache_path(&cfg.name, bench.name) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                match stats_from_cache_file(&path, &text, &self.cell_key(cfg, bench.name)) {
                    Ok(s) => {
                        self.journal_done(&self.cell_key(cfg, bench.name));
                        self.mem.insert(key, s.clone());
                        return Some(Ok(s));
                    }
                    Err(e) if rejection_is_stale(&e) => {
                        // Written by another build or cell identity —
                        // expected across upgrades; delete and re-simulate.
                        self.cache_rejected += 1;
                        eprintln!("warning: {e}; re-simulating");
                        let _ = std::fs::remove_file(&path);
                    }
                    Err(e) => {
                        // Damaged bytes: keep the evidence (quarantined
                        // under `<name>.corrupt`) and re-simulate.
                        self.cache_quarantined += 1;
                        let q = ss_snapshot::quarantine_path(&path);
                        eprintln!(
                            "warning: {e}; quarantining to {} and re-simulating",
                            q.display()
                        );
                        if std::fs::rename(&path, &q).is_err() {
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
            }
        }
        None
    }

    /// Record-only back half of [`Session::try_run`]: files a freshly
    /// simulated cell's outcome — counters, on-disk cache entry, journal
    /// record, memoization — exactly as `try_run` does for the cells it
    /// runs itself.
    fn record_run(
        &mut self,
        cfg: &NamedConfig,
        bench: &Benchmark,
        outcome: Result<SimStats, SimError>,
    ) -> Result<SimStats, SimError> {
        let key = (cfg.name.clone(), bench.name.to_string());
        let cell_key = self.cell_key(cfg, bench.name);
        let stats = match outcome {
            Ok(s) => s,
            Err(e) => return Err(self.record_failure(key, cell_key, e)),
        };
        self.simulated += 1;
        if let Some(path) = self.cache_path(&cfg.name, bench.name) {
            let body = stats_to_cache_file(&stats, &cell_key);
            if let Err(e) = std::fs::write(&path, body) {
                self.disk_cache_failed(&format!("write {}", path.display()), &e);
            }
        }
        self.journal_done(&cell_key);
        self.mem.insert(key, stats.clone());
        Ok(stats)
    }

    /// Runs a group of configurations over one benchmark as a lane batch
    /// ([`ss_core::lane`]): the benchmark's µ-op stream is decoded once
    /// and shared by up to `lanes` simulations stepped through a single
    /// driver loop on this thread. Cached cells are recalled first;
    /// per-cell results are bit-identical to [`Session::try_run`]
    /// (proven by `tests/lane_equivalence.rs`) and recorded identically
    /// (disk cache, journal, failure memoization).
    ///
    /// Falls back to the per-cell path when lanes cannot apply: `lanes
    /// <= 1`, or warm-state forking is enabled (each cell then forks a
    /// per-cell snapshot and shares no warmup work).
    ///
    /// `on_cell(fresh_cycles, failed)` fires once per cell — recalled
    /// cells report `fresh_cycles = 0`, matching the per-cell engine's
    /// progress accounting. A cancel mid-batch leaves unfinished cells
    /// unrecorded (not memoized as failures), like a sweep stopped at a
    /// cell boundary; finished lane-mates are still recorded.
    pub fn try_run_batch(
        &mut self,
        cfgs: &[NamedConfig],
        bench: &Benchmark,
        lanes: usize,
        cancel: &CancelFlag,
        mut on_cell: impl FnMut(u64, bool),
    ) {
        if lanes <= 1 || self.warm_dir.is_some() {
            for cfg in cfgs {
                if cancel.is_cancelled() {
                    return;
                }
                let before = self.simulated;
                let outcome = self.try_run(cfg, bench);
                let fresh = if self.simulated > before {
                    outcome.as_ref().map(|s| s.cycles).unwrap_or(0)
                } else {
                    0
                };
                on_cell(fresh, outcome.is_err());
            }
            return;
        }
        let mut fresh_cfgs = Vec::new();
        for cfg in cfgs {
            match self.try_recall(cfg, bench) {
                Some(r) => on_cell(0, r.is_err()),
                None => fresh_cfgs.push(cfg.clone()),
            }
        }
        if fresh_cfgs.is_empty() {
            return;
        }
        let len = self.len;
        let cells = fresh_cfgs
            .iter()
            .map(|c| LaneCell::new(c.config.clone(), len))
            .collect();
        let spec = (bench.build)(WORKLOAD_SEED);
        let results = run_lane_batch(
            cells,
            lanes,
            || spec.clone().into_source(),
            cancel,
            |_, _, _| {},
        );
        for (cfg, result) in fresh_cfgs.iter().zip(results) {
            if matches!(result, Err(SimError::Cancelled { .. })) {
                continue;
            }
            let fresh = result.as_ref().map(|s| s.cycles).unwrap_or(0);
            let failed = result.is_err();
            let _ = self.record_run(cfg, bench, result);
            on_cell(fresh, failed);
        }
    }

    /// Durably journals a completed cell (no-op without a journal; I/O
    /// failures are logged once and disable the journal for the session).
    fn journal_done(&mut self, cell_key: &str) {
        if let Some(j) = &mut self.journal {
            if let Err(e) = j.record(cell_key) {
                eprintln!(
                    "warning: sweep journal {} unwritable ({e}); journaling disabled",
                    j.path().display()
                );
                self.journal = None;
            }
        }
    }

    fn warm_path(&self, cfg: &str, bench: &str) -> Option<PathBuf> {
        self.warm_dir
            .as_ref()
            .map(|d| d.join(format!("{cfg}__{bench}__w{}.snap", self.len.warmup)))
    }

    fn record_failure(&mut self, key: (String, String), cell_key: String, e: SimError) -> SimError {
        self.failures.push(CellFailure {
            config: key.0.clone(),
            bench: key.1.clone(),
            cell_key,
            fuzz_seed: None,
            error: e.clone(),
        });
        self.failed.insert(key, e.clone());
        e
    }

    /// Runs one configuration over the whole benchmark suite, in table
    /// order, stopping at the first failing cell (which is recorded in
    /// [`Session::failures`] like any other).
    pub fn try_run_suite(
        &mut self,
        cfg: &NamedConfig,
    ) -> Result<Vec<(&'static str, SimStats)>, SimError> {
        BENCHMARKS
            .iter()
            .map(|b| Ok((b.name, self.try_run(cfg, b)?)))
            .collect()
    }

    /// Folds a worker session's results into this one (used by the
    /// parallel execution engine in [`crate::exec`]). Cached statistics,
    /// failures, and counters are merged; entries already present locally
    /// win (the matrix shards cells disjointly, so overlaps only happen
    /// when the same cell was deliberately run twice).
    pub fn merge(&mut self, other: Session) {
        for (k, v) in other.mem {
            self.mem.entry(k).or_insert(v);
        }
        for f in other.failures {
            let key = (f.config.clone(), f.bench.clone());
            if let std::collections::hash_map::Entry::Vacant(e) = self.failed.entry(key) {
                e.insert(f.error.clone());
                self.failures.push(f);
            }
        }
        self.simulated += other.simulated;
        self.cache_rejected += other.cache_rejected;
        self.cache_quarantined += other.cache_quarantined;
        self.warm_forked += other.warm_forked;
        if other.disk_warned {
            self.disk_warned = true;
        }
    }

    /// Sorts recorded failures by (configuration, benchmark) so parallel
    /// sweeps report them in a deterministic order regardless of worker
    /// completion order.
    pub fn sort_failures(&mut self) {
        self.failures
            .sort_by(|a, b| (&a.config, &a.bench).cmp(&(&b.config, &b.bench)));
    }

    /// Human-readable lines describing every recorded cell failure (for
    /// report notes). Each line carries the canonical cell key (and, for
    /// fuzz cells, the derivation seed) so any reported failure can be
    /// reproduced from the report alone.
    pub fn failure_notes(&self) -> Vec<String> {
        self.failures
            .iter()
            .map(|f| {
                let seed = match f.fuzz_seed {
                    Some(s) => format!(" [fuzz seed {s:#x}]"),
                    None => String::new(),
                };
                format!(
                    "FAILED {} × {}: {} [cell {}]{seed}",
                    f.config, f.bench, f.error, f.cell_key
                )
            })
            .collect()
    }
}

/// Whether a cache rejection is *stale* (written by another build or
/// cell identity — routine) rather than *corrupt* (damaged bytes).
fn rejection_is_stale(e: &SimError) -> bool {
    match e {
        SimError::CacheCorrupt { reason, .. } => reason.contains("stale entry"),
        _ => false,
    }
}

/// Runs one cell, forking off a warm-state snapshot when a directory is
/// attached. Returns the warmup-corrected statistics and whether the
/// warmup simulation was skipped via an on-disk snapshot.
///
/// The fresh path warms up, captures + persists the warm state, then
/// measures *from the captured snapshot* — the same code path a later
/// fork takes, so both produce identical statistics by construction (and
/// identical to a plain uninterrupted run, by the snapshot identity
/// guarantee tested in `ss-core`). A snapshot that fails verification is
/// quarantined by [`ss_snapshot::read_verified`] and the cell falls back
/// to a fresh warmup.
fn run_cell(
    cfg: SimConfig,
    spec: KernelSpec,
    warm_path: Option<&Path>,
    len: RunLength,
) -> Result<(SimStats, bool), SimError> {
    let Some(path) = warm_path else {
        let outcome = RunRequest::kernel(spec)
            .custom_config(cfg)
            .length(len)
            .execute()?;
        return Ok((outcome.stats, false));
    };
    let note = path.display().to_string();
    let measure_from = |snap: Snapshot, cfg: SimConfig, spec: KernelSpec| {
        RunRequest::kernel(spec)
            .custom_config(cfg)
            .length(RunLength {
                warmup: 0,
                measure: len.measure,
            })
            .from_snapshot(snap)
            .checkpoint_note(&note)
            .execute()
            .map(|o| o.stats)
    };
    match ss_snapshot::read_verified(path) {
        Ok(snap) => {
            match measure_from(snap, cfg.clone(), spec.clone()) {
                Ok(s) => return Ok((s, true)),
                // A config that drifted under an unchanged name (or a
                // damaged section the container checksum cannot see,
                // which it can't — but be safe): re-warm from scratch.
                Err(
                    SimError::SnapshotCorrupt { .. } | SimError::SnapshotVersionMismatch { .. },
                ) => {}
                Err(e) => return Err(e),
            }
        }
        Err(ss_snapshot::SnapshotError::Io(_)) => {} // absent: first visit
        Err(e) => eprintln!("warning: warm snapshot {note}: {e}; re-warming"),
    }
    let warm = RunRequest::kernel(spec.clone())
        .custom_config(cfg.clone())
        .length(RunLength {
            warmup: len.warmup,
            measure: 0,
        })
        .capture_warm()
        .execute()?;
    let snap = warm
        .snapshot
        .ok_or_else(|| SimError::ConfigInvalid("capture run produced no snapshot".into()))?;
    if let Err(e) = ss_snapshot::write_atomic(path, &snap) {
        eprintln!("warning: could not persist warm snapshot {note}: {e}");
    }
    let s = measure_from(snap, cfg, spec)?;
    Ok((s, false))
}

/// FNV-1a 64-bit hash (cache-file integrity checksum).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Serializes statistics with the versioned, checksummed cache header.
/// `cell_key` is the canonical cell identity ([`Session::cell_key`])
/// the entry is bound to; reads expecting a different key reject it.
pub fn stats_to_cache_file(s: &SimStats, cell_key: &str) -> String {
    let body = stats_to_kv(s);
    format!(
        "{CACHE_MAGIC} v{CACHE_FORMAT_VERSION} {:016x} {cell_key}\n{body}",
        fnv1a64(body.as_bytes())
    )
}

/// Parses a cache file, enforcing the version stamp, checksum, and the
/// canonical cell key the caller expects. Rejected entries come back as
/// [`SimError::CacheCorrupt`] and should be re-simulated.
pub fn stats_from_cache_file(
    path: &Path,
    text: &str,
    expected_key: &str,
) -> Result<SimStats, SimError> {
    let corrupt = |reason: String| {
        Err(SimError::CacheCorrupt {
            path: path.display().to_string(),
            reason,
        })
    };
    let Some((header, body)) = text.split_once('\n') else {
        return corrupt("missing header line".into());
    };
    let mut parts = header.splitn(4, ' ');
    if parts.next() != Some(CACHE_MAGIC) {
        return corrupt("not a stats-cache file (bad magic)".into());
    }
    let version = parts.next().unwrap_or("");
    if version != format!("v{CACHE_FORMAT_VERSION}") {
        return corrupt(format!(
            "format version {version} != expected v{CACHE_FORMAT_VERSION} (stale entry)"
        ));
    }
    let Some(want) = parts.next().and_then(|h| u64::from_str_radix(h, 16).ok()) else {
        return corrupt("unparsable checksum".into());
    };
    let key = parts.next().unwrap_or("");
    if key != expected_key {
        return corrupt(format!(
            "cell key `{key}` != expected `{expected_key}` (renamed variant or different run length; stale entry)"
        ));
    }
    let got = fnv1a64(body.as_bytes());
    if got != want {
        return corrupt(format!(
            "checksum mismatch: computed {got:016x}, header {want:016x}"
        ));
    }
    match stats_from_kv(body) {
        Some(s) => Ok(s),
        None => corrupt("unparsable statistics body".into()),
    }
}

macro_rules! stat_fields {
    ($m:ident) => {
        $m!(
            cycles,
            committed_uops,
            committed_loads,
            unique_issued,
            issued_total,
            replayed_miss,
            replayed_bank,
            replayed_prf,
            replay_events_miss,
            replay_events_bank,
            replay_events_prf,
            wrong_path_issued,
            cond_branches,
            cond_mispredicts,
            target_mispredicts,
            bank_delayed_loads,
            bank_delay_cycles,
            loads_merged_into_mshr,
            dram_row_hits,
            dram_row_misses,
            loads_spec_woken,
            loads_conservative,
            filter_sure_hit,
            filter_sure_miss,
            filter_unstable,
            crit_predicted_critical,
            crit_predicted_noncritical,
            memdep_violations,
            dispatch_stall_cycles,
            recovery_buffer_replays,
            degrade_entries,
            degrade_cycles,
            faults_injected
        )
    };
}

macro_rules! cache_fields {
    ($m:ident) => {
        $m!(
            accesses,
            hits,
            misses,
            mshr_merges,
            prefetches,
            prefetch_hits
        )
    };
}

/// Serializes statistics to a `key value` line format.
pub fn stats_to_kv(s: &SimStats) -> String {
    let mut out = String::new();
    macro_rules! w {
        ($($f:ident),*) => { $( out.push_str(&format!("{} {}\n", stringify!($f), s.$f)); )* };
    }
    stat_fields!(w);
    macro_rules! wc {
        ($($f:ident),*) => { $(
            out.push_str(&format!("l1d.{} {}\n", stringify!($f), s.l1d.$f));
            out.push_str(&format!("l2.{} {}\n", stringify!($f), s.l2.$f));
        )* };
    }
    cache_fields!(wc);
    out
}

/// Parses statistics from the `key value` format; `None` if the file is
/// unusable. The core progress counters are required; counters added in
/// newer builds default to 0 so caches written by slightly older builds
/// (whose behaviour is identical) remain readable.
pub fn stats_from_kv(text: &str) -> Option<SimStats> {
    let map: HashMap<&str, u64> = text
        .lines()
        .filter_map(|l| {
            let (k, v) = l.split_once(' ')?;
            Some((k, v.parse().ok()?))
        })
        .collect();
    // Required sentinels: a cache file without these is garbage.
    if !map.contains_key("cycles") || !map.contains_key("committed_uops") {
        return None;
    }
    let mut s = SimStats::default();
    macro_rules! r {
        ($($f:ident),*) => { $( s.$f = map.get(stringify!($f)).copied().unwrap_or(0); )* };
    }
    stat_fields!(r);
    let mut l1d = CacheStats::default();
    let mut l2 = CacheStats::default();
    macro_rules! rc {
        ($($f:ident),*) => { $(
            l1d.$f = map.get(concat!("l1d.", stringify!($f))).copied().unwrap_or(0);
            l2.$f = map.get(concat!("l2.", stringify!($f))).copied().unwrap_or(0);
        )* };
    }
    cache_fields!(rc);
    s.l1d = l1d;
    s.l2 = l2;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use ss_workloads::benchmark;

    #[test]
    fn kv_roundtrip_preserves_all_fields() {
        let mut s = SimStats {
            cycles: 123,
            committed_uops: 456,
            replayed_bank: 7,
            crit_predicted_critical: 13,
            ..Default::default()
        };
        s.l1d.misses = 9;
        s.l2.prefetches = 11;
        let text = stats_to_kv(&s);
        let back = stats_from_kv(&text).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_cache_is_rejected() {
        assert!(stats_from_kv("garbage").is_none());
        assert!(stats_from_kv("cycles notanumber").is_none());
        assert!(
            stats_from_kv("cycles 5").is_none(),
            "committed_uops required"
        );
    }

    #[test]
    fn older_cache_files_default_new_fields() {
        let s = stats_from_kv(
            "cycles 10
committed_uops 20
",
        )
        .expect("parses");
        assert_eq!(s.cycles, 10);
        assert_eq!(s.committed_uops, 20);
        assert_eq!(s.replayed_prf, 0);
    }

    #[test]
    fn memory_cache_avoids_resimulation() {
        let mut sess = Session::new(
            RunLength {
                warmup: 1000,
                measure: 5000,
            },
            None,
        );
        let cfg = configs::spec_sched(4, true);
        let bench = benchmark("fp_compute").unwrap();
        let a = sess.try_run(&cfg, bench).expect("runs");
        assert_eq!(sess.simulated, 1);
        let b = sess.try_run(&cfg, bench).expect("runs");
        assert_eq!(sess.simulated, 1, "second call served from memory");
        assert_eq!(a, b);
    }

    #[test]
    fn disk_cache_roundtrips() {
        let dir = std::env::temp_dir().join(format!("ss-harness-test-{}", std::process::id()));
        let len = RunLength {
            warmup: 1000,
            measure: 5000,
        };
        let cfg = configs::baseline(0);
        let bench = benchmark("fp_compute").unwrap();
        let a = {
            let mut sess = Session::new(len, Some(dir.clone()));
            sess.try_run(&cfg, bench).expect("runs")
        };
        let mut sess2 = Session::new(len, Some(dir.clone()));
        let b = sess2.try_run(&cfg, bench).expect("runs");
        assert_eq!(sess2.simulated, 0, "served from disk");
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn cache_file_header_roundtrips_and_verifies() {
        let s = SimStats {
            cycles: 77,
            committed_uops: 88,
            degrade_entries: 2,
            faults_injected: 5,
            ..Default::default()
        };
        let text = stats_to_cache_file(&s, "SpecSched_4|SpecSched_4|fp_compute|w1m2");
        assert!(text.starts_with(CACHE_MAGIC));
        let back = stats_from_cache_file(
            Path::new("t.kv"),
            &text,
            "SpecSched_4|SpecSched_4|fp_compute|w1m2",
        )
        .expect("verifies");
        assert_eq!(back, s);
    }

    #[test]
    fn cache_file_rejects_tampering_and_stale_versions() {
        let s = SimStats {
            cycles: 1,
            committed_uops: 2,
            ..Default::default()
        };
        let key = "Baseline_0|Baseline_0|fp_compute|w1m2";
        let good = stats_to_cache_file(&s, key);
        let p = Path::new("t.kv");
        // Flipped byte in the body fails the checksum.
        let tampered = good.replace("cycles 1", "cycles 9");
        let err = stats_from_cache_file(p, &tampered, key).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Version stamp from an older build is stale.
        let stale = good.replacen(&format!("v{CACHE_FORMAT_VERSION}"), "v1", 1);
        let err = stats_from_cache_file(p, &stale, key).unwrap_err();
        assert!(err.to_string().contains("stale"), "{err}");
        // An entry written under another cell identity (renamed variant,
        // different run length) must not be served.
        let err =
            stats_from_cache_file(p, &good, "Baseline_0|Baseline_0|fp_compute|w9m9").unwrap_err();
        assert!(err.to_string().contains("cell key"), "{err}");
        // Headerless legacy files are rejected outright.
        let err = stats_from_cache_file(p, "cycles 1\ncommitted_uops 2\n", key).unwrap_err();
        assert!(matches!(err, SimError::CacheCorrupt { .. }));
    }

    #[test]
    fn renamed_variant_cannot_read_a_stale_entry() {
        // Simulate a rename: an entry cached under one variant's file
        // name but carrying another cell key must be re-simulated, even
        // though path, version, and checksum all validate.
        let dir = std::env::temp_dir().join(format!("ss-harness-rename-{}", std::process::id()));
        let len = RunLength {
            warmup: 1000,
            measure: 5000,
        };
        let cfg = configs::baseline(0);
        let bench = benchmark("fp_compute").unwrap();
        let a = {
            let mut sess = Session::new(len, Some(dir.clone()));
            sess.try_run(&cfg, bench).expect("runs")
        };
        // Forge the on-disk entry: same stats, same path, but stamped
        // with a different config identity.
        let path = dir.join(format!("Baseline_0__fp_compute__w{}m{}.kv", 1000, 5000));
        let forged = stats_to_cache_file(&a, "Baseline_9|Baseline_9|fp_compute|w1000m5000");
        std::fs::write(&path, forged).unwrap();
        let mut sess2 = Session::new(len, Some(dir.clone()));
        let b = sess2.try_run(&cfg, bench).expect("runs");
        assert_eq!(sess2.cache_rejected, 1, "forged identity rejected");
        assert_eq!(sess2.simulated, 1, "forged entry re-simulated");
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupted_disk_cache_entry_is_resimulated() {
        let dir = std::env::temp_dir().join(format!("ss-harness-corrupt-{}", std::process::id()));
        let len = RunLength {
            warmup: 1000,
            measure: 5000,
        };
        let cfg = configs::baseline(0);
        let bench = benchmark("fp_compute").unwrap();
        let a = {
            let mut sess = Session::new(len, Some(dir.clone()));
            sess.try_run(&cfg, bench).expect("runs")
        };
        // Corrupt the single cache file on disk.
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        let path = entries[0].as_ref().unwrap().path();
        std::fs::write(&path, "ss-stats-cache v2 0000000000000000\ncycles 1\n").unwrap();
        let mut sess2 = Session::new(len, Some(dir.clone()));
        let b = sess2.try_run(&cfg, bench).expect("runs");
        assert_eq!(sess2.cache_rejected, 1, "corrupt entry detected");
        assert_eq!(sess2.simulated, 1, "corrupt entry re-simulated");
        assert_eq!(a, b, "re-simulation reproduces the original result");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_cache_entry_is_quarantined_not_deleted() {
        let dir = std::env::temp_dir().join(format!("ss-harness-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let len = RunLength {
            warmup: 1000,
            measure: 5000,
        };
        let cfg = configs::baseline(0);
        let bench = benchmark("fp_compute").unwrap();
        let a = {
            let mut sess = Session::new(len, Some(dir.clone()));
            sess.try_run(&cfg, bench).expect("runs")
        };
        // Flip bytes in the body: version and key still parse, but the
        // checksum fails — damaged data, not a routine stale entry.
        let path = dir.join(format!("Baseline_0__fp_compute__w{}m{}.kv", 1000, 5000));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("cycles ", "cycles 9")).unwrap();
        let mut sess2 = Session::new(len, Some(dir.clone()));
        let b = sess2.try_run(&cfg, bench).expect("runs");
        assert_eq!(sess2.cache_quarantined, 1, "damage is quarantined");
        assert_eq!(sess2.cache_rejected, 0, "not miscounted as stale");
        assert_eq!(sess2.simulated, 1, "corrupt entry re-simulated");
        assert_eq!(a, b);
        let quarantined: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "corrupt"))
            .collect();
        assert_eq!(quarantined.len(), 1, "evidence kept as <name>.corrupt");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_fork_skips_warmup_and_matches_cold_run() {
        let dir = std::env::temp_dir().join(format!("ss-harness-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let len = RunLength {
            warmup: 1000,
            measure: 5000,
        };
        let cfg = configs::spec_sched(4, false);
        let bench = benchmark("mix_int").unwrap();
        // Cold reference: no warm dir, no disk cache.
        let cold = Session::new(len, None).try_run(&cfg, bench).expect("runs");
        // First warm session captures the warm state (no fork yet).
        let mut warm1 = Session::new(len, None);
        warm1.enable_warm_fork(dir.clone());
        let first = warm1.try_run(&cfg, bench).expect("runs");
        assert_eq!(warm1.warm_forked, 0, "first visit warms up from cold");
        assert_eq!(first, cold, "warm-captured run is bit-identical");
        // Second session forks off the persisted snapshot.
        let mut warm2 = Session::new(len, None);
        warm2.enable_warm_fork(dir.clone());
        let second = warm2.try_run(&cfg, bench).expect("runs");
        assert_eq!(warm2.warm_forked, 1, "warmup simulation skipped");
        assert_eq!(second, cold, "forked run is bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_records_completed_cells_across_sessions() {
        let dir = std::env::temp_dir().join(format!("ss-harness-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let len = RunLength {
            warmup: 1000,
            measure: 5000,
        };
        let cfg = configs::baseline(0);
        let bench = benchmark("fp_compute").unwrap();
        let journal_path = dir.join("journal.log");
        let mut sess = Session::new(len, Some(dir.join("cache")));
        assert_eq!(sess.attach_journal(&journal_path).unwrap(), 0);
        sess.try_run(&cfg, bench).expect("runs");
        let key = sess.cell_key(&cfg, bench.name);
        assert!(sess.journal().unwrap().contains(&key));
        // A resumed session sees the completed cell on record and serves
        // it from the disk cache without re-simulating.
        let mut resumed = Session::new(len, Some(dir.join("cache")));
        assert_eq!(resumed.attach_journal(&journal_path).unwrap(), 1);
        resumed.try_run(&cfg, bench).expect("runs");
        assert_eq!(resumed.simulated, 0, "served from cache on resume");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_cell_is_recorded_and_does_not_abort() {
        // A watchdog small enough that the pointer-chase benchmark's
        // inter-commit gaps trip it.
        let mut starved = configs::baseline(0);
        starved.name = "TinyWatchdog".to_string();
        starved.config.watchdog_cycles = 2;
        let mut sess = Session::new(
            RunLength {
                warmup: 100,
                measure: 1000,
            },
            None,
        );
        let bench = benchmark("fp_compute").unwrap();
        let err = sess.try_run(&starved, bench).unwrap_err();
        assert!(
            matches!(err, SimError::Deadlock(_)),
            "expected deadlock, got {err}"
        );
        assert_eq!(sess.failures.len(), 1);
        assert_eq!(sess.failures[0].config, "TinyWatchdog");
        // The failure carries the full canonical cell key (and no fuzz
        // seed — this is a matrix cell), so it is reproducible from the
        // report alone.
        assert!(sess.failures[0].cell_key.starts_with("TinyWatchdog|"));
        assert!(sess.failures[0].cell_key.ends_with("|fp_compute|w100m1000"));
        assert!(sess.failures[0].fuzz_seed.is_none());
        assert!(sess.failure_notes()[0].contains("FAILED"));
        assert!(sess.failure_notes()[0].contains("[cell TinyWatchdog|"));
        // The session keeps working for healthy cells.
        let ok = sess.try_run(&configs::baseline(0), bench);
        assert!(ok.is_ok());
        // A recall of the failed cell is memoized: same error back, no
        // re-simulation, no duplicate failure record.
        let again = sess.try_run(&starved, bench).unwrap_err();
        assert!(matches!(again, SimError::Deadlock(_)));
        assert_eq!(sess.failures.len(), 1, "failure recorded once");
    }

    #[test]
    fn merge_folds_worker_results_and_failures() {
        let len = RunLength {
            warmup: 100,
            measure: 1000,
        };
        let bench = benchmark("fp_compute").unwrap();
        let mut main = Session::new(len, None);
        let mut w1 = Session::new(len, None);
        let ok = w1.try_run(&configs::baseline(0), bench).expect("runs");
        let mut w2 = Session::new(len, None);
        let mut starved = configs::baseline(0);
        starved.name = "TinyWatchdog".to_string();
        starved.config.watchdog_cycles = 2;
        let _ = w2.try_run(&starved, bench);
        main.merge(w1);
        main.merge(w2);
        assert_eq!(main.simulated, 1);
        assert_eq!(main.failures.len(), 1);
        // The merged result is served from memory.
        let b = main.try_run(&configs::baseline(0), bench).expect("cached");
        assert_eq!(main.simulated, 1, "served from merged cache");
        assert_eq!(ok, b);
        // The merged failure is memoized too.
        let err = main.try_run(&starved, bench).unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)));
        assert_eq!(main.failures.len(), 1);
    }
}
